"""The single instrumented runtime: ``Runtime.run(plan, A)``.

One engine behind every public entry point.  ``sketch()`` /
:class:`~repro.core.SketchOperator`, :class:`~repro.core.StreamingSketch`
(per absorbed batch), and :class:`~repro.parallel.ResilientExecutor` all
compile a :class:`~repro.plan.SketchPlan` and delegate here; the runtime
resolves the plan to one of three *drivers* and brackets the execution
with lifecycle events on its :class:`~repro.plan.EventBus`:

``serial``
    The single-pass blocked loop (:func:`repro.kernels.sketch_spmm`) —
    the zero-overhead path for sequential, non-resilient,
    non-checkpointed runs.
``engine``
    The resilient block executor (any thread count): per-task retries,
    deadlines, guardrails, degradation, durable checkpoints.
``pregen``
    The materialize-``S``-then-GEMM baseline (no row-block structure,
    so no checkpointing).
``process``
    The crash-tolerant multi-process pool
    (:mod:`repro.parallel.procpool`): N supervised worker processes,
    shared-memory tiles with claimed-before-commit verification,
    heartbeat liveness, deterministic requeue, and the
    process → thread → serial degradation ladder.

Lifecycle events: ``plan_compiled`` at entry, ``block_start`` /
``block_done`` around kernel invocations, ``checkpoint_written`` after
each durable snapshot, ``retry`` / ``degraded`` when the resilience
machinery intervenes, and ``done`` with the final stats.  Fault
injection subscribes to the ``task_start`` / ``rng_request`` /
``block_computed`` hook events (see
:meth:`repro.faults.FaultInjector.register`) instead of being threaded
through executor internals.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..errors import ConfigError, ShapeError
from ..kernels.stats import KernelStats
from ..utils.timing import Timer
from .events import (
    BLOCK_DONE,
    BLOCK_START,
    DONE,
    FAULT_HOOK_EVENTS,
    PLAN_COMPILED,
    SHARD_MERGED,
    SHARD_RESUMED,
    SHARD_START,
    EventBus,
)
from .policy import PersistencePolicy
from .spec import ProblemSpec, ShardPlan, SketchPlan, compute_shards

if TYPE_CHECKING:  # pragma: no cover
    from ..cache.policy import CachePolicy
    from ..cache.store import ArtifactCache
    from ..faults.injector import FaultInjector
    from ..rng.base import SketchingRNG
    from ..sparse.blocked_csr import BlockedCSR
    from ..sparse.csc import CSCMatrix

__all__ = ["SketchResult", "Runtime", "register_driver", "available_drivers"]


@dataclass
class SketchResult:
    """Outcome of one sketch application."""

    sketch: np.ndarray          # the d x n dense product (scaled if normalize)
    stats: KernelStats
    kernel_used: str
    scale: float                # normalization factor applied (1.0 if none)
    plan: "SketchPlan | None" = None  # the compiled plan, when one was built


RngFactory = Callable[[int], "SketchingRNG"]

#: Driver registry: name -> callable(runtime, plan, A, factory, blocked,
#: injector) -> (Ahat, stats).  ``register_driver`` adds entries, so a
#: future distributed/async driver plugs in without touching the runtime.
_DRIVERS: dict[str, Callable] = {}


def register_driver(name: str, fn: Callable) -> None:
    """Register an execution driver under *name* (replaces any previous)."""
    _DRIVERS[name] = fn


def available_drivers() -> tuple[str, ...]:
    """Names of the registered execution drivers."""
    return tuple(sorted(_DRIVERS))


def _serial_driver(runtime: "Runtime", plan: SketchPlan, A, factory,
                   blocked, injector):
    """Single-pass blocked loop — the pre-refactor sequential path."""
    from ..kernels.blocking import sketch_spmm, sketch_spmm_batched

    bus = runtime.bus
    on_block = None
    if bus.has_subscribers(BLOCK_START, BLOCK_DONE):
        def on_block(phase: str, i: int, d1: int, j: int, n1: int) -> None:
            bus.emit(phase, task=(i, j), i=i, d1=d1, j=j, n1=n1,
                     kernel=plan.kernel)
    if plan.problem.batch > 1:
        return sketch_spmm_batched(
            A, plan.problem.d, factory(0), kernel=plan.kernel,
            b_d=plan.b_d, b_n=plan.b_n, backend=plan.backend,
            blocked=blocked, on_block=on_block,
        )
    return sketch_spmm(
        A, plan.problem.d, factory(0), kernel=plan.kernel,
        b_d=plan.b_d, b_n=plan.b_n, backend=plan.backend,
        blocked=blocked, on_block=on_block,
    )


def _engine_driver(runtime: "Runtime", plan: SketchPlan, A, factory,
                   blocked, injector):
    """The resilient block executor (guarded or fast, any thread count)."""
    from ..parallel.executor import PlanExecutionEngine

    engine = PlanExecutionEngine(plan, A, factory, bus=runtime.bus,
                                 blocked=blocked, injector=injector)
    return engine.execute()


def _pregen_driver(runtime: "Runtime", plan: SketchPlan, A, factory,
                   blocked, injector):
    """Materialize ``S`` densely, then one GEMM (baseline kernel)."""
    from ..kernels.pregen import pregen_full

    return pregen_full(A, plan.problem.d, factory(0))


def _process_driver(runtime: "Runtime", plan: SketchPlan, A, factory,
                    blocked, injector):
    """The supervised multi-process worker pool (crash-tolerant)."""
    from ..parallel.procpool import ProcessPoolSupervisor

    supervisor = ProcessPoolSupervisor(plan, A, factory, bus=runtime.bus,
                                       injector=injector, blocked=blocked)
    return supervisor.run()


register_driver("serial", _serial_driver)
register_driver("engine", _engine_driver)
register_driver("pregen", _pregen_driver)
register_driver("process", _process_driver)


class Runtime:
    """Executes compiled :class:`SketchPlan` objects.

    Parameters
    ----------
    bus:
        The :class:`~repro.plan.EventBus` lifecycle events are emitted
        on; a private bus is created when omitted.  Subscribe before
        calling :meth:`run` — the engine snapshots hook subscriptions at
        entry.
    """

    def __init__(self, bus: EventBus | None = None) -> None:
        self.bus = bus if bus is not None else EventBus()
        # Instance-local driver overrides: consulted before the global
        # registry, so a long-lived caller (the serving daemon's warm
        # process pool) can re-route e.g. "process" plans onto a reused
        # supervisor without mutating global dispatch for everyone.
        self._local_drivers: dict[str, Callable] = {}

    def register_local_driver(self, name: str, fn: Callable) -> None:
        """Override driver *name* for this runtime instance only.

        The callable has the global driver signature
        ``fn(runtime, plan, A, factory, blocked, injector)`` and shadows
        the registry entry of the same name; other :class:`Runtime`
        instances are unaffected.
        """
        self._local_drivers[name] = fn

    # -- driver resolution ---------------------------------------------------

    def resolve_driver(self, plan: SketchPlan,
                       injector: "FaultInjector | None" = None) -> str:
        """Which driver this plan executes on.

        ``pregen`` plans always use the pregen driver; an explicit
        ``plan.driver`` wins otherwise; ``"auto"`` selects the engine
        when anything needs per-task machinery (threads, resilience,
        persistence, fault hooks) and the serial fast path otherwise —
        exactly the pre-refactor dispatch in ``SketchOperator.apply``.
        """
        if plan.kernel == "pregen":
            return "pregen"
        if plan.driver != "auto":
            return plan.driver
        if (plan.threads > 1 or plan.resilience is not None
                or plan.persistence.enabled or injector is not None
                or self.bus.has_subscribers(*FAULT_HOOK_EVENTS)):
            return "engine"
        return "serial"

    # -- execution -----------------------------------------------------------

    def run(self, plan: SketchPlan, A: "CSCMatrix", *,
            rng_factory: RngFactory | None = None,
            blocked: "BlockedCSR | None" = None,
            injector: "FaultInjector | None" = None,
            cache: "ArtifactCache | CachePolicy | None" = None
            ) -> SketchResult:
        """Execute *plan* against *A*; returns the sketch and its stats.

        Parameters
        ----------
        rng_factory:
            Override the plan's generator recipe with live generator
            instances (used by the streaming layer's offset views and by
            executor callers with custom factories); ``None`` builds
            generators from ``plan.rng``.
        blocked:
            Pre-built blocked CSR for Algorithm 4 (skips conversion).
        injector:
            A :class:`~repro.faults.FaultInjector` to wire into this
            run: registered on the bus for the task hooks and handed to
            the checkpoint manager for storage faults.  Testing only.
        cache:
            An :class:`~repro.cache.ArtifactCache` (or
            :class:`~repro.cache.CachePolicy`) for the "fixed A, many
            sketches" hot path: the Algorithm 4 blocked-CSR conversion
            of *A* is fetched from (or stored into) the cache keyed by
            the matrix content and ``b_n``, and a per-(kernel, backend)
            JIT warm-up marker records ``jit_compile_seconds`` so it is
            paid once per machine.  Cached and cold runs produce
            bit-identical sketches; a corrupt cache entry is quarantined
            and recomputed, never trusted.
        """
        if not isinstance(plan, SketchPlan):
            raise ConfigError(
                f"plan must be a SketchPlan, got {type(plan).__name__}"
            )
        if A.shape != (plan.problem.m, plan.problem.n):
            raise ShapeError(
                f"plan was compiled for a {plan.problem.m} x "
                f"{plan.problem.n} input, matrix has shape {A.shape}"
            )
        if injector is not None:
            injector.register(self.bus)
        factory = rng_factory if rng_factory is not None \
            else plan.rng_factory()
        driver_name = self.resolve_driver(plan, injector)
        if cache is not None:
            from ..cache.store import ArtifactCache

            cache = ArtifactCache.ensure(cache, bus=self.bus)
        hits_before = 0 if cache is None else cache.hit_total()
        misses_before = 0 if cache is None else cache.miss_total()
        blocked_source = None
        cached_conversion_seconds = 0.0
        if cache is not None and driver_name != "pregen":
            if plan.partition is None:
                blocked, cached_conversion_seconds, blocked_source = \
                    self._cached_blocked(plan, A, blocked, cache)
            # Sharded plans resolve blocked-CSR per stripe inside
            # _run_sharded (shard-scoped cache keys); the JIT warm-up
            # marker is stripe-independent either way.
            self._jit_marker(plan, cache)
        if driver_name == "serial" and plan.persistence.enabled:
            raise ConfigError(
                "the serial driver cannot honour a persistence policy; "
                "use driver='engine' (or 'auto') for checkpointed runs"
            )
        if driver_name == "process" and plan.persistence.enabled:
            raise ConfigError(
                "the process driver cannot honour a persistence policy yet; "
                "use driver='engine' for checkpointed runs"
            )
        driver = self._local_drivers.get(driver_name)
        if driver is None:
            try:
                driver = _DRIVERS[driver_name]
            except KeyError:
                raise ConfigError(
                    f"unknown execution driver {driver_name!r}; registered: "
                    f"{', '.join(available_drivers())}"
                ) from None
        self.bus.emit(PLAN_COMPILED, plan=plan, driver=driver_name)
        if plan.partition is not None and driver_name != "pregen":
            Ahat, stats = self._run_sharded(plan, A, factory, blocked,
                                            injector, cache, driver)
        else:
            Ahat, stats = driver(self, plan, A, factory, blocked, injector)
        s = plan.scale()
        if s != 1.0:
            Ahat *= s
        if stats.health is not None:
            # Surface silent observer failures in the run report: any
            # exception the bus swallowed during this run is now visible
            # wherever RunHealth is (CLI reports, tests, logs).
            stats.health.dropped_events = self.bus.dropped_total()
        if cache is not None:
            hits = cache.hit_total() - hits_before
            misses = cache.miss_total() - misses_before
            stats.extra["cache_hits"] = hits
            stats.extra["cache_misses"] = misses
            if blocked_source is not None:
                stats.extra["blocked_csr_source"] = blocked_source
                if blocked_source == "converted":
                    # The driver saw a pre-built structure and reported
                    # zero conversion time; attribute the real cost.
                    stats.conversion_seconds += cached_conversion_seconds
            if stats.health is not None:
                stats.health.cache_hits += hits
                stats.health.cache_misses += misses
        self.bus.emit(DONE, plan=plan, stats=stats, driver=driver_name)
        return SketchResult(sketch=Ahat, stats=stats,
                            kernel_used=plan.kernel, scale=s, plan=plan)

    # -- sharded execution ---------------------------------------------------

    def _run_sharded(self, plan: SketchPlan, A: "CSCMatrix", factory,
                     blocked: "BlockedCSR | None",
                     injector: "FaultInjector | None",
                     cache: "ArtifactCache | None",
                     driver: Callable) -> tuple[np.ndarray, KernelStats]:
        """Execute a partitioned plan shard by shard and merge the stripes.

        The partition request resolves to contiguous, ``b_n``-aligned
        column stripes (:func:`~repro.plan.compute_shards`).  Each shard
        runs the plan's own driver over its stripe ``A[:, c0:c1)`` with
        an identical RNG recipe — both generator families key entries on
        ``(row-block offset, sparse row index)``, never the column
        offset, so the per-shard RNG derivation is the identity and the
        merged sketch is bit-identical to the unsharded run for every
        strategy and shard count.

        The merge stage is communication-avoiding by construction:
        stripes are disjoint column ranges of the output, folded in
        ascending column order (the propagation-blocking sweep of Gu et
        al.), so merging is a sequential-write copy, never a reduction.
        Its measured cost is surfaced as ``merge_seconds`` /
        ``merge_words`` in the returned :class:`KernelStats` and on each
        ``shard_merged`` event.
        """
        shards = compute_shards(plan.partition, n=plan.problem.n,
                                b_n=plan.b_n, col_nnz=A.col_nnz())
        base = None
        if plan.persistence.enabled:
            base = Path(plan.persistence.to_dict()["checkpoint_dir"])
        seeded: dict[int, dict] = {}
        if base is not None and plan.persistence.resume:
            seeded = self._repartition_checkpoints(plan, shards, factory,
                                                   base)
        d = plan.problem.d
        batch = plan.problem.batch
        shape = (batch, d, plan.problem.n) if batch > 1 \
            else (d, plan.problem.n)
        Ahat = np.zeros(shape, dtype=np.float64)
        # The run aggregate is a FRESH record seeded from the plan's
        # kernel name — never an alias of a shard's own stats.  Aliasing
        # shard 0 (the previous behaviour) silently turned that shard's
        # record into the run total: any layer retaining per-shard
        # records and reconciling their sum against the aggregate
        # double-counted shard 0, and a second-level merge (a sharded
        # run folded into a service aggregate) double-counted the
        # ``merge_seconds``/``merge_words`` extras attached below.
        stats: KernelStats | None = None
        merge_seconds = 0.0
        merge_words = 0
        shards_resumed = 0
        sources: set[str] = set()
        with Timer() as loop:
            for shard in shards:
                c0, c1 = shard.col_start, shard.col_stop
                A_s = A.col_block(c0, c1)
                sub = self._shard_subplan(plan, shard, A_s.nnz, base)
                blocked_s, conv_s, src_s = self._shard_blocked(
                    sub, A, A_s, blocked, cache, shard)
                self.bus.emit(SHARD_START, shard=shard.index,
                              shards=len(shards), col_start=c0, col_stop=c1,
                              nnz=shard.nnz,
                              strategy=plan.partition.strategy)
                Ahat_s, stats_s = driver(self, sub, A_s, factory, blocked_s,
                                         injector)
                with Timer() as merge:
                    # Stripe copy along the trailing (column) axis: the
                    # same sweep for (d, n) sketches and (batch, d, n)
                    # batched stacks.
                    Ahat[..., c0:c1] = Ahat_s
                merge_seconds += merge.elapsed
                merge_words += batch * d * shard.ncols
                self.bus.emit(SHARD_MERGED, shard=shard.index, col_start=c0,
                              col_stop=c1, seconds=merge.elapsed,
                              words=batch * d * shard.ncols)
                resumed = stats_s.extra.get("resumed_from")
                if resumed:
                    shards_resumed += 1
                    info = seeded.get(shard.index, {})
                    self.bus.emit(SHARD_RESUMED, shard=shard.index,
                                  rows=info.get("rows"),
                                  repartitioned=bool(
                                      info.get("repartitioned")),
                                  source=str(resumed))
                if src_s == "converted":
                    stats_s.conversion_seconds += conv_s
                if src_s is not None:
                    sources.add(src_s)
                if stats is None:
                    stats = KernelStats(kernel=stats_s.kernel)
                stats.merge(stats_s)
        # Shards execute sequentially in this loop, so the run's wall
        # clock is the loop, not the max of any one shard; per-shard
        # sums (total/cpu/sample seconds) stay meaningful as-is.
        stats.wall_seconds = loop.elapsed
        stats.extra["threads"] = plan.threads
        stats.extra["shards"] = len(shards)
        stats.extra["partition_strategy"] = plan.partition.strategy
        stats.extra["merge_seconds"] = merge_seconds
        stats.extra["merge_words"] = merge_words
        if base is not None:
            stats.extra["shards_resumed"] = shards_resumed
        if len(sources) == 1:
            stats.extra["blocked_csr_source"] = sources.pop()
        return Ahat, stats

    @staticmethod
    def _shard_dir(base: Path, shard: ShardPlan) -> Path:
        """Checkpoint subdirectory for one stripe (named by column range,
        so lineage survives any change in shard *count*)."""
        return Path(base) / \
            f"shard-{shard.col_start:08d}-{shard.col_stop:08d}"

    def _shard_subplan(self, plan: SketchPlan, shard: ShardPlan, nnz: int,
                       base: "Path | None") -> SketchPlan:
        """The per-shard sub-plan: same decisions, stripe-scoped problem.

        The sub-plan keeps the parent's kernel/blocking/RNG verbatim
        (bit-identity depends on it), narrows the problem to the stripe,
        swaps ``partition`` for the shard identity, and redirects
        persistence into the stripe's own snapshot lineage directory.
        """
        persistence = plan.persistence
        if persistence.enabled:
            persistence = PersistencePolicy(
                checkpoint_dir=str(self._shard_dir(base, shard)),
                every=persistence.every, keep=persistence.keep,
                resume=persistence.resume)
        problem = ProblemSpec(m=plan.problem.m, n=shard.ncols,
                              d=plan.problem.d, nnz=int(nnz),
                              batch=plan.problem.batch)
        return dataclasses.replace(
            plan, problem=problem, partition=None, shard=shard,
            persistence=persistence, decisions=())

    def _shard_blocked(self, sub: SketchPlan, A: "CSCMatrix",
                       A_s: "CSCMatrix", blocked: "BlockedCSR | None",
                       cache: "ArtifactCache | None", shard: ShardPlan
                       ) -> tuple["BlockedCSR | None", float, str | None]:
        """Resolve one shard's Algorithm 4 blocked-CSR input.

        A caller-supplied whole-matrix structure is column-sliced (a
        zero-copy view — stripe cuts are ``b_n``-aligned, so they fall
        on block boundaries); with a cache, the stripe's conversion is
        fetched from / stored under its shard-scoped key; otherwise
        ``None`` is returned and the driver converts (and times) the
        stripe itself.  Same return contract as :meth:`_cached_blocked`.
        """
        if sub.kernel != "algo4":
            return None, 0.0, None
        if blocked is not None:
            return (blocked.column_slice(shard.col_start, shard.col_stop),
                    0.0, "caller")
        if cache is None:
            return None, 0.0, None
        from ..cache.artifacts import (
            blocked_csr_key,
            fetch_blocked_csr,
            store_blocked_csr,
        )
        from ..sparse.convert import csc_to_blocked_csr

        key = blocked_csr_key(A, sub.b_n, shard=shard)
        cached = fetch_blocked_csr(cache, key, A_s.shape)
        if cached is not None:
            return cached, 0.0, "cache"
        built, conv = csc_to_blocked_csr(A_s, sub.b_n)
        store_blocked_csr(cache, key, built, b_n=sub.b_n, shard=shard)
        return built, conv.seconds, "converted"

    def _repartition_checkpoints(self, plan: SketchPlan,
                                 shards: tuple[ShardPlan, ...], factory,
                                 base: Path) -> dict[int, dict]:
        """Seed each stripe's checkpoint lineage from prior verified state.

        A resumed sharded run may use a *different* shard count than the
        interrupted one.  Stripe lineages are keyed by column range, so
        this pass re-partitions: for every new stripe without its own
        usable snapshot, it assembles the stripe's payload from the
        verified snapshots of overlapping prior stripes (any layout,
        including the legacy unsharded base-directory lineage treated as
        one full-width stripe) and writes it as the stripe's first
        snapshot.  A row block counts as completed only when *every*
        overlapping prior stripe completed it — partial rows are simply
        recomputed, which is always correct (generators are
        coordinate-keyed).  Damaged or fingerprint-incompatible prior
        state is skipped, never trusted: the fallback is a fresh
        compute, not a wrong resume.

        Returns ``{shard index: {"rows": ..., "repartitioned": ...}}``
        for shards with state to resume (feeds ``shard_resumed`` events).
        """
        from ..kernels.backends import resolve_backend
        from ..persist.resume import latest_verified_snapshot
        from ..persist.snapshot import (
            FINGERPRINT_KEYS,
            CheckpointManager,
            run_fingerprint,
        )

        rng = factory(0)
        backend = resolve_backend(plan.backend).name

        def shard_fp(shard: ShardPlan) -> dict:
            fp = run_fingerprint(
                mode="blocked", d=plan.problem.d, n=shard.ncols,
                b_d=plan.b_d, b_n=plan.b_n, kernel=plan.kernel,
                backend=backend, rng_kind=rng.family, seed=rng.seed,
                distribution=rng.dist.name)
            fp["shard_col_start"] = int(shard.col_start)
            fp["shard_col_stop"] = int(shard.col_stop)
            return fp

        # Stripe-independent identity: every key except the stripe width
        # and range must match for prior state to be re-partitionable.
        compat_keys = tuple(k for k in FINGERPRINT_KEYS if k != "n")
        ref = shard_fp(shards[0])

        def compatible(stored: dict) -> bool:
            return all(stored.get(k) == ref.get(k) for k in compat_keys)

        def verified(directory: Path):
            try:
                return latest_verified_snapshot(directory)
            except Exception:  # noqa: BLE001 - damaged lineage: recompute
                return None

        sources: list[tuple[int, int, object]] = []
        if base.is_dir():
            for entry in sorted(base.iterdir()):
                if not (entry.is_dir() and entry.name.startswith("shard-")):
                    continue
                try:
                    o0, o1 = (int(p) for p in
                              entry.name[len("shard-"):].split("-"))
                except ValueError:
                    continue
                snap = verified(entry)
                if snap is None or not compatible(snap.fingerprint):
                    continue
                if int(snap.fingerprint.get("n", -1)) != o1 - o0:
                    continue
                sources.append((o0, o1, snap))
            legacy = verified(base)
            if legacy is not None and compatible(legacy.fingerprint) \
                    and int(legacy.fingerprint.get("n", -1)) \
                    == plan.problem.n \
                    and legacy.fingerprint.get("shard_col_start") is None:
                sources.append((0, plan.problem.n, legacy))

        d, b_d = plan.problem.d, plan.b_d
        seeded: dict[int, dict] = {}
        own_keys = tuple(FINGERPRINT_KEYS) + ("shard_col_start",
                                              "shard_col_stop")
        for shard in shards:
            c0, c1 = shard.col_start, shard.col_stop
            fp = shard_fp(shard)
            own = verified(self._shard_dir(base, shard))
            if own is not None and all(own.fingerprint.get(k) == fp.get(k)
                                       for k in own_keys):
                seeded[shard.index] = {
                    "rows": len(own.state.get("completed_rows", [])),
                    "repartitioned": False}
                continue
            overlaps = sorted(
                ((o0, o1, snap) for o0, o1, snap in sources
                 if o0 < c1 and o1 > c0 and not (o0 == c0 and o1 == c1)),
                key=lambda t: (t[0], t[1]))
            cover = c0
            for o0, o1, _snap in overlaps:
                if o0 > cover:
                    break
                cover = max(cover, o1)
            if not overlaps or cover < c1:
                continue
            rows: set[int] | None = None
            for _o0, _o1, snap in overlaps:
                got = {int(r) for r in snap.state.get("completed_rows", [])}
                rows = got if rows is None else rows & got
            row_list = sorted(rows or ())
            if not row_list:
                continue
            arr = np.zeros((d, shard.ncols), dtype=np.float64)
            for o0, o1, snap in overlaps:
                old = snap.load_array(verify=False)  # verified at discovery
                a0, a1 = max(c0, o0), min(c1, o1)
                arr[:, a0 - c0:a1 - c0] = old[:, a0 - o0:a1 - o0]
            blocks = [(r, arr[r:r + min(b_d, d - r), :]) for r in row_list]
            manager = CheckpointManager(self._shard_dir(base, shard),
                                        keep=plan.persistence.keep)
            manager.save(blocks, fp, {"completed_rows": row_list})
            seeded[shard.index] = {"rows": len(row_list),
                                   "repartitioned": True}
        return seeded

    # -- artifact-cache plumbing --------------------------------------------

    def _cached_blocked(self, plan: SketchPlan, A: "CSCMatrix",
                        blocked: "BlockedCSR | None", cache: "ArtifactCache"
                        ) -> tuple["BlockedCSR | None", float, str | None]:
        """Resolve the Algorithm 4 blocked-CSR input through the cache.

        Returns ``(blocked, conversion_seconds, source)`` where *source*
        is ``"caller"`` (pre-built structure passed in), ``"cache"``
        (verified disk/memory entry), ``"converted"`` (cache miss —
        converted here, then stored), or ``None`` (not an Algorithm 4
        plan, nothing to do).  On the ``"converted"`` path the measured
        conversion time is returned so the run's stats stay truthful
        even though the driver sees a pre-built structure.
        """
        if plan.kernel != "algo4":
            return blocked, 0.0, None
        if blocked is not None:
            return blocked, 0.0, "caller"
        from ..cache.artifacts import (
            blocked_csr_key,
            fetch_blocked_csr,
            store_blocked_csr,
        )
        from ..sparse.convert import csc_to_blocked_csr

        key = blocked_csr_key(A, plan.b_n)
        cached = fetch_blocked_csr(cache, key, A.shape)
        if cached is not None:
            return cached, 0.0, "cache"
        built, conv = csc_to_blocked_csr(A, plan.b_n)
        store_blocked_csr(cache, key, built, b_n=plan.b_n)
        return built, conv.seconds, "converted"

    def _jit_marker(self, plan: SketchPlan, cache: "ArtifactCache") -> None:
        """Warm the kernel backend once per (kernel, backend, machine).

        On a cache miss the backend's JIT compilation is triggered here
        — outside any timed kernel region — and its cost recorded in a
        durable marker entry; on a hit the warm-up is skipped entirely,
        trusting the backend's own on-disk compilation cache (numba's
        ``cache=True``) to make the first real call cheap.  Either way
        ``jit_compile_seconds`` is paid at most once per machine.
        """
        if plan.kernel not in ("algo3", "algo4"):
            return
        from ..cache.artifacts import (
            fetch_jit_marker,
            jit_warmup_key,
            store_jit_marker,
        )
        from ..kernels.backends import resolve_backend

        be = resolve_backend(plan.backend)
        key = jit_warmup_key(kernel=plan.kernel, backend=be.name,
                             rng_kind=plan.rng.kind)
        if fetch_jit_marker(cache, key) is not None:
            return
        # Warm-up needs one plain generator; a batched plan's members
        # share the family, so the single-seed recipe is representative.
        rng = plan.rng.build(0)
        seconds = be.warmup(rng, np.float64)
        store_jit_marker(cache, key, kernel=plan.kernel, backend=be.name,
                         jit_compile_seconds=seconds)
