"""Lightweight lifecycle-event bus for the plan/compile/execute stack.

Every layer of the runtime announces what it is doing through a shared
:class:`EventBus` instead of calling its observers directly: the engine
emits ``block_start``/``block_done`` around every kernel invocation,
``retry``/``degraded`` when the resilience machinery intervenes, and
``checkpoint_written`` after each durable snapshot; the runtime brackets
the whole run with ``plan_compiled`` and ``done``.  Anything that wants
to watch a run — :class:`~repro.parallel.resilience.RunHealth`
consumers, CLI progress output, the observability layer
(:mod:`repro.obs`), the fault injector — subscribes to the names it
cares about and never has to be threaded through executor internals.

The bus distinguishes two kinds of subscriber, because they have
opposite failure contracts:

* **Intervention handlers** (:meth:`EventBus.subscribe`) run inline in
  the emitting thread and may *raise* — that is a feature, not a bug:
  the fault injector's ``task_start`` subscriber injects failures
  exactly this way.  They may also *mutate* the event's payload — the
  ``rng_request`` subscriber swaps in a corrupted generator by
  assigning ``event["rng"]``.
* **Observers** (:meth:`EventBus.subscribe_observer`) watch but must
  never be able to abort or corrupt a sketch: any exception they raise
  is swallowed and counted in :attr:`EventBus.dropped_events`, so a
  bug in a metrics exporter can never change a run's output or exit
  code.  Observers run after the intervention handlers for the same
  event and see their payload mutations.

The bus is deliberately tiny and synchronous.  ``emit`` with zero
subscribers for a name is one lock-free dictionary probe, so
instrumenting the hot path costs nothing when nobody is listening
(dispatch reads an immutable snapshot that is rebuilt on every
``subscribe``/``unsubscribe``, never mutated in place).

Subscribing is thread-safe; a handler registered mid-run sees only
subsequent events.
"""

from __future__ import annotations

import threading
from typing import Callable

__all__ = [
    "Event",
    "EventBus",
    "PLAN_COMPILED",
    "BLOCK_START",
    "BLOCK_DONE",
    "TASK_START",
    "RNG_REQUEST",
    "BLOCK_COMPUTED",
    "CHECKPOINT_WRITTEN",
    "RETRY",
    "DEGRADED",
    "DONE",
    "WORKER_SPAWNED",
    "WORKER_LOST",
    "TASK_REQUEUED",
    "CACHE_HIT",
    "CACHE_MISS",
    "CACHE_EVICTED",
    "SHARD_START",
    "SHARD_MERGED",
    "SHARD_RESUMED",
    "REQUEST_ADMITTED",
    "REQUEST_SHED",
    "REQUEST_DONE",
    "REQUESTS_COALESCED",
    "DEADLINE_MISSED",
    "DRAIN_STARTED",
    "LIFECYCLE_EVENTS",
]

#: Lifecycle events every run emits (in roughly this order).
PLAN_COMPILED = "plan_compiled"
BLOCK_START = "block_start"
BLOCK_DONE = "block_done"
CHECKPOINT_WRITTEN = "checkpoint_written"
RETRY = "retry"
DEGRADED = "degraded"
DONE = "done"

#: Process-pool supervision events (the ``process`` driver only):
#: ``worker_spawned`` when the supervisor starts a worker (payload
#: ``worker``, ``pid``, ``respawn``), ``worker_lost`` when it declares
#: one dead (payload ``worker``, ``pid``, ``reason`` — ``"crashed"`` /
#: ``"hung"`` / ``"shutdown"``), and ``task_requeued`` when a claimed
#: task returns to the queue (payload ``task``, ``reason``,
#: ``replays``, ``backoff``).
WORKER_SPAWNED = "worker_spawned"
WORKER_LOST = "worker_lost"
TASK_REQUEUED = "task_requeued"

#: Artifact-cache events (:mod:`repro.cache`): ``cache_hit`` when a
#: lookup is served from memory or a verified disk entry (payload
#: ``artifact``, ``key``, ``source`` — ``"memory"`` / ``"disk"``),
#: ``cache_miss`` when it is not (payload ``artifact``, ``key``,
#: ``reason`` — ``"absent"`` / ``"corrupt"``), and ``cache_evicted``
#: when the LRU sweep drops an entry (payload ``artifact``, ``key``,
#: ``nbytes``).
CACHE_HIT = "cache_hit"
CACHE_MISS = "cache_miss"
CACHE_EVICTED = "cache_evicted"

#: Sharded-execution events (partitioned plans only): ``shard_start``
#: when the runtime begins one shard's task group (payload ``shard``,
#: ``shards``, ``col_start``, ``col_stop``, ``nnz``, ``strategy``),
#: ``shard_merged`` after its partial result is folded into the final
#: sketch in propagation-blocking order (payload ``shard``,
#: ``col_start``, ``col_stop``, ``seconds`` — the measured merge cost —
#: and ``words`` — output words propagated), and ``shard_resumed`` when
#: a shard restored verified checkpoint state (payload ``shard``,
#: ``rows``, ``repartitioned`` — True when the state was re-partitioned
#: from a run with a different shard count — and ``source``).
SHARD_START = "shard_start"
SHARD_MERGED = "shard_merged"
SHARD_RESUMED = "shard_resumed"

#: Serving-daemon lifecycle events (:mod:`repro.serve`):
#: ``request_admitted`` when a request clears admission control (payload
#: ``request_id``, ``queue_depth``), ``request_shed`` when one is
#: rejected by load shedding (payload ``request_id``, ``reason`` —
#: ``"queue_full"`` / ``"breaker_open"`` / ``"draining"`` — and
#: ``retry_after``), ``request_done`` when a response is produced
#: (payload ``request_id``, ``status``, ``seconds``),
#: ``requests_coalesced`` when an executor folds compatible queued
#: requests into one batched run (payload ``batch`` — total requests in
#: the pooled run, leader included — ``request_ids``, ``leader``),
#: ``deadline_missed`` when a request's deadline expires (payload
#: ``request_id``, ``phase`` — ``"queue"`` / ``"execute"``), and
#: ``drain_started`` when graceful shutdown begins (payload
#: ``in_flight``, ``queued``).
REQUEST_ADMITTED = "request_admitted"
REQUEST_SHED = "request_shed"
REQUEST_DONE = "request_done"
REQUESTS_COALESCED = "requests_coalesced"
DEADLINE_MISSED = "deadline_missed"
DRAIN_STARTED = "drain_started"

#: Interposition hooks: fired around each task attempt on the guarded
#: path so subscribers (the fault injector) can fail, delay, or corrupt
#: an attempt.  Payloads are mutable; ``rng_request`` handlers may
#: replace ``event["rng"]``.
TASK_START = "task_start"
RNG_REQUEST = "rng_request"
BLOCK_COMPUTED = "block_computed"

LIFECYCLE_EVENTS = (
    PLAN_COMPILED, BLOCK_START, BLOCK_DONE, CHECKPOINT_WRITTEN,
    RETRY, DEGRADED, DONE, WORKER_SPAWNED, WORKER_LOST, TASK_REQUEUED,
    CACHE_HIT, CACHE_MISS, CACHE_EVICTED,
    SHARD_START, SHARD_MERGED, SHARD_RESUMED,
    REQUEST_ADMITTED, REQUEST_SHED, REQUEST_DONE, REQUESTS_COALESCED,
    DEADLINE_MISSED, DRAIN_STARTED,
)

#: Hook events whose mere presence switches the engine onto the guarded
#: (per-task bookkeeping) path, exactly as passing ``injector=`` used to.
FAULT_HOOK_EVENTS = (TASK_START, RNG_REQUEST, BLOCK_COMPUTED)


class Event:
    """One emitted event: a name plus a mutable payload dict.

    Payload entries are exposed both as mapping items (``event["task"]``)
    and via :meth:`get`; handlers that need to hand a value back to the
    emitter (e.g. a replacement RNG) assign into the payload.
    """

    __slots__ = ("name", "payload")

    def __init__(self, name: str, payload: dict | None = None) -> None:
        self.name = name
        self.payload = payload if payload is not None else {}

    def __getitem__(self, key: str):
        return self.payload[key]

    def __setitem__(self, key: str, value) -> None:
        self.payload[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self.payload

    def get(self, key: str, default=None):
        return self.payload.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.name!r}, {self.payload!r})"


Handler = Callable[[Event], None]


class EventBus:
    """Synchronous publish/subscribe hub keyed by event name.

    Attributes
    ----------
    dropped_events:
        Count of observer-handler exceptions swallowed so far, keyed by
        event name.  Exported by the observability layer as the
        ``dropped_events`` metric; always zero for intervention
        handlers, whose exceptions propagate.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._handlers: dict[str, list[Handler]] = {}
        self._observers: dict[str, list[Handler]] = {}
        # Immutable dispatch snapshot: name -> (intervention, observers).
        # Rebuilt (never mutated) under the lock so ``emit`` can read it
        # without taking the lock.
        self._snapshot: dict[str, tuple[tuple[Handler, ...],
                                        tuple[Handler, ...]]] = {}
        self.dropped_events: dict[str, int] = {}

    def _rebuild_snapshot(self) -> None:
        names = set(self._handlers) | set(self._observers)
        self._snapshot = {
            name: (tuple(self._handlers.get(name, ())),
                   tuple(self._observers.get(name, ())))
            for name in names
            if self._handlers.get(name) or self._observers.get(name)
        }

    def subscribe(self, name: str, handler: Handler) -> Handler:
        """Register an *intervention* handler for events named *name*.

        Intervention handlers run inline, may mutate the payload, and
        may raise — their exceptions propagate to the emitter (the
        fault injector depends on this).  Returns the handler
        (convenient for later :meth:`unsubscribe`).
        """
        with self._lock:
            self._handlers.setdefault(name, []).append(handler)
            self._rebuild_snapshot()
        return handler

    def subscribe_observer(self, name: str, handler: Handler) -> Handler:
        """Register an *observer* handler for events named *name*.

        Observers run after the intervention handlers; any exception
        they raise is swallowed and counted in :attr:`dropped_events`,
        so an observer bug can never abort or slow-path a sketch.
        """
        with self._lock:
            self._observers.setdefault(name, []).append(handler)
            self._rebuild_snapshot()
        return handler

    def unsubscribe(self, name: str, handler: Handler) -> None:
        """Remove a previously subscribed handler of either kind
        (no-op if absent)."""
        with self._lock:
            for table in (self._handlers, self._observers):
                handlers = table.get(name)
                if handlers and handler in handlers:
                    handlers.remove(handler)
            self._rebuild_snapshot()

    def has_subscribers(self, *names: str) -> bool:
        """True if any of *names* has at least one handler (of either
        kind)."""
        snapshot = self._snapshot
        return any(n in snapshot for n in names)

    def dropped_total(self) -> int:
        """Total observer exceptions swallowed across all event names."""
        with self._lock:
            return sum(self.dropped_events.values())

    def emit(self, name: str, **payload) -> Event:
        """Dispatch an event to its subscribers (in registration order).

        Returns the (possibly handler-mutated) :class:`Event` so emitters
        can read values subscribers handed back.  Intervention-handler
        exceptions propagate to the emitter — the guarded executor treats
        them as task failures, which is how injected faults enter the
        run.  Observer exceptions are swallowed and counted in
        :attr:`dropped_events`.
        """
        entry = self._snapshot.get(name)
        event = Event(name, payload)
        if entry is None:
            return event
        intervention, observers = entry
        for handler in intervention:
            handler(event)
        for handler in observers:
            try:
                handler(event)
            except Exception:  # noqa: BLE001 - observer isolation boundary
                with self._lock:
                    self.dropped_events[name] = \
                        self.dropped_events.get(name, 0) + 1
        return event
