"""Lightweight lifecycle-event bus for the plan/compile/execute stack.

Every layer of the runtime announces what it is doing through a shared
:class:`EventBus` instead of calling its observers directly: the engine
emits ``block_start``/``block_done`` around every kernel invocation,
``retry``/``degraded`` when the resilience machinery intervenes, and
``checkpoint_written`` after each durable snapshot; the runtime brackets
the whole run with ``plan_compiled`` and ``done``.  Anything that wants
to watch a run — :class:`~repro.parallel.resilience.RunHealth`
consumers, CLI progress output, tracing, the fault injector — subscribes
to the names it cares about and never has to be threaded through
executor internals.

The bus is deliberately tiny and synchronous:

* ``emit`` with zero subscribers is one dictionary lookup, so
  instrumenting the hot path costs nothing when nobody is listening;
* handlers run inline in the emitting thread and may *raise* — that is a
  feature, not a bug: the fault injector's ``task_start`` subscriber
  injects failures exactly this way;
* handlers may *mutate* the event's payload — the ``rng_request``
  subscriber swaps in a corrupted generator by assigning
  ``event["rng"]``.

Subscribing is thread-safe; emission takes a snapshot of the handler
list, so a handler registered mid-run sees only subsequent events.
"""

from __future__ import annotations

import threading
from typing import Callable

__all__ = [
    "Event",
    "EventBus",
    "PLAN_COMPILED",
    "BLOCK_START",
    "BLOCK_DONE",
    "TASK_START",
    "RNG_REQUEST",
    "BLOCK_COMPUTED",
    "CHECKPOINT_WRITTEN",
    "RETRY",
    "DEGRADED",
    "DONE",
    "LIFECYCLE_EVENTS",
]

#: Lifecycle events every run emits (in roughly this order).
PLAN_COMPILED = "plan_compiled"
BLOCK_START = "block_start"
BLOCK_DONE = "block_done"
CHECKPOINT_WRITTEN = "checkpoint_written"
RETRY = "retry"
DEGRADED = "degraded"
DONE = "done"

#: Interposition hooks: fired around each task attempt on the guarded
#: path so subscribers (the fault injector) can fail, delay, or corrupt
#: an attempt.  Payloads are mutable; ``rng_request`` handlers may
#: replace ``event["rng"]``.
TASK_START = "task_start"
RNG_REQUEST = "rng_request"
BLOCK_COMPUTED = "block_computed"

LIFECYCLE_EVENTS = (
    PLAN_COMPILED, BLOCK_START, BLOCK_DONE, CHECKPOINT_WRITTEN,
    RETRY, DEGRADED, DONE,
)

#: Hook events whose mere presence switches the engine onto the guarded
#: (per-task bookkeeping) path, exactly as passing ``injector=`` used to.
FAULT_HOOK_EVENTS = (TASK_START, RNG_REQUEST, BLOCK_COMPUTED)


class Event:
    """One emitted event: a name plus a mutable payload dict.

    Payload entries are exposed both as mapping items (``event["task"]``)
    and via :meth:`get`; handlers that need to hand a value back to the
    emitter (e.g. a replacement RNG) assign into the payload.
    """

    __slots__ = ("name", "payload")

    def __init__(self, name: str, payload: dict | None = None) -> None:
        self.name = name
        self.payload = payload if payload is not None else {}

    def __getitem__(self, key: str):
        return self.payload[key]

    def __setitem__(self, key: str, value) -> None:
        self.payload[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self.payload

    def get(self, key: str, default=None):
        return self.payload.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.name!r}, {self.payload!r})"


Handler = Callable[[Event], None]


class EventBus:
    """Synchronous publish/subscribe hub keyed by event name."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._handlers: dict[str, list[Handler]] = {}

    def subscribe(self, name: str, handler: Handler) -> Handler:
        """Register *handler* for events named *name*; returns the handler
        (convenient for later :meth:`unsubscribe`)."""
        with self._lock:
            self._handlers.setdefault(name, []).append(handler)
        return handler

    def unsubscribe(self, name: str, handler: Handler) -> None:
        """Remove a previously subscribed handler (no-op if absent)."""
        with self._lock:
            handlers = self._handlers.get(name)
            if handlers and handler in handlers:
                handlers.remove(handler)

    def has_subscribers(self, *names: str) -> bool:
        """True if any of *names* has at least one handler."""
        with self._lock:
            return any(self._handlers.get(n) for n in names)

    def emit(self, name: str, **payload) -> Event:
        """Dispatch an event to its subscribers (in registration order).

        Returns the (possibly handler-mutated) :class:`Event` so emitters
        can read values subscribers handed back.  Handler exceptions
        propagate to the emitter — the guarded executor treats them as
        task failures, which is how injected faults enter the run.
        """
        with self._lock:
            handlers = list(self._handlers.get(name, ()))
        event = Event(name, payload)
        for handler in handlers:
            handler(event)
        return event
