"""``SketchPlan`` — the immutable, serializable record of a sketching run.

The paper's whole design is a *planning* problem: pick a kernel
(Algorithm 3 vs 4), a blocking ``(b_d, b_n)``, an RNG family, and a
layout from the machine model (Section III, Eq. 4–7).  A
:class:`SketchPlan` is that decision record made explicit: everything
needed to execute — problem shape, ``d``, kernel, blocking, backend,
generator spec, resilience policy, persistence policy — plus a list of
:class:`PlanDecision` entries recording *why* each choice was made
(rendered by :meth:`SketchPlan.explain`).

Because a plan is a frozen dataclass with a JSON round trip
(:meth:`to_json` / :meth:`from_json`), it is the unit you can cache,
diff, ship to a worker, or replay: two runs of the same plan produce
bit-identical sketches (the property the golden-equivalence suite
asserts).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..errors import ConfigError
from ..parallel.procpool import WorkerPoolConfig
from ..parallel.resilience import DegradationPolicy, ResilienceConfig
from ..rng.base import SketchingRNG, make_rng
from ..rng.distributions import get_distribution
from ..utils.validation import check_choice, check_positive_int
from .policy import PersistencePolicy

__all__ = [
    "PLAN_FORMAT_VERSION",
    "PARTITION_STRATEGIES",
    "ProblemSpec",
    "RngSpec",
    "PlanDecision",
    "PartitionSpec",
    "ShardPlan",
    "SketchPlan",
    "compute_shards",
    "resilience_to_dict",
    "resilience_from_dict",
]

PLAN_FORMAT_VERSION = 1

_PLAN_KERNELS = ("algo3", "algo4", "pregen")
_DRIVERS = ("auto", "serial", "engine", "process")

#: Column-partition strategies for sharded execution.  All three produce
#: contiguous, ``b_n``-aligned column stripes (the invariant that makes
#: sharded output bit-identical to unsharded: both RNG families key
#: entries on ``(row-block offset, sparse row index)``, never on the
#: column offset, so any b_n-aligned column split realizes exactly the
#: same entries) — they differ in how the stripe boundaries are chosen:
#:
#: ``even``
#:     Equal number of column *blocks* per shard.
#: ``nnz_balanced``
#:     Contiguous split balancing stored nonzeros per shard — the
#:     sparsity-aware distribution of Hong et al. (arXiv 2408.14558),
#:     which balances kernel work when column mass is skewed.
#: ``propagation``
#:     Contiguous split balancing *merged output words* (columns) per
#:     shard — propagation blocking (Gu et al., arXiv 2002.11302): the
#:     merge stage is bandwidth-bound, so shards are sized by the words
#:     each one propagates into the final sketch, and partial results
#:     are always merged in ascending column order (the
#:     propagation-blocking sweep: sequential writes through the
#:     output).
PARTITION_STRATEGIES = ("even", "nnz_balanced", "propagation")


# -- resilience serialization ------------------------------------------------


def resilience_to_dict(cfg: ResilienceConfig | None) -> dict | None:
    """JSON-ready record of a :class:`ResilienceConfig` (or ``None``)."""
    if cfg is None:
        return None
    return {
        "max_retries": int(cfg.max_retries),
        "task_timeout": (None if cfg.task_timeout is None
                         else float(cfg.task_timeout)),
        "reexecute_stragglers": bool(cfg.reexecute_stragglers),
        "guardrail": cfg.guardrail,
        "guardrail_bound_factor": float(cfg.guardrail_bound_factor),
        "degradation": {
            "kernel_fallback": bool(cfg.degradation.kernel_fallback),
            "serial_fallback": bool(cfg.degradation.serial_fallback),
        },
        "retry_backoff": float(cfg.retry_backoff),
        "retry_backoff_factor": float(cfg.retry_backoff_factor),
        "retry_backoff_max": float(cfg.retry_backoff_max),
    }


def resilience_from_dict(data: dict | None) -> ResilienceConfig | None:
    """Inverse of :func:`resilience_to_dict`."""
    if data is None:
        return None
    deg = data.get("degradation", {})
    return ResilienceConfig(
        max_retries=int(data.get("max_retries", 2)),
        task_timeout=data.get("task_timeout"),
        reexecute_stragglers=bool(data.get("reexecute_stragglers", True)),
        guardrail=data.get("guardrail"),
        guardrail_bound_factor=float(data.get("guardrail_bound_factor", 4.0)),
        degradation=DegradationPolicy(
            kernel_fallback=bool(deg.get("kernel_fallback", True)),
            serial_fallback=bool(deg.get("serial_fallback", True)),
        ),
        retry_backoff=float(data.get("retry_backoff", 0.0)),
        retry_backoff_factor=float(data.get("retry_backoff_factor", 2.0)),
        retry_backoff_max=float(data.get("retry_backoff_max", 1.0)),
    )


# -- plan components ---------------------------------------------------------


@dataclass(frozen=True)
class ProblemSpec:
    """The input problem and the sketch size chosen for it.

    ``batch`` is the number of sketches computed in one pass (the
    batched multi-sketch tier); 1 — the default — is the classic single
    sketch.  A batched problem produces a ``(batch, d, n)`` output stack
    whose slice ``[t]`` is bit-identical to the single sketch seeded
    with the t-th entry of :attr:`RngSpec.batch_seeds`.
    """

    m: int                      # rows of A (columns of the implicit S)
    n: int                      # columns of A
    d: int                      # sketch size (rows of S)
    nnz: int | None = None      # nonzeros of A, when known at plan time
    gamma: float | None = None  # the multiplier d was derived from, if any
    batch: int = 1              # sketches computed per pass

    def __post_init__(self) -> None:
        check_positive_int(self.m, "m")
        check_positive_int(self.n, "n")
        check_positive_int(self.d, "d")
        check_positive_int(self.batch, "batch")

    @property
    def density(self) -> float | None:
        if self.nnz is None:
            return None
        return self.nnz / (self.m * self.n)

    def to_dict(self) -> dict:
        record = {"m": int(self.m), "n": int(self.n), "d": int(self.d),
                  "nnz": (None if self.nnz is None else int(self.nnz)),
                  "gamma": (None if self.gamma is None
                            else float(self.gamma))}
        # Only present when batched: single-sketch problems keep their
        # exact canonical JSON (and therefore their pinned digests).
        if self.batch != 1:
            record["batch"] = int(self.batch)
        return record

    @classmethod
    def from_dict(cls, data: dict) -> "ProblemSpec":
        return cls(m=int(data["m"]), n=int(data["n"]), d=int(data["d"]),
                   nnz=(None if data.get("nnz") is None
                        else int(data["nnz"])),
                   gamma=(None if data.get("gamma") is None
                          else float(data["gamma"])),
                   batch=int(data.get("batch", 1)))


@dataclass(frozen=True)
class RngSpec:
    """The generator recipe: family, seed, entry distribution, scaling.

    ``batch_seeds`` carries the per-sketch seeds of a batched plan
    (``ProblemSpec.batch > 1``); each sketch in the stack is generated
    exactly as if ``seed`` had been that entry.  ``None`` — the default
    — is the single-sketch recipe using ``seed``.
    """

    kind: str = "xoshiro"
    seed: int = 0
    distribution: str = "uniform"
    normalize: bool = False
    batch_seeds: tuple | None = None

    def __post_init__(self) -> None:
        get_distribution(self.distribution)  # validates the name
        if self.batch_seeds is not None:
            seeds = tuple(int(s) for s in self.batch_seeds)
            if not seeds:
                raise ConfigError("batch_seeds must be non-empty when set")
            object.__setattr__(self, "batch_seeds", seeds)

    def build(self, worker: int = 0) -> SketchingRNG:
        """Instantiate the generator (fresh counters per call; *worker*
        exists for factory-signature compatibility and is unused — both
        families key output on coordinates, never on the worker)."""
        return make_rng(self.kind, self.seed, self.distribution)

    def build_batched(self, worker: int = 0) -> "BatchedSketchRNG":
        """Instantiate the stacked generator for a batched plan.

        One member per entry of ``batch_seeds`` (falling back to a
        batch of one over ``seed``); each member is exactly what
        :meth:`build` would produce for that seed.
        """
        from ..rng.batched import BatchedSketchRNG

        seeds = self.batch_seeds if self.batch_seeds is not None \
            else (self.seed,)
        return BatchedSketchRNG(
            [make_rng(self.kind, s, self.distribution) for s in seeds])

    def normalization(self, d: int) -> float:
        """The ``1/sqrt(d * var)`` isometry factor (1.0 when disabled)."""
        if not self.normalize:
            return 1.0
        return get_distribution(self.distribution).normalization(d)

    def to_dict(self) -> dict:
        record = {"kind": self.kind, "seed": int(self.seed),
                  "distribution": self.distribution,
                  "normalize": bool(self.normalize)}
        # Only present when set, keeping single-sketch digests pinned.
        if self.batch_seeds is not None:
            record["batch_seeds"] = [int(s) for s in self.batch_seeds]
        return record

    @classmethod
    def from_dict(cls, data: dict) -> "RngSpec":
        return cls(kind=data.get("kind", "xoshiro"),
                   seed=int(data.get("seed", 0)),
                   distribution=data.get("distribution", "uniform"),
                   normalize=bool(data.get("normalize", False)),
                   batch_seeds=(None if data.get("batch_seeds") is None
                                else tuple(int(s)
                                           for s in data["batch_seeds"])))


@dataclass(frozen=True)
class PlanDecision:
    """One planning choice and the reason it was made."""

    field: str        # which plan field this decision set
    value: str        # human-readable rendering of the chosen value
    reason: str       # why (model rule, user override, heuristic)
    data: dict = dataclasses.field(default_factory=dict)  # model numbers

    def to_dict(self) -> dict:
        return {"field": self.field, "value": self.value,
                "reason": self.reason, "data": dict(self.data)}

    @classmethod
    def from_dict(cls, data: dict) -> "PlanDecision":
        return cls(field=data["field"], value=data["value"],
                   reason=data.get("reason", ""),
                   data=dict(data.get("data", {})))


# -- partitioning ------------------------------------------------------------


@dataclass(frozen=True)
class PartitionSpec:
    """How a plan's column space is sharded across task groups.

    Attributes
    ----------
    shards:
        Requested shard count (the runtime caps it at the number of
        column blocks, so tiny problems never get empty shards).
    strategy:
        One of :data:`PARTITION_STRATEGIES`.
    """

    shards: int
    strategy: str = "even"

    def __post_init__(self) -> None:
        check_positive_int(self.shards, "shards")
        check_choice(self.strategy, "partition strategy",
                     PARTITION_STRATEGIES)

    def to_dict(self) -> dict:
        return {"shards": int(self.shards), "strategy": self.strategy}

    @classmethod
    def from_dict(cls, data: dict) -> "PartitionSpec":
        return cls(shards=int(data.get("shards", 1)),
                   strategy=data.get("strategy", "even"))


@dataclass(frozen=True)
class ShardPlan:
    """One shard's identity inside a partitioned run.

    A shard owns the contiguous, ``b_n``-aligned global column range
    ``[col_start, col_stop)`` of the input (and therefore the same
    column stripe of the output sketch).  Sub-plans carry their
    ``ShardPlan`` so every downstream layer — process-pool workers,
    checkpoint fingerprints, warm-pool keys — knows which stripe it is
    computing.
    """

    index: int          # shard ordinal, 0-based
    shards: int         # total shard count in this partition
    col_start: int      # inclusive global column offset
    col_stop: int       # exclusive global column offset
    nnz: int | None = None  # stored entries inside the stripe, when known

    def __post_init__(self) -> None:
        check_positive_int(self.shards, "shards")
        if not 0 <= self.index < self.shards:
            raise ConfigError(
                f"shard index {self.index} out of range for "
                f"{self.shards} shard(s)")
        if not 0 <= self.col_start < self.col_stop:
            raise ConfigError(
                f"shard column range [{self.col_start}, {self.col_stop}) "
                f"is empty or negative")

    @property
    def ncols(self) -> int:
        """Stripe width in columns."""
        return self.col_stop - self.col_start

    def to_dict(self) -> dict:
        return {"index": int(self.index), "shards": int(self.shards),
                "col_start": int(self.col_start),
                "col_stop": int(self.col_stop),
                "nnz": (None if self.nnz is None else int(self.nnz))}

    @classmethod
    def from_dict(cls, data: dict) -> "ShardPlan":
        return cls(index=int(data["index"]), shards=int(data["shards"]),
                   col_start=int(data["col_start"]),
                   col_stop=int(data["col_stop"]),
                   nnz=(None if data.get("nnz") is None
                        else int(data["nnz"])))


def compute_shards(spec: "PartitionSpec", *, n: int, b_n: int,
                   col_nnz=None) -> tuple["ShardPlan", ...]:
    """Resolve a :class:`PartitionSpec` into concrete column stripes.

    Every strategy cuts at column-block boundaries (multiples of *b_n*),
    so within-shard blocking coincides exactly with the unsharded
    blocking and the sharded run realizes identical RNG entries.  The
    requested shard count is capped at the number of column blocks.

    Parameters
    ----------
    n, b_n:
        Global column count and the plan's column blocking.
    col_nnz:
        Per-column stored-entry counts (``A.col_nnz()``); required for
        the ``nnz_balanced`` strategy, used to annotate shard ``nnz``
        for the others when provided.
    """
    check_positive_int(n, "n")
    check_positive_int(b_n, "b_n")
    n_blocks = (n + b_n - 1) // b_n
    shards = min(spec.shards, n_blocks)
    block_cols = [min(b_n, n - b * b_n) for b in range(n_blocks)]
    block_nnz = None
    if col_nnz is not None:
        counts = [int(c) for c in col_nnz]
        if len(counts) != n:
            raise ConfigError(
                f"col_nnz has {len(counts)} entries, expected n={n}")
        block_nnz = [sum(counts[b * b_n:b * b_n + block_cols[b]])
                     for b in range(n_blocks)]
    if spec.strategy == "even":
        weights = [1] * n_blocks
    elif spec.strategy == "propagation":
        # Balance the words each shard propagates into the output: the
        # merge sweep is bandwidth-bound, so weight = stripe columns.
        weights = block_cols
    else:  # nnz_balanced
        if block_nnz is None:
            raise ConfigError(
                "the 'nnz_balanced' partition strategy requires per-column "
                "nonzero counts (pass col_nnz=A.col_nnz())")
        # Guard the all-empty degenerate case: fall back to even blocks.
        weights = block_nnz if sum(block_nnz) > 0 else [1] * n_blocks
    total = float(sum(weights))
    plans = []
    block = 0
    acc = 0.0
    for s in range(shards):
        start_block = block
        if s == shards - 1:
            # The final shard owns every remaining block unconditionally.
            # The quantile loop below stops as soon as the cumulative
            # weight reaches the total, which strands trailing
            # zero-weight blocks (e.g. empty trailing columns under
            # ``nnz_balanced``) outside every stripe — the stripes must
            # cover [0, n) exactly regardless of the weight profile.
            block = n_blocks
        else:
            target = total * (s + 1) / shards
            # Take blocks until the cumulative weight reaches this
            # shard's quantile, but always leave one block per remaining
            # shard.
            while block < n_blocks - (shards - s - 1):
                acc += weights[block]
                block += 1
                if acc >= target - 1e-9 and block > start_block:
                    break
            if block == start_block:  # forced minimum of one block
                acc += weights[block]
                block += 1
        c0 = start_block * b_n
        c1 = min(n, block * b_n)
        nnz = (None if block_nnz is None
               else sum(block_nnz[start_block:block]))
        plans.append(ShardPlan(index=s, shards=shards, col_start=c0,
                               col_stop=c1, nnz=nnz))
    if plans[-1].col_stop != n:
        raise ConfigError(
            f"internal error: shard stripes cover "
            f"[0, {plans[-1].col_stop}) but n={n}; please report this "
            f"(spec={spec!r}, b_n={b_n})")
    return tuple(plans)


# -- the plan ---------------------------------------------------------------


@dataclass(frozen=True)
class SketchPlan:
    """The full decision record for one sketching run.

    Attributes
    ----------
    problem:
        Shape/size of the input and the chosen sketch size ``d``.
    kernel:
        ``"algo3"``, ``"algo4"``, or ``"pregen"`` — resolved, never
        ``"auto"`` (resolution is the planner's job).
    b_d, b_n:
        The Algorithm 1 blocking.
    backend:
        Resolved kernel-backend name (``"numpy"``/``"numba"``).
    rng:
        Generator recipe (family, seed, distribution, normalization).
    threads, strategy:
        Executor parallelism and task-partitioning strategy.
    driver:
        Execution driver: ``"auto"`` (runtime picks serial vs engine
        from the plan), ``"serial"`` (single-pass blocked loop),
        ``"engine"`` (the resilient block executor, any thread count),
        or ``"process"`` (the supervised multi-process pool of
        :mod:`repro.parallel.procpool`).
    resilience:
        Fault-handling policy, or ``None`` for the fast path.
    persistence:
        Durable-checkpoint policy (see :class:`PersistencePolicy`).
    pool:
        Worker-fleet supervision policy for the ``process`` driver
        (see :class:`~repro.parallel.procpool.WorkerPoolConfig`);
        ``None`` everywhere else (a default config is synthesized when
        the driver is ``"process"``).
    partition:
        Column-partition request (see :class:`PartitionSpec`); ``None``
        for an unsharded run.  The runtime resolves it into per-shard
        sub-plans via :func:`compute_shards`.
    shard:
        Set only on runtime-derived per-shard sub-plans: this plan's
        stripe identity (see :class:`ShardPlan`).  Mutually exclusive
        with ``partition``.
    decisions:
        Why each choice was made; rendered by :meth:`explain`.
    """

    problem: ProblemSpec
    kernel: str
    b_d: int
    b_n: int
    backend: str = "numpy"
    rng: RngSpec = RngSpec()
    threads: int = 1
    strategy: str = "static"
    driver: str = "auto"
    resilience: ResilienceConfig | None = None
    persistence: PersistencePolicy = field(default_factory=PersistencePolicy)
    pool: WorkerPoolConfig | None = None
    partition: "PartitionSpec | None" = None
    shard: "ShardPlan | None" = None
    decisions: tuple = ()

    def __post_init__(self) -> None:
        check_choice(self.kernel, "kernel", _PLAN_KERNELS)
        check_choice(self.driver, "driver", _DRIVERS)
        check_positive_int(self.b_d, "b_d")
        check_positive_int(self.b_n, "b_n")
        check_positive_int(self.threads, "threads")
        if self.kernel == "pregen" and self.persistence.enabled:
            raise ConfigError(
                "checkpointing is not supported for the 'pregen' kernel"
            )
        if self.problem.batch > 1:
            if self.kernel == "pregen":
                raise ConfigError(
                    "batched execution is not supported for the 'pregen' "
                    "kernel (it materializes a single explicit S)"
                )
            if self.persistence.enabled:
                raise ConfigError(
                    "checkpointing is not supported for batched plans "
                    "(snapshots record a single (d, n) sketch)"
                )
            if self.rng.batch_seeds is None:
                raise ConfigError(
                    f"a batched plan (batch={self.problem.batch}) needs "
                    f"rng.batch_seeds with one seed per sketch"
                )
            if len(self.rng.batch_seeds) != self.problem.batch:
                raise ConfigError(
                    f"rng.batch_seeds has {len(self.rng.batch_seeds)} "
                    f"seed(s) but problem.batch={self.problem.batch}"
                )
        elif self.rng.batch_seeds is not None:
            raise ConfigError(
                "rng.batch_seeds is set but problem.batch is 1; batched "
                "recipes must declare the batch axis on the problem"
            )
        if self.partition is not None:
            if not isinstance(self.partition, PartitionSpec):
                raise ConfigError(
                    f"partition must be a PartitionSpec or None, got "
                    f"{type(self.partition).__name__}"
                )
            if self.kernel == "pregen":
                raise ConfigError(
                    "sharded execution is not supported for the 'pregen' "
                    "kernel (it has no column-block structure to partition)"
                )
        if self.shard is not None:
            if not isinstance(self.shard, ShardPlan):
                raise ConfigError(
                    f"shard must be a ShardPlan or None, got "
                    f"{type(self.shard).__name__}"
                )
            if self.partition is not None:
                raise ConfigError(
                    "a plan cannot carry both a partition request and a "
                    "shard identity (sub-plans drop the partition)"
                )
            if self.shard.ncols != self.problem.n:
                raise ConfigError(
                    f"shard covers {self.shard.ncols} column(s) but the "
                    f"plan's problem has n={self.problem.n}"
                )
        if self.resilience is not None and \
                not isinstance(self.resilience, ResilienceConfig):
            raise ConfigError(
                f"resilience must be a ResilienceConfig or None, got "
                f"{type(self.resilience).__name__}"
            )
        if self.pool is not None and \
                not isinstance(self.pool, WorkerPoolConfig):
            raise ConfigError(
                f"pool must be a WorkerPoolConfig or None, got "
                f"{type(self.pool).__name__}"
            )
        if self.driver == "process" and self.pool is None:
            object.__setattr__(self, "pool", WorkerPoolConfig())
        object.__setattr__(self, "decisions", tuple(self.decisions))

    # -- execution hooks -----------------------------------------------------

    def rng_factory(self) -> Callable[[int], SketchingRNG]:
        """The worker-indexed generator factory the runtime executes with.

        Batched plans return the :meth:`RngSpec.build_batched` factory:
        each call yields a fresh
        :class:`~repro.rng.batched.BatchedSketchRNG` whose members map
        1:1 onto ``rng.batch_seeds``.
        """
        if self.problem.batch > 1:
            return self.rng.build_batched
        return self.rng.build

    def scale(self) -> float:
        """Normalization factor applied to the finished sketch."""
        return self.rng.normalization(self.problem.d)

    def fingerprint(self, mode: str = "blocked") -> dict:
        """Immutable run identity for checkpoint compatibility checks.

        Per-shard sub-plans extend the base fingerprint with their
        global column range, so two shards of equal width can never
        adopt each other's snapshots.
        """
        from ..persist.snapshot import run_fingerprint

        fp = run_fingerprint(
            mode=mode, d=self.problem.d, n=self.problem.n,
            b_d=self.b_d, b_n=self.b_n, kernel=self.kernel,
            backend=self.backend, rng_kind=self.rng.kind,
            seed=self.rng.seed, distribution=self.rng.distribution,
        )
        if self.shard is not None:
            fp["shard_col_start"] = int(self.shard.col_start)
            fp["shard_col_stop"] = int(self.shard.col_stop)
        if self.problem.batch != 1:
            fp["batch"] = int(self.problem.batch)
            fp["batch_seeds"] = [int(s) for s in self.rng.batch_seeds]
        return fp

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        record = {
            "version": PLAN_FORMAT_VERSION,
            "problem": self.problem.to_dict(),
            "kernel": self.kernel,
            "b_d": int(self.b_d),
            "b_n": int(self.b_n),
            "backend": self.backend,
            "rng": self.rng.to_dict(),
            "threads": int(self.threads),
            "strategy": self.strategy,
            "driver": self.driver,
            "resilience": resilience_to_dict(self.resilience),
            "persistence": self.persistence.to_dict(),
            "pool": (None if self.pool is None else self.pool.to_dict()),
            "decisions": [d.to_dict() for d in self.decisions],
        }
        # Only present when set: pre-partition plans keep their exact
        # canonical JSON (and therefore their pinned digests).
        if self.partition is not None:
            record["partition"] = self.partition.to_dict()
        if self.shard is not None:
            record["shard"] = self.shard.to_dict()
        return record

    @classmethod
    def from_dict(cls, data: dict) -> "SketchPlan":
        version = int(data.get("version", PLAN_FORMAT_VERSION))
        if version > PLAN_FORMAT_VERSION:
            raise ConfigError(
                f"plan format version {version} is newer than this library "
                f"understands (max {PLAN_FORMAT_VERSION})"
            )
        return cls(
            problem=ProblemSpec.from_dict(data["problem"]),
            kernel=data["kernel"],
            b_d=int(data["b_d"]),
            b_n=int(data["b_n"]),
            backend=data.get("backend", "numpy"),
            rng=RngSpec.from_dict(data.get("rng", {})),
            threads=int(data.get("threads", 1)),
            strategy=data.get("strategy", "static"),
            driver=data.get("driver", "auto"),
            resilience=resilience_from_dict(data.get("resilience")),
            persistence=PersistencePolicy.from_dict(
                data.get("persistence", {})),
            pool=(None if data.get("pool") is None
                  else WorkerPoolConfig.from_dict(data["pool"])),
            partition=(None if data.get("partition") is None
                       else PartitionSpec.from_dict(data["partition"])),
            shard=(None if data.get("shard") is None
                   else ShardPlan.from_dict(data["shard"])),
            decisions=tuple(PlanDecision.from_dict(d)
                            for d in data.get("decisions", ())),
        )

    def to_json(self, path: str | Path | None = None, *, indent: int = 2) -> str:
        """Serialize to JSON; optionally also write the text to *path*.

        The rendering is canonical: keys are sorted and floats use
        Python's shortest-round-trip ``repr``, so two processes
        serializing equal plans produce byte-identical text (modulo the
        *indent* choice — :meth:`digest` always hashes the compact
        form).
        """
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True,
                          allow_nan=False)
        if path is not None:
            Path(path).write_text(text + "\n", encoding="utf-8")
        return text

    def digest(self) -> str:
        """SHA-256 over the plan's canonical compact JSON record.

        Deterministic across processes and hosts for equal plans — the
        identity the artifact cache and any external plan registry can
        address a compiled plan by.  The ``decisions`` audit trail is
        excluded: it is provenance, not behaviour, and a warm compile
        (which annotates its decisions with cache hits) must digest
        identically to the cold compile it reproduces bit-for-bit.
        """
        from ..utils.canonical import canonical_digest

        record = self.to_dict()
        record.pop("decisions", None)
        return canonical_digest(record)

    @classmethod
    def from_json(cls, source: str | Path) -> "SketchPlan":
        """Deserialize from a JSON string or a path to a JSON file."""
        if isinstance(source, Path) or (
                isinstance(source, str) and "\n" not in source
                and not source.lstrip().startswith("{")):
            text = Path(source).read_text(encoding="utf-8")
        else:
            text = str(source)
        return cls.from_dict(json.loads(text))

    # -- presentation --------------------------------------------------------

    def explain(self) -> str:
        """Render the plan and the reasoning behind every choice."""
        p = self.problem
        nnz = "?" if p.nnz is None else f"{p.nnz}"
        dens = "" if p.density is None else f", density {p.density:.2e}"
        gamma = "" if p.gamma is None else f" (gamma={p.gamma:g})"
        lines = [
            f"SketchPlan: {p.m} x {p.n} sparse input (nnz={nnz}{dens}) "
            f"-> {p.d} x {p.n} sketch, d={p.d}{gamma}",
            f"  kernel      : {self.kernel}",
            f"  blocking    : b_d={self.b_d}, b_n={self.b_n}",
            f"  backend     : {self.backend}",
            f"  rng         : {self.rng.kind} "
            + (f"batch_seeds={list(self.rng.batch_seeds)} "
               if self.rng.batch_seeds is not None
               else f"seed={self.rng.seed} ")
            + f"{self.rng.distribution}"
            f"{' (normalized)' if self.rng.normalize else ''}",
            f"  execution   : driver={self.driver}, threads={self.threads}, "
            f"strategy={self.strategy}",
            f"  resilience  : "
            + ("off" if self.resilience is None else
               f"max_retries={self.resilience.max_retries}, "
               f"timeout={self.resilience.task_timeout}, "
               f"guardrail={self.resilience.guardrail}"),
            f"  persistence : "
            + ("off" if not self.persistence.enabled else
               f"dir={self.persistence.to_dict()['checkpoint_dir']}, "
               f"every={self.persistence.every}, "
               f"keep={self.persistence.keep}, "
               f"resume={self.persistence.resume}"),
        ]
        if self.problem.batch != 1:
            lines.append(
                f"  batch       : {self.problem.batch} sketches per pass "
                f"(one per batch seed)")
        if self.pool is not None:
            lines.append(
                f"  pool        : workers={self.pool.workers}, "
                f"heartbeat={self.pool.heartbeat_timeout:g}s, "
                f"max_requeues={self.pool.max_requeues}, "
                f"max_respawns={self.pool.max_respawns}")
        if self.partition is not None:
            lines.append(
                f"  partition   : shards={self.partition.shards}, "
                f"strategy={self.partition.strategy}")
        if self.shard is not None:
            lines.append(
                f"  shard       : {self.shard.index + 1}/{self.shard.shards}"
                f", columns [{self.shard.col_start}, {self.shard.col_stop})")
        if self.decisions:
            lines.append("decisions:")
            for dec in self.decisions:
                lines.append(f"  - {dec.field} = {dec.value}: {dec.reason}")
                if dec.data:
                    detail = ", ".join(
                        f"{k}={_fmt(v)}" for k, v in sorted(dec.data.items()))
                    lines.append(f"      [{detail}]")
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
