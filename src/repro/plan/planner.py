"""The planner: compile a :class:`~repro.plan.SketchPlan` from a config.

Before this layer existed, the choice of kernel lived in
``kernels/dispatch.choose_kernel``, the blocking defaults in
``kernels/blocking.default_block_sizes`` (with a second, divergent copy
of the defaults inside the executor), the model-derived blocking in
``model/blocksize.recommend_block_sizes``, the empirical search in
``kernels/autotune``, and the sketch-size arithmetic in ``core/config``
— and each execution path re-assembled a different subset of them.  The
:class:`Planner` consolidates all of it behind one call::

    plan = Planner(machine).compile(A, config, gamma=3.0)
    print(plan.explain())          # why each choice was made
    result = Runtime().run(plan, A)

Every decision is recorded as a :class:`~repro.plan.PlanDecision`,
including the Section III (Eq. 4) computational-intensity numbers the
machine model produced for this problem's density, so
``plan.explain()`` answers "why this kernel / this blocking" with the
paper's own quantities.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..core.config import SketchConfig
from ..errors import ConfigError
from ..kernels.blocking import default_block_sizes
from ..kernels.dispatch import choose_kernel
from ..model.machine import LAPTOP, MachineModel
from ..utils.validation import check_choice, check_positive_int
from .policy import PersistencePolicy
from .spec import (
    PartitionSpec,
    PlanDecision,
    ProblemSpec,
    RngSpec,
    SketchPlan,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..cache.policy import CachePolicy
    from ..cache.store import ArtifactCache
    from ..parallel.procpool import WorkerPoolConfig
    from ..sparse.csc import CSCMatrix

__all__ = ["Planner", "compile_plan"]

_TUNE_MODES = ("model", "measure")


class Planner:
    """Compiles :class:`SketchPlan` objects for a machine model.

    Parameters
    ----------
    machine:
        The :class:`~repro.model.MachineModel` that drives kernel
        dispatch and blocking (default: the conservative ``LAPTOP``).
    tune:
        ``"model"`` (default) sizes blocks from the cache heuristic and
        reports the Eq. 4 model numbers; ``"measure"`` additionally runs
        the empirical autotuner on a column slice and adopts the
        measured winner (slower to plan, faster to run).
    """

    def __init__(self, machine: MachineModel | None = None, *,
                 tune: str = "model") -> None:
        self.machine = machine if machine is not None else LAPTOP
        check_choice(tune, "tune", _TUNE_MODES)
        self.tune = tune

    # -- sketch-size resolution ---------------------------------------------

    def _resolve_d(self, n: int, cfg: SketchConfig, d: int | None,
                   gamma: float | None) -> tuple[int, float | None]:
        if gamma is not None and d is not None:
            raise ConfigError("pass at most one of gamma / d")
        if gamma is not None:
            if gamma <= 1.0:
                raise ConfigError(f"gamma must exceed 1, got {gamma}")
            return int(math.ceil(gamma * n)), float(gamma)
        if d is not None:
            return check_positive_int(d, "d"), None
        return cfg.sketch_size(n), float(cfg.gamma)

    # -- the compile step ----------------------------------------------------

    def compile(self, A: "CSCMatrix", config: SketchConfig | None = None, *,
                d: int | None = None, gamma: float | None = None,
                persistence: PersistencePolicy | None = None,
                driver: str = "auto",
                pool: "WorkerPoolConfig | None" = None,
                partition: "PartitionSpec | int | None" = None,
                batch_seeds=None,
                cache: "ArtifactCache | CachePolicy | None" = None
                ) -> SketchPlan:
        """Compile the full decision record for sketching *A*.

        Exactly one of *gamma* / *d* may override the config's sizing
        (same contract as :func:`repro.sketch`).  *persistence* attaches
        a durable-checkpoint policy; *driver* pins the execution driver
        (``"auto"`` lets the runtime choose serial vs engine); *pool*
        configures the supervised worker pool when ``driver="process"``
        (a default :class:`~repro.parallel.WorkerPoolConfig` is
        synthesized when omitted).  *partition* requests sharded
        execution: a :class:`~repro.plan.PartitionSpec` (or a bare shard
        count, which selects the ``even`` strategy) that the runtime
        resolves into per-shard sub-plans; every strategy produces a
        sketch bit-identical to the unsharded run.  *batch_seeds* (a
        sequence of per-sketch seeds) compiles a *batched* plan: the run
        produces a ``(len(batch_seeds), d, n)`` stack whose slice ``[t]``
        is bit-identical to the single-sketch plan seeded with
        ``batch_seeds[t]`` — the multi-sketch tier that amortizes the
        RNG pipeline across the batch (a single seed degenerates to the
        classic plan with that seed).  *cache* (an
        :class:`~repro.cache.ArtifactCache` or
        :class:`~repro.cache.CachePolicy`) memoizes the expensive
        planning steps — the kernel-dispatch pattern scan and the
        ``tune="measure"`` autotune trials — keyed by ``A``'s sparsity
        pattern, the machine profile, and the backend; the compiled plan
        itself does not record the cache (outputs are identical either
        way).
        """
        from ..kernels.backends import resolve_backend

        cfg = config if config is not None else SketchConfig()
        m, n = A.shape
        check_positive_int(m, "m")
        check_positive_int(n, "n")
        d_eff, gamma_used = self._resolve_d(n, cfg, d, gamma)
        decisions: list[PlanDecision] = []
        if cache is not None:
            from ..cache.store import ArtifactCache

            cache = ArtifactCache.ensure(cache)

        decisions.append(PlanDecision(
            field="d", value=str(d_eff),
            reason=(f"d = ceil(gamma * n) with gamma={gamma_used:g}"
                    if gamma_used is not None else "explicit d override"),
            data={"n": n, "gamma": gamma_used} if gamma_used is not None
            else {"n": n},
        ))

        # Kernel: user override, else the Section II-B / Table VI dispatch
        # (its O(nnz) pattern scan is memoized in the artifact cache).
        if cfg.kernel != "auto":
            kernel = cfg.kernel
            decisions.append(PlanDecision(
                field="kernel", value=kernel,
                reason="forced by SketchConfig.kernel"))
        else:
            choice = None
            choice_key = None
            backend_name = resolve_backend(cfg.backend).name
            if cache is not None:
                from ..cache.artifacts import fetch_kernel_choice, \
                    kernel_choice_key

                choice_key = kernel_choice_key(
                    A, backend=backend_name, concentration_threshold=0.5,
                    machine=self.machine)
                choice = fetch_kernel_choice(cache, choice_key)
            cached_choice = choice is not None
            if choice is None:
                choice = choose_kernel(self.machine, A, backend=cfg.backend)
                if cache is not None:
                    from ..cache.artifacts import store_kernel_choice

                    store_kernel_choice(cache, choice_key, choice)
            kernel = choice.kernel
            decisions.append(PlanDecision(
                field="kernel", value=kernel, reason=choice.reason,
                data={
                    "column_concentration": choice.column_concentration,
                    "machine_favors_reuse": choice.machine_favors_reuse,
                    "machine": self.machine.name,
                    **({"cache": "hit"} if cached_choice else {}),
                }))

        # Backend: resolve once, record requested vs. resolved.
        backend = resolve_backend(cfg.backend)
        decisions.append(PlanDecision(
            field="backend", value=backend.name,
            reason=(f"requested {cfg.backend!r}"
                    + ("" if cfg.backend in (backend.name,)
                       else f", resolved to {backend.name!r}"))))

        # Blocking: cache heuristic -> model numbers -> explicit overrides
        # -> (optionally) the measured autotune winner.
        b_d, b_n = default_block_sizes(
            d_eff, n, cache_bytes=self.machine.cache_bytes,
            parallel=cfg.threads > 1)
        block_reason = (
            f"cache heuristic: output block sized to half of "
            f"{self.machine.name}'s {self.machine.cache_bytes} B cache"
            + (" (parallel shape: tall b_d, narrow b_n)"
               if cfg.threads > 1 else ""))
        block_data = self._model_numbers(A, cfg)
        if self.tune == "measure" and cfg.b_d is None and cfg.b_n is None \
                and kernel in ("algo3", "algo4"):
            from ..kernels.autotune import autotune_blocking

            probes_before = 0 if cache is None else cache.hit_total()
            tuned = autotune_blocking(
                A, d_eff, lambda: cfg.build_rng(), kernel=kernel,
                backend=backend, cache=cache)
            cached_tune = cache is not None and \
                cache.hit_total() > probes_before
            b_d, b_n = tuned.b_d, tuned.b_n
            block_reason = (
                f"autotuned on a column slice: "
                f"{tuned.seconds:.4f}s winning trial"
                + (" (cached tuning, zero probes this compile)"
                   if cached_tune else ""))
            block_data = {**block_data, "trials": len(tuned.trials),
                          **({"cache": "hit"} if cached_tune else {})}
        if cfg.b_d is not None:
            b_d = cfg.b_d
            block_reason += "; b_d overridden by config"
        if cfg.b_n is not None:
            b_n = cfg.b_n
            block_reason += "; b_n overridden by config"
        decisions.append(PlanDecision(
            field="blocking", value=f"(b_d={b_d}, b_n={b_n})",
            reason=block_reason, data=block_data))

        # RNG: straight from the config (already validated there).
        decisions.append(PlanDecision(
            field="rng",
            value=f"{cfg.rng_kind} seed={cfg.seed} {cfg.distribution}",
            reason=("counter-based: fully reproducible across any blocking"
                    if cfg.rng_kind in ("philox", "threefry")
                    else "checkpointed: reproducible for this b_d grid")))

        # Batch: normalize the per-sketch seed list; a single seed is
        # the classic plan (batch axis elided, digest unchanged).
        batch = 1
        if batch_seeds is not None:
            seeds = tuple(int(s) for s in batch_seeds)
            if not seeds:
                raise ConfigError("batch_seeds must be non-empty when given")
            if len(seeds) == 1:
                batch_seeds = None
                decisions.append(PlanDecision(
                    field="batch", value="1",
                    reason="single batch seed: compiled as the classic "
                           "single-sketch plan with that seed",
                    data={"seed": seeds[0]}))
            else:
                batch = len(seeds)
                batch_seeds = seeds
                decisions.append(PlanDecision(
                    field="batch", value=str(batch),
                    reason=("multi-sketch tier: one pass generates all "
                            "sketches, amortizing the RNG pipeline and "
                            "block bookkeeping across the batch; each "
                            "slice is bit-identical to the single-sketch "
                            "run with its seed"),
                    data={"seeds": list(seeds)}))
            cfg_seed = seeds[0]
        else:
            cfg_seed = cfg.seed

        # Partition: normalize a bare shard count, record the strategy.
        if isinstance(partition, int):
            partition = PartitionSpec(shards=partition)
        if partition is not None and partition.shards > 1:
            n_blocks = (n + b_n - 1) // b_n
            decisions.append(PlanDecision(
                field="partition",
                value=f"{partition.shards} x {partition.strategy}",
                reason=("column stripes cut at b_n boundaries; "
                        "bit-identical to unsharded (RNG entries keyed on "
                        "(row block, sparse row), never the column offset)"),
                data={"n_blocks": n_blocks,
                      "effective_shards": min(partition.shards, n_blocks)}))
        elif partition is not None:
            partition = None  # one shard == unsharded; keep the plan exact

        pol = persistence if persistence is not None else PersistencePolicy()
        plan = SketchPlan(
            problem=ProblemSpec(m=m, n=n, d=d_eff, nnz=A.nnz,
                                gamma=gamma_used, batch=batch),
            kernel=kernel, b_d=b_d, b_n=b_n, backend=backend.name,
            rng=RngSpec(kind=cfg.rng_kind, seed=cfg_seed,
                        distribution=cfg.distribution,
                        normalize=cfg.normalize,
                        batch_seeds=batch_seeds),
            threads=cfg.threads, strategy="static", driver=driver,
            resilience=cfg.resilience, persistence=pol, pool=pool,
            partition=partition, decisions=tuple(decisions),
        )
        return plan

    def _model_numbers(self, A: "CSCMatrix", cfg: SketchConfig) -> dict:
        """The Eq. 4 quantities for this problem on this machine.

        Returns the density ``rho``, RNG cost ``h``, cache words ``M``,
        the model-optimal block column width and its computational
        intensity, and the machine balance ``B`` the CI is compared to.
        """
        rho = A.density
        if not (0.0 < rho <= 1.0):
            return {}
        from ..model.blocksize import optimize_blocks

        h = self.machine.h(cfg.distribution)
        M = self.machine.cache_words
        model = optimize_blocks(rho, M, h)
        return {
            "rho": rho, "h": h, "M_words": M,
            "model_n1": model.n1, "model_d1": model.d1,
            "model_ci": model.ci,
            "machine_balance": self.machine.machine_balance,
        }


def compile_plan(A: "CSCMatrix", config: SketchConfig | None = None, *,
                 machine: MachineModel | None = None,
                 d: int | None = None, gamma: float | None = None,
                 persistence: PersistencePolicy | None = None,
                 tune: str = "model", driver: str = "auto",
                 pool: "WorkerPoolConfig | None" = None,
                 partition: "PartitionSpec | int | None" = None,
                 batch_seeds=None,
                 cache: "ArtifactCache | CachePolicy | None" = None
                 ) -> SketchPlan:
    """One-call planning: ``compile_plan(A, cfg, gamma=3.0)``.

    Convenience wrapper over :class:`Planner` for callers that don't
    keep a planner around.
    """
    return Planner(machine, tune=tune).compile(
        A, config, d=d, gamma=gamma, persistence=persistence, driver=driver,
        pool=pool, partition=partition, batch_seeds=batch_seeds, cache=cache)
