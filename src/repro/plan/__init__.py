"""Plan/compile/execute: the decision layer above the sketching kernels.

Three pieces (see ``docs/architecture.md``):

* :class:`SketchPlan` — an immutable, JSON-serializable record of every
  decision a run needs (problem, ``d``, kernel, blocking, backend, RNG,
  resilience, persistence) plus the reasons behind each choice;
* :class:`Planner` / :func:`compile_plan` — compiles a plan from a
  :class:`~repro.core.SketchConfig` and a
  :class:`~repro.model.MachineModel`, consolidating the kernel dispatch,
  blocking heuristics, Eq. 4 model numbers, and autotuning in one place;
* :class:`Runtime` — executes a plan through pluggable drivers (serial /
  engine / pregen) and emits lifecycle events (``plan_compiled``,
  ``block_start``/``block_done``, ``checkpoint_written``, ``retry``,
  ``degraded``, ``done``) on an :class:`EventBus`.

``Planner`` and ``Runtime`` are loaded lazily to keep this package
importable from low-level modules without cycles.
"""

from .events import (
    BLOCK_COMPUTED,
    BLOCK_DONE,
    BLOCK_START,
    CACHE_EVICTED,
    CACHE_HIT,
    CACHE_MISS,
    CHECKPOINT_WRITTEN,
    DEGRADED,
    DONE,
    FAULT_HOOK_EVENTS,
    LIFECYCLE_EVENTS,
    PLAN_COMPILED,
    RETRY,
    RNG_REQUEST,
    SHARD_MERGED,
    SHARD_RESUMED,
    SHARD_START,
    TASK_REQUEUED,
    TASK_START,
    WORKER_LOST,
    WORKER_SPAWNED,
    Event,
    EventBus,
)
from .policy import PersistencePolicy
from .spec import (
    PARTITION_STRATEGIES,
    PLAN_FORMAT_VERSION,
    PartitionSpec,
    PlanDecision,
    ProblemSpec,
    RngSpec,
    ShardPlan,
    SketchPlan,
    compute_shards,
    resilience_from_dict,
    resilience_to_dict,
)

__all__ = [
    "Event",
    "EventBus",
    "PLAN_COMPILED",
    "BLOCK_START",
    "BLOCK_DONE",
    "TASK_START",
    "RNG_REQUEST",
    "BLOCK_COMPUTED",
    "CHECKPOINT_WRITTEN",
    "RETRY",
    "DEGRADED",
    "DONE",
    "WORKER_SPAWNED",
    "WORKER_LOST",
    "TASK_REQUEUED",
    "CACHE_HIT",
    "CACHE_MISS",
    "CACHE_EVICTED",
    "SHARD_START",
    "SHARD_MERGED",
    "SHARD_RESUMED",
    "LIFECYCLE_EVENTS",
    "FAULT_HOOK_EVENTS",
    "PersistencePolicy",
    "PLAN_FORMAT_VERSION",
    "PARTITION_STRATEGIES",
    "ProblemSpec",
    "RngSpec",
    "PlanDecision",
    "PartitionSpec",
    "ShardPlan",
    "compute_shards",
    "SketchPlan",
    "resilience_to_dict",
    "resilience_from_dict",
    "Planner",
    "compile_plan",
    "Runtime",
    "SketchResult",
    "register_driver",
    "available_drivers",
]

_LAZY = {
    "Planner": ("planner", "Planner"),
    "compile_plan": ("planner", "compile_plan"),
    "Runtime": ("runtime", "Runtime"),
    "SketchResult": ("runtime", "SketchResult"),
    "register_driver": ("runtime", "register_driver"),
    "available_drivers": ("runtime", "available_drivers"),
}


def __getattr__(name: str):
    # PEP 562 lazy loading: planner/runtime import core.config and the
    # executor, which import this package's low-level modules — loading
    # them eagerly here would cycle during ``import repro``.
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, attr)
    globals()[name] = value
    return value
