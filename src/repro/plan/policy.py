"""The persistence policy: one home for the checkpoint wiring.

Before the plan/compile/execute refactor, ``sketch()``,
``StreamingSketch``, and ``ResilientExecutor`` each re-implemented the
same four checkpoint knobs (``checkpoint`` vs ``checkpoint_dir`` mutual
exclusion, cadence, retention, resume-needs-a-directory) and each built
its own :class:`~repro.persist.CheckpointManager`.  A
:class:`PersistencePolicy` is that decision captured once: it validates
the combination a single time, serializes into the plan's JSON record,
and is the only code path that constructs the manager.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import ConfigError
from ..utils.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.injector import FaultInjector
    from ..persist.snapshot import CheckpointManager

__all__ = ["PersistencePolicy", "warn_deprecated_kwargs"]


def warn_deprecated_kwargs(entry: str, old: str, new: str) -> None:
    """Emit the standard shim warning for a superseded kwarg spelling."""
    warnings.warn(
        f"{entry}: the {old} kwarg(s) are deprecated; pass {new} instead",
        DeprecationWarning, stacklevel=3,
    )


@dataclass(frozen=True)
class PersistencePolicy:
    """Durable-checkpoint policy carried by a :class:`~repro.plan.SketchPlan`.

    Attributes
    ----------
    checkpoint_dir:
        Directory for atomic snapshots; ``None`` disables persistence.
    every:
        Snapshot cadence, in completed row blocks (blocked runs) or rows
        absorbed (streaming).
    keep:
        Retention: how many verified snapshots the manager keeps.
    resume:
        Restore the newest verified-good snapshot before computing the
        rest; requires a checkpoint target.
    manager:
        A ready :class:`~repro.persist.CheckpointManager` instead of a
        directory (mutually exclusive with *checkpoint_dir*; not part of
        the serialized record — its directory is recorded instead).
    """

    checkpoint_dir: str | None = None
    every: int = 1
    keep: int = 2
    resume: bool = False
    manager: "CheckpointManager | None" = field(
        default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.manager is not None and self.checkpoint_dir is not None:
            raise ConfigError("pass at most one of checkpoint / checkpoint_dir")
        check_positive_int(self.every, "checkpoint_every")
        check_positive_int(self.keep, "checkpoint_keep")
        if self.resume and not self.enabled:
            raise ConfigError("resume=True requires a checkpoint directory")

    @property
    def enabled(self) -> bool:
        """Whether this run persists snapshots at all."""
        return self.manager is not None or self.checkpoint_dir is not None

    def build_manager(self, injector: "FaultInjector | None" = None
                      ) -> "CheckpointManager | None":
        """The policy's manager: the supplied one, a fresh one, or ``None``.

        *injector* reaches the snapshot writer's storage-fault hooks
        (``torn_write`` / ``bitflip``); production callers pass ``None``.
        """
        if self.manager is not None:
            return self.manager
        if self.checkpoint_dir is None:
            return None
        from ..persist.snapshot import CheckpointManager

        return CheckpointManager(self.checkpoint_dir, keep=self.keep,
                                 injector=injector)

    # -- construction helpers ----------------------------------------------

    @classmethod
    def disabled(cls) -> "PersistencePolicy":
        """The no-persistence policy."""
        return cls()

    @classmethod
    def from_legacy(cls, *, checkpoint=None, checkpoint_dir=None,
                    checkpoint_every: int = 1, checkpoint_keep: int = 2,
                    resume: bool = False) -> "PersistencePolicy":
        """Map the pre-plan kwarg spellings onto a policy (shim helper)."""
        return cls(
            checkpoint_dir=(str(checkpoint_dir)
                            if checkpoint_dir is not None else None),
            every=checkpoint_every, keep=checkpoint_keep, resume=resume,
            manager=checkpoint,
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready record (a live manager is recorded by directory)."""
        directory = self.checkpoint_dir
        if directory is None and self.manager is not None:
            directory = str(getattr(self.manager, "directory", None))
        return {
            "checkpoint_dir": directory,
            "every": int(self.every),
            "keep": int(self.keep),
            "resume": bool(self.resume),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PersistencePolicy":
        return cls(
            checkpoint_dir=data.get("checkpoint_dir"),
            every=int(data.get("every", 1)),
            keep=int(data.get("keep", 2)),
            resume=bool(data.get("resume", False)),
        )
