"""repro — fast multiplication of random dense matrices with sparse matrices.

A from-scratch Python reproduction of the IPPS 2024 paper by Liang,
Murray, Buluc & Demmel: blocked sketching SpMM kernels with on-the-fly
random number generation (Algorithms 1/3/4), the counter-based and
checkpointed-XOR-shift generator families, the Section III roofline /
data-movement theory (including the sqrt(M) advantage over the GEMM
lower bound), the parallel-scaling model, and the sketch-and-precondition
least-squares pipeline with its LSQR-D and direct sparse QR baselines.

Quickstart::

    import repro

    A = repro.random_sparse(100_000, 1_000, 5e-4, seed=0)   # tall sparse
    result = repro.sketch(A, gamma=3.0)                      # Ahat = S A
    sol = repro.solve_sap(A, b)                              # least squares

Subpackages
-----------
``repro.sparse``   from-scratch COO/CSC/CSR/blocked-CSR + generators
``repro.rng``      Philox & xoshiro sketch generators, distributions
``repro.kernels``  Algorithms 1/3/4, loop-order variants, baselines
``repro.model``    roofline theory, block-size optimizer, cache simulator
``repro.parallel`` thread-pool executor, resilience policies, scaling model
``repro.faults``   deterministic fault-injection plans for robustness tests
``repro.plan``     SketchPlan / Planner / Runtime plan-compile-execute layer
``repro.cache``    content-addressed artifact cache for repeated-A sketching
``repro.core``     public sketch API and distortion diagnostics
``repro.lsq``      LSQR, preconditioners, SAP, direct sparse QR
``repro.workloads`` surrogate suites for the paper's test matrices
"""

from .cache import ArtifactCache, CachePolicy
from .core import (
    SketchConfig,
    SketchOperator,
    SketchResult,
    effective_distortion,
    predicted_condition_bound,
    predicted_distortion,
    sketch,
    sketch_distortion,
)
from .errors import (
    ConfigError,
    ConvergenceError,
    FormatError,
    ReproError,
    RetryExhaustedError,
    ShapeError,
    SingularMatrixError,
    SketchQualityError,
    TaskFailedError,
    TaskTimeoutError,
)
from .faults import FaultInjector, FaultPlan, FaultSpec, InjectedFaultError
from .kernels import KernelStats, choose_kernel, sketch_spmm
from .lsq import (
    LstsqSolution,
    error_metric,
    lsqr,
    solve_direct_qr,
    solve_lsqr_diag,
    solve_sap,
)
from .model import FRONTERA, LAPTOP, PERLMUTTER, MachineModel
from .plan import (
    EventBus,
    PersistencePolicy,
    Planner,
    Runtime,
    SketchPlan,
    compile_plan,
)
from .parallel import (
    DegradationPolicy,
    ResilienceConfig,
    ResilientExecutor,
    RunHealth,
    parallel_sketch_spmm,
)
from .rng import PhiloxSketchRNG, SketchingRNG, XoshiroSketchRNG, make_rng
from .sparse import (
    BlockedCSR,
    COOMatrix,
    CSCMatrix,
    CSRMatrix,
    csc_to_blocked_csr,
    random_sparse,
    read_matrix_market,
    write_matrix_market,
)

__version__ = "1.0.0"

__all__ = [
    "ArtifactCache",
    "CachePolicy",
    "SketchConfig",
    "SketchOperator",
    "SketchResult",
    "effective_distortion",
    "predicted_condition_bound",
    "predicted_distortion",
    "sketch",
    "sketch_distortion",
    "ConfigError",
    "ConvergenceError",
    "FormatError",
    "ReproError",
    "RetryExhaustedError",
    "ShapeError",
    "SingularMatrixError",
    "SketchQualityError",
    "TaskFailedError",
    "TaskTimeoutError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "KernelStats",
    "choose_kernel",
    "sketch_spmm",
    "LstsqSolution",
    "error_metric",
    "lsqr",
    "solve_direct_qr",
    "solve_lsqr_diag",
    "solve_sap",
    "FRONTERA",
    "LAPTOP",
    "PERLMUTTER",
    "MachineModel",
    "EventBus",
    "PersistencePolicy",
    "Planner",
    "Runtime",
    "SketchPlan",
    "compile_plan",
    "DegradationPolicy",
    "ResilienceConfig",
    "ResilientExecutor",
    "RunHealth",
    "parallel_sketch_spmm",
    "PhiloxSketchRNG",
    "SketchingRNG",
    "XoshiroSketchRNG",
    "make_rng",
    "BlockedCSR",
    "COOMatrix",
    "CSCMatrix",
    "CSRMatrix",
    "csc_to_blocked_csr",
    "random_sparse",
    "read_matrix_market",
    "write_matrix_market",
    "__version__",
]
