"""Atomic snapshot write/load, manifest verification, and retention."""

import json

import numpy as np
import pytest

from repro.errors import (
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointMismatchError,
)
from repro.persist import (
    MANIFEST_NAME,
    CheckpointManager,
    check_fingerprint,
    list_snapshots,
    load_snapshot,
    run_fingerprint,
    write_snapshot,
)


def _fp(**overrides):
    base = dict(mode="streaming", d=8, n=6, b_d=8, b_n=6, kernel="algo3",
                backend="numpy", rng_kind="philox", seed=7,
                distribution="uniform")
    base.update(overrides)
    return run_fingerprint(**base)


def _blocks(d=8, n=6, seed=0):
    rng = np.random.default_rng(seed)
    return [(0, rng.standard_normal((d, n)))]


class TestWriteLoad:
    def test_round_trip(self, tmp_path):
        blocks = _blocks()
        state = {"rows_seen": 12, "batches": [[0, 12]]}
        path = write_snapshot(tmp_path, 1, blocks, _fp(), state)
        snap = load_snapshot(path)
        assert snap.seq == 1
        assert snap.fingerprint == _fp()
        assert snap.state == state
        np.testing.assert_array_equal(snap.load_array(), blocks[0][1])

    def test_partial_blocks_fill_zeros(self, tmp_path):
        arr = np.ones((4, 6))
        path = write_snapshot(tmp_path, 1, [(4, arr)], _fp(), {})
        out = load_snapshot(path).load_array()
        assert out.shape == (8, 6)
        np.testing.assert_array_equal(out[:4], 0.0)
        np.testing.assert_array_equal(out[4:], arr)

    def test_refuses_existing_seq(self, tmp_path):
        write_snapshot(tmp_path, 3, _blocks(), _fp(), {})
        with pytest.raises(CheckpointError, match="already exists"):
            write_snapshot(tmp_path, 3, _blocks(), _fp(), {})

    def test_tmp_dirs_invisible_to_listing(self, tmp_path):
        write_snapshot(tmp_path, 1, _blocks(), _fp(), {})
        torn = tmp_path / ".snapshot-00000002.tmp-999"
        torn.mkdir()
        (torn / "block-r00000000.npy").write_bytes(b"garbage")
        assert [seq for seq, _ in list_snapshots(tmp_path)] == [1]


class TestDamageDetection:
    def test_torn_block_file_rejected(self, tmp_path):
        path = write_snapshot(tmp_path, 1, _blocks(), _fp(), {})
        bfile = next(path.glob("block-*.npy"))
        data = bfile.read_bytes()
        bfile.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointCorruptionError, match="torn write"):
            load_snapshot(path)

    def test_checksum_mismatch_rejected(self, tmp_path):
        path = write_snapshot(tmp_path, 1, _blocks(), _fp(), {})
        bfile = next(path.glob("block-*.npy"))
        data = bytearray(bfile.read_bytes())
        data[-1] ^= 0xFF  # same length, different content
        bfile.write_bytes(bytes(data))
        with pytest.raises(CheckpointCorruptionError, match="checksum mismatch"):
            load_snapshot(path)

    def test_torn_manifest_rejected(self, tmp_path):
        path = write_snapshot(tmp_path, 1, _blocks(), _fp(), {})
        mpath = path / MANIFEST_NAME
        mpath.write_text(mpath.read_text()[:40])
        with pytest.raises(CheckpointCorruptionError, match="JSON"):
            load_snapshot(path)

    def test_missing_manifest_key_rejected(self, tmp_path):
        path = write_snapshot(tmp_path, 1, _blocks(), _fp(), {})
        mpath = path / MANIFEST_NAME
        manifest = json.loads(mpath.read_text())
        del manifest["fingerprint"]
        mpath.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointCorruptionError, match="fingerprint"):
            load_snapshot(path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = write_snapshot(tmp_path, 1, _blocks(), _fp(), {})
        mpath = path / MANIFEST_NAME
        manifest = json.loads(mpath.read_text())
        manifest["version"] = 99
        mpath.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointCorruptionError, match="version"):
            load_snapshot(path)

    def test_unknown_checksum_algo_is_loud(self, tmp_path):
        path = write_snapshot(tmp_path, 1, _blocks(), _fp(), {})
        mpath = path / MANIFEST_NAME
        manifest = json.loads(mpath.read_text())
        manifest["checksum_algo"] = "no-such-algo"
        mpath.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError):
            load_snapshot(path)

    def test_shape_drift_rejected(self, tmp_path):
        path = write_snapshot(tmp_path, 1, _blocks(), _fp(), {})
        mpath = path / MANIFEST_NAME
        manifest = json.loads(mpath.read_text())
        manifest["blocks"][0]["rows"] = 5
        # keep nbytes/checksum honest so only the shape check can fire
        mpath.write_text(json.dumps(manifest))
        snap = load_snapshot(path, verify=False)
        with pytest.raises(CheckpointCorruptionError, match="shape"):
            snap.load_block(snap.manifest["blocks"][0], verify=False)


class TestFingerprint:
    def test_equal_passes(self):
        check_fingerprint(_fp(), _fp())

    def test_drift_reports_every_key(self):
        with pytest.raises(CheckpointMismatchError) as err:
            check_fingerprint(_fp(), _fp(seed=8, kernel="algo4"))
        assert "seed" in str(err.value)
        assert "kernel" in str(err.value)

    def test_partial_keys_ignore_unpinned_drift(self):
        check_fingerprint(_fp(), _fp(seed=8), keys=("kernel", "d"))
        with pytest.raises(CheckpointMismatchError):
            check_fingerprint(_fp(), _fp(seed=8), keys=("seed",))


class TestCheckpointManager:
    def test_sequencing_and_retention(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=2)
        for _ in range(4):
            mgr.save(_blocks(), _fp(), {})
        assert mgr.last_seq == 4
        assert mgr.snapshots_written == 4
        assert [seq for seq, _ in list_snapshots(tmp_path)] == [3, 4]

    def test_resumes_numbering_from_disk(self, tmp_path):
        CheckpointManager(tmp_path).save(_blocks(), _fp(), {})
        mgr2 = CheckpointManager(tmp_path)
        assert mgr2.last_seq == 1
        mgr2.save(_blocks(), _fp(), {})
        assert mgr2.last_seq == 2

    def test_damaged_leftover_cannot_collide(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=10)
        mgr.save(_blocks(), _fp(), {})
        # A crashed writer (or another process) left a higher-seq dir.
        leftover = tmp_path / "snapshot-00000005"
        leftover.mkdir()
        path = mgr.save(_blocks(), _fp(), {})
        assert path.name == "snapshot-00000006"

    def test_gcs_stale_tmp_dirs(self, tmp_path):
        torn = tmp_path / ".snapshot-00000001.tmp-12345"
        torn.mkdir(parents=True)
        CheckpointManager(tmp_path)
        assert not torn.exists()

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(CheckpointError, match="keep"):
            CheckpointManager(tmp_path, keep=0)
