"""Resuming streaming sketches from verified-good snapshots."""

import numpy as np
import pytest

from repro.core.streaming import StreamingSketch
from repro.errors import (
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointMismatchError,
)
from repro.persist import (
    latest_verified_snapshot,
    list_snapshots,
    resume_streaming,
    try_resume_streaming,
)
from repro.rng import make_rng
from repro.sparse import CSCMatrix, random_sparse


def _batches(A: CSCMatrix, size: int):
    dense = A.to_dense()
    return [CSCMatrix.from_dense(dense[s:s + size])
            for s in range(0, A.shape[0], size)]


@pytest.fixture
def A():
    return random_sparse(96, 24, 0.15, seed=3)


def _one_shot(A, d=10, family="philox"):
    st = StreamingSketch(d, A.shape[1], make_rng(family, 7), kernel="algo3")
    for b in _batches(A, 16):
        st.absorb(b)
    return st


class TestResume:
    @pytest.mark.parametrize("family", ["philox", "xoshiro"])
    def test_bit_identical_after_interrupt(self, tmp_path, A, family):
        ref = _one_shot(A, family=family)

        st = StreamingSketch(10, A.shape[1], make_rng(family, 7),
                             kernel="algo3", checkpoint_dir=tmp_path,
                             checkpoint_every=16)
        batches = _batches(A, 16)
        for b in batches[:3]:
            st.absorb(b)
        del st  # "crash" after three batches (snapshots are on disk)

        resumed = resume_streaming(tmp_path)
        assert resumed.rows_seen == 48
        assert resumed.resumed_from is not None
        for b in batches[3:]:
            resumed.absorb(b)
        np.testing.assert_array_equal(resumed.sketch, ref.sketch)

    def test_falls_back_past_damaged_newest(self, tmp_path, A):
        st = StreamingSketch(10, A.shape[1], make_rng("philox", 7),
                             kernel="algo3", checkpoint_dir=tmp_path,
                             checkpoint_every=16, checkpoint_keep=4)
        batches = _batches(A, 16)
        for b in batches[:3]:
            st.absorb(b)
        snaps = list_snapshots(tmp_path)
        assert len(snaps) == 3
        newest = snaps[-1][1]
        bfile = next(newest.glob("block-*.npy"))
        bfile.write_bytes(bfile.read_bytes()[:10])  # torn at rest

        snap = latest_verified_snapshot(tmp_path)
        assert snap.seq == snaps[-2][0]
        resumed = resume_streaming(tmp_path)
        assert resumed.rows_seen == 32
        for b in batches[2:]:
            resumed.absorb(b)
        np.testing.assert_array_equal(resumed.sketch, _one_shot(A).sketch)

    def test_all_damaged_raises_listing_failures(self, tmp_path, A):
        st = StreamingSketch(10, A.shape[1], make_rng("philox", 7),
                             kernel="algo3", checkpoint_dir=tmp_path,
                             checkpoint_every=16)
        for b in _batches(A, 16)[:2]:
            st.absorb(b)
        for _seq, path in list_snapshots(tmp_path):
            bfile = next(path.glob("block-*.npy"))
            bfile.write_bytes(bfile.read_bytes()[:10])
        with pytest.raises(CheckpointCorruptionError):
            resume_streaming(tmp_path)

    def test_empty_dir(self, tmp_path):
        assert try_resume_streaming(tmp_path) is None
        assert latest_verified_snapshot(tmp_path) is None
        with pytest.raises(CheckpointError, match="no snapshot"):
            resume_streaming(tmp_path)

    def test_config_drift_is_loud(self, tmp_path, A):
        st = StreamingSketch(10, A.shape[1], make_rng("philox", 7),
                             kernel="algo3", checkpoint_dir=tmp_path,
                             checkpoint_every=16)
        for b in _batches(A, 16)[:2]:
            st.absorb(b)
        with pytest.raises(CheckpointMismatchError, match="seed"):
            resume_streaming(tmp_path, expect={"seed": 8})
        with pytest.raises(CheckpointMismatchError, match="kernel"):
            resume_streaming(tmp_path, expect={"kernel": "algo4"})
        # the matching expectation resumes fine
        resumed = resume_streaming(tmp_path,
                                   expect={"seed": 7, "kernel": "algo3"})
        assert resumed.rows_seen == 32

    def test_entry_mode_round_trip(self, tmp_path, A):
        coo = A.to_coo()
        ref = StreamingSketch(10, A.shape[1], make_rng("philox", 7),
                              kernel="algo3")
        ref.absorb_entries(coo.rows, coo.cols, coo.vals)

        st = StreamingSketch(10, A.shape[1], make_rng("philox", 7),
                             kernel="algo3", checkpoint_dir=tmp_path)
        half = coo.rows.size // 2
        st.absorb_entries(coo.rows[:half], coo.cols[:half], coo.vals[:half])
        st.save_checkpoint()
        del st

        resumed = resume_streaming(tmp_path)
        resumed.absorb_entries(coo.rows[half:], coo.cols[half:],
                               coo.vals[half:])
        np.testing.assert_allclose(resumed.sketch, ref.sketch, rtol=1e-12)
