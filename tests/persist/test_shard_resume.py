"""Crash recovery across a shard-count change: SIGKILL a sharded,
checkpointing run, resume with a *different* shard count, and demand a
bit-identical sketch.

The child runs ``--shards 4`` with per-shard checkpoints; an
intervention subscriber stalls it right after the second shard merges,
so the parent SIGKILLs a process whose disk state holds two complete
shard lineages and nothing for the rest.  The parent then resumes with
``--shards 2``: the first new stripe must be re-partitioned from the two
verified old stripes (no kernel work), the second computed fresh, and
the merged sketch must equal the never-crashed unsharded run exactly.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import SketchConfig
from repro.plan import (
    SHARD_RESUMED,
    PartitionSpec,
    PersistencePolicy,
    Planner,
    Runtime,
)
from repro.sparse import random_sparse

_CHILD = """
import sys, time
from pathlib import Path
from repro.core import SketchConfig
from repro.plan import PartitionSpec, PersistencePolicy, Planner, Runtime, \\
    SHARD_MERGED
from repro.sparse import random_sparse

ckdir = sys.argv[1]
A = random_sparse(160, 48, 0.1, seed=13)
cfg = SketchConfig(gamma=2.0, kernel="algo4", rng_kind="philox", seed=7,
                   b_d=8, b_n=8, backend="numpy")
rt = Runtime()

def stall(event):
    if event.get("shard") == 1:
        Path(ckdir, "CHILD_READY").touch()
        time.sleep(120)  # hold until the parent SIGKILLs us mid-run

rt.bus.subscribe(SHARD_MERGED, stall)
plan = Planner().compile(
    A, cfg, persistence=PersistencePolicy(checkpoint_dir=ckdir, every=1),
    partition=PartitionSpec(shards=4, strategy="even"))
rt.run(plan, A)
"""


def _cfg():
    return SketchConfig(gamma=2.0, kernel="algo4", rng_kind="philox",
                        seed=7, b_d=8, b_n=8, backend="numpy")


def _sigkill_child(tmp_path):
    env = dict(os.environ)
    root = Path(__file__).resolve().parents[2]
    env["PYTHONPATH"] = os.pathsep.join(
        [str(root / "src"), env.get("PYTHONPATH", "")])
    child = subprocess.Popen(
        [sys.executable, "-c", _CHILD, str(tmp_path)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    try:
        sentinel = tmp_path / "CHILD_READY"
        deadline = time.monotonic() + 60
        while not sentinel.exists():
            if child.poll() is not None:
                _out, err = child.communicate()
                pytest.fail(f"child exited early: {err.decode()}")
            if time.monotonic() > deadline:
                pytest.fail("child never reached its shard sentinel")
            time.sleep(0.05)
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
        assert child.returncode == -signal.SIGKILL
    finally:
        if child.poll() is None:  # pragma: no cover - cleanup on failure
            child.kill()
            child.wait()


def test_sigkill_then_resume_with_fewer_shards_bit_identical(tmp_path):
    A = random_sparse(160, 48, 0.1, seed=13)
    _sigkill_child(tmp_path)

    # Exactly the first two shard lineages reached the disk.
    shard_dirs = sorted(p.name for p in tmp_path.glob("shard-*"))
    assert shard_dirs == ["shard-00000000-00000016",
                         "shard-00000016-00000024"]

    rt = Runtime()
    resumed_events = []
    rt.bus.subscribe_observer(SHARD_RESUMED, resumed_events.append)
    plan = Planner().compile(
        A, _cfg(),
        persistence=PersistencePolicy(checkpoint_dir=str(tmp_path), every=1,
                                      resume=True),
        partition=PartitionSpec(shards=2, strategy="even"))
    res = rt.run(plan, A)

    ref = Runtime().run(Planner().compile(A, _cfg()), A)
    np.testing.assert_array_equal(res.sketch, ref.sketch)

    # The first new stripe (0, 24) was assembled from the two old
    # stripes (0, 16) + (16, 24); the second had no prior state.
    assert len(resumed_events) == 1
    ev = resumed_events[0]
    assert ev.get("shard") == 0
    assert ev.get("repartitioned") is True
    assert ev.get("rows")  # verified completed rows carried over
    assert res.stats.extra.get("shards_resumed") == 1


def test_clean_resume_with_different_shard_count(tmp_path):
    """No crash: a completed --shards 4 run resumes under --shards 2 with
    every stripe re-partitioned from verified state, bit-identically."""
    A = random_sparse(160, 48, 0.1, seed=13)
    first = Runtime().run(Planner().compile(
        A, _cfg(),
        persistence=PersistencePolicy(checkpoint_dir=str(tmp_path), every=1),
        partition=PartitionSpec(shards=4, strategy="even")), A)

    rt = Runtime()
    resumed_events = []
    rt.bus.subscribe_observer(SHARD_RESUMED, resumed_events.append)
    plan = Planner().compile(
        A, _cfg(),
        persistence=PersistencePolicy(checkpoint_dir=str(tmp_path), every=1,
                                      resume=True),
        partition=PartitionSpec(shards=2, strategy="even"))
    res = rt.run(plan, A)
    np.testing.assert_array_equal(res.sketch, first.sketch)
    assert len(resumed_events) == 2
    assert all(e.get("repartitioned") for e in resumed_events)
    assert res.stats.extra.get("shards_resumed") == 2


def test_legacy_unsharded_checkpoints_seed_a_sharded_resume(tmp_path):
    """Snapshots written by an unsharded run are one full-width stripe;
    a sharded resume re-partitions them instead of recomputing."""
    A = random_sparse(160, 48, 0.1, seed=13)
    first = Runtime().run(Planner().compile(
        A, _cfg(),
        persistence=PersistencePolicy(checkpoint_dir=str(tmp_path),
                                      every=1)), A)

    rt = Runtime()
    resumed_events = []
    rt.bus.subscribe_observer(SHARD_RESUMED, resumed_events.append)
    plan = Planner().compile(
        A, _cfg(),
        persistence=PersistencePolicy(checkpoint_dir=str(tmp_path), every=1,
                                      resume=True),
        partition=PartitionSpec(shards=3, strategy="propagation"))
    res = rt.run(plan, A)
    np.testing.assert_array_equal(res.sketch, first.sketch)
    assert len(resumed_events) == 3
    assert all(e.get("repartitioned") for e in resumed_events)
