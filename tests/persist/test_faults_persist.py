"""Injected storage faults (torn_write / bitflip) against the snapshot path."""

import numpy as np
import pytest

from repro.core.streaming import StreamingSketch
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.faults.plan import InjectedCrashError, InjectedFaultError
from repro.parallel import parallel_sketch_spmm
from repro.persist import (
    CheckpointManager,
    latest_verified_snapshot,
    list_snapshots,
    load_snapshot,
    resume_streaming,
    verify_snapshot,
)
from repro.rng import make_rng
from repro.sparse import CSCMatrix, random_sparse


@pytest.fixture
def A():
    return random_sparse(80, 30, 0.15, seed=5)


def _injected_manager(tmp_path, *specs, keep=10):
    inj = FaultInjector(FaultPlan(specs))
    return CheckpointManager(tmp_path, keep=keep, injector=inj), inj


def _stream(A, ck, *, batch=16, stop_after=None):
    st = StreamingSketch(12, A.shape[1], make_rng("philox", 9), kernel="algo3",
                         b_d=4, b_n=8, checkpoint=ck, checkpoint_every=batch)
    dense = A.to_dense()
    n_batches = 0
    for s in range(0, A.shape[0], batch):
        st.absorb(CSCMatrix.from_dense(dense[s:s + batch]))
        n_batches += 1
        if stop_after is not None and n_batches >= stop_after:
            break
    return st


class TestBitflip:
    def test_colluding_bitflip_survives_checksums_but_not_replay(
            self, tmp_path, A):
        # Target block 0 of the final snapshot (seq 5: 80 rows / 16 batch).
        ck, inj = _injected_manager(
            tmp_path, FaultSpec(kind="bitflip", task=(5, 0)))
        _stream(A, ck)
        assert inj.events_by_kind() == {"bitflip": 1}

        # The collusion defeats checksum verification...
        snap = latest_verified_snapshot(tmp_path)
        assert snap.seq == 5
        load_snapshot(snap.path)  # does not raise

        # ...but the replay audit quarantines the corrupted row block.
        report = verify_snapshot(snap.path, A, exhaustive=True)
        assert not report.ok
        assert 0 in report.quarantined_row_offsets

    def test_repair_then_resume_is_bit_identical(self, tmp_path, A):
        ck, _inj = _injected_manager(
            tmp_path, FaultSpec(kind="bitflip", task=(5, 0)))
        ref = _stream(A, ck)
        snap = latest_verified_snapshot(tmp_path)
        report = verify_snapshot(snap.path, A, exhaustive=True, repair=True)
        assert report.repaired_path is not None
        resumed = resume_streaming(tmp_path)
        np.testing.assert_array_equal(resumed.sketch, ref.sketch)


class TestTornWrite:
    def test_crash_mid_snapshot_falls_back_to_previous(self, tmp_path, A):
        ck, inj = _injected_manager(
            tmp_path, FaultSpec(kind="torn_write", task=(3, 0)))
        with pytest.raises(InjectedCrashError):
            _stream(A, ck)
        assert inj.events_by_kind() == {"torn_write": 1}

        # The torn snapshot is on disk but must never verify.
        seqs = [seq for seq, _ in list_snapshots(tmp_path)]
        assert 3 in seqs
        snap = latest_verified_snapshot(tmp_path)
        assert snap.seq == 2

        resumed = resume_streaming(tmp_path)
        assert resumed.rows_seen == 32
        dense = A.to_dense()
        for s in range(32, A.shape[0], 16):
            resumed.absorb(CSCMatrix.from_dense(dense[s:s + 16]))

        clean = _stream(A, CheckpointManager(tmp_path / "clean"))
        np.testing.assert_array_equal(resumed.sketch, clean.sketch)

    def test_next_save_skips_past_torn_seq(self, tmp_path, A):
        ck, _inj = _injected_manager(
            tmp_path, FaultSpec(kind="torn_write", task=(2, 0)))
        with pytest.raises(InjectedCrashError):
            _stream(A, ck)
        resumed = resume_streaming(tmp_path)
        dense = A.to_dense()
        resumed.absorb(CSCMatrix.from_dense(dense[16:32]))
        resumed.save_checkpoint()
        # The damaged snapshot-2 dir still exists; the new snapshot must
        # take a fresh sequence number, not collide with it.
        assert resumed.checkpoint.last_seq == 3
        assert latest_verified_snapshot(tmp_path).seq == 3


class TestExecutorCrash:
    def test_crash_is_not_swallowed_by_retry_machinery(self, tmp_path, A):
        """A torn_write during an executor checkpoint must surface as a
        crash, not be retried away as a transient task failure."""
        inj = FaultInjector(FaultPlan([
            FaultSpec(kind="torn_write", task=(1, 0))]))
        with pytest.raises(InjectedCrashError):
            parallel_sketch_spmm(A, 12, lambda i: make_rng("philox", 9),
                                 threads=2, kernel="algo3", b_d=4, b_n=8,
                                 checkpoint_dir=tmp_path, injector=inj)
        assert inj.events_by_kind() == {"torn_write": 1}

        ref, _ = parallel_sketch_spmm(A, 12, lambda i: make_rng("philox", 9),
                                      threads=2, kernel="algo3", b_d=4, b_n=8)
        out, stats = parallel_sketch_spmm(
            A, 12, lambda i: make_rng("philox", 9), threads=2,
            kernel="algo3", b_d=4, b_n=8, checkpoint_dir=tmp_path,
            resume=True)
        np.testing.assert_array_equal(out, ref)

    def test_plain_injected_faults_stay_retryable(self, tmp_path, A):
        """Sanity: ordinary 'raise' faults are still absorbed by retries
        even on a checkpointed run."""
        from repro.parallel import ResilienceConfig

        inj = FaultInjector(FaultPlan([
            FaultSpec(kind="raise", task=(0, 0), max_hits=1)]))
        ref, _ = parallel_sketch_spmm(A, 12, lambda i: make_rng("philox", 9),
                                      threads=2, kernel="algo3", b_d=4, b_n=8)
        out, stats = parallel_sketch_spmm(
            A, 12, lambda i: make_rng("philox", 9), threads=2,
            kernel="algo3", b_d=4, b_n=8, checkpoint_dir=tmp_path,
            injector=inj, resilience=ResilienceConfig(max_retries=2))
        np.testing.assert_array_equal(out, ref)
        assert inj.events_by_kind() == {"raise": 1}


class TestCrashErrorHierarchy:
    def test_crash_is_an_injected_fault(self):
        assert issubclass(InjectedCrashError, InjectedFaultError)
