"""End-to-end crash recovery: SIGKILL a checkpointing process, resume,
and demand a bit-identical sketch.

The child process absorbs six row batches (writing a durable snapshot
after each), drops a sentinel file, and then idles; the parent SIGKILLs
it — no atexit handlers, no flushing, exactly like a node failure — and
resumes from whatever reached the disk.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.streaming import StreamingSketch
from repro.persist import resume_streaming
from repro.rng import NUMBA_AVAILABLE, make_rng
from repro.sparse import CSCMatrix, random_sparse

_CHILD = """
import sys, time
from pathlib import Path
from repro.core.streaming import StreamingSketch
from repro.rng import make_rng
from repro.sparse import CSCMatrix, random_sparse

ckdir, backend = sys.argv[1], sys.argv[2]
A = random_sparse(96, 24, 0.15, seed=3)
dense = A.to_dense()
st = StreamingSketch(10, 24, make_rng("philox", 7), kernel="algo3",
                     b_d=4, b_n=8, backend=backend,
                     checkpoint_dir=ckdir, checkpoint_every=8)
for s in range(0, 48, 8):
    st.absorb(CSCMatrix.from_dense(dense[s:s + 8]))
Path(ckdir, "CHILD_READY").touch()
time.sleep(120)  # hold the process alive until the parent SIGKILLs it
"""

BACKENDS = ["numpy"] + (["numba"] if NUMBA_AVAILABLE else [])


@pytest.mark.parametrize("backend", BACKENDS)
def test_sigkill_then_resume_bit_identical(tmp_path, backend):
    A = random_sparse(96, 24, 0.15, seed=3)
    dense = A.to_dense()

    env = dict(os.environ)
    root = Path(__file__).resolve().parents[2]
    env["PYTHONPATH"] = os.pathsep.join(
        [str(root / "src"), env.get("PYTHONPATH", "")])
    child = subprocess.Popen(
        [sys.executable, "-c", _CHILD, str(tmp_path), backend],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    try:
        sentinel = tmp_path / "CHILD_READY"
        deadline = time.monotonic() + 60
        while not sentinel.exists():
            if child.poll() is not None:
                _out, err = child.communicate()
                pytest.fail(f"child exited early: {err.decode()}")
            if time.monotonic() > deadline:
                pytest.fail("child never reached its checkpoint sentinel")
            time.sleep(0.05)
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
        assert child.returncode == -signal.SIGKILL
    finally:
        if child.poll() is None:  # pragma: no cover - cleanup on failure
            child.kill()
            child.wait()

    resumed = resume_streaming(tmp_path)
    assert resumed.rows_seen == 48
    assert resumed.backend.name == backend
    for s in range(48, 96, 8):
        resumed.absorb(CSCMatrix.from_dense(dense[s:s + 8]))

    ref = StreamingSketch(10, 24, make_rng("philox", 7), kernel="algo3",
                          b_d=4, b_n=8, backend=backend)
    for s in range(0, 96, 8):
        ref.absorb(CSCMatrix.from_dense(dense[s:s + 8]))

    np.testing.assert_array_equal(resumed.sketch, ref.sketch)
