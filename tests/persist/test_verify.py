"""RNG-replay integrity audits: detection, quarantine, and repair."""

import json

import numpy as np
import pytest

from repro.core.streaming import StreamingSketch
from repro.parallel import parallel_sketch_spmm
from repro.persist import (
    MANIFEST_NAME,
    CheckpointManager,
    latest_verified_snapshot,
    load_snapshot,
    resume_streaming,
    verify_snapshot,
)
from repro.persist.checksum import checksum_bytes
from repro.rng import make_rng
from repro.sparse import CSCMatrix, random_sparse


@pytest.fixture
def A():
    return random_sparse(80, 30, 0.15, seed=5)


def _checkpointed_stream(A, tmp_path, *, family="philox", batch=16):
    st = StreamingSketch(12, A.shape[1], make_rng(family, 9), kernel="algo3",
                         b_d=4, b_n=8, checkpoint_dir=tmp_path,
                         checkpoint_every=batch)
    dense = A.to_dense()
    for s in range(0, A.shape[0], batch):
        st.absorb(CSCMatrix.from_dense(dense[s:s + batch]))
    return st


def _collude_flip(snapshot_dir, byte_offset=200):
    """Flip a payload byte AND patch the manifest checksum — the damage a
    checksum pass cannot see."""
    mpath = snapshot_dir / MANIFEST_NAME
    manifest = json.loads(mpath.read_text())
    block = manifest["blocks"][0]
    bfile = snapshot_dir / block["file"]
    data = bytearray(bfile.read_bytes())
    data[min(byte_offset, len(data) - 1)] ^= 0x04
    bfile.write_bytes(bytes(data))
    block["checksum"] = checksum_bytes(bytes(data), manifest["checksum_algo"])
    block["nbytes"] = len(data)
    mpath.write_text(json.dumps(manifest))
    return int(block["row_offset"])


class TestVerify:
    @pytest.mark.parametrize("family", ["philox", "xoshiro"])
    def test_clean_snapshot_passes_exhaustive_replay(self, tmp_path, A, family):
        _checkpointed_stream(A, tmp_path, family=family)
        report = verify_snapshot(tmp_path, A, exhaustive=True)
        assert report.ok
        assert report.method == "replay"
        assert report.tiles_audited == report.tiles_total
        assert not report.quarantined_row_offsets

    def test_sampled_audit_is_cheaper(self, tmp_path, A):
        _checkpointed_stream(A, tmp_path)
        full = verify_snapshot(tmp_path, A, exhaustive=True)
        sampled = verify_snapshot(tmp_path, A)
        assert sampled.ok
        assert sampled.tiles_audited < full.tiles_audited

    def test_colluding_bitflip_caught_only_by_replay(self, tmp_path, A):
        _checkpointed_stream(A, tmp_path)
        snap_dir = latest_verified_snapshot(tmp_path).path
        bad_row = _collude_flip(snap_dir)

        # checksums still pass: the corruption colludes with the manifest
        load_snapshot(snap_dir)  # does not raise

        report = verify_snapshot(snap_dir, A, exhaustive=True)
        assert not report.ok
        assert bad_row in report.quarantined_row_offsets

    def test_repair_recomputes_quarantined_blocks(self, tmp_path, A):
        ref = _checkpointed_stream(A, tmp_path)
        snap_dir = latest_verified_snapshot(tmp_path).path
        _collude_flip(snap_dir)

        report = verify_snapshot(snap_dir, A, exhaustive=True, repair=True)
        assert not report.ok
        assert report.repaired_path is not None

        healed = verify_snapshot(report.repaired_path, A, exhaustive=True)
        assert healed.ok
        resumed = resume_streaming(tmp_path)
        np.testing.assert_array_equal(resumed.sketch, ref.sketch)

    def test_checksum_only_without_matrix(self, tmp_path, A):
        _checkpointed_stream(A, tmp_path)
        report = verify_snapshot(tmp_path, None)
        assert report.ok
        assert report.method == "checksum-only"

    def test_entry_mode_downgrades_to_checksum_only(self, tmp_path, A):
        coo = A.to_coo()
        st = StreamingSketch(12, A.shape[1], make_rng("philox", 9),
                             kernel="algo3", checkpoint_dir=tmp_path)
        st.absorb_entries(coo.rows, coo.cols, coo.vals)
        st.save_checkpoint()
        report = verify_snapshot(tmp_path, A)
        assert report.ok
        assert report.method == "checksum-only"

    def test_blocked_mode_snapshot_verifies(self, tmp_path, A):
        ck = CheckpointManager(tmp_path)
        parallel_sketch_spmm(A, 12, lambda i: make_rng("philox", 9),
                             threads=2, kernel="algo3", b_d=4, b_n=8,
                             checkpoint=ck)
        report = verify_snapshot(tmp_path, A, exhaustive=True)
        assert report.ok
        assert report.mode == "blocked"
        assert report.method == "replay"

    def test_wrong_matrix_is_detected(self, tmp_path, A):
        _checkpointed_stream(A, tmp_path)
        other = random_sparse(80, 30, 0.15, seed=6)
        report = verify_snapshot(tmp_path, other, exhaustive=True)
        assert not report.ok
