"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.utils import validation as v


class TestCheckPositiveInt:
    def test_accepts_python_int(self):
        assert v.check_positive_int(5, "x") == 5

    def test_accepts_numpy_int(self):
        assert v.check_positive_int(np.int64(7), "x") == 7
        assert isinstance(v.check_positive_int(np.int64(7), "x"), int)

    def test_rejects_zero(self):
        with pytest.raises(ConfigError, match="x must be positive"):
            v.check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            v.check_positive_int(-3, "x")

    def test_rejects_bool(self):
        with pytest.raises(ConfigError, match="must be an integer"):
            v.check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ConfigError):
            v.check_positive_int(2.0, "x")

    def test_error_names_argument(self):
        with pytest.raises(ConfigError, match="block_size"):
            v.check_positive_int(-1, "block_size")


class TestCheckNonnegativeInt:
    def test_accepts_zero(self):
        assert v.check_nonnegative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            v.check_nonnegative_int(-1, "x")

    def test_rejects_bool(self):
        with pytest.raises(ConfigError):
            v.check_nonnegative_int(False, "x")


class TestCheckInRange:
    def test_inclusive_endpoints(self):
        assert v.check_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert v.check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_exclusive_rejects_endpoints(self):
        with pytest.raises(ConfigError):
            v.check_in_range(0.0, "x", 0.0, 1.0, inclusive=False)
        with pytest.raises(ConfigError):
            v.check_in_range(1.0, "x", 0.0, 1.0, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ConfigError):
            v.check_in_range(1.5, "x", 0.0, 1.0)

    def test_probability_helper(self):
        assert v.check_probability(0.5, "p") == 0.5
        with pytest.raises(ConfigError):
            v.check_probability(-0.1, "p")


class TestCheckDenseMatrix:
    def test_accepts_2d(self):
        a = np.zeros((3, 4))
        assert v.check_dense_matrix(a, "a") is a

    def test_rejects_1d(self):
        with pytest.raises(ShapeError, match="must be 2-D"):
            v.check_dense_matrix(np.zeros(3), "a")

    def test_rejects_list(self):
        with pytest.raises(ShapeError, match="numpy.ndarray"):
            v.check_dense_matrix([[1, 2]], "a")

    def test_shape_check(self):
        with pytest.raises(ShapeError, match=r"\(2, 2\)"):
            v.check_dense_matrix(np.zeros((3, 4)), "a", shape=(2, 2))

    def test_writeable_check(self):
        a = np.zeros((2, 2))
        a.flags.writeable = False
        with pytest.raises(ShapeError, match="writeable"):
            v.check_dense_matrix(a, "a", writeable=True)


class TestCheckVector:
    def test_accepts_1d(self):
        x = np.zeros(5)
        assert v.check_vector(x, "x") is x

    def test_size_check(self):
        with pytest.raises(ShapeError, match="size 3"):
            v.check_vector(np.zeros(5), "x", size=3)

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            v.check_vector(np.zeros((2, 2)), "x")


class TestCheckDtypeFloating:
    def test_accepts_float64(self):
        a = np.zeros(3)
        assert v.check_dtype_floating(a, "a") is a

    def test_rejects_int(self):
        with pytest.raises(ShapeError, match="floating"):
            v.check_dtype_floating(np.zeros(3, dtype=np.int64), "a")


class TestCheckSameLength:
    def test_equal(self):
        v.check_same_length("a", [1, 2], "b", [3, 4])

    def test_unequal(self):
        with pytest.raises(ShapeError, match="equal length"):
            v.check_same_length("a", [1], "b", [1, 2])


class TestCheckChoice:
    def test_valid(self):
        assert v.check_choice("x", "opt", ["x", "y"]) == "x"

    def test_invalid_lists_choices(self):
        with pytest.raises(ConfigError, match="'y'"):
            v.check_choice("z", "opt", ["x", "y"])
