"""Tests for repro.utils.memory."""

import numpy as np
import pytest

from repro.utils import MemoryLedger, mbytes, nbytes


class TestNbytes:
    def test_single_array(self):
        assert nbytes(np.zeros(10)) == 80

    def test_multiple_arrays(self):
        assert nbytes(np.zeros(10), np.zeros(5, dtype=np.int64)) == 120

    def test_mbytes(self):
        assert mbytes(np.zeros(1024 * 1024, dtype=np.uint8)) == pytest.approx(1.0)


class TestMemoryLedger:
    def test_allocate_and_peak(self):
        led = MemoryLedger()
        led.allocate("a", 100)
        led.allocate("b", 200)
        assert led.current_bytes == 300
        assert led.peak_bytes == 300
        led.release("a")
        assert led.current_bytes == 200
        assert led.peak_bytes == 300  # peak persists

    def test_reallocate_replaces(self):
        led = MemoryLedger()
        led.allocate("r", 100)
        led.allocate("r", 150)
        assert led.current_bytes == 150
        assert led.peak_bytes == 150

    def test_shrinking_entry_keeps_peak(self):
        led = MemoryLedger()
        led.allocate("r", 500)
        led.allocate("r", 100)
        assert led.current_bytes == 100
        assert led.peak_bytes == 500

    def test_allocate_array(self):
        led = MemoryLedger()
        led.allocate_array("x", np.zeros(10))
        assert led.current_bytes == 80

    def test_release_unknown_is_noop(self):
        led = MemoryLedger()
        led.release("ghost")
        assert led.current_bytes == 0

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            MemoryLedger().allocate("x", -1)

    def test_peak_mbytes(self):
        led = MemoryLedger()
        led.allocate("x", 2 * 1024 * 1024)
        assert led.peak_mbytes == pytest.approx(2.0)

    def test_breakdown_sorted_desc(self):
        led = MemoryLedger()
        led.allocate("small", 10)
        led.allocate("big", 10_000_000)
        keys = list(led.breakdown())
        assert keys == ["big", "small"]
