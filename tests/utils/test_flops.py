"""Tests for repro.utils.flops."""

import pytest

from repro.utils import gemm_flops, gflops, spmm_flops


class TestSpmmFlops:
    def test_convention(self):
        # 2 flops per (dense row, stored entry) pair.
        assert spmm_flops(10, 100) == 2000

    def test_zero_nnz(self):
        assert spmm_flops(10, 0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spmm_flops(-1, 10)


class TestGemmFlops:
    def test_convention(self):
        assert gemm_flops(2, 3, 4) == 48

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gemm_flops(1, -2, 3)


class TestGflops:
    def test_conversion(self):
        assert gflops(2e9, 1.0) == pytest.approx(2.0)

    def test_zero_seconds_rejected(self):
        with pytest.raises(ValueError):
            gflops(100, 0.0)
