"""Tests for repro.utils.timing."""

import time

from repro.utils import Stopwatch, Timer


class TestStopwatch:
    def test_bucket_accumulates(self):
        sw = Stopwatch()
        with sw.bucket("a"):
            time.sleep(0.01)
        with sw.bucket("a"):
            time.sleep(0.01)
        assert sw.total("a") >= 0.02
        assert sw.counts["a"] == 2

    def test_separate_buckets(self):
        sw = Stopwatch()
        with sw.bucket("sample"):
            pass
        with sw.bucket("compute"):
            pass
        assert set(sw.totals) == {"sample", "compute"}

    def test_total_across_buckets(self):
        sw = Stopwatch()
        sw.add("a", 1.0)
        sw.add("b", 2.0)
        assert sw.total() == 3.0
        assert sw.total("a") == 1.0

    def test_missing_bucket_is_zero(self):
        assert Stopwatch().total("nope") == 0.0

    def test_add_direct(self):
        sw = Stopwatch()
        sw.add("x", 0.5)
        sw.add("x", 0.25)
        assert sw.total("x") == 0.75
        assert sw.counts["x"] == 2

    def test_reset(self):
        sw = Stopwatch()
        sw.add("x", 1.0)
        sw.reset()
        assert sw.total() == 0.0
        assert sw.counts == {}

    def test_merge(self):
        a, b = Stopwatch(), Stopwatch()
        a.add("s", 1.0)
        b.add("s", 2.0)
        b.add("t", 3.0)
        a.merge(b)
        assert a.total("s") == 3.0
        assert a.total("t") == 3.0
        assert a.counts["s"] == 2

    def test_bucket_records_time_on_exception(self):
        sw = Stopwatch()
        try:
            with sw.bucket("err"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert "err" in sw.totals


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.01

    def test_initial_zero(self):
        assert Timer().elapsed == 0.0
