"""Tests for repro.utils.tables."""

import pytest

from repro.utils import format_table, format_value, render_kv_block


class TestFormatValue:
    def test_none_is_na(self):
        assert format_value(None) == "N/A"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_int(self):
        assert format_value(42) == "42"

    def test_zero_float(self):
        assert format_value(0.0) == "0"

    def test_small_float_scientific(self):
        out = format_value(2.02e-4)
        assert "E" in out or "e" in out

    def test_milli_range_stays_fixed_point(self):
        assert format_value(2.02e-3) == "0.00202"

    def test_ordinary_float(self):
        assert format_value(0.070) == "0.07"

    def test_large_float_scientific(self):
        assert "E" in format_value(1.27e16)

    def test_string_passthrough(self):
        assert format_value("algo3") == "algo3"


class TestFormatTable:
    def test_basic_render(self):
        out = format_table(["name", "t"], [["a", 1.5], ["bb", 2]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, sep, two rows
        assert "name" in lines[0] and "t" in lines[0]

    def test_alignment(self):
        out = format_table(["x"], [["long-value"], ["s"]])
        lines = out.splitlines()
        assert len(lines[2]) == len(lines[3])  # padded equal widths

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table II")
        assert out.startswith("Table II")

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError, match="2 cells"):
            format_table(["a", "b", "c"], [[1, 2]])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestRenderKvBlock:
    def test_renders_pairs(self):
        out = render_kv_block("Config", [("threads", 4), ("kernel", "algo3")])
        assert "Config" in out
        assert "threads" in out and "4" in out
        assert "algo3" in out

    def test_empty(self):
        out = render_kv_block("Empty", [])
        assert "Empty" in out
