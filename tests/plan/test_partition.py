"""The partition stage: spec mechanics, shard computation, and the hard
acceptance bit — sharded execution is bit-identical to unsharded for
every strategy, shard count, and driver."""

import numpy as np
import pytest

from repro.cache import ArtifactCache, CachePolicy
from repro.cache.artifacts import blocked_csr_key
from repro.core import SketchConfig
from repro.errors import ConfigError
from repro.parallel import WorkerPoolConfig
from repro.plan import (
    PARTITION_STRATEGIES,
    SHARD_MERGED,
    SHARD_START,
    PartitionSpec,
    Planner,
    Runtime,
    ShardPlan,
    SketchPlan,
    compute_shards,
)
from repro.sparse import random_sparse


@pytest.fixture(scope="module")
def A():
    return random_sparse(300, 96, 0.05, seed=3)


def _cfg(**kw):
    base = dict(gamma=2.0, kernel="algo4", rng_kind="philox", seed=11,
                b_d=16, b_n=16)
    base.update(kw)
    return SketchConfig(**base)


class TestPartitionSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            PartitionSpec(shards=0)
        with pytest.raises(ConfigError):
            PartitionSpec(shards=2, strategy="zigzag")

    def test_plan_round_trip_with_partition(self, A):
        plan = Planner().compile(A, _cfg(), partition=PartitionSpec(
            shards=3, strategy="propagation"))
        back = SketchPlan.from_dict(plan.to_dict())
        assert back.partition == plan.partition
        assert back.digest() == plan.digest()

    def test_shard_field_round_trips(self, A):
        shard = ShardPlan(index=1, shards=3, col_start=32, col_stop=64,
                          nnz=17)
        plan = Planner().compile(A, _cfg())
        import dataclasses

        from repro.plan.spec import ProblemSpec

        sub = dataclasses.replace(
            plan, problem=ProblemSpec(A.shape[0], 32, plan.problem.d, 17),
            shard=shard)
        back = SketchPlan.from_dict(sub.to_dict())
        assert back.shard == shard

    def test_digest_stable_across_compiles(self, A):
        p1 = Planner().compile(A, _cfg(), partition=PartitionSpec(shards=4))
        p2 = Planner().compile(A, _cfg(), partition=PartitionSpec(shards=4))
        assert p1.digest() == p2.digest()

    def test_partition_changes_digest(self, A):
        """The partition request is part of the plan's identity."""
        un = Planner().compile(A, _cfg())
        sh = Planner().compile(A, _cfg(), partition=PartitionSpec(shards=4))
        assert un.digest() != sh.digest()

    def test_single_shard_request_drops_to_none(self, A):
        plan = Planner().compile(A, _cfg(), partition=PartitionSpec(shards=1))
        assert plan.partition is None

    def test_planner_records_partition_decision(self, A):
        plan = Planner().compile(A, _cfg(), partition=PartitionSpec(shards=4))
        assert any(d.field == "partition" for d in plan.decisions)

    def test_int_shorthand(self, A):
        plan = Planner().compile(A, _cfg(), partition=3)
        assert plan.partition == PartitionSpec(shards=3, strategy="even")


class TestComputeShards:
    def test_boundaries_tile_and_align(self):
        for strategy in PARTITION_STRATEGIES:
            col_nnz = list(range(96))
            shards = compute_shards(
                PartitionSpec(shards=5, strategy=strategy),
                n=96, b_n=16, col_nnz=col_nnz)
            assert shards[0].col_start == 0
            assert shards[-1].col_stop == 96
            for a, b in zip(shards, shards[1:]):
                assert a.col_stop == b.col_start
            for s in shards:
                assert s.col_start % 16 == 0

    def test_capped_at_block_count(self):
        shards = compute_shards(PartitionSpec(shards=10), n=48, b_n=16)
        assert len(shards) == 3

    def test_nnz_balanced_requires_col_nnz(self):
        with pytest.raises(ConfigError):
            compute_shards(PartitionSpec(shards=2, strategy="nnz_balanced"),
                           n=32, b_n=16)

    def test_nnz_balanced_splits_at_the_mass(self):
        # All the nnz in the first block: it becomes its own shard.
        col_nnz = [100] * 16 + [1] * 48
        shards = compute_shards(
            PartitionSpec(shards=2, strategy="nnz_balanced"),
            n=64, b_n=16, col_nnz=col_nnz)
        assert shards[0].col_stop == 16


class TestBitIdentity:
    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    @pytest.mark.parametrize("shards", [2, 5])
    def test_serial_sharded_equals_unsharded(self, A, strategy, shards):
        ref = Runtime().run(Planner().compile(A, _cfg()), A)
        plan = Planner().compile(A, _cfg(), partition=PartitionSpec(
            shards=shards, strategy=strategy))
        res = Runtime().run(plan, A)
        np.testing.assert_array_equal(res.sketch, ref.sketch)

    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    def test_engine_sharded_equals_unsharded(self, A, strategy):
        cfg = _cfg(threads=2)
        ref = Runtime().run(Planner().compile(A, cfg), A)
        plan = Planner().compile(A, cfg, partition=PartitionSpec(
            shards=3, strategy=strategy))
        res = Runtime().run(plan, A)
        np.testing.assert_array_equal(res.sketch, ref.sketch)

    def test_process_sharded_equals_unsharded(self, A):
        pool = WorkerPoolConfig(workers=2)
        ref = Runtime().run(
            Planner().compile(A, _cfg(), driver="process", pool=pool), A)
        plan = Planner().compile(A, _cfg(), driver="process", pool=pool,
                                 partition=PartitionSpec(shards=3))
        res = Runtime().run(plan, A)
        np.testing.assert_array_equal(res.sketch, ref.sketch)

    def test_algo3_sharded_equals_unsharded(self, A):
        cfg = _cfg(kernel="algo3")
        ref = Runtime().run(Planner().compile(A, cfg), A)
        plan = Planner().compile(
            A, cfg, partition=PartitionSpec(shards=4, strategy="even"))
        res = Runtime().run(plan, A)
        np.testing.assert_array_equal(res.sketch, ref.sketch)

    def test_normalized_scale_applied_once(self, A):
        cfg = _cfg(distribution="gaussian")
        ref = Runtime().run(Planner().compile(A, cfg), A)
        res = Runtime().run(Planner().compile(
            A, cfg, partition=PartitionSpec(shards=3)), A)
        np.testing.assert_array_equal(res.sketch, ref.sketch)


class TestShardEventsAndStats:
    def test_events_fire_per_shard_in_column_order(self, A):
        rt = Runtime()
        starts, merges = [], []
        rt.bus.subscribe_observer(SHARD_START, starts.append)
        rt.bus.subscribe_observer(SHARD_MERGED, merges.append)
        plan = Planner().compile(A, _cfg(), partition=PartitionSpec(
            shards=4, strategy="propagation"))
        rt.run(plan, A)
        assert len(starts) == 4 and len(merges) == 4
        assert [e.get("shard") for e in starts] == [0, 1, 2, 3]
        # Propagation-blocking merge order: ascending column ranges.
        stops = [e.get("col_stop") for e in merges]
        assert stops == sorted(stops)
        assert all(e.get("strategy") == "propagation" for e in starts)
        assert all(e.get("seconds") >= 0.0 for e in merges)
        assert all(e.get("words") > 0 for e in merges)
        assert rt.bus.dropped_total() == 0

    def test_stats_carry_merge_accounting(self, A):
        plan = Planner().compile(A, _cfg(), partition=PartitionSpec(
            shards=3, strategy="nnz_balanced"))
        res = Runtime().run(plan, A)
        extra = res.stats.extra
        assert extra["shards"] == 3
        assert extra["partition_strategy"] == "nnz_balanced"
        assert extra["merge_seconds"] >= 0.0
        d = res.sketch.shape[0]
        assert extra["merge_words"] == d * A.shape[1]


class TestShardCacheKeys:
    def test_shard_scopes_the_blocked_csr_key(self, A):
        whole = blocked_csr_key(A, 16)
        s1 = blocked_csr_key(A, 16, shard=(0, 48))
        s2 = blocked_csr_key(A, 16, shard=(48, 96))
        assert len({whole, s1, s2}) == 3
        assert blocked_csr_key(A, 16, shard=(0, 48)) == s1

    def test_sharded_run_populates_shard_entries(self, A, tmp_path):
        cache = ArtifactCache(CachePolicy(cache_dir=str(tmp_path)))
        plan = Planner().compile(A, _cfg(), cache=cache,
                                 partition=PartitionSpec(shards=3))
        ref = Runtime().run(Planner().compile(A, _cfg()), A)
        res = Runtime().run(plan, A, cache=cache)
        np.testing.assert_array_equal(res.sketch, ref.sketch)
        stats = cache.stats()
        assert stats["shard_entries"] == 3
        # A second run serves every stripe from the cache, bit-identically.
        cache2 = ArtifactCache(CachePolicy(cache_dir=str(tmp_path)))
        plan2 = Planner().compile(A, _cfg(), cache=cache2,
                                  partition=PartitionSpec(shards=3))
        res2 = Runtime().run(plan2, A, cache=cache2)
        np.testing.assert_array_equal(res2.sketch, ref.sketch)
        assert cache2.misses.get("blocked_csr", 0) == 0
