"""Deprecation shims: old kwarg spellings warn, both spellings conflict,
and old vs new produce identical bits.

This file is the CI deprecation leg: it must pass under
``python -W error::DeprecationWarning`` (``pytest.warns`` still captures
the warning; any *unexpected* DeprecationWarning escalates to an error).
"""

import numpy as np
import pytest

from repro.core import StreamingSketch, sketch
from repro.errors import ConfigError
from repro.parallel import ResilientExecutor, parallel_sketch_spmm
from repro.plan import PersistencePolicy
from repro.rng import make_rng
from repro.sparse import random_sparse

D, B_D, B_N = 36, 12, 10
SEED = 9

LEGACY_MSG = "deprecated; pass persistence=PersistencePolicy"


@pytest.fixture(scope="module")
def A():
    return random_sparse(120, 30, 0.1, seed=301)


def factory(w):
    return make_rng("philox", SEED)


class TestSketchShim:
    def test_legacy_checkpoint_dir_warns(self, A, tmp_path):
        with pytest.warns(DeprecationWarning, match=LEGACY_MSG):
            sketch(A, d=D, checkpoint_dir=str(tmp_path))

    def test_policy_spelling_is_quiet(self, A, tmp_path, recwarn):
        sketch(A, d=D, persistence=PersistencePolicy(
            checkpoint_dir=str(tmp_path)))
        assert not [w for w in recwarn
                    if issubclass(w.category, DeprecationWarning)]

    def test_both_spellings_conflict(self, A, tmp_path):
        with pytest.raises(ConfigError, match="not both"):
            sketch(A, d=D, checkpoint_dir=str(tmp_path),
                   persistence=PersistencePolicy())

    def test_resume_without_dir_rejected(self, A):
        with pytest.raises(ConfigError, match="resume=True requires"), \
                pytest.warns(DeprecationWarning):
            sketch(A, d=D, resume=True)

    def test_old_and_new_spelling_identical(self, A, tmp_path):
        with pytest.warns(DeprecationWarning):
            old = sketch(A, d=D, checkpoint_dir=str(tmp_path / "old"))
        new = sketch(A, d=D, persistence=PersistencePolicy(
            checkpoint_dir=str(tmp_path / "new")))
        np.testing.assert_array_equal(old.sketch, new.sketch)


class TestStreamingShim:
    def test_legacy_checkpoint_dir_warns(self, A, tmp_path):
        with pytest.warns(DeprecationWarning, match=LEGACY_MSG):
            StreamingSketch(D, A.shape[1], make_rng("philox", SEED),
                            checkpoint_dir=str(tmp_path))

    def test_policy_spelling_is_quiet(self, A, tmp_path, recwarn):
        StreamingSketch(D, A.shape[1], make_rng("philox", SEED),
                        persistence=PersistencePolicy(
                            checkpoint_dir=str(tmp_path)))
        assert not [w for w in recwarn
                    if issubclass(w.category, DeprecationWarning)]

    def test_both_spellings_conflict(self, A, tmp_path):
        with pytest.raises(ConfigError, match="not both"):
            StreamingSketch(D, A.shape[1], make_rng("philox", SEED),
                            checkpoint_dir=str(tmp_path),
                            persistence=PersistencePolicy())

    def test_old_and_new_spelling_identical(self, A, tmp_path):
        with pytest.warns(DeprecationWarning):
            old = StreamingSketch(D, A.shape[1], make_rng("philox", SEED),
                                  checkpoint_dir=str(tmp_path / "old"))
        new = StreamingSketch(D, A.shape[1], make_rng("philox", SEED),
                              persistence=PersistencePolicy(
                                  checkpoint_dir=str(tmp_path / "new")))
        old.absorb(A)
        new.absorb(A)
        np.testing.assert_array_equal(old.sketch, new.sketch)

    def test_policy_cadence_maps_to_checkpoint_every(self, A, tmp_path):
        st = StreamingSketch(D, A.shape[1], make_rng("philox", SEED),
                             persistence=PersistencePolicy(
                                 checkpoint_dir=str(tmp_path), every=40))
        assert st.checkpoint_every == 40


class TestExecutorShim:
    def test_legacy_checkpoint_kwargs_warn(self, A, tmp_path):
        with pytest.warns(DeprecationWarning, match=LEGACY_MSG):
            ResilientExecutor(A, D, factory, threads=2, kernel="algo3",
                              b_d=B_D, b_n=B_N,
                              checkpoint_dir=str(tmp_path))

    def test_policy_spelling_is_quiet(self, A, tmp_path, recwarn):
        ResilientExecutor(A, D, factory, threads=2, kernel="algo3",
                          b_d=B_D, b_n=B_N,
                          persistence=PersistencePolicy(
                              checkpoint_dir=str(tmp_path)))
        assert not [w for w in recwarn
                    if issubclass(w.category, DeprecationWarning)]

    def test_both_spellings_conflict(self, A, tmp_path):
        with pytest.raises(ConfigError, match="not both"):
            ResilientExecutor(A, D, factory, threads=2, kernel="algo3",
                              checkpoint_dir=str(tmp_path),
                              persistence=PersistencePolicy())

    def test_parallel_sketch_spmm_legacy_warns(self, A, tmp_path):
        with pytest.warns(DeprecationWarning, match=LEGACY_MSG):
            out, _ = parallel_sketch_spmm(
                A, D, factory, threads=2, kernel="algo3", b_d=B_D, b_n=B_N,
                checkpoint_dir=str(tmp_path))
        clean, _ = parallel_sketch_spmm(
            A, D, factory, threads=2, kernel="algo3", b_d=B_D, b_n=B_N)
        np.testing.assert_array_equal(out, clean)

    def test_plain_run_is_quiet(self, A, recwarn):
        ResilientExecutor(A, D, factory, threads=2, kernel="algo3",
                          b_d=B_D, b_n=B_N).run()
        assert not [w for w in recwarn
                    if issubclass(w.category, DeprecationWarning)]
