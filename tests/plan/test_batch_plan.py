"""Batched plans: compile, digest, round-trip, and execution bit-identity.

A plan compiled with ``batch_seeds=[s0, ..., sk-1]`` must execute to a
``(k, d, n)`` stack whose slice ``[t]`` is bit-identical to the classic
single-sketch plan seeded with ``s_t`` — on every driver, and with the
process pool losing workers to SIGKILL or hangs mid-run.  The plan
record itself must carry the batch axis (digest-visible, JSON
round-trippable) while single-sketch digests stay exactly as they were.
"""

import numpy as np
import pytest

from repro.core import SketchConfig
from repro.errors import ConfigError
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.parallel import WorkerPoolConfig
from repro.plan import Planner, Runtime, SketchPlan
from repro.sparse import random_sparse

SEEDS = (11, 22, 33, 44)
D, B_D, B_N = 64, 32, 40

FAST_POOL = WorkerPoolConfig(workers=2, heartbeat_timeout=1.0,
                             backoff_base=0.0)


@pytest.fixture(scope="module")
def A():
    return random_sparse(300, 120, 0.05, seed=3)


def _cfg(seed=SEEDS[0], kernel="algo3"):
    return SketchConfig(kernel=kernel, rng_kind="philox", seed=seed,
                        b_d=B_D, b_n=B_N)


def compile_batched(A, *, kernel="algo3", driver="auto", pool=None,
                    seeds=SEEDS):
    return Planner().compile(A, _cfg(kernel=kernel), d=D, driver=driver,
                             pool=pool, batch_seeds=seeds)


@pytest.fixture(scope="module")
def solo_sketches(A):
    """Single-sketch reference runs, one per batch seed, per kernel."""
    out = {}
    for kernel in ("algo3", "algo4"):
        for seed in SEEDS:
            plan = Planner().compile(A, _cfg(seed=seed, kernel=kernel),
                                     d=D, driver="serial")
            out[kernel, seed] = Runtime().run(plan, A).sketch
    return out


class TestBatchedCompile:
    def test_batch_axis_recorded(self, A):
        plan = compile_batched(A)
        assert plan.problem.batch == len(SEEDS)
        assert plan.rng.batch_seeds == SEEDS
        assert plan.rng.seed == SEEDS[0]
        fields = {d.field: d for d in plan.decisions}
        assert "batch" in fields
        assert fields["batch"].data["seeds"] == list(SEEDS)

    def test_single_seed_degenerates_to_classic_plan(self, A):
        batched = Planner().compile(A, _cfg(seed=0), d=D,
                                    batch_seeds=[SEEDS[2]])
        classic = Planner().compile(A, _cfg(seed=SEEDS[2]), d=D)
        assert batched.problem.batch == 1
        assert batched.rng.batch_seeds is None
        assert batched.rng.seed == SEEDS[2]
        assert batched.digest() == classic.digest()

    def test_empty_batch_seeds_rejected(self, A):
        with pytest.raises(ConfigError, match="non-empty"):
            Planner().compile(A, _cfg(), d=D, batch_seeds=[])

    def test_digest_sees_the_batch(self, A):
        classic = Planner().compile(A, _cfg(), d=D)
        batched = compile_batched(A)
        other = compile_batched(A, seeds=(11, 22, 33, 45))
        assert batched.digest() != classic.digest()
        assert batched.digest() != other.digest()

    def test_json_round_trip(self, A, tmp_path):
        plan = compile_batched(A)
        path = tmp_path / "batched-plan.json"
        plan.to_json(path)
        back = SketchPlan.from_json(path)
        assert back.problem.batch == len(SEEDS)
        assert back.rng.batch_seeds == SEEDS
        assert back.digest() == plan.digest()

    def test_dict_round_trip_preserves_classic_record(self, A):
        classic = Planner().compile(A, _cfg(), d=D)
        record = classic.to_dict()
        assert "batch" not in record["problem"]
        assert "batch_seeds" not in record["rng"]
        assert SketchPlan.from_dict(record).digest() == classic.digest()


class TestBatchedExecution:
    @pytest.mark.parametrize("driver", ("serial", "engine", "process"))
    @pytest.mark.parametrize("kernel", ("algo3", "algo4"))
    def test_bit_identical_on_every_driver(self, A, solo_sketches, kernel,
                                           driver):
        pool = FAST_POOL if driver == "process" else None
        plan = compile_batched(A, kernel=kernel, driver=driver, pool=pool)
        result = Runtime().run(plan, A)
        assert result.sketch.shape == (len(SEEDS), D, A.shape[1])
        for t, seed in enumerate(SEEDS):
            assert np.array_equal(result.sketch[t],
                                  solo_sketches[kernel, seed]), \
                f"driver={driver} kernel={kernel} seed={seed}"

    def test_stats_record_the_batch(self, A):
        plan = compile_batched(A, driver="engine")
        result = Runtime().run(plan, A)
        assert result.stats.extra.get("batch") == len(SEEDS)

    @pytest.mark.parametrize("fault", [
        FaultSpec(kind="kill_worker", task=(32, 40), max_hits=1),
        FaultSpec(kind="hang_worker", task=(0, 40), sleep_seconds=30.0,
                  max_hits=1),
    ], ids=["kill_worker", "hang_worker"])
    @pytest.mark.parametrize("kernel", ("algo3", "algo4"))
    def test_process_faults_stay_bit_identical(self, A, solo_sketches,
                                               kernel, fault):
        plan = compile_batched(A, kernel=kernel, driver="process",
                               pool=FAST_POOL)
        inj = FaultInjector(FaultPlan([fault]))
        result = Runtime().run(plan, A, injector=inj)
        health = result.stats.health
        assert health is not None
        assert health.workers_lost >= 1
        for t, seed in enumerate(SEEDS):
            assert np.array_equal(result.sketch[t],
                                  solo_sketches[kernel, seed]), \
                f"kernel={kernel} fault={fault.kind} seed={seed}"
