"""Runtime.run: driver resolution, lifecycle events, validation."""

import math

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.faults import FaultInjector, FaultPlan
from repro.parallel import ResilienceConfig
from repro.plan import (
    BLOCK_DONE,
    BLOCK_START,
    CHECKPOINT_WRITTEN,
    DONE,
    PLAN_COMPILED,
    RNG_REQUEST,
    EventBus,
    PersistencePolicy,
    Planner,
    ProblemSpec,
    RngSpec,
    Runtime,
    SketchPlan,
    available_drivers,
    register_driver,
)
from repro.sparse import random_sparse


@pytest.fixture
def A():
    return random_sparse(120, 30, 0.1, seed=301)


def make_plan(A, **overrides):
    base = dict(
        problem=ProblemSpec(m=A.shape[0], n=A.shape[1], d=36, nnz=A.nnz),
        kernel="algo3", b_d=12, b_n=10,
        rng=RngSpec(kind="philox", seed=9),
    )
    base.update(overrides)
    return SketchPlan(**base)


class TestDriverResolution:
    def test_serial_fast_path_is_default(self, A):
        rt = Runtime()
        assert rt.resolve_driver(make_plan(A)) == "serial"

    def test_threads_select_engine(self, A):
        assert Runtime().resolve_driver(make_plan(A, threads=4)) == "engine"

    def test_resilience_selects_engine(self, A):
        plan = make_plan(A, resilience=ResilienceConfig())
        assert Runtime().resolve_driver(plan) == "engine"

    def test_persistence_selects_engine(self, A, tmp_path):
        plan = make_plan(A, persistence=PersistencePolicy(
            checkpoint_dir=str(tmp_path)))
        assert Runtime().resolve_driver(plan) == "engine"

    def test_injector_selects_engine(self, A):
        injector = FaultInjector(FaultPlan())
        assert Runtime().resolve_driver(make_plan(A), injector) == "engine"

    def test_fault_hook_subscriber_selects_engine(self, A):
        rt = Runtime()
        rt.bus.subscribe(RNG_REQUEST, lambda e: None)
        assert rt.resolve_driver(make_plan(A)) == "engine"

    def test_pregen_always_pregen(self, A):
        plan = make_plan(A, kernel="pregen", threads=4)
        assert Runtime().resolve_driver(plan) == "pregen"

    def test_explicit_driver_wins(self, A):
        plan = make_plan(A, driver="engine")
        assert Runtime().resolve_driver(plan) == "engine"

    def test_registry_contains_builtins(self):
        assert {"serial", "engine", "pregen"} <= set(available_drivers())


class TestValidation:
    def test_plan_type_checked(self, A):
        with pytest.raises(ConfigError, match="must be a SketchPlan"):
            Runtime().run({"kernel": "algo3"}, A)

    def test_shape_mismatch_is_loud(self, A):
        plan = make_plan(A)
        B = random_sparse(60, 30, 0.1, seed=1)
        with pytest.raises(ShapeError, match="compiled for"):
            Runtime().run(plan, B)

    def test_serial_driver_rejects_persistence(self, A, tmp_path):
        plan = make_plan(A, driver="serial",
                         persistence=PersistencePolicy(
                             checkpoint_dir=str(tmp_path)))
        with pytest.raises(ConfigError, match="serial driver"):
            Runtime().run(plan, A)

    def test_unknown_driver_lists_registry(self, A):
        plan = make_plan(A)
        rt = Runtime()
        rt.resolve_driver = lambda *a, **k: "quantum"
        with pytest.raises(ConfigError, match="quantum"):
            rt.run(plan, A)


class TestLifecycleEvents:
    def test_plan_compiled_first_done_last(self, A):
        bus = EventBus()
        order = []
        for name in (PLAN_COMPILED, BLOCK_START, BLOCK_DONE, DONE):
            bus.subscribe(name, lambda e, n=name: order.append(n))
        plan = make_plan(A)
        result = Runtime(bus=bus).run(plan, A)
        assert order[0] == PLAN_COMPILED
        assert order[-1] == DONE
        n_blocks = math.ceil(36 / 12) * math.ceil(30 / 10)
        assert order.count(BLOCK_START) == n_blocks
        assert order.count(BLOCK_DONE) == n_blocks
        assert result.kernel_used == "algo3"

    def test_engine_emits_block_events_too(self, A):
        bus = EventBus()
        starts, dones = [], []
        bus.subscribe(BLOCK_START, lambda e: starts.append(e["task"]))
        bus.subscribe(BLOCK_DONE, lambda e: dones.append(e["task"]))
        plan = make_plan(A, driver="engine", threads=2)
        Runtime(bus=bus).run(plan, A)
        n_blocks = math.ceil(36 / 12) * math.ceil(30 / 10)
        assert len(starts) == n_blocks
        assert len(dones) == n_blocks

    def test_checkpoint_written_events(self, A, tmp_path):
        bus = EventBus()
        written = []
        bus.subscribe(CHECKPOINT_WRITTEN, lambda e: written.append(e["path"]))
        plan = make_plan(A, persistence=PersistencePolicy(
            checkpoint_dir=str(tmp_path), every=1))
        Runtime(bus=bus).run(plan, A)
        assert written, "no checkpoint_written events fired"
        assert all(str(tmp_path) in str(p) for p in written)

    def test_done_carries_stats(self, A):
        bus = EventBus()
        final = {}
        bus.subscribe(DONE, lambda e: final.update(stats=e["stats"],
                                                   driver=e["driver"]))
        Runtime(bus=bus).run(make_plan(A), A)
        assert final["driver"] == "serial"
        assert final["stats"].kernel == "algo3"


class TestExecution:
    def test_serial_and_engine_agree(self, A):
        serial = Runtime().run(make_plan(A, driver="serial"), A)
        engine = Runtime().run(make_plan(A, driver="engine"), A)
        np.testing.assert_array_equal(serial.sketch, engine.sketch)

    def test_normalized_plan_scales_output(self, A):
        raw = Runtime().run(make_plan(A), A)
        spec = RngSpec(kind="philox", seed=9, normalize=True)
        scaled = Runtime().run(make_plan(A, rng=spec), A)
        assert scaled.scale == spec.normalization(36)
        np.testing.assert_allclose(scaled.sketch, raw.sketch * scaled.scale)

    def test_rng_factory_override(self, A):
        from repro.rng import PhiloxSketchRNG

        default = Runtime().run(make_plan(A), A)
        overridden = Runtime().run(
            make_plan(A, rng=RngSpec(kind="philox", seed=1234)), A,
            rng_factory=lambda w: PhiloxSketchRNG(9))
        np.testing.assert_array_equal(default.sketch, overridden.sketch)

    def test_result_carries_plan(self, A):
        plan = make_plan(A)
        assert Runtime().run(plan, A).plan is plan

    def test_pregen_driver_runs(self, A):
        plan = make_plan(A, kernel="pregen")
        result = Runtime().run(plan, A)
        assert result.sketch.shape == (36, 30)

    def test_compiled_plan_end_to_end(self, A):
        plan = Planner().compile(A, gamma=2.0)
        result = Runtime().run(plan, A)
        assert result.sketch.shape == (60, 30)


class TestDriverRegistry:
    def test_register_custom_driver(self, A):
        calls = []

        def fake_driver(runtime, plan, mat, factory, blocked, injector):
            calls.append(plan.kernel)
            real = Runtime().run(make_plan(mat, driver="serial"), mat)
            return real.sketch, real.stats

        register_driver("fake", fake_driver)
        try:
            plan = make_plan(A, driver="serial")
            rt = Runtime()
            rt.resolve_driver = lambda *a, **k: "fake"
            result = rt.run(plan, A)
            assert calls == ["algo3"]
            assert result.sketch.shape == (36, 30)
        finally:
            from repro.plan.runtime import _DRIVERS

            _DRIVERS.pop("fake", None)
