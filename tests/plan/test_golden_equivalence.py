"""Golden equivalence: the plan runtime is bit-identical to the
pre-refactor paths.

The oracle is :func:`repro.kernels.sketch_spmm` — the kernel layer the
refactor did not touch.  Every public entry point (``Runtime.run``,
``sketch()``, ``StreamingSketch``, ``ResilientExecutor``) must produce
the same bits for the same ``(kernel, backend, seed)``, across thread
counts and across a checkpoint/resume cycle, and a plan must survive
JSON serialize -> deserialize -> run without changing a single bit.
"""

import numpy as np
import pytest

from repro.core import SketchConfig, StreamingSketch, sketch
from repro.kernels.backends import numba_available
from repro.kernels.blocking import sketch_spmm
from repro.parallel import ResilientExecutor
from repro.plan import (
    PersistencePolicy,
    Planner,
    ProblemSpec,
    RngSpec,
    Runtime,
    SketchPlan,
)
from repro.rng import make_rng
from repro.sparse import CSCMatrix, random_sparse

D, B_D, B_N = 36, 12, 10
SEED = 9

KERNELS = ("algo3", "algo4")
BACKENDS = ("numpy",) + (("numba",) if numba_available() else ())


@pytest.fixture(scope="module")
def A():
    return random_sparse(120, 30, 0.1, seed=301)


def oracle(A, kernel, backend="numpy"):
    """The pre-refactor ground truth: the untouched kernel layer."""
    out, _ = sketch_spmm(A, D, make_rng("philox", SEED), kernel=kernel,
                         b_d=B_D, b_n=B_N, backend=backend)
    return out


def make_plan(A, kernel, backend="numpy", **overrides):
    base = dict(
        problem=ProblemSpec(m=A.shape[0], n=A.shape[1], d=D, nnz=A.nnz),
        kernel=kernel, b_d=B_D, b_n=B_N, backend=backend,
        rng=RngSpec(kind="philox", seed=SEED),
    )
    base.update(overrides)
    return SketchPlan(**base)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("kernel", KERNELS)
class TestRuntimeMatchesKernelLayer:
    def test_serial_driver(self, A, kernel, backend):
        result = Runtime().run(make_plan(A, kernel, backend,
                                         driver="serial"), A)
        np.testing.assert_array_equal(result.sketch, oracle(A, kernel, backend))

    def test_engine_driver_one_thread(self, A, kernel, backend):
        result = Runtime().run(make_plan(A, kernel, backend,
                                         driver="engine"), A)
        np.testing.assert_array_equal(result.sketch, oracle(A, kernel, backend))

    def test_engine_driver_four_threads(self, A, kernel, backend):
        result = Runtime().run(make_plan(A, kernel, backend, driver="engine",
                                         threads=4), A)
        np.testing.assert_array_equal(result.sketch, oracle(A, kernel, backend))

    def test_json_round_trip_then_run(self, A, kernel, backend, tmp_path):
        """Serialize -> deserialize -> run reproduces the original bits."""
        path = tmp_path / "plan.json"
        make_plan(A, kernel, backend).to_json(path)
        revived = SketchPlan.from_json(path)
        result = Runtime().run(revived, A)
        np.testing.assert_array_equal(result.sketch, oracle(A, kernel, backend))


@pytest.mark.parametrize("kernel", KERNELS)
class TestEntryPointsAgree:
    def test_sketch_entry_point(self, A, kernel):
        cfg = SketchConfig(rng_kind="philox", seed=SEED, kernel=kernel,
                           b_d=B_D, b_n=B_N)
        result = sketch(A, config=cfg, d=D)
        np.testing.assert_array_equal(result.sketch, oracle(A, kernel))

    def test_streaming_single_batch(self, A, kernel):
        st = StreamingSketch(D, A.shape[1], make_rng("philox", SEED),
                             kernel=kernel, b_d=B_D, b_n=B_N)
        st.absorb(A)
        np.testing.assert_array_equal(st.sketch, oracle(A, kernel))

    def test_streaming_split_batches(self, A, kernel):
        """Row-partitioned absorption equals one-shot sketching (to
        rounding — partial products accumulate in a different order)."""
        dense = A.to_dense()
        st = StreamingSketch(D, A.shape[1], make_rng("philox", SEED),
                             kernel=kernel, b_d=B_D, b_n=B_N)
        for lo in range(0, 120, 40):
            st.absorb(CSCMatrix.from_dense(dense[lo:lo + 40]))
        np.testing.assert_allclose(st.sketch, oracle(A, kernel), atol=1e-12)

    def test_resilient_executor(self, A, kernel):
        ex = ResilientExecutor(A, D, lambda w: make_rng("philox", SEED),
                               threads=2, kernel=kernel, b_d=B_D, b_n=B_N)
        out, stats = ex.run()
        np.testing.assert_array_equal(out, oracle(A, kernel))
        assert stats.kernel == f"{kernel}-parallel"


class TestCheckpointResumeEquivalence:
    def test_checkpointed_run_is_bit_identical(self, A, tmp_path):
        plan = make_plan(A, "algo3", persistence=PersistencePolicy(
            checkpoint_dir=str(tmp_path), every=1))
        result = Runtime().run(plan, A)
        np.testing.assert_array_equal(result.sketch, oracle(A, "algo3"))

    def test_resume_completes_to_identical_bits(self, A, tmp_path):
        """Interrupt after a checkpoint, resume, finish: same bits."""
        from repro.faults import (
            FaultInjector,
            FaultPlan,
            FaultSpec,
            InjectedCrashError,
        )

        inj = FaultInjector(FaultPlan([
            FaultSpec(kind="torn_write", task=(2, 0))]))
        crashing = make_plan(A, "algo3", persistence=PersistencePolicy(
            checkpoint_dir=str(tmp_path), every=1))
        with pytest.raises(InjectedCrashError):
            Runtime().run(crashing, A, injector=inj)

        resuming = make_plan(A, "algo3", persistence=PersistencePolicy(
            checkpoint_dir=str(tmp_path), every=1, resume=True))
        result = Runtime().run(resuming, A)
        np.testing.assert_array_equal(result.sketch, oracle(A, "algo3"))
        assert result.stats.extra["resumed_from"] is not None

    def test_planner_compiled_checkpoint_cycle(self, A, tmp_path):
        """Planner -> JSON -> crash -> from_json(resume) -> same bits."""
        cfg = SketchConfig(rng_kind="philox", seed=SEED, kernel="algo3",
                           b_d=B_D, b_n=B_N)
        plan = Planner().compile(A, cfg, d=D, persistence=PersistencePolicy(
            checkpoint_dir=str(tmp_path), every=1))
        reference = Runtime().run(plan, A).sketch

        data = plan.to_dict()
        data["persistence"]["resume"] = True
        revived = SketchPlan.from_dict(data)
        resumed = Runtime().run(revived, A)
        np.testing.assert_array_equal(resumed.sketch, reference)
        np.testing.assert_array_equal(resumed.sketch, oracle(A, "algo3"))


class TestOldVsNewSpelling:
    def test_legacy_checkpoint_kwargs_match_policy_spelling(self, A, tmp_path):
        legacy_dir = tmp_path / "legacy"
        policy_dir = tmp_path / "policy"
        with pytest.warns(DeprecationWarning):
            old, _ = ResilientExecutor(
                A, D, lambda w: make_rng("philox", SEED), threads=2,
                kernel="algo3", b_d=B_D, b_n=B_N,
                checkpoint_dir=str(legacy_dir)).run()
        new, _ = ResilientExecutor(
            A, D, lambda w: make_rng("philox", SEED), threads=2,
            kernel="algo3", b_d=B_D, b_n=B_N,
            persistence=PersistencePolicy(
                checkpoint_dir=str(policy_dir))).run()
        np.testing.assert_array_equal(old, new)
