"""Tests for repro.plan.events (the lifecycle event bus)."""

import threading

import pytest

from repro.plan import (
    BLOCK_DONE,
    BLOCK_START,
    FAULT_HOOK_EVENTS,
    LIFECYCLE_EVENTS,
    RNG_REQUEST,
    Event,
    EventBus,
)


class TestEvent:
    def test_mapping_protocol(self):
        e = Event("block_start", {"task": (0, 0), "i": 0})
        assert e["task"] == (0, 0)
        assert "i" in e and "j" not in e
        assert e.get("j", 7) == 7
        e["j"] = 3
        assert e["j"] == 3

    def test_name_constants_cover_hooks(self):
        assert set(FAULT_HOOK_EVENTS).isdisjoint(LIFECYCLE_EVENTS)
        assert BLOCK_START in LIFECYCLE_EVENTS
        assert RNG_REQUEST in FAULT_HOOK_EVENTS


class TestEventBus:
    def test_emit_without_subscribers_is_noop(self):
        bus = EventBus()
        event = bus.emit("anything", x=1)
        assert event["x"] == 1

    def test_handlers_run_in_registration_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe("tick", lambda e: seen.append("a"))
        bus.subscribe("tick", lambda e: seen.append("b"))
        bus.emit("tick")
        assert seen == ["a", "b"]

    def test_handler_mutation_is_visible_to_emitter(self):
        bus = EventBus()
        bus.subscribe(RNG_REQUEST, lambda e: e.__setitem__("rng", "swapped"))
        assert bus.emit(RNG_REQUEST, rng="original")["rng"] == "swapped"

    def test_handler_exceptions_propagate(self):
        bus = EventBus()

        def boom(event):
            raise RuntimeError("injected")

        bus.subscribe("tick", boom)
        with pytest.raises(RuntimeError, match="injected"):
            bus.emit("tick")

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        handler = bus.subscribe("tick", lambda e: seen.append(1))
        bus.emit("tick")
        bus.unsubscribe("tick", handler)
        bus.emit("tick")
        assert seen == [1]
        bus.unsubscribe("tick", handler)  # no-op, no error

    def test_has_subscribers(self):
        bus = EventBus()
        assert not bus.has_subscribers(BLOCK_START, BLOCK_DONE)
        bus.subscribe(BLOCK_DONE, lambda e: None)
        assert bus.has_subscribers(BLOCK_START, BLOCK_DONE)
        assert not bus.has_subscribers(BLOCK_START)

    def test_observer_exceptions_are_isolated(self):
        """An observer that raises must not starve later subscribers or
        propagate to the emitter; the drop is counted."""
        bus = EventBus()
        seen = []

        def boom(event):
            raise RuntimeError("observer bug")

        bus.subscribe_observer("tick", boom)
        bus.subscribe_observer("tick", lambda e: seen.append("after"))
        event = bus.emit("tick", x=1)
        assert event["x"] == 1
        assert seen == ["after"]
        assert bus.dropped_events == {"tick": 1}
        assert bus.dropped_total() == 1

    def test_intervention_exceptions_still_propagate_past_observers(self):
        """The fault-injection contract is unchanged: intervention
        handlers raise through emit even when observers are present."""
        bus = EventBus()
        bus.subscribe_observer("tick", lambda e: None)

        def boom(event):
            raise RuntimeError("injected")

        bus.subscribe("tick", boom)
        with pytest.raises(RuntimeError, match="injected"):
            bus.emit("tick")

    def test_interventions_run_before_observers(self):
        """Observers see the payload after intervention mutation."""
        bus = EventBus()
        seen = []
        bus.subscribe_observer(RNG_REQUEST, lambda e: seen.append(e["rng"]))
        bus.subscribe(RNG_REQUEST, lambda e: e.__setitem__("rng", "swapped"))
        bus.emit(RNG_REQUEST, rng="original")
        assert seen == ["swapped"]

    def test_observer_counts_toward_has_subscribers(self):
        bus = EventBus()
        bus.subscribe_observer(BLOCK_DONE, lambda e: None)
        assert bus.has_subscribers(BLOCK_DONE)

    def test_unsubscribe_removes_observers_too(self):
        bus = EventBus()
        seen = []
        handler = bus.subscribe_observer("tick", lambda e: seen.append(1))
        bus.emit("tick")
        bus.unsubscribe("tick", handler)
        bus.emit("tick")
        assert seen == [1]

    def test_dropped_events_accumulate_per_event_name(self):
        bus = EventBus()

        def boom(event):
            raise ValueError("x")

        bus.subscribe_observer("a", boom)
        bus.subscribe_observer("b", boom)
        bus.emit("a")
        bus.emit("a")
        bus.emit("b")
        assert bus.dropped_events == {"a": 2, "b": 1}
        assert bus.dropped_total() == 3

    def test_thread_safe_subscription(self):
        bus = EventBus()

        def add_handlers():
            for _ in range(100):
                bus.subscribe("tick", lambda e: None)

        threads = [threading.Thread(target=add_handlers) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        count = 0

        def counter(event):
            nonlocal count
            count += 1

        # 400 registered handlers plus this one all fire.
        bus.subscribe("tick", counter)
        bus.emit("tick")
        assert count == 1
        assert bus.has_subscribers("tick")
