"""SketchPlan serialization: JSON round trip, validation, explain()."""

import itertools

import pytest

from repro.errors import ConfigError
from repro.parallel import DegradationPolicy, ResilienceConfig
from repro.plan import (
    PLAN_FORMAT_VERSION,
    PersistencePolicy,
    PlanDecision,
    ProblemSpec,
    RngSpec,
    SketchPlan,
)


def make_plan(**overrides):
    base = dict(
        problem=ProblemSpec(m=120, n=30, d=90, nnz=360, gamma=3.0),
        kernel="algo3", b_d=32, b_n=16,
    )
    base.update(overrides)
    return SketchPlan(**base)


class TestProblemSpec:
    def test_density(self):
        p = ProblemSpec(m=100, n=10, d=30, nnz=50)
        assert p.density == 0.05
        assert ProblemSpec(m=100, n=10, d=30).density is None

    @pytest.mark.parametrize("field", ["m", "n", "d"])
    def test_positive_dims_required(self, field):
        kwargs = dict(m=10, n=10, d=10)
        kwargs[field] = 0
        with pytest.raises(ConfigError):
            ProblemSpec(**kwargs)


class TestRngSpec:
    def test_build_matches_family_and_seed(self):
        rng = RngSpec(kind="philox", seed=42, distribution="rademacher").build()
        assert rng.family == "philox"
        assert rng.seed == 42
        assert rng.dist.name == "rademacher"

    def test_fresh_generator_per_build(self):
        spec = RngSpec(kind="xoshiro", seed=5)
        assert spec.build() is not spec.build()

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ConfigError):
            RngSpec(distribution="cauchy")

    def test_normalization(self):
        assert RngSpec(normalize=False).normalization(100) == 1.0
        assert RngSpec(normalize=True,
                       distribution="gaussian").normalization(100) == 0.1


class TestPlanValidation:
    def test_kernel_choices(self):
        with pytest.raises(ConfigError):
            make_plan(kernel="algo5")

    def test_driver_choices(self):
        with pytest.raises(ConfigError):
            make_plan(driver="distributed")

    def test_pregen_rejects_persistence(self):
        with pytest.raises(ConfigError, match="pregen"):
            make_plan(kernel="pregen",
                      persistence=PersistencePolicy(checkpoint_dir="/tmp/x"))

    def test_resilience_type_checked(self):
        with pytest.raises(ConfigError, match="ResilienceConfig"):
            make_plan(resilience={"max_retries": 3})

    def test_frozen(self):
        plan = make_plan()
        with pytest.raises(AttributeError):
            plan.kernel = "algo4"


class TestJsonRoundTrip:
    def test_dict_round_trip_identity(self):
        plan = make_plan(
            backend="numpy",
            rng=RngSpec(kind="philox", seed=7, distribution="rademacher",
                        normalize=True),
            threads=4, driver="engine",
            resilience=ResilienceConfig(
                max_retries=3, task_timeout=1.5, guardrail="recompute",
                degradation=DegradationPolicy(kernel_fallback=False)),
            persistence=PersistencePolicy(checkpoint_dir="/tmp/ck", every=2,
                                          keep=3),
            decisions=(PlanDecision(field="kernel", value="algo3",
                                    reason="forced", data={"rho": 0.1}),),
        )
        clone = SketchPlan.from_dict(plan.to_dict())
        assert clone == plan
        assert clone.to_dict() == plan.to_dict()

    def test_json_string_round_trip(self):
        plan = make_plan()
        clone = SketchPlan.from_json(plan.to_json())
        assert clone == plan

    def test_json_file_round_trip(self, tmp_path):
        path = tmp_path / "plan.json"
        plan = make_plan(threads=2, driver="engine")
        text = plan.to_json(path)
        assert path.read_text() == text + "\n"
        assert SketchPlan.from_json(path) == plan
        assert SketchPlan.from_json(str(path)) == plan

    def test_newer_format_version_rejected(self):
        data = make_plan().to_dict()
        data["version"] = PLAN_FORMAT_VERSION + 1
        with pytest.raises(ConfigError, match="newer"):
            SketchPlan.from_dict(data)

    def test_round_trip_property_over_config_grid(self):
        """Every combination in a small config grid survives the trip."""
        kernels = ("algo3", "algo4", "pregen")
        rngs = (RngSpec(), RngSpec(kind="philox", seed=11,
                                   distribution="gaussian", normalize=True))
        resiliences = (None, ResilienceConfig(max_retries=1))
        persistences = (PersistencePolicy(),
                        PersistencePolicy(checkpoint_dir="ck", every=3,
                                          resume=True))
        for kernel, rng, res, pol in itertools.product(
                kernels, rngs, resiliences, persistences):
            if kernel == "pregen" and pol.enabled:
                continue  # invalid by design, covered above
            plan = make_plan(kernel=kernel, rng=rng, resilience=res,
                             persistence=pol, threads=2)
            clone = SketchPlan.from_json(plan.to_json())
            assert clone == plan, (kernel, rng, res, pol)

    def test_manager_backed_policy_serializes_its_directory(self, tmp_path):
        from repro.persist import CheckpointManager

        pol = PersistencePolicy(manager=CheckpointManager(tmp_path))
        assert pol.to_dict()["checkpoint_dir"] == str(tmp_path)


class TestDigest:
    # Pinned so an accidental change to the canonical serialization (key
    # order, float repr, field set) is caught: every artifact cache and
    # plan registry keyed by digest would silently go cold otherwise.
    PINNED = "c70bbf49791d0d7cc3e274ec550620924b1494d84910946b30e92450ef3deb4f"

    def test_digest_is_pinned(self):
        assert make_plan().digest() == self.PINNED

    def test_digest_ignores_decisions(self):
        """The audit trail is provenance: a warm compile annotates its
        decisions (cache hits) yet must digest identically to cold."""
        annotated = make_plan(decisions=(
            PlanDecision(field="kernel", value="algo3",
                         reason="forced (cached tuning)",
                         data={"cache": "hit"}),
        ))
        assert annotated.digest() == make_plan().digest()

    def test_digest_tracks_behaviour(self):
        assert make_plan(kernel="algo4").digest() != make_plan().digest()
        assert make_plan(b_n=8).digest() != make_plan().digest()

    def test_to_json_is_canonical(self):
        """Equal plans render byte-identical JSON (sorted keys, stable
        float repr) — required for content addressing."""
        a, b = make_plan(), make_plan()
        assert a.to_json() == b.to_json()
        assert a.to_json(indent=2) == b.to_json(indent=2)
        # Keys are sorted at every nesting level.
        import json as _json

        rendered = _json.loads(a.to_json())
        assert list(rendered) == sorted(rendered)

    def test_digest_stable_across_json_round_trip(self):
        plan = make_plan(threads=2, driver="engine")
        from repro.plan import SketchPlan as SP

        assert SP.from_json(plan.to_json()).digest() == plan.digest()


class TestExplain:
    def test_explain_lists_choices_and_reasons(self):
        plan = make_plan(decisions=(
            PlanDecision(field="kernel", value="algo3",
                         reason="column mass concentrated",
                         data={"rho": 0.1, "model_ci": 2.5}),
        ))
        text = plan.explain()
        assert "kernel      : algo3" in text
        assert "b_d=32, b_n=16" in text
        assert "gamma=3" in text
        assert "column mass concentrated" in text
        assert "rho=0.1" in text

    def test_explain_renders_policies(self):
        plan = make_plan(
            resilience=ResilienceConfig(max_retries=5, guardrail="mask"),
            persistence=PersistencePolicy(checkpoint_dir="/tmp/ck", every=4),
        )
        text = plan.explain()
        assert "max_retries=5" in text
        assert "dir=/tmp/ck" in text
        assert "every=4" in text


class TestPersistencePolicy:
    def test_manager_and_dir_mutually_exclusive(self, tmp_path):
        from repro.persist import CheckpointManager

        with pytest.raises(ConfigError,
                           match="at most one of checkpoint / checkpoint_dir"):
            PersistencePolicy(checkpoint_dir=str(tmp_path),
                              manager=CheckpointManager(tmp_path))

    def test_resume_requires_target(self):
        with pytest.raises(ConfigError, match="resume=True requires"):
            PersistencePolicy(resume=True)

    def test_enabled(self, tmp_path):
        assert not PersistencePolicy().enabled
        assert PersistencePolicy(checkpoint_dir=str(tmp_path)).enabled

    def test_build_manager(self, tmp_path):
        assert PersistencePolicy().build_manager() is None
        mgr = PersistencePolicy(checkpoint_dir=str(tmp_path)).build_manager()
        assert str(mgr.directory) == str(tmp_path)

    def test_from_legacy(self, tmp_path):
        pol = PersistencePolicy.from_legacy(checkpoint_dir=tmp_path,
                                            checkpoint_every=5,
                                            checkpoint_keep=4, resume=True)
        assert pol == PersistencePolicy(checkpoint_dir=str(tmp_path),
                                        every=5, keep=4, resume=True)

    def test_cadence_validated(self):
        with pytest.raises(ConfigError):
            PersistencePolicy(every=0)
