"""Property sweep of :func:`repro.plan.compute_shards`.

The shard computation is the foundation of every partition guarantee:
each stripe must be non-empty, cut at column-block boundaries (so the
within-shard blocking realizes identical RNG entries to the unsharded
run), and together the stripes must cover ``[0, n)`` exactly once, in
order, for *every* (n, b_n, shards, strategy) combination and any
nonzero-weight profile — including the degenerate ones (all-empty
columns, all the mass in one column, trailing empty columns) that once
stranded zero-weight trailing blocks outside every stripe.
"""

import random

import pytest

from repro.plan import PARTITION_STRATEGIES, PartitionSpec, compute_shards

NS = (1, 5, 7, 12, 64, 100)
B_NS = (1, 3, 4, 7, 64, 128)
SHARD_COUNTS = (1, 2, 3, 7, 50)


def _nnz_patterns(n: int):
    """Weight profiles chosen to stress the quantile cuts."""
    rng = random.Random(n)
    patterns = {
        "uniform": [3] * n,
        "all_empty": [0] * n,
        "front_loaded": [100 if i < max(1, n // 8) else 0 for i in range(n)],
        # Trailing zero-weight columns: the profile that used to strand
        # blocks past the last quantile outside every stripe.
        "trailing_empty": [5 if i < max(1, n // 2) else 0 for i in range(n)],
        "one_hot": [1000 if i == n // 2 else 0 for i in range(n)],
        "random": [rng.randrange(0, 9) for _ in range(n)],
    }
    return patterns.items()


def _check_stripes(shards, *, n: int, b_n: int, requested: int):
    n_blocks = (n + b_n - 1) // b_n
    assert len(shards) == min(requested, n_blocks)
    cursor = 0
    for i, shard in enumerate(shards):
        assert shard.index == i
        assert shard.shards == len(shards)
        # Non-empty, contiguous, in column order.
        assert shard.col_start == cursor
        assert shard.col_stop > shard.col_start
        # Block aligned: starts on a b_n multiple; stops on one or at n.
        assert shard.col_start % b_n == 0
        assert shard.col_stop % b_n == 0 or shard.col_stop == n
        cursor = shard.col_stop
    # Exactly-once coverage of [0, n).
    assert cursor == n


@pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
@pytest.mark.parametrize("requested", SHARD_COUNTS)
@pytest.mark.parametrize("b_n", B_NS)
@pytest.mark.parametrize("n", NS)
def test_stripes_cover_exactly_once(n, b_n, requested, strategy):
    spec = PartitionSpec(shards=requested, strategy=strategy)
    for label, col_nnz in _nnz_patterns(n):
        shards = compute_shards(spec, n=n, b_n=b_n, col_nnz=col_nnz)
        _check_stripes(shards, n=n, b_n=b_n, requested=requested)
        # nnz annotations must partition the total exactly.
        assert all(s.nnz is not None for s in shards), label
        assert sum(s.nnz for s in shards) == sum(col_nnz), label
        for s in shards:
            assert s.nnz == sum(col_nnz[s.col_start:s.col_stop]), label


@pytest.mark.parametrize("strategy", ("even", "propagation"))
@pytest.mark.parametrize("n,b_n,requested", [
    (1, 1, 1), (5, 3, 2), (100, 7, 7), (64, 64, 50), (12, 4, 3),
])
def test_stripes_without_col_nnz(n, b_n, requested, strategy):
    spec = PartitionSpec(shards=requested, strategy=strategy)
    shards = compute_shards(spec, n=n, b_n=b_n)
    _check_stripes(shards, n=n, b_n=b_n, requested=requested)
    assert all(s.nnz is None for s in shards)
