"""Planner.compile: d/gamma resolution, kernel dispatch, Eq. 4 numbers."""

import math

import pytest

from repro.core import SketchConfig
from repro.errors import ConfigError
from repro.model import LAPTOP
from repro.plan import PersistencePolicy, Planner, compile_plan
from repro.sparse import random_sparse


@pytest.fixture
def A():
    return random_sparse(120, 30, 0.1, seed=301)


class TestSketchSizeResolution:
    def test_gamma_and_d_mutually_exclusive(self, A):
        with pytest.raises(ConfigError, match="at most one of gamma / d"):
            Planner().compile(A, gamma=3.0, d=90)

    def test_gamma_must_exceed_one(self, A):
        with pytest.raises(ConfigError, match="gamma must exceed 1"):
            Planner().compile(A, gamma=1.0)

    def test_gamma_override(self, A):
        plan = Planner().compile(A, gamma=2.5)
        assert plan.problem.d == int(math.ceil(2.5 * 30))
        assert plan.problem.gamma == 2.5

    def test_explicit_d(self, A):
        plan = Planner().compile(A, d=77)
        assert plan.problem.d == 77
        assert plan.problem.gamma is None

    def test_config_gamma_default(self, A):
        cfg = SketchConfig(gamma=4.0)
        plan = Planner().compile(A, cfg)
        assert plan.problem.d == cfg.sketch_size(30)
        assert plan.problem.gamma == 4.0


class TestDecisions:
    def test_forced_kernel_recorded(self, A):
        plan = Planner().compile(A, SketchConfig(kernel="algo4"))
        assert plan.kernel == "algo4"
        dec = {d.field: d for d in plan.decisions}
        assert "forced" in dec["kernel"].reason

    def test_auto_kernel_records_dispatch_reason(self, A):
        plan = Planner().compile(A, SketchConfig(kernel="auto"))
        assert plan.kernel in ("algo3", "algo4")
        dec = {d.field: d for d in plan.decisions}
        assert "column_concentration" in dec["kernel"].data
        assert dec["kernel"].data["machine"] == LAPTOP.name

    def test_blocking_overrides_noted(self, A):
        plan = Planner().compile(A, SketchConfig(b_d=8, b_n=5))
        assert (plan.b_d, plan.b_n) == (8, 5)
        dec = {d.field: d for d in plan.decisions}
        assert "overridden by config" in dec["blocking"].reason

    def test_eq4_model_numbers_in_blocking_decision(self, A):
        plan = Planner().compile(A)
        dec = {d.field: d for d in plan.decisions}
        data = dec["blocking"].data
        for key in ("rho", "h", "M_words", "model_n1", "model_d1",
                    "model_ci", "machine_balance"):
            assert key in data, key
        assert data["rho"] == pytest.approx(A.density)
        # the model numbers surface in explain() too
        assert "model_ci" in plan.explain()

    def test_problem_records_nnz(self, A):
        plan = Planner().compile(A)
        assert plan.problem.nnz == A.nnz
        assert (plan.problem.m, plan.problem.n) == A.shape


class TestCompileOptions:
    def test_persistence_attached(self, A, tmp_path):
        pol = PersistencePolicy(checkpoint_dir=str(tmp_path), every=2)
        plan = Planner().compile(A, persistence=pol)
        assert plan.persistence is pol

    def test_driver_pinned(self, A):
        assert Planner().compile(A, driver="engine").driver == "engine"
        assert Planner().compile(A).driver == "auto"

    def test_threads_from_config(self, A):
        plan = Planner().compile(A, SketchConfig(threads=4))
        assert plan.threads == 4

    def test_rng_spec_mirrors_config(self, A):
        cfg = SketchConfig(rng_kind="philox", seed=13,
                           distribution="rademacher")
        plan = Planner().compile(A, cfg)
        assert plan.rng.kind == "philox"
        assert plan.rng.seed == 13
        assert plan.rng.distribution == "rademacher"

    def test_invalid_tune_mode(self):
        with pytest.raises(ConfigError):
            Planner(tune="guess")

    def test_compile_plan_wrapper(self, A):
        plan = compile_plan(A, gamma=3.0, driver="serial")
        assert plan.driver == "serial"
        assert plan.problem.d == 90

    def test_measure_tune_adopts_a_measured_blocking(self, A):
        plan = Planner(tune="measure").compile(A, SketchConfig(seed=3))
        dec = {d.field: d for d in plan.decisions}
        assert "autotuned" in dec["blocking"].reason
        assert dec["blocking"].data.get("trials", 0) > 0
