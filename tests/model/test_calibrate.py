"""Tests for repro.model.calibrate (host measurement)."""

import pytest

from repro.model import (
    calibrate_machine,
    measure_peak_gflops,
    measure_random_access_penalty,
)


class TestProbes:
    def test_peak_gflops_positive(self):
        peak = measure_peak_gflops(size=128, repeats=2)
        assert peak > 0.1  # any BLAS manages 100 MFlop/s

    def test_penalty_at_least_one(self):
        pen = measure_random_access_penalty(n_elements=500_000, repeats=2)
        assert pen >= 1.0
        assert pen < 100.0  # sanity ceiling

    def test_probe_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            measure_peak_gflops(size=0)
        with pytest.raises(ConfigError):
            measure_random_access_penalty(n_elements=-1)


class TestCalibratedModel:
    def test_model_is_valid_and_usable(self):
        m = calibrate_machine("testhost", cache_bytes=8_000_000)
        assert m.name == "testhost"
        assert m.cache_bytes == 8_000_000
        assert m.peak_gflops > 0
        assert m.bandwidth_gbs > 0
        assert m.h_base > 0
        assert m.random_access_penalty >= 1.0
        assert m.cores >= 1
        # Downstream consumers accept it.
        assert isinstance(m.machine_balance, float)
        assert isinstance(m.favors_reuse, bool)

    def test_dispatch_with_calibrated_model(self):
        from repro.kernels import choose_kernel
        from repro.sparse import random_sparse

        m = calibrate_machine(cache_bytes=8_000_000)
        A = random_sparse(200, 50, 0.05, seed=1)
        choice = choose_kernel(m, A)
        assert choice.kernel in ("algo3", "algo4")

    def test_scaling_model_with_calibrated_machine(self):
        from repro.parallel import simulate_strong_scaling
        from repro.sparse import random_sparse

        m = calibrate_machine(cache_bytes=8_000_000)
        A = random_sparse(300, 40, 0.05, seed=2)
        pts = simulate_strong_scaling(A, 80, m, kernel="algo3", b_d=80,
                                      b_n=8, threads_list=[1, 2])
        assert pts[0].seconds >= pts[1].seconds

    def test_cache_autodetect_positive(self):
        m = calibrate_machine()
        assert m.cache_bytes > 0
