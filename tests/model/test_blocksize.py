"""Tests for repro.model.blocksize (Equation 4 optimization)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.model import (
    FRONTERA,
    optimize_blocks,
    recommend_block_sizes,
    scan_objective,
)
from repro.model.roofline import optimal_n1_big_rho


class TestScanObjective:
    def test_shapes(self):
        n1, g = scan_objective(0.01, 10_000, 0.5, n1_max=50)
        assert n1.shape == (50,)
        assert g.shape == (50,)

    def test_formula_at_point(self):
        n1, g = scan_objective(0.1, 1000, 0.5, n1_max=3)
        expected = 4 * 2 * 0.1 / 1000 + 0.5 * (1 - 0.9**2) / 2
        assert g[1] == pytest.approx(expected)

    def test_rejects_bad_rho(self):
        with pytest.raises(ConfigError):
            scan_objective(0.0, 1000, 0.5)


class TestOptimizeBlocks:
    def test_plan_satisfies_cache(self):
        plan = optimize_blocks(1e-3, 100_000, 0.3)
        assert plan.satisfies_cache()

    def test_plan_beats_neighbours(self):
        # The optimizer minimizes the reduced objective g(n1); the chosen
        # n1 must beat its integer neighbours on that curve.
        M, h, rho = 50_000, 0.4, 5e-3
        plan = optimize_blocks(rho, M, h)

        def g(n1):
            return 4 * n1 * rho / M + h * (1 - (1 - rho) ** n1) / n1

        assert g(plan.n1) <= g(plan.n1 + 1) + 1e-15
        if plan.n1 > 1:
            assert g(plan.n1) <= g(plan.n1 - 1) + 1e-15

    def test_tiny_rho_prefers_n1_one(self):
        # Section III-A1: for rho -> 0 the optimum is n1 = 1.
        plan = optimize_blocks(1e-9, 10_000, 0.5)
        assert plan.n1 == 1

    def test_big_rho_matches_closed_form(self):
        M, h, rho = 1_000_000, 0.5, 0.9
        plan = optimize_blocks(rho, M, h)
        closed = optimal_n1_big_rho(M, h, rho)
        assert plan.n1 == pytest.approx(closed, rel=0.3)

    def test_cheaper_rng_smaller_n1(self):
        # Cheap generation -> regenerate more, block narrower.
        lo = optimize_blocks(0.05, 100_000, 0.01)
        hi = optimize_blocks(0.05, 100_000, 2.0)
        assert lo.n1 <= hi.n1

    def test_ci_positive(self):
        plan = optimize_blocks(0.01, 10_000, 0.5)
        assert plan.ci > 0


class TestRecommendBlockSizes:
    def test_clipped_to_problem(self):
        b_d, b_n = recommend_block_sizes(FRONTERA, 1e-3, d=100, n=50)
        assert 1 <= b_d <= 100
        assert 1 <= b_n <= 50

    def test_large_problem_unclipped(self):
        b_d, b_n = recommend_block_sizes(FRONTERA, 1e-3, d=10**7, n=10**7)
        plan = optimize_blocks(1e-3, FRONTERA.cache_words, FRONTERA.h("uniform"))
        assert b_d == plan.d1
        assert b_n == plan.n1

    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigError):
            recommend_block_sizes(FRONTERA, 1e-3, d=0, n=5)
