"""Tests for repro.model.roofline (Section III-A formulas)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.model import (
    FRONTERA,
    block_generation_cost,
    ci_big_rho,
    ci_small_rho,
    computational_intensity,
    expected_nonempty_rows,
    fraction_of_peak,
    gemm_ci,
    optimal_n1_big_rho,
    peak_fraction_big_rho,
    peak_fraction_small_rho,
    reciprocal_ci_objective,
)


class TestExpectedNonemptyRows:
    def test_formula(self):
        # E[Y] = m1 (1 - (1 - rho)^{n1}).
        assert expected_nonempty_rows(100, 3, 0.1) == pytest.approx(
            100 * (1 - 0.9**3)
        )

    def test_n1_one_reduces_to_rho(self):
        assert expected_nonempty_rows(50, 1, 0.2) == pytest.approx(10.0)

    def test_dense_limit(self):
        assert expected_nonempty_rows(70, 100, 0.99) == pytest.approx(70.0, rel=1e-6)

    def test_zero_density(self):
        assert expected_nonempty_rows(100, 5, 0.0) == 0.0

    def test_monte_carlo_agreement(self):
        # Empirical check against actual random matrices.
        from repro.sparse import random_sparse

        m1, n1, rho = 400, 4, 0.08
        counts = []
        for seed in range(30):
            A = random_sparse(m1, n1, rho, seed=seed)
            counts.append(np.unique(A.indices).size)
        expected = expected_nonempty_rows(m1, n1, rho)
        assert np.mean(counts) == pytest.approx(expected, rel=0.1)

    def test_rejects_bad_rho(self):
        with pytest.raises(ConfigError):
            expected_nonempty_rows(10, 1, 1.5)


class TestComputationalIntensity:
    def test_matches_hand_computation(self):
        d1, m1, n1, rho, M, h = 10, 20, 3, 0.1, 1000, 0.5
        flops = 2 * rho * d1 * m1 * n1
        cost = M + h * d1 * m1 * (1 - 0.9**3)
        assert computational_intensity(d1, m1, n1, rho, M, h) == pytest.approx(
            flops / cost
        )

    def test_free_rng_increases_ci(self):
        assert computational_intensity(10, 20, 3, 0.1, 1000, 0.0) > \
            computational_intensity(10, 20, 3, 0.1, 1000, 1.0)

    def test_reciprocal_objective_consistent(self):
        # objective / (2 rho) == 1 / CI (the derivation drops the constant
        # factor 2 rho from the flop count).
        d1, m1, n1, rho, M, h = 8, 16, 2, 0.2, 500, 0.3
        ci = computational_intensity(d1, m1, n1, rho, M, h)
        obj = reciprocal_ci_objective(d1, m1, n1, rho, M, h)
        assert obj / (2 * rho) == pytest.approx(1.0 / ci)


class TestClosedForms:
    def test_eq5_small_rho(self):
        # CI = 2M / (4 + Mh).
        assert ci_small_rho(1000, 0.01) == pytest.approx(2000 / 14.0)

    def test_eq5_free_rng_limit(self):
        # h -> 0: CI -> M/2.
        assert ci_small_rho(1000, 1e-12) == pytest.approx(500.0, rel=1e-6)

    def test_eq5_expensive_rng_limit(self):
        # Mh >> 4: CI ~ 2/h, independent of M.
        assert ci_small_rho(10**9, 2.0) == pytest.approx(1.0, rel=1e-6)

    def test_eq7_big_rho(self):
        # CI = sqrt(M rho) / (2 sqrt(h)).
        assert ci_big_rho(400, 0.25, 1.0) == pytest.approx(
            np.sqrt(400) / (2 * np.sqrt(0.25))
        )

    def test_optimal_n1_big_rho(self):
        # n1 = sqrt(hM) / (2 sqrt(rho)).
        assert optimal_n1_big_rho(400, 0.25, 1.0) == pytest.approx(5.0)

    def test_big_rho_formula_is_objective_minimum(self):
        # The closed form should sit at (near) the minimum of g(n1) when
        # rho ~ 1.
        M, h, rho = 100_000, 0.5, 0.95
        n1_star = optimal_n1_big_rho(M, h, rho)

        def g(n1):
            return 4 * n1 * rho / M + h * (1 - (1 - rho) ** n1) / n1

        assert g(n1_star) <= g(n1_star * 2) + 1e-12
        assert g(n1_star) <= g(max(1.0, n1_star / 2)) + 1e-12


class TestFractionOfPeak:
    def test_capped_at_one(self):
        assert fraction_of_peak(1e12, FRONTERA) == 1.0

    def test_linear_below_balance(self):
        b = FRONTERA.machine_balance
        assert fraction_of_peak(b / 2, FRONTERA) == pytest.approx(0.5)

    def test_small_rho_on_machine(self):
        f = peak_fraction_small_rho(FRONTERA)
        assert 0.0 < f <= 1.0

    def test_big_rho_monotone_in_density(self):
        f_lo = peak_fraction_big_rho(FRONTERA, 0.01, h=10.0)
        f_hi = peak_fraction_big_rho(FRONTERA, 0.9, h=10.0)
        assert f_hi >= f_lo


class TestGemmComparison:
    def test_gemm_ci_scaling(self):
        # Doubling M scales GEMM CI by sqrt(2).
        assert gemm_ci(2000) / gemm_ci(1000) == pytest.approx(np.sqrt(2))

    def test_sketch_beats_gemm_for_cheap_rng(self):
        # The headline sqrt(M) claim: with small h the sketching CI
        # exceeds GEMM's CI by ~sqrt(M).
        M = FRONTERA.cache_words
        ratio = ci_small_rho(M, 1e-9) / gemm_ci(M)
        assert ratio > 0.1 * np.sqrt(M)

    def test_slow_rng_loses_to_gemm(self):
        M = 10**6
        assert ci_small_rho(M, 10.0) < gemm_ci(M)
