"""Tests for repro.model.patterns — the non-uniform-pattern analysis
(the paper's Section VI future-work direction, implemented).

Every closed-form expectation is validated against *exact* counts on
matrices from the corresponding generator.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kernels import sketch_spmm
from repro.model import (
    banded_costs,
    count_nonempty_rows_per_block,
    dense_cols_costs,
    dense_rows_costs,
    uniform_costs,
)
from repro.rng import PhiloxSketchRNG
from repro.sparse import abnormal_a, abnormal_c, banded_sparse, random_sparse


class TestUniformCosts:
    def test_matches_exact_counts(self):
        m, n, rho, b_n = 300, 60, 0.05, 8
        costs = uniform_costs(m, n, 10, b_n, rho)
        counts = [count_nonempty_rows_per_block(
            random_sparse(m, n, rho, seed=s), b_n).mean()
            for s in range(10)]
        assert np.mean(counts) == pytest.approx(
            costs.nonempty_rows_per_block, rel=0.1)

    def test_reuse_improves_with_block_width(self):
        a = uniform_costs(200, 60, 10, 1, 0.1)
        b = uniform_costs(200, 60, 10, 20, 0.1)
        assert b.reuse_factor < a.reuse_factor

    def test_bn_one_no_reuse(self):
        # With b_n = 1 Algorithm 4 degenerates to Algorithm 3's volume.
        c = uniform_costs(200, 60, 10, 1, 0.1)
        assert c.reuse_factor == pytest.approx(1.0, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ConfigError):
            uniform_costs(0, 1, 1, 1, 0.1)
        with pytest.raises(ConfigError):
            uniform_costs(10, 10, 10, 2, 1.5)


class TestDenseRowsCosts:
    def test_matches_generator_exactly(self):
        m, n, period, b_n = 400, 60, 20, 8
        A = abnormal_a(m, n, period=period, seed=1)
        costs = dense_rows_costs(m, n, 10, b_n, period)
        exact = count_nonempty_rows_per_block(A, b_n)
        assert np.all(exact == costs.nonempty_rows_per_block)

    def test_rng_volume_matches_kernel(self):
        m, n, period, b_n, d = 200, 40, 10, 8, 12
        A = abnormal_a(m, n, period=period, seed=2)
        costs = dense_rows_costs(m, n, d, b_n, period)
        rng = PhiloxSketchRNG(0)
        _, stats = sketch_spmm(A, d, rng, kernel="algo4", b_d=d, b_n=b_n)
        assert stats.samples_generated == costs.rng_entries

    def test_reuse_is_strong(self):
        costs = dense_rows_costs(100_000, 10_000, 30_000, 1200, 1000)
        assert costs.reuse_factor < 0.01  # near-total reuse

    def test_independent_of_bn(self):
        a = dense_rows_costs(1000, 100, 10, 5, 50)
        b = dense_rows_costs(1000, 100, 10, 50, 50)
        assert (a.nonempty_rows_per_block
                == b.nonempty_rows_per_block)


class TestDenseColsCosts:
    def test_matches_generator_when_blocks_cover_period(self):
        m, n, period, b_n = 60, 400, 20, 20
        A = abnormal_c(m, n, period=period, seed=3)
        costs = dense_cols_costs(m, n, 10, b_n, period)
        exact = count_nonempty_rows_per_block(A, b_n)
        # Every block holds exactly one dense column -> all m rows.
        assert np.all(exact == m)
        assert costs.nonempty_rows_per_block == pytest.approx(m)

    def test_rng_volume_matches_kernel(self):
        m, n, period, b_n, d = 50, 200, 20, 20, 8
        A = abnormal_c(m, n, period=period, seed=4)
        costs = dense_cols_costs(m, n, d, b_n, period)
        _, stats = sketch_spmm(A, d, PhiloxSketchRNG(0), kernel="algo4",
                               b_d=d, b_n=b_n)
        assert stats.samples_generated == pytest.approx(costs.rng_entries)

    def test_no_reuse_at_wide_blocks(self):
        # b_n >= period: reuse factor hits 1 / (nnz per active block row)
        # ... i.e. the volume equals Algorithm 3's whenever each dense
        # column is alone in its block.
        costs = dense_cols_costs(100, 1000, 10, 100, 100)
        assert costs.reuse_factor == pytest.approx(1.0)

    def test_worse_than_dense_rows(self):
        rows = dense_rows_costs(1000, 1000, 10, 100, 100)
        cols = dense_cols_costs(1000, 1000, 10, 100, 100)
        assert cols.reuse_factor > 10 * rows.reuse_factor


class TestBandedCosts:
    def test_upper_bounds_generator(self):
        m, n, b_n = 600, 60, 10
        A = banded_sparse(m, n, 0.05, bandwidth_frac=0.05, seed=5)
        per_col = round(A.nnz / n)
        costs = banded_costs(m, n, 10, b_n, bandwidth_rows=2 * int(0.05 * m) + 1,
                             per_col=per_col)
        exact = count_nonempty_rows_per_block(A, b_n)
        assert np.all(exact <= costs.nonempty_rows_per_block + 1)

    def test_window_grows_with_block_width(self):
        a = banded_costs(1000, 100, 10, 2, 50, 5)
        b = banded_costs(1000, 100, 10, 50, 50, 5)
        assert (b.nonempty_rows_per_block
                >= a.nonempty_rows_per_block)

    def test_capped_by_m(self):
        c = banded_costs(100, 10, 10, 10, 10_000, 99)
        assert c.nonempty_rows_per_block <= 100


class TestCrossPatternOrdering:
    def test_table6_ordering(self):
        """The analysis reproduces Table VI's ordering analytically:
        reuse(dense rows) << reuse(uniform) <= reuse(dense cols)."""
        m, n, d, b_n = 100_000, 10_000, 5000, 1200
        rows = dense_rows_costs(m, n, d, b_n, 1000)
        unif = uniform_costs(m, n, d, b_n, 1e-3)
        cols = dense_cols_costs(m, n, d, b_n, 1000)
        assert rows.reuse_factor < unif.reuse_factor <= cols.reuse_factor + 1e-9
