"""Tests for repro.model.traffic (analytic data-movement accounting)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.model import (
    algo3_traffic,
    algo4_traffic,
    count_nonempty_rows_per_block,
    pregen_traffic,
)
from repro.sparse import random_sparse


@pytest.fixture
def A():
    return random_sparse(120, 40, 0.08, seed=201)


class TestNonemptyRowCounts:
    def test_matches_bruteforce(self, A):
        counts = count_nonempty_rows_per_block(A, 7)
        dense = A.to_dense()
        for b, j0 in enumerate(range(0, 40, 7)):
            j1 = min(j0 + 7, 40)
            expected = int(np.sum(np.any(dense[:, j0:j1] != 0, axis=1)))
            assert counts[b] == expected

    def test_single_block(self, A):
        counts = count_nonempty_rows_per_block(A, 1000)
        assert counts.size == 1

    def test_rejects_bad_width(self, A):
        with pytest.raises(ConfigError):
            count_nonempty_rows_per_block(A, 0)


class TestAlgo3Traffic:
    def test_rng_volume(self, A):
        t = algo3_traffic(A, d=30, b_d=10, b_n=8)
        assert t.rng_entries == 30 * A.nnz

    def test_sparse_passes_scale_with_row_blocks(self, A):
        one = algo3_traffic(A, d=30, b_d=30, b_n=8)
        three = algo3_traffic(A, d=30, b_d=10, b_n=8)
        assert three.words_sparse == pytest.approx(3 * one.words_sparse)

    def test_no_scattered_component(self, A):
        t = algo3_traffic(A, d=30, b_d=10, b_n=8)
        assert t.words_output_scattered == 0.0

    def test_effective_words_h_weighting(self, A):
        t = algo3_traffic(A, d=30, b_d=10, b_n=8)
        free = t.effective_words(0.0)
        costly = t.effective_words(1.0)
        assert costly - free == pytest.approx(t.rng_entries)

    def test_intensity_decreases_with_h(self, A):
        t = algo3_traffic(A, d=30, b_d=10, b_n=8)
        assert t.intensity(0.1) > t.intensity(1.0)


class TestAlgo4Traffic:
    def test_rng_savings(self, A):
        t3 = algo3_traffic(A, d=30, b_d=10, b_n=8)
        t4 = algo4_traffic(A, d=30, b_d=10, b_n=8)
        assert t4.rng_entries < t3.rng_entries

    def test_rng_volume_exact(self, A):
        t4 = algo4_traffic(A, d=30, b_d=10, b_n=8)
        expected = 30 * count_nonempty_rows_per_block(A, 8).sum()
        assert t4.rng_entries == expected

    def test_output_fully_scattered(self, A):
        t4 = algo4_traffic(A, d=30, b_d=10, b_n=8)
        assert t4.words_output_scattered == t4.words_output

    def test_penalty_applies_only_to_scattered(self, A):
        t4 = algo4_traffic(A, d=30, b_d=10, b_n=8)
        base = t4.effective_words(0.0, 1.0)
        pen = t4.effective_words(0.0, 2.0)
        assert pen - base == pytest.approx(t4.words_output_scattered)

    def test_pointer_overhead_grows_with_blocks(self, A):
        few = algo4_traffic(A, d=30, b_d=30, b_n=40)
        many = algo4_traffic(A, d=30, b_d=30, b_n=1)
        assert many.words_sparse > few.words_sparse

    def test_flops_identical_across_algorithms(self, A):
        t3 = algo3_traffic(A, d=30, b_d=10, b_n=8)
        t4 = algo4_traffic(A, d=30, b_d=10, b_n=8)
        assert t3.flops == t4.flops == 2 * 30 * A.nnz


class TestPregenTraffic:
    def test_sketch_fits_in_cache_single_pass(self, A):
        t = pregen_traffic(A, d=10, b_d=10, b_n=8, cache_words=10**9)
        assert t.words_sketch == 10 * 120

    def test_sketch_exceeds_cache_multiple_passes(self, A):
        t = pregen_traffic(A, d=10, b_d=10, b_n=8, cache_words=100)
        n_blocks = -(-40 // 8)
        assert t.words_sketch == n_blocks * 10 * 120

    def test_pregen_moves_more_than_otf(self, A):
        # The paper's core motivation at equal h=0 accounting.
        t3 = algo3_traffic(A, d=30, b_d=30, b_n=8)
        tp = pregen_traffic(A, d=30, b_d=30, b_n=8, cache_words=100)
        assert tp.effective_words(0.0) > t3.effective_words(0.0)

    def test_validation(self, A):
        with pytest.raises(ConfigError):
            pregen_traffic(A, d=0, b_d=1, b_n=1, cache_words=10)
        with pytest.raises(ConfigError):
            algo3_traffic(A, d=1, b_d=0, b_n=1)
