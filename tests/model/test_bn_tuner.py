"""Tests for repro.model.bn_tuner (the Section III-B b_n tuning sentence)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.model import FRONTERA, PERLMUTTER
from repro.model.bn_tuner import BnChoice, rng_volume_curve, tune_bn
from repro.sparse import abnormal_a, abnormal_c, banded_sparse, random_sparse


class TestRngVolumeCurve:
    def test_monotone_non_increasing(self):
        A = random_sparse(200, 60, 0.05, seed=1801)
        curve = rng_volume_curve(A, 20, [1, 2, 4, 8, 16, 32, 60])
        vols = [v for _, v in curve]
        assert all(a >= b for a, b in zip(vols, vols[1:]))

    def test_bn_one_equals_algo3_volume(self):
        A = random_sparse(150, 40, 0.08, seed=1802)
        curve = rng_volume_curve(A, 15, [1])
        assert curve[0][1] == 15 * A.nnz

    def test_matches_kernel_counter(self):
        from repro.kernels import sketch_spmm
        from repro.rng import PhiloxSketchRNG

        A = random_sparse(120, 36, 0.1, seed=1803)
        d, b_n = 12, 9
        (_, vol), = rng_volume_curve(A, d, [b_n])
        _, stats = sketch_spmm(A, d, PhiloxSketchRNG(0), kernel="algo4",
                               b_d=d, b_n=b_n)
        assert stats.samples_generated == vol

    def test_pattern_signatures(self):
        """Abnormal_A's curve collapses immediately; Abnormal_C's stays flat
        relative to its nnz — the Table VI fingerprint."""
        d = 10
        Aa = abnormal_a(400, 100, period=40, seed=1)
        Ac = abnormal_c(100, 400, period=40, seed=2)
        curve_a = dict(rng_volume_curve(Aa, d, [1, 50]))
        curve_c = dict(rng_volume_curve(Ac, d, [1, 50]))
        drop_a = curve_a[50] / curve_a[1]
        drop_c = curve_c[50] / curve_c[1]
        assert drop_a < 0.1       # dense rows: massive reuse from width
        assert drop_c >= 0.8      # dense cols: width buys only the
        #                           ceil(n/b_n)/#dense-cols sliver

    def test_validation(self):
        A = random_sparse(10, 5, 0.3, seed=3)
        with pytest.raises(ConfigError):
            rng_volume_curve(A, 0, [1])
        with pytest.raises(ConfigError):
            rng_volume_curve(A, 2, [0])


class TestTuneBn:
    def test_returns_feasible_choice(self):
        A = random_sparse(300, 80, 0.04, seed=1804)
        choice = tune_bn(A, 40, FRONTERA)
        assert isinstance(choice, BnChoice)
        assert 1 <= choice.b_n <= 80
        assert choice.rng_entries > 0
        assert len(choice.curve) >= 2
        assert "b_n" in choice.describe()

    def test_banded_prefers_wider_blocks_than_scattered(self):
        """Band-structured matrices reward width (row reuse across
        neighbouring columns); uniformly scattered ones reward it less per
        unit of cache spent."""
        d = 30
        banded = banded_sparse(600, 120, 0.05, bandwidth_frac=0.03, seed=5)
        choice_banded = tune_bn(banded, d, PERLMUTTER)
        # Width must pay off on the banded pattern.
        vol_at_1 = dict((b, v) for b, v, _ in choice_banded.curve)[1]
        assert choice_banded.rng_entries < 0.7 * vol_at_1

    def test_cache_constraint_respected(self):
        from repro.model.machine import MachineModel

        tiny = MachineModel(
            name="tiny", cache_bytes=64 * 1024, peak_gflops=10.0,
            bandwidth_gbs=5.0, h_base=0.5, random_access_penalty=1.5,
            cores=2, bandwidth_saturation_threads=1,
        )
        A = random_sparse(500, 200, 0.02, seed=6)
        choice = tune_bn(A, 400, tiny, b_d=400)
        assert 400 * choice.b_n <= tiny.cache_words // 2

    def test_explicit_candidates(self):
        A = random_sparse(100, 30, 0.1, seed=7)
        choice = tune_bn(A, 20, FRONTERA, bn_values=[3, 30])
        assert choice.b_n in (3, 30)

    def test_empty_candidates_rejected(self):
        A = random_sparse(10, 5, 0.3, seed=8)
        with pytest.raises(ConfigError):
            tune_bn(A, 4, FRONTERA, bn_values=[])
