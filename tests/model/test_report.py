"""Tests for repro.model.report (ASCII roofline rendering)."""

import pytest

from repro.errors import ConfigError
from repro.model import FRONTERA, PERLMUTTER, render_roofline, roofline_points
from repro.sparse import random_sparse


class TestRenderRoofline:
    def test_contains_all_marks_and_legend(self):
        out = render_roofline(FRONTERA, {"alpha": 1.0, "beta": 500.0})
        assert "A = alpha" in out
        assert "B = beta" in out
        assert "machine balance" in out
        assert "frontera" in out

    def test_high_ci_reaches_peak(self):
        out = render_roofline(FRONTERA, {"x": FRONTERA.machine_balance * 100})
        assert "100% of peak" in out

    def test_low_ci_bandwidth_bound(self):
        out = render_roofline(FRONTERA, {"x": FRONTERA.machine_balance / 100})
        assert "1% of peak" in out

    def test_dimensions_respected(self):
        out = render_roofline(FRONTERA, {"x": 1.0}, width=30, height=8)
        plot_lines = [l for l in out.splitlines() if l.startswith("  |")]
        assert len(plot_lines) == 8
        assert all(len(l) <= 33 for l in plot_lines)

    def test_validation(self):
        with pytest.raises(ConfigError):
            render_roofline(FRONTERA, {})
        with pytest.raises(ConfigError):
            render_roofline(FRONTERA, {"x": -1.0})
        with pytest.raises(ConfigError):
            render_roofline(FRONTERA, {"x": 1.0}, width=5)


class TestRooflinePoints:
    @pytest.fixture
    def A(self):
        return random_sparse(400, 60, 0.03, seed=1401)

    def test_all_four_points(self, A):
        pts = roofline_points(A, 180, FRONTERA, b_d=180, b_n=12)
        assert len(pts) == 4
        assert all(ci > 0 for ci in pts.values())

    def test_otf_above_pregen(self, A):
        """The paper's claim in roofline terms: on-the-fly kernels sit at
        higher intensity than the stored-sketch baseline."""
        pts = roofline_points(A, 180, FRONTERA, b_d=180, b_n=12)
        otf = pts["algo3 (on-the-fly, strided)"]
        pre = pts["pregen (stored S)"]
        assert otf > pre * 0.9  # at CI-scale dims the gap can be narrow

    def test_renders_end_to_end(self, A):
        pts = roofline_points(A, 180, PERLMUTTER, b_d=180, b_n=12)
        out = render_roofline(PERLMUTTER, pts)
        assert "perlmutter" in out
        assert "gemm reference" in out
