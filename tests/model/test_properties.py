"""Property-based tests (hypothesis) for the performance model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (
    FRONTERA,
    algo3_traffic,
    algo4_traffic,
    ci_small_rho,
    computational_intensity,
    expected_nonempty_rows,
    gemm_ci,
    optimize_blocks,
)
from repro.parallel import predict_time
from repro.sparse import random_sparse

densities = st.floats(min_value=1e-6, max_value=0.9)
caches = st.integers(min_value=100, max_value=10**8)
costs = st.floats(min_value=1e-6, max_value=10.0)


class TestRooflineProperties:
    @given(caches, costs)
    @settings(max_examples=40)
    def test_ci_small_rho_bounds(self, M, h):
        """0 < CI <= M/2 always; decreasing in h; increasing in M."""
        ci = ci_small_rho(M, h)
        assert 0 < ci <= M / 2 + 1e-9
        assert ci_small_rho(M, h * 2) <= ci + 1e-12
        assert ci_small_rho(M * 2, h) >= ci - 1e-12

    @given(st.integers(min_value=1, max_value=1000),
           st.integers(min_value=1, max_value=1000),
           st.integers(min_value=1, max_value=100),
           densities, caches, costs)
    @settings(max_examples=40)
    def test_ci_positive_and_h_monotone(self, d1, m1, n1, rho, M, h):
        ci = computational_intensity(d1, m1, n1, rho, M, h)
        assert ci >= 0
        assert computational_intensity(d1, m1, n1, rho, M, h * 2) <= ci + 1e-12

    @given(st.integers(min_value=1, max_value=10_000),
           st.integers(min_value=0, max_value=200), densities)
    @settings(max_examples=40)
    def test_expected_nonempty_rows_bounds(self, m1, n1, rho):
        ey = expected_nonempty_rows(m1, n1, rho)
        assert 0 <= ey <= m1
        # Monotone in block width.
        assert expected_nonempty_rows(m1, n1 + 1, rho) >= ey - 1e-12

    @given(densities, caches, costs)
    @settings(max_examples=30, deadline=None)
    def test_optimizer_never_beats_closed_form_bound(self, rho, M, h):
        """The optimized CI cannot exceed the unconstrained M/2 ceiling and
        is positive."""
        plan = optimize_blocks(rho, M, h)
        assert 0 < plan.ci
        assert plan.n1 >= 1
        assert plan.satisfies_cache()

    @given(caches)
    @settings(max_examples=30)
    def test_gemm_ci_positive_monotone(self, M):
        assert gemm_ci(M) > 0
        assert gemm_ci(4 * M) > gemm_ci(M)


class TestTrafficProperties:
    @given(st.integers(min_value=0, max_value=400), st.data())
    @settings(max_examples=30, deadline=None)
    def test_traffic_invariants(self, seed, data):
        A = random_sparse(
            data.draw(st.integers(min_value=4, max_value=80)),
            data.draw(st.integers(min_value=2, max_value=30)),
            data.draw(st.floats(min_value=0.02, max_value=0.5)),
            seed=seed,
        )
        d = data.draw(st.integers(min_value=1, max_value=50))
        b_d = data.draw(st.integers(min_value=1, max_value=50))
        b_n = data.draw(st.integers(min_value=1, max_value=30))
        t3 = algo3_traffic(A, d, b_d, b_n)
        t4 = algo4_traffic(A, d, b_d, b_n)
        # Identical useful work.
        assert t3.flops == t4.flops == 2 * d * A.nnz
        # Algorithm 4 never generates more than Algorithm 3.
        assert t4.rng_entries <= t3.rng_entries + 1e-9
        # Effective words monotone in h and in the penalty.
        for t in (t3, t4):
            assert t.effective_words(0.5) >= t.effective_words(0.0) - 1e-9
            assert (t.effective_words(0.0, 2.0)
                    >= t.effective_words(0.0, 1.0) - 1e-9)

    @given(st.integers(min_value=0, max_value=100),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=25, deadline=None)
    def test_predicted_time_monotone_in_threads(self, seed, p):
        A = random_sparse(60, 20, 0.1, seed=seed)
        t = algo3_traffic(A, 40, 10, 5)
        one = predict_time(t, FRONTERA, 1, 0.25).seconds
        many = predict_time(t, FRONTERA, p, 0.25).seconds
        assert many <= one * 1.0001
        # And never faster than the no-overhead linear bound.
        assert many >= one / p - 1e-15
