"""Tests for repro.model.lower_bounds (the sqrt(M) headline claim)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.model import (
    advantage_over_gemm,
    asymptotic_advantage,
    gemm_words_lower_bound,
    sketch_effective_words,
)


class TestGemmBound:
    def test_scaling_with_m(self):
        # Bound ~ 1/sqrt(M): quadrupling M halves the bound.
        b1 = gemm_words_lower_bound(100, 100, 100, 1000)
        b4 = gemm_words_lower_bound(100, 100, 100, 4000)
        assert b1 / b4 == pytest.approx(2.0)

    def test_scales_with_volume(self):
        b1 = gemm_words_lower_bound(10, 10, 10, 100)
        b8 = gemm_words_lower_bound(20, 20, 20, 100)
        assert b8 / b1 == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            gemm_words_lower_bound(0, 1, 1, 10)


class TestSketchEffectiveWords:
    def test_consistent_with_ci(self):
        from repro.model import ci_small_rho

        d, m, n, rho, M, h = 30, 1000, 10, 1e-2, 10_000, 0.3
        words = sketch_effective_words(d, m, n, rho, M, h)
        flops = 2 * d * m * n * rho
        assert flops / words == pytest.approx(ci_small_rho(M, h))

    def test_scales_with_density(self):
        lo = sketch_effective_words(10, 100, 10, 1e-3, 1000, 0.1)
        hi = sketch_effective_words(10, 100, 10, 1e-2, 1000, 0.1)
        assert hi / lo == pytest.approx(10.0)


class TestAdvantage:
    def test_sqrt_m_growth_for_free_rng(self):
        # advantage(h->0) grows like sqrt(M): ratio across a 100x M step
        # should be ~10x.
        a1 = advantage_over_gemm(10**4, 1e-12)
        a2 = advantage_over_gemm(10**6, 1e-12)
        assert a2 / a1 == pytest.approx(10.0, rel=0.01)

    def test_asymptotic_constant(self):
        # (3 sqrt(3) / 4) sqrt(M).
        M = 10**6
        assert asymptotic_advantage(M) == pytest.approx(
            (3 * np.sqrt(3) / 4) * 1000
        )

    def test_matches_h_zero_limit(self):
        M = 123_456
        assert advantage_over_gemm(M, 1e-15) == pytest.approx(
            asymptotic_advantage(M), rel=1e-6
        )

    def test_expensive_rng_erases_advantage(self):
        # For h large the sketching kernel falls below GEMM.
        assert advantage_over_gemm(10**6, 100.0) < 1.0

    def test_crossover_h(self):
        # The advantage crosses 1 somewhere between free and absurd h.
        M = 10**6
        assert advantage_over_gemm(M, 1e-9) > 1.0
        assert advantage_over_gemm(M, 10.0) < 1.0
