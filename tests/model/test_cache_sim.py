"""Tests for repro.model.cache_sim (exact LRU cache simulation)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.model import LRUCache, simulate_algo3, simulate_pregen
from repro.sparse import random_sparse


class TestLRUCache:
    def test_cold_misses(self):
        c = LRUCache(capacity_words=4)
        assert c.access([0, 1, 2, 3]) == 4
        assert c.misses == 4
        assert c.hits == 0

    def test_hits_on_resident(self):
        c = LRUCache(capacity_words=4)
        c.access([0, 1])
        assert c.access([0, 1]) == 0
        assert c.hits == 2

    def test_lru_eviction_order(self):
        c = LRUCache(capacity_words=2)
        c.access([0, 1])      # cache: {0, 1}
        c.access([0])         # touch 0 -> 1 is LRU
        c.access([2])         # evicts 1
        assert c.access([0]) == 0   # 0 still resident
        assert c.access([1]) == 1   # 1 was evicted

    def test_capacity_one(self):
        c = LRUCache(capacity_words=1)
        c.access([5, 5, 5])
        assert c.misses == 1
        assert c.hits == 2

    def test_line_granularity(self):
        c = LRUCache(capacity_words=8, line_words=4)
        c.access([0])           # loads line 0 (words 0-3)
        assert c.access([1, 2, 3]) == 0   # same line
        assert c.access([4]) == 1         # next line
        assert c.words_moved == 8

    def test_validation(self):
        with pytest.raises(ConfigError):
            LRUCache(0)
        with pytest.raises(ConfigError):
            LRUCache(2, line_words=4)


class TestKernelTraces:
    @pytest.fixture
    def A(self):
        return random_sparse(40, 12, 0.15, seed=211)

    def test_otf_beats_pregen_small_cache(self, A):
        # The whole point: with S regenerated, the cache holds only A and
        # Ahat, so a small cache moves far fewer words.
        d = 18
        otf = simulate_algo3(A, d, b_d=6, b_n=4, cache_words=96)
        pre = simulate_pregen(A, d, b_d=6, b_n=4, cache_words=96)
        assert otf.words_moved < pre.words_moved

    def test_rng_entries_counted(self, A):
        d = 18
        otf = simulate_algo3(A, d, b_d=6, b_n=4, cache_words=96)
        assert otf.rng_entries == d * A.nnz
        pre = simulate_pregen(A, d, b_d=6, b_n=4, cache_words=96)
        assert pre.rng_entries == 0

    def test_monotone_in_cache_size(self, A):
        d = 12
        small = simulate_algo3(A, d, b_d=6, b_n=4, cache_words=64)
        big = simulate_algo3(A, d, b_d=6, b_n=4, cache_words=4096)
        assert big.words_moved <= small.words_moved

    def test_compulsory_lower_bound(self, A):
        # Traffic can never drop below one touch per word of A plus the
        # output block footprint.
        d = 12
        r = simulate_algo3(A, d, b_d=d, b_n=12, cache_words=10**6)
        compulsory = 2 * A.nnz + d * 12  # A values+indices, Ahat once
        assert r.words_moved >= compulsory * 0.99

    def test_huge_cache_hits_compulsory(self, A):
        # With an infinite cache the only misses are first touches.
        d = 12
        r = simulate_algo3(A, d, b_d=6, b_n=4, cache_words=10**7)
        distinct_words = 2 * A.nnz + d * 12
        assert r.misses == distinct_words

    def test_effective_words_h(self, A):
        r = simulate_algo3(A, 12, b_d=6, b_n=4, cache_words=64)
        assert r.effective_words(0.5) == pytest.approx(
            r.words_moved + 0.5 * r.rng_entries
        )

    def test_blocking_reduces_traffic_small_cache(self, A):
        # Good blocking (output column slice fits in cache) beats
        # degenerate full-height blocking when d exceeds the cache.
        d = 120
        blocked = simulate_algo3(A, d, b_d=16, b_n=4, cache_words=64)
        unblocked = simulate_algo3(A, d, b_d=120, b_n=12, cache_words=64)
        assert blocked.words_moved < unblocked.words_moved

    def test_flops_recorded(self, A):
        r = simulate_algo3(A, 12, b_d=6, b_n=4, cache_words=64)
        assert r.flops == 2 * 12 * A.nnz


class TestAgreementWithAnalyticModel:
    def test_algo3_sparse_traffic_order(self):
        """The LRU-simulated traffic is within ~2x of the closed-form
        streaming estimate for a cache that fits exactly one output block."""
        from repro.model import algo3_traffic

        A = random_sparse(60, 16, 0.12, seed=212)
        d, b_d, b_n = 24, 8, 4
        cache_words = b_d * b_n + 64  # block + slack for A's stream
        sim = simulate_algo3(A, d, b_d=b_d, b_n=b_n, cache_words=cache_words)
        est = algo3_traffic(A, d, b_d, b_n)
        # Estimate counts A streams + Ahat read/write; simulator's misses
        # should land within a small factor.
        ratio = sim.words_moved / est.effective_words(0.0)
        assert 0.3 < ratio < 3.0


class TestMultiLevelCache:
    def test_level_ordering_enforced(self):
        from repro.model import MultiLevelCache

        with pytest.raises(ConfigError):
            MultiLevelCache([(64, 1), (32, 1)])
        with pytest.raises(ConfigError):
            MultiLevelCache([])

    def test_single_level_matches_lru(self):
        from repro.model import MultiLevelCache, replay_algo3

        A = random_sparse(30, 10, 0.2, seed=213)
        one = simulate_algo3(A, 12, b_d=6, b_n=4, cache_words=64)
        ml = replay_algo3(A, 12, b_d=6, b_n=4,
                          cache=MultiLevelCache([(64, 1)]))
        assert ml.words_moved == one.words_moved
        assert ml.misses == one.misses

    def test_l1_misses_at_least_memory_misses(self):
        from repro.model import MultiLevelCache, replay_algo3

        A = random_sparse(30, 10, 0.2, seed=214)
        cache = MultiLevelCache([(32, 1), (512, 1)])
        replay_algo3(A, 12, b_d=6, b_n=4, cache=cache)
        (l1_hits, l1_miss), (l2_hits, l2_miss) = cache.level_stats()
        assert l1_miss >= l2_miss
        assert l2_hits + l2_miss == l1_miss  # inclusive fall-through

    def test_bigger_l2_reduces_memory_traffic(self):
        from repro.model import MultiLevelCache, replay_algo3

        A = random_sparse(40, 12, 0.2, seed=215)
        small = MultiLevelCache([(32, 1), (128, 1)])
        big = MultiLevelCache([(32, 1), (4096, 1)])
        r_small = replay_algo3(A, 16, b_d=8, b_n=4, cache=small)
        r_big = replay_algo3(A, 16, b_d=8, b_n=4, cache=big)
        assert r_big.words_moved <= r_small.words_moved

    def test_l1_captures_column_locality(self):
        """The output column slice (d1 words) is reused per nonzero; an L1
        just big enough for it should absorb most accesses."""
        from repro.model import MultiLevelCache, replay_algo3

        A = random_sparse(40, 12, 0.25, seed=216)
        d1 = 8
        cache = MultiLevelCache([(2 * d1, 1), (10**6, 1)])
        replay_algo3(A, 16, b_d=d1, b_n=2, cache=cache)
        (l1_hits, l1_miss), _ = cache.level_stats()
        assert l1_hits > l1_miss  # locality lives in L1
