"""Tests for repro.model.machine."""

import pytest

from repro.errors import ConfigError
from repro.model import FRONTERA, LAPTOP, PERLMUTTER, MachineModel


class TestMachineModel:
    def test_cache_words(self):
        m = MachineModel("t", cache_bytes=8000, peak_gflops=1, bandwidth_gbs=1,
                         h_base=0.5, random_access_penalty=1.0, cores=1,
                         bandwidth_saturation_threads=1)
        assert m.cache_words == 1000

    def test_machine_balance_units(self):
        # B = peak flops / (words per second moved).
        m = MachineModel("t", cache_bytes=8000, peak_gflops=80.0,
                         bandwidth_gbs=8.0, h_base=0.5,
                         random_access_penalty=1.0, cores=1,
                         bandwidth_saturation_threads=1)
        # 8 GB/s = 1e9 words/s; 80 GF/s -> B = 80.
        assert m.machine_balance == pytest.approx(80.0)

    def test_h_scales_with_distribution(self):
        assert FRONTERA.h("gaussian") > FRONTERA.h("uniform")
        assert FRONTERA.h("rademacher") < FRONTERA.h("uniform")

    def test_with_threads(self):
        m2 = FRONTERA.with_threads(4)
        assert m2.cores == 4
        assert m2.name == FRONTERA.name
        assert FRONTERA.cores == 28  # original unchanged (frozen)

    def test_validation(self):
        with pytest.raises(ConfigError):
            MachineModel("t", cache_bytes=0, peak_gflops=1, bandwidth_gbs=1,
                         h_base=0.5, random_access_penalty=1.0, cores=1,
                         bandwidth_saturation_threads=1)
        with pytest.raises(ConfigError):
            MachineModel("t", cache_bytes=1, peak_gflops=1, bandwidth_gbs=1,
                         h_base=0.5, random_access_penalty=0.5, cores=1,
                         bandwidth_saturation_threads=1)
        with pytest.raises(ConfigError):
            MachineModel("t", cache_bytes=1, peak_gflops=1, bandwidth_gbs=1,
                         h_base=-1.0, random_access_penalty=1.0, cores=1,
                         bandwidth_saturation_threads=1)


class TestPresets:
    def test_frontera_is_algo3_machine(self):
        # Fast RNG + strong random-access penalty -> Algorithm 3 wins.
        assert not FRONTERA.favors_reuse

    def test_perlmutter_is_algo4_machine(self):
        # Tolerant of random access, RNG relatively expensive -> Algorithm 4.
        assert PERLMUTTER.favors_reuse

    def test_perlmutter_has_more_bandwidth(self):
        # Section V-A: "In general, Perlmutter has better bandwidth."
        assert PERLMUTTER.bandwidth_gbs > FRONTERA.bandwidth_gbs

    def test_frontera_has_cheaper_rng(self):
        # "Frontera is faster at generating short random vectors."
        assert FRONTERA.h_base < PERLMUTTER.h_base

    def test_laptop_is_small(self):
        assert LAPTOP.cache_bytes < FRONTERA.cache_bytes
        assert LAPTOP.cores <= 8
