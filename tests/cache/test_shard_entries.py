"""Shard-scoped artifact entries: distinct keys, stats, and verify."""

import numpy as np

from repro.cache import ArtifactCache, CachePolicy
from repro.cache.artifacts import (
    blocked_csr_key,
    fetch_blocked_csr,
    store_blocked_csr,
)
from repro.cache.keys import shard_component
from repro.plan import ShardPlan
from repro.sparse import csc_to_blocked_csr, random_sparse


def make_cache(tmp_path, **kw):
    return ArtifactCache(CachePolicy(cache_dir=str(tmp_path), **kw))


class TestShardComponent:
    def test_none_passthrough(self):
        assert shard_component(None) is None

    def test_tuple_and_shardplan_agree(self):
        shard = ShardPlan(index=0, shards=2, col_start=0, col_stop=48)
        assert shard_component(shard) == shard_component((0, 48))
        assert shard_component((0, 48)) == {"col_start": 0, "col_stop": 48}


class TestShardScopedBlockedCsr:
    def _store_stripe(self, cache, A, c0, c1):
        whole, _ = csc_to_blocked_csr(A, 16)
        stripe = whole.column_slice(c0, c1)
        key = blocked_csr_key(A, 16, shard=(c0, c1))
        store_blocked_csr(cache, key, stripe, b_n=16, shard=(c0, c1))
        return key, stripe

    def test_round_trip_per_stripe(self, tmp_path):
        A = random_sparse(200, 96, 0.05, seed=5)
        cache = make_cache(tmp_path)
        key, stripe = self._store_stripe(cache, A, 0, 48)
        fresh = make_cache(tmp_path)
        got = fetch_blocked_csr(fresh, key, (200, 48))
        assert got is not None
        np.testing.assert_array_equal(got.to_dense(), stripe.to_dense())

    def test_stats_report_shard_entries_distinctly(self, tmp_path):
        A = random_sparse(200, 96, 0.05, seed=5)
        cache = make_cache(tmp_path)
        # One whole-matrix entry plus two stripes.
        whole, _ = csc_to_blocked_csr(A, 16)
        store_blocked_csr(cache, blocked_csr_key(A, 16), whole, b_n=16)
        self._store_stripe(cache, A, 0, 48)
        self._store_stripe(cache, A, 48, 96)
        stats = make_cache(tmp_path).stats()
        assert stats["entries"] == 3
        assert stats["shard_entries"] == 2
        assert 0 < stats["shard_bytes"] < stats["total_bytes"]
        per = stats["artifacts"]["blocked_csr"]
        assert per["entries"] == 3
        assert per["shard_entries"] == 2

    def test_verify_covers_shard_entries(self, tmp_path):
        A = random_sparse(200, 96, 0.05, seed=5)
        cache = make_cache(tmp_path)
        self._store_stripe(cache, A, 0, 48)
        self._store_stripe(cache, A, 48, 96)
        report = make_cache(tmp_path).verify()
        assert report["checked"] == 2
        assert report["shard_checked"] == 2
        assert not report["corrupt"]

    def test_verify_flags_corrupt_shard_payload(self, tmp_path):
        A = random_sparse(200, 96, 0.05, seed=5)
        cache = make_cache(tmp_path)
        key, _ = self._store_stripe(cache, A, 0, 48)
        victim = next(p for p in tmp_path.rglob("data.npy"))
        victim.write_bytes(b"garbage")
        report = make_cache(tmp_path).verify()
        assert report["corrupt"]
