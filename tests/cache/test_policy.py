"""CachePolicy: validation, env resolution, and ensure() normalization."""

import pytest

from repro.cache import ArtifactCache, CachePolicy
from repro.cache.policy import CACHE_DIR_ENV_VAR, DEFAULT_MAX_BYTES
from repro.errors import ConfigError


class TestPolicy:
    def test_default_is_disabled(self):
        pol = CachePolicy()
        assert not pol.enabled
        assert pol.max_bytes == DEFAULT_MAX_BYTES
        assert CachePolicy.disabled() == pol

    def test_directory_enables(self, tmp_path):
        assert CachePolicy(cache_dir=str(tmp_path)).enabled

    def test_frozen(self, tmp_path):
        pol = CachePolicy(cache_dir=str(tmp_path))
        with pytest.raises(AttributeError):
            pol.cache_dir = None

    def test_readonly_requires_directory(self):
        with pytest.raises(ConfigError):
            CachePolicy(readonly=True)

    def test_max_bytes_validated(self, tmp_path):
        with pytest.raises(ConfigError):
            CachePolicy(cache_dir=str(tmp_path), max_bytes=0)

    def test_dict_round_trip(self, tmp_path):
        pol = CachePolicy(cache_dir=str(tmp_path), max_bytes=1024,
                          readonly=True)
        assert CachePolicy.from_dict(pol.to_dict()) == pol


class TestFromEnv:
    def test_unset_disables(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
        assert not CachePolicy.from_env().enabled

    def test_blank_disables(self, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, "   ")
        assert not CachePolicy.from_env().enabled

    def test_set_enables(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        pol = CachePolicy.from_env(max_bytes=99, readonly=True)
        assert pol == CachePolicy(cache_dir=str(tmp_path), max_bytes=99,
                                  readonly=True)


class TestEnsure:
    def test_none_passes_through(self):
        assert ArtifactCache.ensure(None) is None

    def test_disabled_policy_maps_to_none(self):
        assert ArtifactCache.ensure(CachePolicy.disabled()) is None

    def test_enabled_policy_builds_a_cache(self, tmp_path):
        cache = ArtifactCache.ensure(CachePolicy(cache_dir=str(tmp_path)))
        assert isinstance(cache, ArtifactCache)
        assert str(cache.root) == str(tmp_path)

    def test_existing_cache_returned_as_is_and_adopts_bus(self, tmp_path):
        from repro.plan import EventBus

        cache = ArtifactCache(CachePolicy(cache_dir=str(tmp_path)))
        bus = EventBus()
        assert ArtifactCache.ensure(cache, bus=bus) is cache
        assert cache.bus is bus
        # An already-attached bus is never replaced.
        other = EventBus()
        ArtifactCache.ensure(cache, bus=other)
        assert cache.bus is bus

    def test_direct_construction_rejects_disabled_policy(self):
        with pytest.raises(ConfigError, match="enabled"):
            ArtifactCache(CachePolicy.disabled())

    def test_ensure_rejects_junk(self):
        with pytest.raises(ConfigError):
            ArtifactCache.ensure("/tmp/somewhere")
