"""ArtifactCache store mechanics: round trips, LRU, readonly, maintenance."""

import json

import pytest

from repro.cache import ArtifactCache, CachePolicy
from repro.cache.store import ENTRY_MANIFEST_NAME
from repro.errors import ConfigError


def make_cache(tmp_path, **kw):
    return ArtifactCache(CachePolicy(cache_dir=str(tmp_path), **kw))


class TestRoundTrip:
    def test_memory_hit_after_insert(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.insert("tune", "k1", meta={"a": 1},
                     payloads={"x.bin": b"hello"}, obj={"deser": True})
        assert cache.fetch("tune", "k1") == {"deser": True}
        assert cache.hit_total() == 1
        assert cache.miss_total() == 0

    def test_disk_hit_from_a_fresh_process(self, tmp_path):
        make_cache(tmp_path).insert("tune", "k1", meta={"a": 1},
                                    payloads={"x.bin": b"hello"})
        fresh = make_cache(tmp_path)  # simulates a new process: empty memo
        entry = fresh.fetch("tune", "k1")
        assert entry.meta == {"a": 1}
        assert entry.payloads == {"x.bin": b"hello"}
        # Second fetch is served from memory, no disk re-verification.
        assert fresh.fetch("tune", "k1") is entry
        assert fresh.hits == {"tune": 2}

    def test_absent_is_a_miss(self, tmp_path):
        cache = make_cache(tmp_path)
        assert cache.fetch("tune", "nope") is None
        assert cache.misses == {"tune": 1}

    def test_deserialize_callback_applies(self, tmp_path):
        make_cache(tmp_path).insert("tune", "k", payloads={"n.txt": b"7"})
        got = make_cache(tmp_path).fetch(
            "tune", "k", lambda e: int(e.payloads["n.txt"]))
        assert got == 7

    def test_insert_rejects_reserved_payload_names(self, tmp_path):
        cache = make_cache(tmp_path)
        for bad in (ENTRY_MANIFEST_NAME, "../escape", ".hidden"):
            with pytest.raises(ConfigError):
                cache.insert("tune", "k", payloads={bad: b""})

    def test_reinsert_overwrites(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.insert("tune", "k", payloads={"x.bin": b"old"})
        cache.insert("tune", "k", payloads={"x.bin": b"new"})
        assert make_cache(tmp_path).fetch("tune", "k").payloads["x.bin"] \
            == b"new"


class TestEvents:
    def test_lookups_emit_lifecycle_events(self, tmp_path):
        from repro.plan import CACHE_HIT, CACHE_MISS, EventBus

        bus = EventBus()
        seen = []
        bus.subscribe_observer(CACHE_HIT, lambda e: seen.append(e))
        bus.subscribe_observer(CACHE_MISS, lambda e: seen.append(e))
        cache = ArtifactCache(CachePolicy(cache_dir=str(tmp_path)), bus=bus)
        cache.fetch("tune", "k")
        cache.insert("tune", "k", payloads={"x.bin": b"v"})
        cache.fetch("tune", "k")
        assert [(e.name, e.payload.get("reason") or e.payload.get("source"))
                for e in seen] == [("cache_miss", "absent"),
                                   ("cache_hit", "memory")]


class TestEviction:
    def test_lru_drops_oldest_first(self, tmp_path):
        import os
        import time

        cache = make_cache(tmp_path, max_bytes=4096)
        for i in range(4):
            cache.insert("tune", f"k{i}", payloads={"x.bin": b"a" * 1500})
            # mtime is the LRU clock; space the writes out explicitly so
            # coarse filesystem timestamps cannot tie.
            manifest = cache._entry_dir("tune", f"k{i}") / ENTRY_MANIFEST_NAME
            when = time.time() - 100 + i
            os.utime(manifest, (when, when))
        cache.insert("tune", "fresh", payloads={"x.bin": b"a" * 1500})
        fresh = make_cache(tmp_path)
        assert fresh.fetch("tune", "fresh") is not None
        assert fresh.fetch("tune", "k0") is None  # oldest: evicted
        assert cache.eviction_total() >= 1

    def test_hit_refreshes_recency(self, tmp_path):
        import os
        import time

        cache = make_cache(tmp_path, max_bytes=4000)
        cache.insert("tune", "a", payloads={"x.bin": b"a" * 1500})
        cache.insert("tune", "b", payloads={"x.bin": b"a" * 1500})
        for i, key in enumerate(("a", "b")):
            manifest = cache._entry_dir("tune", key) / ENTRY_MANIFEST_NAME
            when = time.time() - 100 + i
            os.utime(manifest, (when, when))
        # Touch "a" (the older entry) through a disk hit...
        make_cache(tmp_path, max_bytes=4000).fetch("tune", "a")
        # ...then overflow: "b" is now least recently used and must go.
        cache.insert("tune", "c", payloads={"x.bin": b"a" * 1500})
        fresh = make_cache(tmp_path)
        assert fresh.fetch("tune", "a") is not None
        assert fresh.fetch("tune", "b") is None


class TestReadonly:
    def test_serves_hits_but_never_writes(self, tmp_path):
        make_cache(tmp_path).insert("tune", "k", payloads={"x.bin": b"v"})
        ro = make_cache(tmp_path, readonly=True)
        assert ro.fetch("tune", "k") is not None
        assert not ro.insert("tune", "other", payloads={"x.bin": b"w"})
        assert not (tmp_path / "tune" / "other").exists()
        # The readonly insert still memoizes for this process.
        assert ro.fetch("tune", "other") is not None

    def test_clear_refused(self, tmp_path):
        make_cache(tmp_path).insert("tune", "k", payloads={})
        with pytest.raises(ConfigError):
            make_cache(tmp_path, readonly=True).clear()

    def test_corrupt_entry_left_in_place(self, tmp_path):
        make_cache(tmp_path).insert("tune", "k", payloads={"x.bin": b"vvvv"})
        victim = tmp_path / "tune" / "k" / "x.bin"
        victim.write_bytes(b"vv")
        ro = make_cache(tmp_path, readonly=True)
        assert ro.fetch("tune", "k") is None
        assert victim.exists()  # quarantine must not delete in readonly


class TestMaintenance:
    def test_stats_inventory(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.insert("tune", "k1", payloads={"x.bin": b"abc"})
        cache.insert("blocked_csr", "k2", payloads={"y.bin": b"defg"})
        stats = cache.stats()
        assert stats["entries"] == 2
        assert set(stats["artifacts"]) == {"tune", "blocked_csr"}
        assert stats["total_bytes"] > 7  # payloads plus manifests

    def test_clear_removes_everything(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.insert("tune", "k1", payloads={"x.bin": b"abc"})
        cache.insert("tune", "k2", payloads={"x.bin": b"abc"})
        assert cache.clear() == 2
        fresh = make_cache(tmp_path)
        assert fresh.fetch("tune", "k1") is None
        assert fresh.stats()["entries"] == 0

    def test_verify_reports_and_quarantines(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.insert("tune", "good", payloads={"x.bin": b"abcd"})
        cache.insert("tune", "bad", payloads={"x.bin": b"abcd"})
        (tmp_path / "tune" / "bad" / "x.bin").write_bytes(b"abXd")
        report = make_cache(tmp_path).verify()
        assert report["checked"] == 2
        assert report["ok"] == 1
        assert report["corrupt"] == ["tune/bad"]
        assert not (tmp_path / "tune" / "bad").exists()

    def test_manifest_identity_is_checked(self, tmp_path):
        """An entry copied/renamed to the wrong key must not be served."""
        cache = make_cache(tmp_path)
        cache.insert("tune", "original", payloads={"x.bin": b"v"})
        src = tmp_path / "tune" / "original"
        dst = tmp_path / "tune" / "imposter"
        dst.mkdir()
        for f in src.iterdir():
            (dst / f.name).write_bytes(f.read_bytes())
        assert make_cache(tmp_path).fetch("tune", "imposter") is None

    def test_unknown_entry_version_is_a_miss(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.insert("tune", "k", payloads={})
        manifest = tmp_path / "tune" / "k" / ENTRY_MANIFEST_NAME
        record = json.loads(manifest.read_text())
        record["version"] = 999
        manifest.write_text(json.dumps(record))
        assert make_cache(tmp_path).fetch("tune", "k") is None
