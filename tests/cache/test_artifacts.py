"""Typed artifact round trips: tune results, kernel choices, blocked CSR,
JIT markers."""

import numpy as np
import pytest

from repro.cache import ArtifactCache, CachePolicy
from repro.cache.artifacts import (
    blocked_csr_from_arrays,
    blocked_csr_key,
    fetch_blocked_csr,
    fetch_jit_marker,
    fetch_kernel_choice,
    fetch_tune_result,
    jit_warmup_key,
    kernel_choice_key,
    store_blocked_csr,
    store_jit_marker,
    store_kernel_choice,
    store_tune_result,
    tune_key,
)
from repro.kernels.autotune import TuneResult
from repro.kernels.dispatch import KernelChoice
from repro.sparse import csc_to_blocked_csr, random_sparse


@pytest.fixture
def A():
    return random_sparse(90, 24, 0.1, seed=77)


def make_cache(tmp_path):
    return ArtifactCache(CachePolicy(cache_dir=str(tmp_path)))


class TestTuneRoundTrip:
    def test_disk_round_trip(self, tmp_path, A):
        result = TuneResult(kernel="algo3", b_d=16, b_n=8, seconds=0.01,
                            trials=[("algo3", 16, 8, 0.01)],
                            backend="numpy", tuning_seed=9)
        key = tune_key(A, kernel="algo3", d=30, backend="numpy",
                       max_tuning_cols=16, repeats=1, tuning_seed=9)
        store_tune_result(make_cache(tmp_path), key, result)
        got = fetch_tune_result(make_cache(tmp_path), key)
        assert got is not None
        assert got.to_json() == result.to_json()

    def test_autotune_blocking_uses_the_cache(self, tmp_path, A):
        from repro.kernels.autotune import autotune_blocking
        from repro.rng import PhiloxSketchRNG

        cache = make_cache(tmp_path)
        first = autotune_blocking(A, 30, lambda: PhiloxSketchRNG(7),
                                  repeats=1, max_tuning_cols=8, cache=cache)
        assert cache.miss_total() >= 1
        warm = make_cache(tmp_path)
        second = autotune_blocking(A, 30, lambda: PhiloxSketchRNG(7),
                                   repeats=1, max_tuning_cols=8, cache=warm)
        # The warm call returns the stored record verbatim — identical
        # winner AND identical measured trials, i.e. no re-timing ran.
        assert warm.hits == {"tune": 1}
        assert warm.miss_total() == 0
        assert second.to_json() == first.to_json()


class TestKernelChoiceRoundTrip:
    def test_disk_round_trip(self, tmp_path, A):
        choice = KernelChoice(kernel="algo4", reason="concentrated",
                              column_concentration=0.4,
                              machine_favors_reuse=True, backend="numpy")
        key = kernel_choice_key(A, backend="numpy",
                                concentration_threshold=0.5)
        store_kernel_choice(make_cache(tmp_path), key, choice)
        got = fetch_kernel_choice(make_cache(tmp_path), key)
        assert got is not None
        assert got.to_json() == choice.to_json()


class TestBlockedCsrRoundTrip:
    def test_disk_round_trip_is_bit_identical(self, tmp_path, A):
        blocked, _ = csc_to_blocked_csr(A, 8)
        key = blocked_csr_key(A, 8)
        store_blocked_csr(make_cache(tmp_path), key, blocked, b_n=8)
        got = fetch_blocked_csr(make_cache(tmp_path), key, A.shape)
        assert got is not None
        assert got.shape == blocked.shape
        assert got.n_blocks == blocked.n_blocks
        np.testing.assert_array_equal(got.block_starts, blocked.block_starts)
        for g, w in zip(got.blocks, blocked.blocks):
            assert g.shape == w.shape
            np.testing.assert_array_equal(g.indptr, w.indptr)
            np.testing.assert_array_equal(g.indices, w.indices)
            np.testing.assert_array_equal(g.data, w.data)

    def test_loaded_blocks_are_views_not_copies(self, tmp_path, A):
        """Workers map these arrays from shared memory; per-block copies
        would defeat the zero-copy design."""
        blocked, _ = csc_to_blocked_csr(A, 8)
        key = blocked_csr_key(A, 8)
        store_blocked_csr(make_cache(tmp_path), key, blocked, b_n=8)
        got = fetch_blocked_csr(make_cache(tmp_path), key, A.shape)
        for blk in got.blocks:
            assert blk.data.base is not None
            assert blk.indices.base is not None

    def test_shape_drift_is_treated_as_corruption(self, tmp_path, A):
        blocked, _ = csc_to_blocked_csr(A, 8)
        key = blocked_csr_key(A, 8)
        store_blocked_csr(make_cache(tmp_path), key, blocked, b_n=8)
        fresh = make_cache(tmp_path)
        assert fetch_blocked_csr(fresh, key, (A.shape[0] + 1,
                                              A.shape[1])) is None
        assert fresh.misses == {"blocked_csr": 1}

    def test_from_arrays_matches_direct_conversion(self, A):
        blocked, _ = csc_to_blocked_csr(A, 8)
        indptr = np.stack([b.indptr for b in blocked.blocks])
        indices = np.concatenate([b.indices for b in blocked.blocks])
        data = np.concatenate([b.data for b in blocked.blocks])
        rebuilt = blocked_csr_from_arrays(A.shape, blocked.block_starts,
                                          indptr, indices, data)
        d = 12
        from repro.kernels import sketch_spmm
        from repro.rng import PhiloxSketchRNG

        ref, _ = sketch_spmm(A, d, PhiloxSketchRNG(3), kernel="algo4",
                             b_d=4, b_n=8, blocked=blocked)
        got, _ = sketch_spmm(A, d, PhiloxSketchRNG(3), kernel="algo4",
                             b_d=4, b_n=8, blocked=rebuilt)
        np.testing.assert_array_equal(got, ref)

    def test_empty_matrix_round_trips(self, tmp_path):
        E = random_sparse(10, 6, 0.0, seed=0)
        blocked, _ = csc_to_blocked_csr(E, 3)
        key = blocked_csr_key(E, 3)
        store_blocked_csr(make_cache(tmp_path), key, blocked, b_n=3)
        got = fetch_blocked_csr(make_cache(tmp_path), key, E.shape)
        assert got is not None
        assert got.nnz == 0


class TestJitMarker:
    def test_round_trip(self, tmp_path):
        key = jit_warmup_key(kernel="algo4", backend="numba",
                             rng_kind="philox")
        store_jit_marker(make_cache(tmp_path), key, kernel="algo4",
                         backend="numba", jit_compile_seconds=1.25)
        marker = fetch_jit_marker(make_cache(tmp_path), key)
        assert marker == {"kernel": "algo4", "backend": "numba",
                          "jit_compile_seconds": 1.25}
