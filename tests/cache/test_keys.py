"""Content-addressed key recipes: what must and must not share entries."""

import numpy as np

from repro.cache.artifacts import (
    blocked_csr_key,
    jit_warmup_key,
    kernel_choice_key,
    tune_key,
)
from repro.cache.keys import (
    cache_key,
    machine_fingerprint,
    matrix_fingerprint,
    pattern_fingerprint,
)
from repro.sparse import CSCMatrix, random_sparse


def _same_pattern_different_values(A):
    """A matrix with A's exact sparsity structure but perturbed values."""
    return CSCMatrix(A.shape, A.indptr.copy(), A.indices.copy(),
                     A.data + 1.0)


class TestFingerprints:
    def test_deterministic(self, small_sparse):
        assert pattern_fingerprint(small_sparse) == \
            pattern_fingerprint(small_sparse)
        assert matrix_fingerprint(small_sparse) == \
            matrix_fingerprint(small_sparse)

    def test_pattern_ignores_values(self, small_sparse):
        twin = _same_pattern_different_values(small_sparse)
        assert pattern_fingerprint(twin) == pattern_fingerprint(small_sparse)

    def test_matrix_pins_values(self, small_sparse):
        """The blocked-CSR key recipe must distinguish same-pattern
        matrices — serving another matrix's blocks is a wrong answer."""
        twin = _same_pattern_different_values(small_sparse)
        assert matrix_fingerprint(twin) != matrix_fingerprint(small_sparse)

    def test_structure_changes_both(self, small_sparse):
        other = random_sparse(*small_sparse.shape, 0.1, seed=43)
        assert pattern_fingerprint(other) != pattern_fingerprint(small_sparse)
        assert matrix_fingerprint(other) != matrix_fingerprint(small_sparse)

    def test_machine_fingerprint_is_json_ready(self):
        import json

        from repro.model import LAPTOP

        record = machine_fingerprint(LAPTOP)
        json.dumps(record)  # must not raise
        assert record["model"]["name"] == LAPTOP.name
        assert "model" not in machine_fingerprint(None)


class TestKeyRecipes:
    def test_artifact_classes_never_collide(self):
        components = {"x": 1}
        keys = {cache_key(a, components)
                for a in ("tune", "kernel_choice", "blocked_csr",
                          "jit_warmup")}
        assert len(keys) == 4

    def test_component_order_is_irrelevant(self):
        assert cache_key("tune", {"a": 1, "b": 2.5}) == \
            cache_key("tune", {"b": 2.5, "a": 1})

    def test_tune_key_tracks_every_input(self, small_sparse):
        base = dict(kernel="algo3", d=30, backend="numpy",
                    max_tuning_cols=16, repeats=1, tuning_seed=0)
        ref = tune_key(small_sparse, **base)
        assert tune_key(small_sparse, **base) == ref
        for field, value in [("kernel", "algo4"), ("d", 31),
                             ("backend", "numba"), ("max_tuning_cols", 8),
                             ("repeats", 2), ("tuning_seed", 1)]:
            assert tune_key(small_sparse, **{**base, field: value}) != ref
        assert tune_key(small_sparse, **base,
                        candidates=[(4, 4)]) != ref

    def test_blocked_key_pins_values_and_width(self, small_sparse):
        twin = _same_pattern_different_values(small_sparse)
        assert blocked_csr_key(small_sparse, 8) != blocked_csr_key(twin, 8)
        assert blocked_csr_key(small_sparse, 8) != \
            blocked_csr_key(small_sparse, 16)

    def test_choice_key_shares_across_values(self, small_sparse):
        twin = _same_pattern_different_values(small_sparse)
        kw = dict(backend="numpy", concentration_threshold=0.5)
        assert kernel_choice_key(small_sparse, **kw) == \
            kernel_choice_key(twin, **kw)

    def test_jit_key_ignores_the_matrix_entirely(self):
        kw = dict(kernel="algo4", backend="numba", rng_kind="philox")
        assert jit_warmup_key(**kw) == jit_warmup_key(**kw)
        assert jit_warmup_key(**{**kw, "backend": "numpy"}) != \
            jit_warmup_key(**kw)
