"""The acceptance criteria, as tests: warm runs skip the expensive setup
work and outputs stay bit-identical on hit vs cold across every driver."""

import numpy as np
import pytest

from repro.cache import ArtifactCache, CachePolicy
from repro.core import SketchConfig, sketch
from repro.parallel import WorkerPoolConfig
from repro.plan import CACHE_MISS, Planner, Runtime
from repro.sparse import random_sparse


@pytest.fixture(scope="module")
def A():
    return random_sparse(150, 36, 0.08, seed=44)


def _policy(tmp_path):
    return CachePolicy(cache_dir=str(tmp_path))


class TestBitIdentity:
    @pytest.mark.parametrize("driver", ["serial", "engine", "process"])
    def test_warm_equals_cold_equals_uncached(self, tmp_path, A, driver):
        cfg = SketchConfig(gamma=2.0, seed=5, kernel="algo4",
                           rng_kind="philox", b_d=12, b_n=9)
        pool = WorkerPoolConfig(workers=2) if driver == "process" else None

        def run(cache):
            plan = Planner().compile(A, cfg, driver=driver, pool=pool,
                                     cache=cache)
            return Runtime().run(plan, A, cache=cache)

        baseline = run(None)
        cold = run(ArtifactCache(_policy(tmp_path / driver)))
        warm_cache = ArtifactCache(_policy(tmp_path / driver))
        warm = run(warm_cache)
        np.testing.assert_array_equal(cold.sketch, baseline.sketch)
        np.testing.assert_array_equal(warm.sketch, baseline.sketch)
        assert warm.stats.extra["blocked_csr_source"] == "cache"
        assert warm_cache.misses.get("blocked_csr", 0) == 0


class TestWarmRunSkipsWork:
    def test_zero_conversions_on_warm_run(self, tmp_path, A):
        cfg = SketchConfig(gamma=2.0, seed=1, kernel="algo4", b_n=9)
        cold = sketch(A, config=cfg, cache=_policy(tmp_path))
        assert cold.stats.extra["blocked_csr_source"] == "converted"
        warm = sketch(A, config=cfg, cache=_policy(tmp_path))
        assert warm.stats.extra["blocked_csr_source"] == "cache"
        # A cache-served conversion is free: no conversion time billed.
        assert warm.stats.conversion_seconds == 0.0
        assert warm.stats.extra["cache_misses"] == 0

    def test_zero_autotune_probes_on_warm_compile(self, tmp_path, A):
        """tune="measure" compiles twice; the second must run no timing
        trials (asserted through the cache counters and the decision
        audit trail) and still produce the identical plan."""
        cfg = SketchConfig(gamma=2.0, seed=2, kernel="algo3")
        cold_cache = ArtifactCache(_policy(tmp_path))
        cold = Planner(tune="measure").compile(A, cfg, cache=cold_cache)
        assert cold_cache.misses.get("tune", 0) >= 1
        warm_cache = ArtifactCache(_policy(tmp_path))
        warm = Planner(tune="measure").compile(A, cfg, cache=warm_cache)
        assert warm_cache.hits.get("tune", 0) >= 1
        assert warm_cache.misses.get("tune", 0) == 0
        assert (warm.b_d, warm.b_n) == (cold.b_d, cold.b_n)
        assert warm.digest() == cold.digest()
        assert any("zero probes" in d.reason for d in warm.decisions
                   if d.field == "blocking")

    def test_process_workers_reuse_shipped_blocks(self, tmp_path, A):
        """With the process driver the supervisor loads the cached
        conversion once and ships it via shared memory — no worker
        reconverts, and the cache sees zero blocked_csr misses warm."""
        cfg = SketchConfig(gamma=2.0, seed=7, kernel="algo4",
                           rng_kind="philox", b_d=12, b_n=9)
        pool = WorkerPoolConfig(workers=2)

        def run(cache):
            plan = Planner().compile(A, cfg, driver="process", pool=pool,
                                     cache=cache)
            return Runtime().run(plan, A, cache=cache)

        run(ArtifactCache(_policy(tmp_path)))
        warm_cache = ArtifactCache(_policy(tmp_path))
        warm = run(warm_cache)
        assert warm.stats.extra["blocked_csr_source"] == "cache"
        assert warm_cache.misses.get("blocked_csr", 0) == 0
        health = warm.stats.health
        assert health is not None
        assert health.cache_hits >= 1
        assert health.cache_misses == 0


class TestObservability:
    def test_observer_counts_cache_events(self, tmp_path, A):
        from repro.obs import RunObserver

        cfg = SketchConfig(gamma=2.0, seed=4, kernel="algo4", b_n=9)
        runtime = Runtime()
        observer = RunObserver()
        observer.attach(runtime.bus)
        cache = ArtifactCache(_policy(tmp_path), bus=runtime.bus)
        plan = Planner().compile(A, cfg, cache=cache)
        runtime.run(plan, A, cache=cache)
        rendered = observer.registry.to_prometheus()
        observer.detach()
        assert "cache_misses_total" in rendered
        assert 'artifact="blocked_csr"' in rendered

    def test_miss_events_carry_reasons(self, tmp_path, A):
        cfg = SketchConfig(gamma=2.0, seed=4, kernel="algo4", b_n=9)
        runtime = Runtime()
        reasons = []
        runtime.bus.subscribe_observer(
            CACHE_MISS, lambda e: reasons.append(e.payload["reason"]))
        cache = ArtifactCache(_policy(tmp_path), bus=runtime.bus)
        plan = Planner().compile(A, cfg, cache=cache)
        runtime.run(plan, A, cache=cache)
        assert reasons and set(reasons) == {"absent"}

    def test_health_summary_mentions_cache(self):
        from repro.parallel import RunHealth

        h = RunHealth(cache_hits=3, cache_misses=1)
        assert "3h/1m" in h.summary()
        assert h.as_dict()["cache_hits"] == 3
        merged = RunHealth(cache_hits=1)
        merged.merge(RunHealth(cache_misses=2))
        assert (merged.cache_hits, merged.cache_misses) == (1, 2)
