"""Damaged cache entries: loud detection, clean recompute, right answers.

The failure contract under test is the inverse of the checkpoint
subsystem's — a cache is an optimization, so corruption must cost a
recompute and a WARNING, never an exception and never a wrong answer.
"""

import logging

import numpy as np
import pytest

from repro.cache import ArtifactCache, CachePolicy
from repro.cache.artifacts import (
    blocked_csr_key,
    fetch_blocked_csr,
    store_blocked_csr,
)
from repro.cache.store import ENTRY_MANIFEST_NAME
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.sparse import csc_to_blocked_csr, random_sparse


@pytest.fixture
def A():
    return random_sparse(120, 40, 0.08, seed=31)


def _store_blocked(tmp_path, A, *, injector=None):
    cache = ArtifactCache(CachePolicy(cache_dir=str(tmp_path)),
                          injector=injector)
    key = blocked_csr_key(A, 8)
    store_blocked_csr(cache, key, csc_to_blocked_csr(A, 8)[0], b_n=8)
    return key


def _assert_recovers(tmp_path, A, key, caplog):
    """A fresh cache must miss loudly, and a recompute-and-restore cycle
    must produce the bit-identical conversion."""
    fresh = ArtifactCache(CachePolicy(cache_dir=str(tmp_path)))
    with caplog.at_level(logging.WARNING, logger="repro.cache"):
        assert fetch_blocked_csr(fresh, key, A.shape) is None
    assert any("corrupt" in rec.message for rec in caplog.records)
    assert fresh.misses == {"blocked_csr": 1}
    # The damaged entry was quarantined, so the recompute heals the cache.
    blocked, _ = csc_to_blocked_csr(A, 8)
    store_blocked_csr(fresh, key, blocked, b_n=8)
    healed = ArtifactCache(CachePolicy(cache_dir=str(tmp_path)))
    roundtrip = fetch_blocked_csr(healed, key, A.shape)
    assert roundtrip is not None
    ref, _ = csc_to_blocked_csr(A, 8)
    np.testing.assert_array_equal(roundtrip.block_starts, ref.block_starts)
    for got, want in zip(roundtrip.blocks, ref.blocks):
        np.testing.assert_array_equal(got.indptr, want.indptr)
        np.testing.assert_array_equal(got.indices, want.indices)
        np.testing.assert_array_equal(got.data, want.data)


class TestDirectDamage:
    def test_bitflip_detected(self, tmp_path, A, caplog):
        key = _store_blocked(tmp_path, A)
        victim = tmp_path / "blocked_csr" / key / "data.npy"
        raw = bytearray(victim.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        victim.write_bytes(bytes(raw))
        _assert_recovers(tmp_path, A, key, caplog)

    def test_truncation_detected(self, tmp_path, A, caplog):
        key = _store_blocked(tmp_path, A)
        victim = tmp_path / "blocked_csr" / key / "indices.npy"
        victim.write_bytes(victim.read_bytes()[:10])
        _assert_recovers(tmp_path, A, key, caplog)

    def test_garbage_manifest_detected(self, tmp_path, A, caplog):
        key = _store_blocked(tmp_path, A)
        (tmp_path / "blocked_csr" / key / ENTRY_MANIFEST_NAME) \
            .write_text("{not json")
        _assert_recovers(tmp_path, A, key, caplog)

    def test_missing_payload_detected(self, tmp_path, A, caplog):
        key = _store_blocked(tmp_path, A)
        (tmp_path / "blocked_csr" / key / "indptr.npy").unlink()
        _assert_recovers(tmp_path, A, key, caplog)


class TestInjectedDamage:
    """The same damage, driven by the deterministic fault machinery."""

    def test_injected_bitflip(self, tmp_path, A, caplog):
        inj = FaultInjector(FaultPlan([
            FaultSpec(kind="bitflip", kernel="cache", task=(1, 0))]))
        key = _store_blocked(tmp_path, A, injector=inj)
        assert inj.events_by_kind() == {"bitflip": 1}
        _assert_recovers(tmp_path, A, key, caplog)

    def test_injected_torn_write(self, tmp_path, A, caplog):
        inj = FaultInjector(FaultPlan([
            FaultSpec(kind="torn_write", kernel="cache", task=(1, 0))]))
        key = _store_blocked(tmp_path, A, injector=inj)
        assert inj.events_by_kind() == {"torn_write": 1}
        _assert_recovers(tmp_path, A, key, caplog)

    def test_fault_addresses_store_order(self, tmp_path, A):
        """task=(seq, 0) counts entry stores; the second store is hit,
        the first survives intact."""
        inj = FaultInjector(FaultPlan([
            FaultSpec(kind="bitflip", kernel="cache", task=(2, 0))]))
        cache = ArtifactCache(CachePolicy(cache_dir=str(tmp_path)),
                              injector=inj)
        cache.insert("tune", "first", payloads={"x.bin": b"aaaa"})
        cache.insert("tune", "second", payloads={"x.bin": b"bbbb"})
        fresh = ArtifactCache(CachePolicy(cache_dir=str(tmp_path)))
        assert fresh.fetch("tune", "first") is not None
        assert fresh.fetch("tune", "second") is None


class TestEndToEndFallback:
    def test_sketch_after_corruption_is_bit_identical(self, tmp_path, A,
                                                      caplog):
        """A damaged blocked-CSR entry must not change the sketch: the
        warm run falls back to a recompute and matches the cold run."""
        from repro.core import SketchConfig, sketch

        cfg = SketchConfig(gamma=2.0, seed=3, kernel="algo4")
        cold = sketch(A, config=cfg,
                      cache=CachePolicy(cache_dir=str(tmp_path)))
        # Flip one payload bit in every cached blocked-CSR entry.
        victims = list((tmp_path / "blocked_csr").glob("*/data.npy"))
        assert victims
        for victim in victims:
            raw = bytearray(victim.read_bytes())
            raw[len(raw) // 2] ^= 0x01
            victim.write_bytes(bytes(raw))
        with caplog.at_level(logging.WARNING, logger="repro.cache"):
            warm = sketch(A, config=cfg,
                          cache=CachePolicy(cache_dir=str(tmp_path)))
        assert any("corrupt" in rec.message for rec in caplog.records)
        np.testing.assert_array_equal(warm.sketch, cold.sketch)
        # The fallback healed the entry: the next run hits cleanly.
        healed = sketch(A, config=cfg,
                        cache=CachePolicy(cache_dir=str(tmp_path)))
        np.testing.assert_array_equal(healed.sketch, cold.sketch)
