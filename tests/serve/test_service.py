"""SketchService: the transport-independent serving core.

Covers admission + shedding, deadline phases, warm-pool reuse, chaos
crash recovery with bit-identical replay, breaker integration, and
drain semantics — all in-process, no HTTP.
"""

import threading
import time

import base64

import numpy as np
import pytest

from repro.core.config import SketchConfig
from repro.errors import (
    ConfigError,
    RequestDeadlineError,
    RequestShedError,
)
from repro.plan import Planner, Runtime
from repro.plan.events import (
    DEADLINE_MISSED,
    DRAIN_STARTED,
    REQUEST_ADMITTED,
    REQUEST_DONE,
    REQUEST_SHED,
)
from repro.serve import ServeConfig, SketchService
from repro.sparse import random_sparse

MATRIX = {"random": [300, 60, 0.05], "seed": 11}


def serial_reference(d=12, seed=4):
    A = random_sparse(300, 60, 0.05, seed=11)
    plan = Planner().compile(A, SketchConfig(seed=seed), d=d)
    return Runtime().run(plan, A).sketch


def decode(doc):
    raw = base64.b64decode(doc["sketch"]["data"])
    return np.frombuffer(raw, dtype=doc["sketch"]["dtype"]).reshape(
        doc["sketch"]["shape"])


@pytest.fixture
def service():
    svc = SketchService(ServeConfig(queue_capacity=8, executors=2,
                                    default_deadline=60.0,
                                    drain_timeout=10.0,
                                    allow_chaos=True)).start()
    yield svc
    svc.close()


class TestServing:
    def test_serial_request_bit_identical(self, service):
        doc = service.handle({
            "matrix": MATRIX,
            "config": {"d": 12, "seed": 4, "driver": "serial"},
            "output": "array",
        })
        assert doc["status"] == "ok"
        assert np.array_equal(decode(doc), serial_reference())

    def test_process_request_bit_identical(self, service):
        doc = service.handle({
            "matrix": MATRIX,
            "config": {"d": 12, "seed": 4, "driver": "process",
                       "workers": 2},
            "output": "array",
        })
        assert np.array_equal(decode(doc), serial_reference())

    def test_warm_pool_reused_across_requests(self, service):
        body = {"matrix": MATRIX,
                "config": {"d": 12, "seed": 4, "driver": "process",
                           "workers": 2}}
        service.handle(body)
        assert len(service._pools) == 1
        pool = next(iter(service._pools.values()))
        doc = service.handle(body)
        # same supervisor object, and the warm run paid no conversion
        assert next(iter(service._pools.values())) is pool
        assert doc["stats"]["conversion_seconds"] == 0.0

    def test_request_ids_assigned_and_echoed(self, service):
        doc = service.handle({"matrix": MATRIX, "config": {"d": 8}})
        assert doc["request_id"].startswith("r")
        doc2 = service.handle({"matrix": MATRIX, "config": {"d": 8},
                               "request_id": "mine"})
        assert doc2["request_id"] == "mine"

    def test_full_plan_replay(self, service):
        A = random_sparse(300, 60, 0.05, seed=11)
        plan = Planner().compile(A, SketchConfig(seed=4), d=12)
        doc = service.handle({"matrix": MATRIX, "plan": plan.to_dict(),
                              "output": "array"})
        assert np.array_equal(decode(doc), serial_reference())

    def test_invalid_plan_is_config_error(self, service):
        with pytest.raises(ConfigError, match="invalid plan record"):
            service.handle({"matrix": MATRIX, "plan": {"bogus": 1}})

    def test_bad_request_does_not_feed_breaker(self, service):
        for _ in range(service.breaker.threshold + 2):
            with pytest.raises(ConfigError):
                service.handle({"matrix": MATRIX, "plan": {"bogus": 1}})
        assert service.breaker.state == "closed"


class TestDeadlines:
    def test_queue_phase_miss(self, service):
        events = []
        service.bus.subscribe(DEADLINE_MISSED,
                              lambda e: events.append(e.payload))
        with pytest.raises(RequestDeadlineError) as exc:
            service.handle({"matrix": MATRIX, "config": {"d": 12},
                            "deadline_seconds": 1e-4})
        assert exc.value.phase == "queue"
        assert service.counters["deadline_missed"] == 1
        assert events and events[0]["phase"] == "queue"

    def test_deadline_propagates_into_task_timeout(self, service):
        # A stall fault longer than the request budget: the engine's
        # post-hoc per-task check raises, and the service surfaces the
        # miss as phase="execute".
        with pytest.raises(RequestDeadlineError) as exc:
            service.handle({
                "matrix": MATRIX,
                "config": {"d": 12, "driver": "engine",
                           "resilience": {"reexecute_stragglers": False}},
                "deadline_seconds": 0.4,
                "chaos": {"faults": [{"kind": "stall",
                                      "sleep_seconds": 1.5}]},
            })
        assert exc.value.phase == "execute"

    def test_deadline_miss_is_breaker_neutral(self, service):
        for _ in range(service.breaker.threshold + 2):
            with pytest.raises(RequestDeadlineError):
                service.handle({"matrix": MATRIX, "config": {"d": 12},
                                "deadline_seconds": 1e-4})
        assert service.breaker.state == "closed"


class TestShedding:
    def test_queue_full_sheds_with_retry_hint(self):
        # No executors: nothing drains the queue.
        svc = SketchService(ServeConfig(queue_capacity=2, executors=1,
                                        allow_chaos=True))
        try:
            from repro.serve.protocol import parse_request

            body = {"matrix": MATRIX, "config": {"d": 8}}
            svc.submit(parse_request(body))
            svc.submit(parse_request(body))
            with pytest.raises(RequestShedError) as exc:
                svc.submit(parse_request(body))
            assert exc.value.reason == "queue_full"
            assert exc.value.retry_after > 0
            assert svc.counters["shed"] == 1
        finally:
            svc.queue.close()

    def test_breaker_open_sheds_immediately(self, service):
        for _ in range(service.breaker.threshold):
            service.breaker.record_failure()
        with pytest.raises(RequestShedError) as exc:
            service.handle({"matrix": MATRIX, "config": {"d": 8}})
        assert exc.value.reason == "breaker_open"


class TestCrashRecovery:
    def test_kill_pool_recovers_bit_identically(self, service):
        # Hang one task long enough for the kill timer to land, then
        # massacre the workers mid-request: the service must fall back
        # to a serial re-execution with the exact same bytes.
        doc = service.handle({
            "matrix": MATRIX,
            "config": {"d": 12, "seed": 4, "driver": "process",
                       "workers": 2},
            "output": "array",
            "chaos": {"kill_pool": True,
                      "faults": [{"kind": "hang_worker",
                                  "sleep_seconds": 0.4}]},
        })
        assert doc["status"] == "ok"
        assert np.array_equal(decode(doc), serial_reference())

    def test_injected_kill_worker_still_served(self, service):
        doc = service.handle({
            "matrix": MATRIX,
            "config": {"d": 12, "seed": 4, "driver": "process",
                       "workers": 2},
            "output": "array",
            "chaos": {"faults": [{"kind": "kill_worker"}]},
        })
        assert doc["status"] == "ok"
        assert np.array_equal(decode(doc), serial_reference())


class TestDrain:
    def test_drain_sheds_queued_and_finishes_inflight(self):
        svc = SketchService(ServeConfig(queue_capacity=8, executors=1,
                                        drain_timeout=30.0,
                                        allow_chaos=True)).start()
        events = []
        svc.bus.subscribe(DRAIN_STARTED, lambda e: events.append(e.payload))
        from repro.serve.protocol import parse_request

        slow = parse_request({
            "matrix": MATRIX,
            "config": {"d": 12, "seed": 4, "driver": "engine"},
            "output": "array",
            "chaos": {"faults": [{"kind": "stall",
                                  "sleep_seconds": 0.5}]},
        }, allow_chaos=True)
        queued = parse_request({"matrix": MATRIX, "config": {"d": 8}})
        in_flight = svc.submit(slow)
        time.sleep(0.15)  # let the executor pick it up
        waiting = svc.submit(queued)
        assert svc.drain() is True
        # queued request shed with a retry hint
        with pytest.raises(RequestShedError) as exc:
            waiting.wait(timeout=1.0)
        assert exc.value.reason == "draining"
        assert exc.value.retry_after > 0
        # in-flight request completed bit-identically
        doc = in_flight.wait(timeout=10.0)
        assert np.array_equal(decode(doc), serial_reference())
        assert events and "in_flight" in events[0]
        # post-drain admissions shed
        with pytest.raises(RequestShedError):
            svc.submit(parse_request({"matrix": MATRIX, "config": {"d": 8}}))
        assert not svc.ready

    def test_drain_writes_state_file(self, tmp_path):
        svc = SketchService(ServeConfig(
            executors=1, checkpoint_dir=str(tmp_path))).start()
        assert svc.drain() is True
        import json

        state = json.loads(
            (tmp_path / "serve_drain_state.json").read_text())
        assert state["clean"] is True
        assert "counters" in state

    def test_drain_idempotent(self):
        svc = SketchService(ServeConfig(executors=1)).start()
        assert svc.drain() is True
        assert svc.drain() is True


class TestEvents:
    def test_lifecycle_events_emitted(self, service):
        seen = {}
        for name in (REQUEST_ADMITTED, REQUEST_DONE, REQUEST_SHED):
            service.bus.subscribe(
                name, lambda e, n=name: seen.setdefault(n, e.payload))
        service.handle({"matrix": MATRIX, "config": {"d": 8}})
        for _ in range(service.breaker.threshold):
            service.breaker.record_failure()
        with pytest.raises(RequestShedError):
            service.handle({"matrix": MATRIX, "config": {"d": 8}})
        assert REQUEST_ADMITTED in seen
        assert REQUEST_DONE in seen and seen[REQUEST_DONE]["status"] == "ok"
        assert seen[REQUEST_SHED]["reason"] == "breaker_open"
