"""Admission queue: bounded FIFO, load shedding, retry hints."""

import threading

import pytest

from repro.errors import RequestShedError
from repro.serve.admission import (
    RETRY_AFTER_MAX,
    RETRY_AFTER_MIN,
    AdmissionQueue,
)


class TestOfferTake:
    def test_fifo_order(self):
        q = AdmissionQueue(capacity=4)
        for item in ("a", "b", "c"):
            q.offer(item)
        assert [q.take(0.1) for _ in range(3)] == ["a", "b", "c"]

    def test_offer_returns_depth(self):
        q = AdmissionQueue(capacity=4)
        assert q.offer("a") == 1
        assert q.offer("b") == 2
        assert q.depth == 2

    def test_take_timeout_returns_none(self):
        q = AdmissionQueue(capacity=2)
        assert q.take(timeout=0.01) is None


class TestShedding:
    def test_sheds_beyond_capacity(self):
        q = AdmissionQueue(capacity=2)
        q.offer("a")
        q.offer("b")
        with pytest.raises(RequestShedError) as exc:
            q.offer("c")
        assert exc.value.reason == "queue_full"
        assert exc.value.retry_after >= RETRY_AFTER_MIN
        # the two seats already taken are untouched
        assert q.depth == 2

    def test_sheds_when_closed(self):
        q = AdmissionQueue(capacity=2)
        q.close()
        with pytest.raises(RequestShedError) as exc:
            q.offer("a")
        assert exc.value.reason == "draining"

    def test_close_returns_remaining_tickets(self):
        q = AdmissionQueue(capacity=4)
        q.offer("a")
        q.offer("b")
        assert q.close() == ["a", "b"]
        assert q.depth == 0
        assert q.take(timeout=0.01) is None  # closed + empty -> None


class TestRetryHints:
    def test_retry_after_scales_with_depth(self):
        q = AdmissionQueue(capacity=8, initial_service_seconds=1.0)
        empty = q.retry_after()
        q.offer("a")
        q.offer("b")
        assert q.retry_after() > empty

    def test_retry_after_clamped(self):
        slow = AdmissionQueue(capacity=64, initial_service_seconds=1e6)
        assert slow.retry_after() <= RETRY_AFTER_MAX
        fast = AdmissionQueue(capacity=2, initial_service_seconds=1e-9)
        assert fast.retry_after() >= RETRY_AFTER_MIN

    def test_ewma_tracks_observed_service_time(self):
        q = AdmissionQueue(capacity=4, initial_service_seconds=0.1)
        before = q.retry_after()
        for _ in range(50):
            q.observe_service_time(10.0)
        assert q.retry_after() > before


class TestConcurrency:
    def test_blocking_take_sees_offer(self):
        q = AdmissionQueue(capacity=2)
        got = []

        def consumer():
            got.append(q.take(timeout=5.0))

        t = threading.Thread(target=consumer)
        t.start()
        q.offer("x")
        t.join(timeout=5.0)
        assert got == ["x"]
