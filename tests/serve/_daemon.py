"""Subprocess harness for daemon-level serve tests.

Launches ``python -m repro serve`` with an ephemeral port and a ready
file, waits for readiness, and offers tiny HTTP helpers.  Used by the
drain and chaos-acceptance tests (and mirrored by ``make serve-smoke``).
"""

from __future__ import annotations

import base64
import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request

import numpy as np

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


class ServeProcess:
    """A ``repro serve`` daemon subprocess bound to an ephemeral port."""

    def __init__(self, tmp_dir: str, *extra_args: str,
                 startup_timeout: float = 30.0) -> None:
        self.ready_file = os.path.join(tmp_dir, "ready")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.abspath(SRC),
                        env.get("PYTHONPATH", "")) if p)
        env.pop("REPRO_CACHE_DIR", None)
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--ready-file", self.ready_file, "--no-cache",
             *extra_args],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        deadline = time.monotonic() + startup_timeout
        while time.monotonic() < deadline:
            if os.path.exists(self.ready_file):
                break
            if self.proc.poll() is not None:
                raise RuntimeError(
                    "daemon exited during startup:\n"
                    + self.proc.stderr.read().decode())
            time.sleep(0.05)
        else:
            self.proc.kill()
            raise RuntimeError("daemon never became ready")
        with open(self.ready_file, encoding="utf-8") as fh:
            self.base = "http://" + fh.read().strip()

    # -- HTTP helpers ------------------------------------------------------

    def get(self, path: str, timeout: float = 10.0):
        try:
            with urllib.request.urlopen(self.base + path,
                                        timeout=timeout) as resp:
                return resp.status, resp.read().decode()
        except urllib.error.HTTPError as err:
            return err.code, err.read().decode()

    def post(self, doc: dict, timeout: float = 120.0):
        """POST /v1/sketch; returns ``(status, body_dict, headers)``."""
        req = urllib.request.Request(
            self.base + "/v1/sketch", data=json.dumps(doc).encode(),
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return resp.status, json.loads(resp.read()), resp.headers
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read()), err.headers

    # -- lifecycle ---------------------------------------------------------

    def sigterm(self) -> None:
        import signal

        self.proc.send_signal(signal.SIGTERM)

    def wait(self, timeout: float = 60.0) -> int:
        return self.proc.wait(timeout=timeout)

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10.0)


def decode_sketch(doc: dict) -> np.ndarray:
    raw = base64.b64decode(doc["sketch"]["data"])
    return np.frombuffer(raw, dtype=doc["sketch"]["dtype"]).reshape(
        doc["sketch"]["shape"])
