"""Request coalescing in the serving core.

``max_batch > 1`` lets an executor drain *compatible* queued requests —
same matrix spec and config apart from the seed, no chaos, no explicit
plan, not the pregen driver — into one batched run, then demux each
member's slice into its own response.  The contract under test: every
coalesced response is bit-identical to the solo run with that member's
seed, coalescing never fails a request that would succeed alone (pooled
failure degrades to per-member solo execution), deadlines are honored,
and the batch is visible in events/metrics/counters.
"""

import base64
import threading
import time

import numpy as np
import pytest

from repro.core.config import SketchConfig
from repro.errors import ConfigError, RequestDeadlineError, ReproError
from repro.plan import Planner, Runtime
from repro.plan.events import REQUESTS_COALESCED
from repro.serve import ServeConfig, SketchService
from repro.serve.admission import AdmissionQueue
from repro.serve.protocol import parse_request
from repro.sparse import random_sparse

MATRIX = {"random": [300, 120, 0.05], "seed": 3}
SEEDS = (11, 22, 33, 44)
BASE_CONFIG = {"d": 64, "kernel": "algo3", "rng_kind": "philox",
               "b_d": 32, "b_n": 40, "driver": "serial"}


def body_for(seed, **overrides):
    config = dict(BASE_CONFIG, seed=seed)
    body = {"matrix": MATRIX, "config": config, "output": "array",
            "request_id": f"req-{seed}"}
    body.update(overrides)
    return body


def decode(doc):
    raw = base64.b64decode(doc["sketch"]["data"])
    return np.frombuffer(raw, dtype=doc["sketch"]["dtype"]).reshape(
        doc["sketch"]["shape"])


def solo_reference(seed):
    A = random_sparse(300, 120, 0.05, seed=3)
    cfg = SketchConfig(kernel="algo3", rng_kind="philox", seed=seed,
                       b_d=32, b_n=40)
    plan = Planner().compile(A, cfg, d=64, driver="serial")
    return Runtime().run(plan, A).sketch


def make_service(max_batch=8, **kwargs):
    """A coalescing service, NOT yet started — submit first, then
    ``start()``, so queued requests are guaranteed to be waiting
    together when the single executor wakes up."""
    defaults = dict(queue_capacity=16, executors=1, default_deadline=60.0,
                    drain_timeout=10.0, allow_chaos=True,
                    max_batch=max_batch)
    defaults.update(kwargs)
    return SketchService(ServeConfig(**defaults))


def submit_then_start(svc, bodies):
    tickets = [svc.submit(parse_request(b, allow_chaos=True))
               for b in bodies]
    svc.start()
    return tickets


class TestCoalescing:
    def test_compatible_requests_coalesce_bit_identically(self):
        svc = make_service()
        events = []
        svc.bus.subscribe(REQUESTS_COALESCED,
                          lambda e: events.append(e.payload))
        try:
            tickets = submit_then_start(svc, [body_for(s) for s in SEEDS])
            docs = [t.wait(timeout=60.0) for t in tickets]
            for seed, doc in zip(SEEDS, docs):
                assert doc["status"] == "ok"
                assert doc["request_id"] == f"req-{seed}"
                assert np.array_equal(decode(doc), solo_reference(seed))
            # One batched run served the whole group.
            batches = sorted(d["coalesced"]["batch"] for d in docs)
            indices = sorted(d["coalesced"]["index"] for d in docs)
            assert batches == [len(SEEDS)] * len(SEEDS)
            assert indices == list(range(len(SEEDS)))
            assert svc.counters["served"] == len(SEEDS)
            assert svc.counters["coalesced"] == len(SEEDS)
            assert len(events) == 1
            assert events[0]["batch"] == len(SEEDS)
            assert sorted(events[0]["request_ids"]) == \
                sorted(f"req-{s}" for s in SEEDS)
        finally:
            svc.close()

    def test_max_batch_caps_group_size(self):
        svc = make_service(max_batch=3)
        try:
            seeds = tuple(range(51, 56))        # 5 requests, cap 3
            tickets = submit_then_start(svc, [body_for(s) for s in seeds])
            docs = [t.wait(timeout=60.0) for t in tickets]
            for seed, doc in zip(seeds, docs):
                assert np.array_equal(decode(doc), solo_reference(seed))
                assert doc.get("coalesced", {}).get("batch", 1) <= 3
            assert svc.counters["served"] == len(seeds)
        finally:
            svc.close()

    def test_default_max_batch_disables_coalescing(self):
        svc = make_service(max_batch=1)
        try:
            tickets = submit_then_start(svc,
                                        [body_for(s) for s in SEEDS[:2]])
            docs = [t.wait(timeout=60.0) for t in tickets]
            for seed, doc in zip(SEEDS[:2], docs):
                assert "coalesced" not in doc
                assert np.array_equal(decode(doc), solo_reference(seed))
            assert svc.counters["coalesced"] == 0
        finally:
            svc.close()

    def test_incompatible_requests_do_not_coalesce(self):
        svc = make_service()
        try:
            bodies = [
                body_for(SEEDS[0]),
                # different sketch size → different plan geometry
                {"matrix": MATRIX,
                 "config": dict(BASE_CONFIG, seed=SEEDS[1], d=32),
                 "output": "array", "request_id": "other-d"},
                # different matrix entirely
                {"matrix": {"random": [200, 60, 0.05], "seed": 7},
                 "config": dict(BASE_CONFIG, seed=SEEDS[2]),
                 "output": "array", "request_id": "other-A"},
            ]
            tickets = submit_then_start(svc, bodies)
            docs = [t.wait(timeout=60.0) for t in tickets]
            assert all("coalesced" not in d for d in docs)
            assert svc.counters["coalesced"] == 0
            assert np.array_equal(decode(docs[0]),
                                  solo_reference(SEEDS[0]))
        finally:
            svc.close()

    def test_chaos_and_plan_requests_never_coalesce(self):
        svc = make_service()
        try:
            A = random_sparse(300, 120, 0.05, seed=3)
            cfg = SketchConfig(kernel="algo3", rng_kind="philox",
                               seed=SEEDS[1], b_d=32, b_n=40)
            plan = Planner().compile(A, cfg, d=64, driver="serial")
            bodies = [
                body_for(SEEDS[0],
                         chaos={"faults": [{"kind": "stall",
                                            "sleep_seconds": 0.01}]}),
                {"matrix": MATRIX, "plan": plan.to_dict(),
                 "output": "array", "request_id": "with-plan"},
                body_for(SEEDS[2]),
            ]
            tickets = submit_then_start(svc, bodies)
            docs = [t.wait(timeout=60.0) for t in tickets]
            assert all("coalesced" not in d for d in docs)
            assert svc.counters["coalesced"] == 0
            assert np.array_equal(decode(docs[1]),
                                  solo_reference(SEEDS[1]))
        finally:
            svc.close()

    def test_pooled_failure_degrades_to_solo_members(self):
        """A failing batched run must never fail requests that would
        succeed alone: the group falls back to per-member execution."""
        svc = make_service()
        original = svc._execute
        calls = {"batched": 0}

        def sabotage(plan, A, injector, ticket):
            if plan.problem.batch > 1:
                calls["batched"] += 1
                raise ReproError("injected batched-run failure")
            return original(plan, A, injector, ticket)

        svc._execute = sabotage
        try:
            tickets = submit_then_start(svc, [body_for(s) for s in SEEDS])
            docs = [t.wait(timeout=60.0) for t in tickets]
            assert calls["batched"] == 1
            for seed, doc in zip(SEEDS, docs):
                assert doc["status"] == "ok"
                assert "coalesced" not in doc
                assert np.array_equal(decode(doc), solo_reference(seed))
            assert svc.breaker.state == "closed"
        finally:
            svc.close()

    def test_expired_member_missed_others_served(self):
        svc = make_service()
        try:
            doomed = body_for(SEEDS[0], deadline_seconds=1e-4)
            live = [body_for(s) for s in SEEDS[1:]]
            tickets = submit_then_start(svc, [doomed] + live)
            time.sleep(0.05)        # let the doomed deadline lapse
            with pytest.raises(RequestDeadlineError) as exc:
                tickets[0].wait(timeout=60.0)
            assert exc.value.phase == "queue"
            for seed, t in zip(SEEDS[1:], tickets[1:]):
                doc = t.wait(timeout=60.0)
                assert np.array_equal(decode(doc), solo_reference(seed))
        finally:
            svc.close()

    def test_amortized_service_time_feeds_admission_ewma(self):
        svc = make_service()
        try:
            before = svc.queue.service_estimate()
            tickets = submit_then_start(svc, [body_for(s) for s in SEEDS])
            for t in tickets:
                t.wait(timeout=60.0)
            # The EWMA sees per-request (amortized) time, so the retry
            # hint stays calibrated to coalesced throughput.
            after = svc.queue.service_estimate()
            assert after > 0.0
            assert after != before
        finally:
            svc.close()


class TestObservability:
    def test_metrics_count_coalesced_requests(self):
        from repro.obs import RunObserver

        svc = make_service()
        obs = RunObserver(trace=False).attach(svc.bus)
        try:
            tickets = submit_then_start(svc, [body_for(s) for s in SEEDS])
            for t in tickets:
                t.wait(timeout=60.0)
            text = obs.metrics_text()
            assert f"repro_requests_coalesced_total {len(SEEDS)}" in text
            assert "repro_batch_size_bucket" in text
            families = {f.name: f for f in obs.registry.families()}
            assert families["repro_requests_coalesced_total"].value() \
                == len(SEEDS)
        finally:
            svc.close()


class TestConfig:
    def test_max_batch_validated(self):
        with pytest.raises(ConfigError):
            ServeConfig(max_batch=0)

    def test_round_trip(self):
        cfg = ServeConfig(max_batch=4)
        assert cfg.max_batch == 4


class TestTakeMatching:
    def test_takes_only_matching_up_to_limit(self):
        q = AdmissionQueue(capacity=16)
        for i in range(6):
            q.offer(i)
        taken = q.take_matching(lambda x: x % 2 == 0, limit=2)
        assert taken == [0, 2]
        # Non-matching and over-limit items stay, order preserved.
        rest = [q.take(timeout=0.1) for _ in range(4)]
        assert rest == [1, 3, 4, 5]

    def test_zero_limit_is_noop(self):
        q = AdmissionQueue(capacity=4)
        q.offer("a")
        assert q.take_matching(lambda _: True, limit=0) == []
        assert q.take(timeout=0.1) == "a"
