"""The issue's acceptance scenario, end to end.

Concurrent requests against a live daemon while chaos lands: one
request's warm pool is killed mid-flight, one hangs past its deadline,
one waits in queue with an already-hopeless deadline.  The daemon must
fail *only* the affected requests — each with a typed error — serve
everything else bit-identical to a local serial ``Runtime.run``, and
drain cleanly on SIGTERM.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.config import SketchConfig
from repro.plan import Planner, Runtime
from repro.sparse import random_sparse

from ._daemon import ServeProcess, decode_sketch

MATRIX = {"random": [400, 80, 0.04], "seed": 21}


def serial_reference(d, seed):
    A = random_sparse(400, 80, 0.04, seed=21)
    plan = Planner().compile(A, SketchConfig(seed=seed), d=d)
    return Runtime().run(plan, A).sketch


@pytest.fixture
def daemon(tmp_path):
    d = ServeProcess(str(tmp_path), "--allow-chaos", "--executors", "2",
                     "--queue-capacity", "16", "--drain-timeout", "30",
                     "--breaker-threshold", "10")
    yield d
    d.kill()


def test_chaos_acceptance(daemon):
    results = {}

    def fire(name, doc):
        results[name] = daemon.post(doc)

    # Three healthy requests with distinct seeds/shapes, one of them on
    # the warm process pool.
    healthy = {
        "clean-serial": {
            "matrix": MATRIX, "output": "array",
            "config": {"d": 16, "seed": 1, "driver": "serial"},
        },
        "clean-engine": {
            "matrix": MATRIX, "output": "array",
            "config": {"d": 12, "seed": 2, "driver": "engine"},
        },
        # healthy but slow: stalls an executor for a second, then must
        # still be served bit-identically
        "clean-stalled": {
            "matrix": MATRIX, "output": "array",
            "config": {"d": 16, "seed": 1, "driver": "engine"},
            "chaos": {"faults": [{"kind": "stall",
                                  "sleep_seconds": 1.2}]},
        },
        "clean-process": {
            "matrix": MATRIX, "output": "array",
            "config": {"d": 16, "seed": 3, "driver": "process",
                       "workers": 2},
        },
    }
    # The afflicted: a worker massacre mid-request (must still be served
    # via deterministic re-execution), a hang blowing through its
    # deadline (typed 504), and a queued request whose deadline cannot
    # survive the backlog (typed 504, phase=queue).
    afflicted = {
        "killed": {
            "matrix": MATRIX, "output": "array",
            "config": {"d": 16, "seed": 3, "driver": "process",
                       "workers": 2},
            "chaos": {"kill_pool": True,
                      "faults": [{"kind": "hang_worker",
                                  "sleep_seconds": 0.4}]},
        },
        "hung": {
            "matrix": MATRIX, "output": "array",
            "config": {"d": 12, "seed": 5, "driver": "engine",
                       "resilience": {"reexecute_stragglers": False}},
            "deadline_seconds": 0.5,
            "chaos": {"faults": [{"kind": "stall",
                                  "sleep_seconds": 2.0}]},
        },
        "hopeless": {
            "matrix": MATRIX,
            "config": {"d": 8, "seed": 6},
            "deadline_seconds": 0.05,
            "chaos": {"faults": [{"kind": "stall",
                                  "sleep_seconds": 0.0}]},
        },
    }

    threads = []
    # Saturate both executors with the long-stalling requests first, so
    # "hopeless" genuinely waits in queue past its deadline.
    for name in ("hung", "clean-stalled"):
        doc = afflicted.get(name) or healthy[name]
        t = threading.Thread(target=fire, args=(name, doc))
        t.start()
        threads.append(t)
    time.sleep(0.4)
    t = threading.Thread(target=fire, args=("hopeless",
                                            afflicted["hopeless"]))
    t.start()
    threads.append(t)
    t = threading.Thread(target=fire, args=("killed", afflicted["killed"]))
    t.start()
    threads.append(t)
    for name, doc in healthy.items():
        if name == "clean-stalled":
            continue
        t = threading.Thread(target=fire, args=(name, doc))
        t.start()
        threads.append(t)
    for t in threads:
        t.join(timeout=120.0)
    assert not any(t.is_alive() for t in threads), "requests wedged"

    # -- the blast radius is exactly the afflicted requests ---------------
    status, body, _ = results["hung"]
    assert status == 504, body
    assert body["error"] == "RequestDeadlineError"
    assert body["phase"] == "execute"

    status, body, _ = results["hopeless"]
    assert status == 504, body
    assert body["error"] == "RequestDeadlineError"
    assert body["phase"] == "queue"

    # the killed-pool request is *served* — crash recovery, bit-identical
    status, body, _ = results["killed"]
    assert status == 200, body
    assert np.array_equal(decode_sketch(body), serial_reference(16, 3))

    # -- everything healthy is bit-identical to a local serial run --------
    expectations = {"clean-serial": (16, 1), "clean-engine": (12, 2),
                    "clean-stalled": (16, 1), "clean-process": (16, 3)}
    for name, (d, seed) in expectations.items():
        status, body, _ = results[name]
        assert status == 200, (name, body)
        assert np.array_equal(decode_sketch(body),
                              serial_reference(d, seed)), name

    # -- metrics saw the carnage ------------------------------------------
    mtext = daemon.get("/metrics")[1]
    assert "serve_deadline_missed_total" in mtext
    assert "serve_requests_admitted_total" in mtext

    # -- and the daemon still drains cleanly ------------------------------
    daemon.sigterm()
    assert daemon.wait(timeout=45.0) == 0
