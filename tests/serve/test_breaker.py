"""Circuit breaker: trip, fast shedding, half-open probe recovery."""

from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class TestClosed:
    def test_starts_closed_and_allows(self):
        b = CircuitBreaker(threshold=3)
        assert b.state == CLOSED
        assert b.allow()

    def test_success_resets_consecutive_count(self):
        b = CircuitBreaker(threshold=2)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == CLOSED  # never saw 2 *consecutive* failures

    def test_below_threshold_stays_closed(self):
        b = CircuitBreaker(threshold=3)
        b.record_failure()
        b.record_failure()
        assert b.state == CLOSED


class TestTrip:
    def test_threshold_consecutive_failures_open(self):
        b = CircuitBreaker(threshold=3, recovery_seconds=60.0)
        for _ in range(3):
            b.record_failure()
        assert b.state == OPEN
        assert b.trips == 1
        assert not b.allow()

    def test_retry_after_is_recovery_remainder(self):
        b = CircuitBreaker(threshold=1, recovery_seconds=60.0)
        b.record_failure()
        assert 0 < b.retry_after() <= 60.0

    def test_extra_failures_do_not_retrip(self):
        b = CircuitBreaker(threshold=1, recovery_seconds=60.0)
        b.record_failure()
        b.record_failure()
        assert b.trips == 1


class TestHalfOpen:
    def _tripped(self) -> CircuitBreaker:
        b = CircuitBreaker(threshold=1, recovery_seconds=0.02)
        b.record_failure()
        # wait out the recovery window deterministically
        import time

        time.sleep(0.05)
        return b

    def test_recovery_window_goes_half_open(self):
        b = self._tripped()
        assert b.state == HALF_OPEN

    def test_single_probe_allowed(self):
        b = self._tripped()
        assert b.allow()        # the probe
        assert not b.allow()    # everyone else sheds until it reports

    def test_probe_success_closes(self):
        b = self._tripped()
        assert b.allow()
        b.record_success()
        assert b.state == CLOSED
        assert b.allow()

    def test_probe_failure_reopens(self):
        b = self._tripped()
        assert b.allow()
        b.record_failure()
        assert b.state == OPEN
        assert b.trips == 2
        assert not b.allow()

    def test_neutral_outcome_returns_probe(self):
        # A deadline miss says nothing about pool health; the checked-out
        # probe must come back or the breaker wedges forever.
        b = self._tripped()
        assert b.allow()
        b.record_neutral()
        assert b.state == HALF_OPEN
        assert b.allow()  # probe slot is available again
