"""SIGTERM graceful drain, end to end against the real daemon.

The drain contract: on SIGTERM the daemon stops admitting, lets
in-flight requests finish (their responses arrive bit-identical),
sheds queued requests with retry hints, checkpoints drain state, and
exits 0 within the drain deadline.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.core.config import SketchConfig
from repro.plan import Planner, Runtime
from repro.sparse import random_sparse

from ._daemon import ServeProcess, decode_sketch

MATRIX = {"random": [300, 60, 0.05], "seed": 11}


def serial_reference(d=12, seed=4):
    A = random_sparse(300, 60, 0.05, seed=11)
    plan = Planner().compile(A, SketchConfig(seed=seed), d=d)
    return Runtime().run(plan, A).sketch


@pytest.fixture
def daemon(tmp_path):
    d = ServeProcess(str(tmp_path), "--allow-chaos", "--executors", "1",
                     "--drain-timeout", "30",
                     "--checkpoint-dir", str(tmp_path / "ckpt"))
    yield d
    d.kill()


class TestEndpoints:
    def test_health_ready_metrics(self, daemon):
        assert daemon.get("/healthz")[0] == 200
        assert daemon.get("/readyz")[0] == 200
        status, text = daemon.get("/metrics")
        assert status == 200
        assert "serve_queue_depth" in text
        assert "repro_dropped_events" in text

    def test_unknown_route_404(self, daemon):
        assert daemon.get("/nope")[0] == 404

    def test_malformed_request_400(self, daemon):
        status, body, _ = daemon.post({"not": "valid"})
        assert status == 400
        assert body["error"] == "ConfigError"


class TestSigtermDrain:
    def test_drain_contract(self, daemon):
        """One SIGTERM mid-request: in-flight completes bit-identically,
        a queued request is shed with a retry hint, exit code is 0."""
        results = {}

        def _inflight():
            # stall keeps this request on the single executor ~1.2s
            results["inflight"] = daemon.post({
                "request_id": "inflight",
                "matrix": MATRIX,
                "config": {"d": 12, "seed": 4, "driver": "engine"},
                "output": "array",
                "chaos": {"faults": [{"kind": "stall",
                                      "sleep_seconds": 1.2}]},
            })

        def _queued():
            results["queued"] = daemon.post({
                "request_id": "queued",
                "matrix": MATRIX,
                "config": {"d": 12, "seed": 4},
                "output": "array",
            })

        t1 = threading.Thread(target=_inflight)
        t1.start()
        time.sleep(0.4)   # executor has picked up the stalled request
        t2 = threading.Thread(target=_queued)
        t2.start()
        time.sleep(0.2)   # second request is sitting in the queue
        daemon.sigterm()

        # readiness flips quickly while the in-flight request finishes
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            try:
                if daemon.get("/readyz", timeout=2.0)[0] == 503:
                    break
            except OSError:  # socket already closed - also fine
                break
            time.sleep(0.05)

        rc = daemon.wait(timeout=45.0)
        t1.join(timeout=10.0)
        t2.join(timeout=10.0)
        assert rc == 0, daemon.proc.stderr.read().decode()

        status, body, _ = results["inflight"]
        assert status == 200
        assert np.array_equal(decode_sketch(body), serial_reference())

        status, body, headers = results["queued"]
        assert status == 503
        assert body["reason"] == "draining"
        assert body["retry_after"] > 0
        assert int(headers["Retry-After"]) >= 1

    def test_admission_refused_while_draining(self, daemon, tmp_path):
        def _inflight():
            daemon.post({
                "matrix": MATRIX,
                "config": {"d": 12, "driver": "engine"},
                "chaos": {"faults": [{"kind": "stall",
                                      "sleep_seconds": 1.5}]},
            })

        t = threading.Thread(target=_inflight)
        t.start()
        time.sleep(0.4)
        daemon.sigterm()
        time.sleep(0.3)
        status, body, _ = daemon.post(
            {"matrix": MATRIX, "config": {"d": 8}}, timeout=10.0)
        assert status == 503
        assert body["reason"] == "draining"
        assert daemon.wait(timeout=45.0) == 0
        t.join(timeout=10.0)
        # drain state checkpoint was persisted atomically
        state = json.loads(
            (tmp_path / "ckpt" / "serve_drain_state.json").read_text())
        assert state["clean"] is True

    def test_idle_sigterm_exits_zero_fast(self, daemon):
        start = time.monotonic()
        daemon.sigterm()
        rc = daemon.wait(timeout=30.0)
        assert rc == 0
        assert time.monotonic() - start < 30.0
