"""Wire protocol: request parsing/validation, response encoding."""

import base64
import json

import numpy as np
import pytest

from repro.core.config import SketchConfig
from repro.errors import ConfigError
from repro.plan import Planner, Runtime
from repro.serve.protocol import (
    encode_result,
    parse_request,
    sketch_digest,
)
from repro.sparse import random_sparse

GOOD = {
    "matrix": {"random": [100, 20, 0.1], "seed": 3},
    "config": {"d": 8, "seed": 1},
}


class TestParseRequest:
    def test_accepts_bytes_text_and_dict(self):
        as_dict = parse_request(dict(GOOD))
        as_text = parse_request(json.dumps(GOOD))
        as_bytes = parse_request(json.dumps(GOOD).encode())
        assert as_dict.matrix == as_text.matrix == as_bytes.matrix

    def test_defaults(self):
        req = parse_request(dict(GOOD))
        assert req.output == "digest"
        assert req.deadline_seconds is None
        assert req.chaos is None
        assert req.plan is None

    def test_request_id_round_trips(self):
        req = parse_request({**GOOD, "request_id": "abc-123"})
        assert req.request_id == "abc-123"

    def test_not_json(self):
        with pytest.raises(ConfigError, match="not valid JSON"):
            parse_request(b"{nope")

    def test_unknown_top_level_field(self):
        with pytest.raises(ConfigError, match="unknown request field"):
            parse_request({**GOOD, "bogus": 1})

    def test_matrix_required(self):
        with pytest.raises(ConfigError, match="matrix"):
            parse_request({"config": {"d": 8}})

    def test_matrix_spec_validated(self):
        with pytest.raises(ConfigError):
            parse_request({"matrix": {"random": [0, 10, 0.5]}})
        with pytest.raises(ConfigError):
            parse_request({"matrix": {"random": [10, 10, 2.0]}})
        with pytest.raises(ConfigError):
            parse_request({"matrix": {"path": ""}})

    def test_plan_xor_config(self):
        with pytest.raises(ConfigError, match="not both"):
            parse_request({"matrix": GOOD["matrix"],
                           "plan": {"kernel": "algo3"},
                           "config": {"d": 8}})

    def test_unknown_config_field(self):
        with pytest.raises(ConfigError, match="unknown config field"):
            parse_request({"matrix": GOOD["matrix"],
                           "config": {"dd": 8}})

    def test_deadline_must_be_positive(self):
        with pytest.raises(ConfigError, match="deadline_seconds"):
            parse_request({**GOOD, "deadline_seconds": -1})
        with pytest.raises(ConfigError, match="deadline_seconds"):
            parse_request({**GOOD, "deadline_seconds": 0})

    def test_output_mode_validated(self):
        with pytest.raises(ConfigError, match="output"):
            parse_request({**GOOD, "output": "csv"})


class TestChaosGating:
    def test_chaos_refused_by_default(self):
        with pytest.raises(ConfigError, match="--allow-chaos"):
            parse_request({**GOOD, "chaos": {"kill_pool": True}})

    def test_chaos_allowed_when_enabled(self):
        req = parse_request({**GOOD, "chaos": {"kill_pool": True}},
                            allow_chaos=True)
        assert req.chaos == {"kill_pool": True}

    def test_chaos_fields_validated(self):
        with pytest.raises(ConfigError, match="unknown chaos field"):
            parse_request({**GOOD, "chaos": {"explode": 1}},
                          allow_chaos=True)
        with pytest.raises(ConfigError, match="slow_client"):
            parse_request({**GOOD, "chaos": {"slow_client": 1e9}},
                          allow_chaos=True)
        with pytest.raises(ConfigError, match="kind"):
            parse_request({**GOOD, "chaos": {"faults": [{"task": [0, 0]}]}},
                          allow_chaos=True)


class TestEncodeResult:
    def _result(self):
        A = random_sparse(80, 16, 0.1, seed=5)
        plan = Planner().compile(A, SketchConfig(seed=2), d=8)
        return Runtime().run(plan, A)

    def test_digest_mode(self):
        result = self._result()
        doc = encode_result(result, "digest", "rq")
        assert doc["status"] == "ok"
        assert doc["request_id"] == "rq"
        assert doc["plan_digest"] == result.plan.digest()
        assert doc["sketch"]["digest"] == sketch_digest(result.sketch)
        assert "data" not in doc["sketch"]

    def test_array_mode_is_bit_identical(self):
        result = self._result()
        doc = encode_result(result, "array")
        raw = base64.b64decode(doc["sketch"]["data"])
        arr = np.frombuffer(raw, dtype=doc["sketch"]["dtype"]).reshape(
            doc["sketch"]["shape"])
        assert np.array_equal(arr, result.sketch)

    def test_none_mode_omits_payload(self):
        doc = encode_result(self._result(), "none")
        assert "data" not in doc["sketch"]
        assert "digest" not in doc["sketch"]
        assert doc["stats"]["samples_generated"] > 0

    def test_digest_deterministic_across_runs(self):
        a = encode_result(self._result(), "digest")
        b = encode_result(self._result(), "digest")
        assert a["sketch"]["digest"] == b["sketch"]["digest"]
        assert a["plan_digest"] == b["plan_digest"]
