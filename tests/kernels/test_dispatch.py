"""Tests for repro.kernels.dispatch (architecture/pattern kernel choice)."""

import pytest

from repro.kernels import choose_kernel, column_concentration
from repro.model import FRONTERA, PERLMUTTER
from repro.sparse import abnormal_c, random_sparse


class TestColumnConcentration:
    def test_uniform_pattern_low(self):
        A = random_sparse(200, 100, 0.05, seed=1)
        assert column_concentration(A, 0.01) < 0.2

    def test_abnormal_c_high(self):
        A = abnormal_c(100, 1000, period=100, seed=1)
        assert column_concentration(A, 0.01) > 0.9

    def test_empty_matrix(self):
        from repro.sparse import CSCMatrix
        import numpy as np

        A = CSCMatrix((5, 4), np.zeros(5, dtype=np.int64),
                      np.array([], dtype=np.int64), np.array([]))
        assert column_concentration(A) == 0.0

    def test_invalid_fraction(self):
        A = random_sparse(10, 10, 0.1, seed=1)
        with pytest.raises(ValueError):
            column_concentration(A, 0.0)


class TestChooseKernel:
    def test_frontera_always_algo3(self):
        # Frontera penalizes random access: Algorithm 3 (Tables II/III).
        A = random_sparse(200, 100, 0.05, seed=2)
        choice = choose_kernel(FRONTERA, A)
        assert choice.kernel == "algo3"
        assert not choice.machine_favors_reuse

    def test_perlmutter_prefers_algo4(self):
        # Perlmutter tolerates random access: Algorithm 4 (Tables IV/V).
        A = random_sparse(200, 100, 0.05, seed=2)
        choice = choose_kernel(PERLMUTTER, A)
        assert choice.kernel == "algo4"
        assert choice.machine_favors_reuse

    def test_perlmutter_abnormal_c_falls_back(self):
        # Even a reuse-favouring machine avoids Algorithm 4 on the
        # column-concentrated pattern that doubles its runtime (Table VI).
        A = abnormal_c(100, 1000, period=100, seed=3)
        choice = choose_kernel(PERLMUTTER, A)
        assert choice.kernel == "algo3"
        assert "Abnormal_C" in choice.reason

    def test_reason_strings(self):
        A = random_sparse(50, 20, 0.1, seed=4)
        assert "strided" in choose_kernel(FRONTERA, A).reason
        assert "reuse" in choose_kernel(PERLMUTTER, A).reason

    def test_concentration_recorded(self):
        A = random_sparse(50, 20, 0.1, seed=5)
        choice = choose_kernel(PERLMUTTER, A)
        assert 0.0 <= choice.column_concentration <= 1.0
