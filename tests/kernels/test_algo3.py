"""Tests for repro.kernels.algo3 (variant kji with on-the-fly RNG)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.kernels import algo3_block, algo3_block_reference
from repro.rng import PhiloxSketchRNG, XoshiroSketchRNG
from repro.sparse import CSCMatrix, random_sparse
from repro.utils import Stopwatch


def _expected(seed, dist, d1, r, A, kind="philox"):
    cls = PhiloxSketchRNG if kind == "philox" else XoshiroSketchRNG
    rng = cls(seed, dist)
    # Column j of the needed S block is rng.column_block(r, d1, j).
    m = A.shape[0]
    S_blk = rng.column_block_batch(r, d1, np.arange(m, dtype=np.int64))
    return S_blk @ A.to_dense()


class TestReferenceKernel:
    def test_matches_materialized_product(self):
        A = random_sparse(25, 8, 0.3, seed=61)
        d1, r = 6, 12
        out = np.zeros((d1, 8))
        algo3_block_reference(out, A, r, PhiloxSketchRNG(5))
        np.testing.assert_allclose(out, _expected(5, "uniform", d1, r, A))

    def test_accumulates_in_place(self):
        A = random_sparse(10, 4, 0.5, seed=62)
        out = np.full((3, 4), 100.0)
        algo3_block_reference(out, A, 0, PhiloxSketchRNG(5))
        expected = 100.0 + _expected(5, "uniform", 3, 0, A)
        np.testing.assert_allclose(out, expected)

    def test_rng_volume_is_d1_nnz(self):
        A = random_sparse(20, 6, 0.3, seed=63)
        rng = PhiloxSketchRNG(1)
        out = np.zeros((5, 6))
        algo3_block_reference(out, A, 0, rng)
        assert rng.samples_generated == 5 * A.nnz


class TestVectorizedKernel:
    @pytest.mark.parametrize("panel_nnz", [1, 3, 17, 100000])
    def test_matches_reference_any_panel(self, panel_nnz):
        A = random_sparse(30, 11, 0.2, seed=64)
        d1, r = 7, 14
        ref = np.zeros((d1, 11))
        algo3_block_reference(ref, A, r, PhiloxSketchRNG(9))
        out = np.zeros((d1, 11))
        algo3_block(out, A, r, PhiloxSketchRNG(9), panel_nnz=panel_nnz)
        np.testing.assert_allclose(out, ref)

    def test_xoshiro_matches_reference(self):
        A = random_sparse(30, 11, 0.2, seed=65)
        ref = np.zeros((6, 11))
        algo3_block_reference(ref, A, 6, XoshiroSketchRNG(9))
        out = np.zeros((6, 11))
        algo3_block(out, A, 6, XoshiroSketchRNG(9))
        np.testing.assert_allclose(out, ref)

    def test_rng_volume_matches_reference(self):
        A = random_sparse(30, 11, 0.2, seed=66)
        rng = PhiloxSketchRNG(1)
        out = np.zeros((4, 11))
        algo3_block(out, A, 0, rng)
        assert rng.samples_generated == 4 * A.nnz

    def test_stopwatch_buckets(self):
        A = random_sparse(30, 11, 0.2, seed=67)
        sw = Stopwatch()
        out = np.zeros((4, 11))
        algo3_block(out, A, 0, PhiloxSketchRNG(1), watch=sw)
        assert sw.total("sample") > 0.0
        assert sw.total("compute") > 0.0

    def test_empty_columns_skipped(self):
        # A matrix with an all-zero column: its output column stays zero.
        dense = np.zeros((8, 3))
        dense[2, 0] = 1.0
        dense[5, 2] = -2.0
        A = CSCMatrix.from_dense(dense)
        out = np.zeros((4, 3))
        algo3_block(out, A, 0, PhiloxSketchRNG(3))
        np.testing.assert_array_equal(out[:, 1], np.zeros(4))
        assert np.any(out[:, 0] != 0)

    def test_all_empty_matrix(self):
        A = CSCMatrix((8, 3), np.zeros(4, dtype=np.int64),
                      np.array([], dtype=np.int64), np.array([]))
        out = np.zeros((4, 3))
        algo3_block(out, A, 0, PhiloxSketchRNG(3))
        np.testing.assert_array_equal(out, np.zeros((4, 3)))

    def test_shape_mismatch(self):
        A = random_sparse(10, 5, 0.3, seed=68)
        with pytest.raises(ShapeError):
            algo3_block(np.zeros((4, 7)), A, 0, PhiloxSketchRNG(0))

    def test_bad_panel_nnz(self):
        A = random_sparse(10, 5, 0.3, seed=69)
        with pytest.raises(ShapeError):
            algo3_block(np.zeros((4, 5)), A, 0, PhiloxSketchRNG(0), panel_nnz=0)
