"""Tests for repro.kernels.loop_orders — all six Algorithm 2 variants."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.kernels import LOOP_ORDER_KERNELS, RULED_OUT
from repro.sparse import random_sparse


@pytest.fixture
def operands():
    rng = np.random.default_rng(3)
    L = rng.standard_normal((6, 15))
    R = random_sparse(15, 9, 0.25, seed=13)
    return L, R, R.to_csr(), L @ R.to_dense()


class TestAllVariantsAgree:
    @pytest.mark.parametrize("order", sorted(LOOP_ORDER_KERNELS))
    def test_matches_dense(self, operands, order):
        L, R_csc, R_csr, expected = operands
        fn, fmt = LOOP_ORDER_KERNELS[order]
        got = fn(L, R_csc if fmt == "csc" else R_csr)
        np.testing.assert_allclose(got, expected)

    @pytest.mark.parametrize("order", sorted(LOOP_ORDER_KERNELS))
    def test_empty_sparse(self, order):
        from repro.sparse import CSCMatrix

        L = np.ones((3, 4))
        R = CSCMatrix((4, 2), np.zeros(3, dtype=np.int64),
                      np.array([], dtype=np.int64), np.array([]))
        fn, fmt = LOOP_ORDER_KERNELS[order]
        got = fn(L, R if fmt == "csc" else R.to_csr())
        np.testing.assert_array_equal(got, np.zeros((3, 2)))

    @pytest.mark.parametrize("order", sorted(LOOP_ORDER_KERNELS))
    def test_shape_mismatch(self, operands, order):
        _, R_csc, R_csr, _ = operands
        fn, fmt = LOOP_ORDER_KERNELS[order]
        with pytest.raises(ShapeError):
            fn(np.ones((3, 7)), R_csc if fmt == "csc" else R_csr)


class TestDesignSpaceMetadata:
    def test_six_variants(self):
        assert len(LOOP_ORDER_KERNELS) == 6
        assert set(LOOP_ORDER_KERNELS) == {"ijk", "ikj", "jik", "jki", "kij", "kji"}

    def test_paper_rules_out_four(self):
        # Section II-B removes ikj/kij (noncontiguous RNG), ijk (row sums),
        # and jik (scattered row updates) — leaving kji and jki.
        assert set(RULED_OUT) == {"ikj", "kij", "ijk", "jik"}
        survivors = set(LOOP_ORDER_KERNELS) - set(RULED_OUT)
        assert survivors == {"kji", "jki"}

    def test_formats_match_paper(self):
        # Algorithm 3 (kji) consumes CSC; Algorithm 4 (jki) consumes CSR.
        assert LOOP_ORDER_KERNELS["kji"][1] == "csc"
        assert LOOP_ORDER_KERNELS["jki"][1] == "csr"


class TestSquareExample:
    def test_paper_3x3_illustration(self):
        # The 3x3 case Section II-B writes out explicitly.
        rng = np.random.default_rng(7)
        L = rng.standard_normal((3, 3))
        from repro.sparse import CSCMatrix

        R_dense = np.array([[1.0, 0, 2.0], [0, 0, 3.0], [4.0, 5.0, 0]])
        R = CSCMatrix.from_dense(R_dense)
        expected = L @ R_dense
        for order, (fn, fmt) in LOOP_ORDER_KERNELS.items():
            got = fn(L, R if fmt == "csc" else R.to_csr())
            np.testing.assert_allclose(got, expected, err_msg=order)
