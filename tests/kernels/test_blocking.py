"""Tests for repro.kernels.blocking (Algorithm 1 driver)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kernels import default_block_sizes, iter_block_tasks, sketch_spmm
from repro.rng import JunkRNG, PhiloxSketchRNG, XoshiroSketchRNG
from repro.sparse import csc_to_blocked_csr, random_sparse


@pytest.fixture
def A():
    return random_sparse(80, 24, 0.12, seed=81)


def _dense_ref(seed, dist, d, A, b_d):
    rng = PhiloxSketchRNG(seed, dist)
    return rng.post_scale * (rng.materialize(d, A.shape[0], b_d=b_d)
                             @ A.to_dense())


class TestIterBlockTasks:
    def test_covers_output_exactly_once(self):
        cover = np.zeros((17, 13), dtype=int)
        for i, d1, j, n1 in iter_block_tasks(17, 13, 5, 4):
            cover[i:i + d1, j:j + n1] += 1
        assert np.all(cover == 1)

    def test_column_blocks_outermost(self):
        tasks = list(iter_block_tasks(10, 10, 5, 5))
        # First two tasks share j=0 (the outer loop is over columns).
        assert tasks[0][2] == tasks[1][2] == 0
        assert tasks[0][0] == 0 and tasks[1][0] == 5

    def test_ragged_edges(self):
        tasks = list(iter_block_tasks(7, 5, 3, 2))
        d1s = {t[1] for t in tasks}
        n1s = {t[3] for t in tasks}
        assert 1 in d1s  # 7 = 3+3+1
        assert 1 in n1s  # 5 = 2+2+1


class TestDefaultBlockSizes:
    def test_sequential_matches_paper_scale(self):
        b_d, b_n = default_block_sizes(52920, 17640)
        assert b_d == 3000  # the paper's sequential b_d

    def test_parallel_prefers_tall_blocks(self):
        b_d_seq, b_n_seq = default_block_sizes(50000, 17000)
        b_d_par, b_n_par = default_block_sizes(50000, 17000, parallel=True)
        assert b_d_par >= b_d_seq
        assert b_n_par <= b_n_seq

    def test_clipped_to_problem(self):
        b_d, b_n = default_block_sizes(10, 5)
        assert b_d <= 10 and b_n <= 5

    def test_invalid_dims(self):
        with pytest.raises(ConfigError):
            default_block_sizes(0, 5)


class TestSketchSpmm:
    @pytest.mark.parametrize("kernel", ["algo3", "algo4"])
    @pytest.mark.parametrize("b_d,b_n", [(8, 5), (100, 100), (1, 1), (13, 7)])
    def test_matches_dense_reference(self, A, kernel, b_d, b_n):
        d = 30
        Ahat, _ = sketch_spmm(A, d, PhiloxSketchRNG(3), kernel=kernel,
                              b_d=b_d, b_n=b_n)
        np.testing.assert_allclose(Ahat, _dense_ref(3, "uniform", d, A, b_d))

    @pytest.mark.parametrize("kernel", ["algo3", "algo4"])
    def test_reference_flag_equivalent(self, A, kernel):
        d = 18
        fast, _ = sketch_spmm(A, d, PhiloxSketchRNG(4), kernel=kernel,
                              b_d=7, b_n=5)
        slow, _ = sketch_spmm(A, d, PhiloxSketchRNG(4), kernel=kernel,
                              b_d=7, b_n=5, reference=True)
        np.testing.assert_allclose(fast, slow)

    def test_algo3_algo4_agree_with_philox(self, A):
        d = 24
        a3, _ = sketch_spmm(A, d, PhiloxSketchRNG(5), kernel="algo3",
                            b_d=9, b_n=6)
        a4, _ = sketch_spmm(A, d, PhiloxSketchRNG(5), kernel="algo4",
                            b_d=9, b_n=6)
        np.testing.assert_allclose(a3, a4)

    def test_algo3_algo4_agree_with_xoshiro_same_blocking(self, A):
        # Checkpoints depend only on (r, j); both kernels hit the same ones
        # under the same b_d grid.
        d = 24
        a3, _ = sketch_spmm(A, d, XoshiroSketchRNG(5), kernel="algo3",
                            b_d=9, b_n=6)
        a4, _ = sketch_spmm(A, d, XoshiroSketchRNG(5), kernel="algo4",
                            b_d=9, b_n=6)
        np.testing.assert_allclose(a3, a4)

    def test_xoshiro_blocking_changes_sketch(self, A):
        d = 24
        a, _ = sketch_spmm(A, d, XoshiroSketchRNG(5), kernel="algo3",
                           b_d=8, b_n=6)
        b, _ = sketch_spmm(A, d, XoshiroSketchRNG(5), kernel="algo3",
                           b_d=12, b_n=6)
        assert not np.allclose(a, b)

    def test_philox_blocking_invariant(self, A):
        d = 24
        a, _ = sketch_spmm(A, d, PhiloxSketchRNG(5), kernel="algo3",
                           b_d=8, b_n=6)
        b, _ = sketch_spmm(A, d, PhiloxSketchRNG(5), kernel="algo3",
                           b_d=12, b_n=4)
        np.testing.assert_allclose(a, b)

    def test_scaling_trick_equivalence(self, A):
        d = 20
        plain, _ = sketch_spmm(A, d, PhiloxSketchRNG(6, "uniform"),
                               kernel="algo3", b_d=8, b_n=6)
        trick, _ = sketch_spmm(A, d, PhiloxSketchRNG(6, "uniform_scaled"),
                               kernel="algo3", b_d=8, b_n=6)
        np.testing.assert_allclose(plain, trick)

    def test_junk_rng_runs(self, A):
        Ahat, _ = sketch_spmm(A, 12, JunkRNG(), kernel="algo3", b_d=6, b_n=6)
        assert np.any(Ahat != 0)

    def test_out_parameter(self, A):
        d = 12
        buf = np.full((d, 24), 9.0)
        Ahat, _ = sketch_spmm(A, d, PhiloxSketchRNG(7), kernel="algo3",
                              b_d=6, b_n=6, out=buf)
        assert Ahat is buf
        np.testing.assert_allclose(buf, _dense_ref(7, "uniform", d, A, 6))

    def test_out_wrong_shape(self, A):
        with pytest.raises(ConfigError):
            sketch_spmm(A, 12, PhiloxSketchRNG(0), out=np.zeros((3, 3)))

    def test_prebuilt_blocked_csr(self, A):
        d = 12
        blocked, _ = csc_to_blocked_csr(A, 6)
        Ahat, stats = sketch_spmm(A, d, PhiloxSketchRNG(8), kernel="algo4",
                                  b_d=6, b_n=6, blocked=blocked)
        np.testing.assert_allclose(Ahat, _dense_ref(8, "uniform", d, A, 6))
        assert stats.conversion_seconds == 0.0

    def test_unknown_kernel(self, A):
        with pytest.raises(ConfigError):
            sketch_spmm(A, 12, PhiloxSketchRNG(0), kernel="algo5")


class TestStatsAccounting:
    def test_algo3_sample_count(self, A):
        d = 15
        _, stats = sketch_spmm(A, d, PhiloxSketchRNG(1), kernel="algo3",
                               b_d=6, b_n=5)
        assert stats.samples_generated == d * A.nnz
        assert stats.flops == 2 * d * A.nnz
        assert stats.kernel == "algo3"

    def test_algo4_fewer_samples(self, A):
        d = 15
        _, s3 = sketch_spmm(A, d, PhiloxSketchRNG(1), kernel="algo3",
                            b_d=6, b_n=5)
        _, s4 = sketch_spmm(A, d, PhiloxSketchRNG(1), kernel="algo4",
                            b_d=6, b_n=5)
        assert s4.samples_generated < s3.samples_generated

    def test_algo4_wider_blocks_fewer_samples(self, A):
        # Growing b_n increases reuse (Section III-B).
        d = 15
        _, narrow = sketch_spmm(A, d, PhiloxSketchRNG(1), kernel="algo4",
                                b_d=6, b_n=2)
        _, wide = sketch_spmm(A, d, PhiloxSketchRNG(1), kernel="algo4",
                              b_d=6, b_n=24)
        assert wide.samples_generated <= narrow.samples_generated

    def test_block_count(self, A):
        _, stats = sketch_spmm(A, 15, PhiloxSketchRNG(1), kernel="algo3",
                               b_d=6, b_n=5)
        assert stats.blocks_processed == 3 * 5  # ceil(15/6) * ceil(24/5)

    def test_timing_buckets_populated(self, A):
        _, stats = sketch_spmm(A, 15, PhiloxSketchRNG(1), kernel="algo3",
                               b_d=6, b_n=5)
        assert stats.total_seconds > 0
        assert stats.sample_seconds > 0
        assert stats.compute_seconds > 0
        assert stats.sample_seconds + stats.compute_seconds <= stats.total_seconds * 1.01

    def test_conversion_time_recorded_for_algo4(self, A):
        _, stats = sketch_spmm(A, 15, PhiloxSketchRNG(1), kernel="algo4",
                               b_d=6, b_n=5)
        assert stats.conversion_seconds > 0
        assert "conversion_ops" in stats.extra


class TestOutputLayout:
    def test_f_order_default(self, A):
        Ahat, _ = sketch_spmm(A, 12, PhiloxSketchRNG(1), kernel="algo3",
                              b_d=6, b_n=6)
        assert Ahat.flags.f_contiguous

    def test_c_order_option(self, A):
        Ahat, _ = sketch_spmm(A, 12, PhiloxSketchRNG(1), kernel="algo3",
                              b_d=6, b_n=6, out_order="C")
        assert Ahat.flags.c_contiguous

    def test_layouts_agree(self, A):
        f, _ = sketch_spmm(A, 12, PhiloxSketchRNG(1), kernel="algo4",
                           b_d=6, b_n=6, out_order="F")
        c, _ = sketch_spmm(A, 12, PhiloxSketchRNG(1), kernel="algo4",
                           b_d=6, b_n=6, out_order="C")
        np.testing.assert_array_equal(f, c)

    def test_invalid_order(self, A):
        with pytest.raises(ConfigError):
            sketch_spmm(A, 12, PhiloxSketchRNG(1), out_order="K")
