"""Tests for repro.kernels.autotune."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kernels.autotune import TuneResult, autotune_blocking, autotune_kernel
from repro.rng import PhiloxSketchRNG
from repro.sparse import random_sparse


@pytest.fixture
def A():
    return random_sparse(300, 80, 0.05, seed=1101)


def _factory():
    return PhiloxSketchRNG(7)


class TestAutotuneBlocking:
    def test_returns_valid_blocking(self, A):
        res = autotune_blocking(A, 60, _factory, repeats=1)
        assert 1 <= res.b_d <= 60
        assert 1 <= res.b_n <= 80
        assert res.seconds > 0
        assert res.kernel == "algo3"

    def test_winner_is_min_of_trials(self, A):
        res = autotune_blocking(A, 60, _factory, repeats=1)
        assert res.seconds == min(t[3] for t in res.trials)
        assert (res.kernel, res.b_d, res.b_n, res.seconds) in res.trials

    def test_explicit_candidates(self, A):
        res = autotune_blocking(A, 60, _factory, repeats=1,
                                candidates=[(10, 5), (60, 80)])
        assert (res.b_d, res.b_n) in [(10, 5), (60, 80)]
        assert len(res.trials) == 2

    def test_candidates_clipped_to_problem(self, A):
        res = autotune_blocking(A, 60, _factory, repeats=1,
                                candidates=[(1000, 1000)])
        assert res.b_d <= 60
        assert res.b_n <= 80

    def test_tuning_slice_bounds_cost(self, A):
        # With a tiny slice, every trial's matrix has at most that width.
        res = autotune_blocking(A, 60, _factory, repeats=1,
                                max_tuning_cols=8)
        assert res.b_n <= 8

    def test_empty_candidates_rejected(self, A):
        with pytest.raises(ConfigError):
            autotune_blocking(A, 60, _factory, candidates=[])

    def test_unknown_kernel(self, A):
        with pytest.raises(ConfigError):
            autotune_blocking(A, 60, _factory, kernel="algo9")

    def test_describe(self, A):
        res = autotune_blocking(A, 60, _factory, repeats=1)
        assert "b_d=" in res.describe()


class TestAutotuneKernel:
    def test_races_both_kernels(self, A):
        res = autotune_kernel(A, 60, _factory, repeats=1)
        kernels_tried = {t[0] for t in res.trials}
        assert kernels_tried == {"algo3", "algo4"}
        assert res.kernel in kernels_tried

    def test_result_usable_in_sketch(self, A):
        from repro.kernels import sketch_spmm

        res = autotune_kernel(A, 60, _factory, repeats=1)
        Ahat, _ = sketch_spmm(A, 60, _factory(), kernel=res.kernel,
                              b_d=res.b_d, b_n=min(res.b_n, A.shape[1]))
        ref = _factory().materialize(60, 300, b_d=res.b_d) @ A.to_dense()
        np.testing.assert_allclose(Ahat, ref)
