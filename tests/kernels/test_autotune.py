"""Tests for repro.kernels.autotune."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kernels.autotune import (
    TuneResult,
    _tuning_slice,
    autotune_blocking,
    autotune_kernel,
)
from repro.rng import PhiloxSketchRNG
from repro.sparse import random_sparse


@pytest.fixture
def A():
    return random_sparse(300, 80, 0.05, seed=1101)


def _factory():
    return PhiloxSketchRNG(7)


class TestAutotuneBlocking:
    def test_returns_valid_blocking(self, A):
        res = autotune_blocking(A, 60, _factory, repeats=1)
        assert 1 <= res.b_d <= 60
        assert 1 <= res.b_n <= 80
        assert res.seconds > 0
        assert res.kernel == "algo3"

    def test_winner_is_min_of_trials(self, A):
        res = autotune_blocking(A, 60, _factory, repeats=1)
        assert res.seconds == min(t[3] for t in res.trials)
        assert (res.kernel, res.b_d, res.b_n, res.seconds) in res.trials

    def test_explicit_candidates(self, A):
        res = autotune_blocking(A, 60, _factory, repeats=1,
                                candidates=[(10, 5), (60, 80)])
        assert (res.b_d, res.b_n) in [(10, 5), (60, 80)]
        assert len(res.trials) == 2

    def test_candidates_clipped_to_problem(self, A):
        res = autotune_blocking(A, 60, _factory, repeats=1,
                                candidates=[(1000, 1000)])
        assert res.b_d <= 60
        assert res.b_n <= 80

    def test_tuning_slice_bounds_cost(self, A):
        # With a tiny slice, every trial's matrix has at most that width.
        res = autotune_blocking(A, 60, _factory, repeats=1,
                                max_tuning_cols=8)
        assert res.b_n <= 8

    def test_empty_candidates_rejected(self, A):
        with pytest.raises(ConfigError):
            autotune_blocking(A, 60, _factory, candidates=[])

    def test_unknown_kernel(self, A):
        with pytest.raises(ConfigError):
            autotune_blocking(A, 60, _factory, kernel="algo9")

    def test_describe(self, A):
        res = autotune_blocking(A, 60, _factory, repeats=1)
        assert "b_d=" in res.describe()


class TestTuningSlice:
    def test_same_seed_same_slice(self, A):
        a = _tuning_slice(A, 16, seed=3)
        b = _tuning_slice(A, 16, seed=3)
        assert a.shape == b.shape
        np.testing.assert_array_equal(a.indptr, b.indptr)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.data, b.data)

    def test_seed_moves_the_window(self, A):
        # 80 columns, 8-wide window: 73 possible starts — at least one
        # of seeds 1..8 must land somewhere other than seed 0's start.
        base = _tuning_slice(A, 8, seed=0)
        assert any(
            not np.array_equal(_tuning_slice(A, 8, seed=s).indptr, base.indptr)
            or not np.array_equal(
                _tuning_slice(A, 8, seed=s).indices, base.indices)
            for s in range(1, 9)
        )

    def test_wide_budget_returns_whole_matrix(self, A):
        assert _tuning_slice(A, 10_000, seed=0) is A

    def test_result_records_its_seed(self, A):
        res = autotune_blocking(A, 60, _factory, repeats=1,
                                max_tuning_cols=8, tuning_seed=17)
        assert res.tuning_seed == 17

    def test_json_round_trip_keeps_seed(self, A):
        res = autotune_blocking(A, 60, _factory, repeats=1,
                                max_tuning_cols=8, tuning_seed=5)
        clone = TuneResult.from_json(res.to_json())
        assert clone.tuning_seed == 5
        assert clone.to_json() == res.to_json()

    def test_same_seed_reproduces_the_measured_subproblem(self, A):
        """Two tunings with one seed rank the same candidates on the
        same columns — the trial grid (not the timings) must match."""
        kw = dict(repeats=1, max_tuning_cols=8, tuning_seed=4,
                  candidates=[(10, 4), (30, 8)])
        r1 = autotune_blocking(A, 60, _factory, **kw)
        r2 = autotune_blocking(A, 60, _factory, **kw)
        assert [t[:3] for t in r1.trials] == [t[:3] for t in r2.trials]


class TestAutotuneKernel:
    def test_races_both_kernels(self, A):
        res = autotune_kernel(A, 60, _factory, repeats=1)
        kernels_tried = {t[0] for t in res.trials}
        assert kernels_tried == {"algo3", "algo4"}
        assert res.kernel in kernels_tried

    def test_result_usable_in_sketch(self, A):
        from repro.kernels import sketch_spmm

        res = autotune_kernel(A, 60, _factory, repeats=1)
        Ahat, _ = sketch_spmm(A, 60, _factory(), kernel=res.kernel,
                              b_d=res.b_d, b_n=min(res.b_n, A.shape[1]))
        ref = _factory().materialize(60, 300, b_d=res.b_d) @ A.to_dense()
        np.testing.assert_allclose(Ahat, ref)
