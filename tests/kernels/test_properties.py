"""Property-based tests (hypothesis) for kernel equivalence.

The central invariant of the whole design space: every kernel variant,
every blocking, and every batch decomposition computes the *same* product
``S @ A`` for a counter-based generator (and blocking-keyed generators
agree whenever the ``b_d`` grid matches).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import sketch_spmm
from repro.rng import PhiloxSketchRNG, XoshiroSketchRNG
from repro.sparse import random_sparse

seeds = st.integers(min_value=0, max_value=10_000)


@st.composite
def problems(draw):
    m = draw(st.integers(min_value=4, max_value=40))
    n = draw(st.integers(min_value=2, max_value=15))
    density = draw(st.floats(min_value=0.05, max_value=0.5))
    mseed = draw(st.integers(min_value=0, max_value=100))
    d = draw(st.integers(min_value=2, max_value=30))
    return random_sparse(m, n, density, seed=mseed), d


class TestKernelEquivalence:
    @given(problems(), seeds, st.integers(min_value=1, max_value=12),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_algo3_matches_dense_any_blocking(self, prob, seed, b_d, b_n):
        A, d = prob
        rng = PhiloxSketchRNG(seed)
        Ahat, _ = sketch_spmm(A, d, rng, kernel="algo3", b_d=b_d, b_n=b_n)
        ref_rng = PhiloxSketchRNG(seed)
        expected = ref_rng.materialize(d, A.shape[0]) @ A.to_dense()
        np.testing.assert_allclose(Ahat, expected, atol=1e-10)

    @given(problems(), seeds, st.integers(min_value=1, max_value=12),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_algo4_matches_algo3(self, prob, seed, b_d, b_n):
        A, d = prob
        a3, _ = sketch_spmm(A, d, PhiloxSketchRNG(seed), kernel="algo3",
                            b_d=b_d, b_n=b_n)
        a4, _ = sketch_spmm(A, d, PhiloxSketchRNG(seed), kernel="algo4",
                            b_d=b_d, b_n=b_n)
        np.testing.assert_allclose(a3, a4, atol=1e-10)

    @given(problems(), seeds, st.integers(min_value=1, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_xoshiro_kernels_agree_same_bd(self, prob, seed, b_d):
        A, d = prob
        a3, _ = sketch_spmm(A, d, XoshiroSketchRNG(seed), kernel="algo3",
                            b_d=b_d, b_n=3)
        a4, _ = sketch_spmm(A, d, XoshiroSketchRNG(seed), kernel="algo4",
                            b_d=b_d, b_n=5)
        np.testing.assert_allclose(a3, a4, atol=1e-10)

    @given(problems(), seeds)
    @settings(max_examples=20, deadline=None)
    def test_scaling_trick_invariant(self, prob, seed):
        A, d = prob
        plain, _ = sketch_spmm(A, d, PhiloxSketchRNG(seed, "uniform"),
                               kernel="algo3", b_d=4, b_n=3)
        trick, _ = sketch_spmm(A, d, PhiloxSketchRNG(seed, "uniform_scaled"),
                               kernel="algo3", b_d=4, b_n=3)
        np.testing.assert_allclose(plain, trick, atol=1e-12)


class TestAccountingProperties:
    @given(problems(), seeds, st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_algo3_sample_count_exact(self, prob, seed, b_n):
        A, d = prob
        rng = PhiloxSketchRNG(seed)
        _, stats = sketch_spmm(A, d, rng, kernel="algo3", b_d=d, b_n=b_n)
        assert stats.samples_generated == d * A.nnz

    @given(problems(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_algo4_sample_bound(self, prob, b_n):
        A, d = prob
        m, n = A.shape
        _, stats = sketch_spmm(A, d, PhiloxSketchRNG(0), kernel="algo4",
                               b_d=d, b_n=b_n)
        n_blocks = -(-n // b_n)
        # Section III-B's worst case: d * m * ceil(n / b_n).
        assert stats.samples_generated <= d * m * n_blocks
        assert stats.samples_generated <= d * A.nnz  # never worse than algo3
