"""Tests for repro.kernels.algo4 (variant jki with on-the-fly RNG)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.kernels import algo3_block_reference, algo4_block, algo4_block_reference
from repro.rng import PhiloxSketchRNG, XoshiroSketchRNG
from repro.sparse import CSRMatrix, csc_to_blocked_csr, random_sparse
from repro.utils import Stopwatch


def _block(A, b_n=None):
    """First vertical block of A in CSR."""
    b_n = A.shape[1] if b_n is None else b_n
    B, _ = csc_to_blocked_csr(A, b_n)
    return B.blocks[0]


class TestReferenceKernel:
    def test_matches_algo3_reference(self):
        # With a counter-based RNG both algorithms compute the same product.
        A = random_sparse(25, 8, 0.3, seed=71)
        d1, r = 6, 12
        ref = np.zeros((d1, 8))
        algo3_block_reference(ref, A, r, PhiloxSketchRNG(5))
        out = np.zeros((d1, 8))
        algo4_block_reference(out, _block(A), r, PhiloxSketchRNG(5))
        np.testing.assert_allclose(out, ref)

    def test_skips_empty_rows(self):
        A = random_sparse(40, 6, 0.05, seed=72)
        blk = _block(A)
        rng = PhiloxSketchRNG(1)
        out = np.zeros((5, 6))
        algo4_block_reference(out, blk, 0, rng)
        # RNG volume: d1 per *non-empty* row only.
        assert rng.samples_generated == 5 * blk.nonempty_rows().size

    def test_rng_reuse_across_row(self):
        # A single dense row triggers exactly one d1-vector generation.
        dense = np.zeros((4, 5))
        dense[2, :] = np.arange(1.0, 6.0)
        A = CSRMatrix.from_dense(dense)
        rng = PhiloxSketchRNG(2)
        out = np.zeros((3, 5))
        algo4_block_reference(out, A, 0, rng)
        assert rng.samples_generated == 3  # one column of S, reused 5x


class TestVectorizedKernel:
    @pytest.mark.parametrize("row_chunk", [1, 2, 7, 1000])
    def test_matches_reference_any_chunk(self, row_chunk):
        A = random_sparse(30, 11, 0.2, seed=73)
        blk = _block(A)
        ref = np.zeros((7, 11))
        algo4_block_reference(ref, blk, 14, PhiloxSketchRNG(9))
        out = np.zeros((7, 11))
        algo4_block(out, blk, 14, PhiloxSketchRNG(9), row_chunk=row_chunk)
        np.testing.assert_allclose(out, ref)

    def test_long_row_path(self):
        # Dense rows trigger the per-row vectorized branch (avg nnz >= 8).
        dense = np.zeros((6, 12))
        dense[1, :] = 1.0
        dense[4, :] = -0.5
        A = CSRMatrix.from_dense(dense)
        ref = np.zeros((5, 12))
        algo4_block_reference(ref, A, 0, PhiloxSketchRNG(4))
        out = np.zeros((5, 12))
        algo4_block(out, A, 0, PhiloxSketchRNG(4))
        np.testing.assert_allclose(out, ref)

    def test_short_row_scatter_path(self):
        # Sparse rows trigger the chunked np.add.at branch.
        A = random_sparse(50, 20, 0.03, seed=74)
        blk = _block(A)
        ref = np.zeros((4, 20))
        algo4_block_reference(ref, blk, 0, PhiloxSketchRNG(4))
        out = np.zeros((4, 20))
        algo4_block(out, blk, 0, PhiloxSketchRNG(4), row_chunk=8)
        np.testing.assert_allclose(out, ref)

    def test_xoshiro_matches_reference(self):
        A = random_sparse(30, 9, 0.2, seed=75)
        blk = _block(A)
        ref = np.zeros((6, 9))
        algo4_block_reference(ref, blk, 6, XoshiroSketchRNG(9))
        out = np.zeros((6, 9))
        algo4_block(out, blk, 6, XoshiroSketchRNG(9))
        np.testing.assert_allclose(out, ref)

    def test_stopwatch_buckets(self):
        A = random_sparse(30, 9, 0.2, seed=76)
        sw = Stopwatch()
        out = np.zeros((4, 9))
        algo4_block(out, _block(A), 0, PhiloxSketchRNG(1), watch=sw)
        assert sw.total("sample") > 0.0
        assert sw.total("compute") > 0.0

    def test_empty_block_noop(self):
        A = CSRMatrix((8, 3), np.zeros(9, dtype=np.int64),
                      np.array([], dtype=np.int64), np.array([]))
        out = np.zeros((4, 3))
        algo4_block(out, A, 0, PhiloxSketchRNG(3))
        np.testing.assert_array_equal(out, np.zeros((4, 3)))

    def test_shape_mismatch(self):
        A = random_sparse(10, 5, 0.3, seed=77)
        with pytest.raises(ShapeError):
            algo4_block(np.zeros((4, 7)), _block(A), 0, PhiloxSketchRNG(0))

    def test_bad_row_chunk(self):
        A = random_sparse(10, 5, 0.3, seed=78)
        with pytest.raises(ShapeError):
            algo4_block(np.zeros((4, 5)), _block(A), 0, PhiloxSketchRNG(0),
                        row_chunk=0)


class TestRngSavingsVsAlgo3:
    def test_fewer_samples_than_algo3(self):
        # Algorithm 4's raison d'etre: strictly fewer generated numbers
        # whenever some row of a block holds more than one nonzero.
        A = random_sparse(40, 30, 0.15, seed=79)
        blk = _block(A)
        r3, r4 = PhiloxSketchRNG(1), PhiloxSketchRNG(1)
        out = np.zeros((6, 30))
        algo3_block_reference(out.copy(), A, 0, r3)
        algo4_block(out, blk, 0, r4)
        assert r4.samples_generated < r3.samples_generated
        assert r3.samples_generated == 6 * A.nnz
