"""Tests for repro.kernels.backends — registry, workspace, equivalence.

Three layers:

* registry semantics (selection precedence, env override, graceful
  fallback with a single informational log line) — run everywhere;
* workspace reuse must not change results — run everywhere;
* cross-backend equivalence (numba vs the reference kernels must be
  bit-identical; numba vs numpy agree to ulps) — skip-marked unless
  Numba is importable.
"""

import logging

import numpy as np
import pytest

from repro.core import SketchConfig, sketch
from repro.errors import ConfigError
from repro.kernels import backends as bk
from repro.kernels.algo3 import algo3_block_reference
from repro.kernels.algo4 import algo4_block_reference
from repro.kernels.backends import (
    KernelBackend,
    KernelWorkspace,
    available_backends,
    get_backend,
    numba_available,
    registered_backends,
    resolve_backend,
)
from repro.kernels.blocking import sketch_spmm
from repro.rng.base import JunkRNG, make_rng
from repro.sparse import CSCMatrix, csc_to_blocked_csr, random_sparse

needs_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not importable on this host")


def _matrix_with_empty_columns(seed: int = 3) -> CSCMatrix:
    """A sparse test matrix whose pattern includes fully empty columns."""
    A = random_sparse(90, 24, 0.08, seed=seed)
    dense = A.to_dense()
    dense[:, 5] = 0.0
    dense[:, 23] = 0.0
    dense[40:60, :] = 0.0     # empty rows for the blocked-CSR path
    return CSCMatrix.from_dense(dense)


class TestRegistry:
    def test_registered_and_available(self):
        assert registered_backends() == ["numba", "numpy"]
        assert "numpy" in available_backends()
        assert ("numba" in available_backends()) == numba_available()

    def test_get_backend_unknown_raises(self):
        with pytest.raises(ConfigError, match="unknown kernel backend"):
            get_backend("fortran")

    def test_get_backend_is_singleton(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_resolve_accepts_instance(self):
        be = get_backend("numpy")
        assert resolve_backend(be) is be

    def test_resolve_auto_env_unset(self, monkeypatch):
        monkeypatch.delenv(bk.BACKEND_ENV_VAR, raising=False)
        expected = "numba" if numba_available() else "numpy"
        assert resolve_backend(None).name == expected
        assert resolve_backend("auto").name == expected

    def test_env_variable_overrides_auto(self, monkeypatch):
        monkeypatch.setenv(bk.BACKEND_ENV_VAR, "numpy")
        assert resolve_backend(None).name == "numpy"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(bk.BACKEND_ENV_VAR, "nonsense")
        # The explicit request never consults the (invalid) env value.
        assert resolve_backend("numpy").name == "numpy"

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(bk.BACKEND_ENV_VAR, "nonsense")
        with pytest.raises(ConfigError, match="unknown kernel backend"):
            resolve_backend(None)

    def test_unavailable_backend_logs_once_then_falls_back(
            self, monkeypatch, caplog):
        if numba_available():
            pytest.skip("fallback path only reachable without numba")
        monkeypatch.setattr(bk, "_FALLBACK_LOGGED", set())
        with caplog.at_level(logging.INFO, logger="repro.kernels.backends"):
            first = resolve_backend("numba")
            second = resolve_backend("numba")
        assert first.name == "numpy" and second.name == "numpy"
        infos = [r for r in caplog.records if "falling back" in r.message]
        assert len(infos) == 1
        assert infos[0].levelno == logging.INFO


class TestKernelWorkspace:
    def test_exact_shape_views_and_monotonic_growth(self):
        ws = KernelWorkspace()
        a = ws.get("x", (4, 8))
        assert a.shape == (4, 8) and a.dtype == np.float64
        b = ws.get("x", (2, 3))
        assert b.shape == (2, 3)
        big = ws.get("x", (16, 16))
        assert big.shape == (16, 16)
        # Shrinking again reuses the grown buffer (no reallocation).
        before = ws.nbytes
        ws.get("x", (1, 1))
        assert ws.nbytes == before

    def test_distinct_names_and_dtypes_do_not_alias(self):
        ws = KernelWorkspace()
        a = ws.get("a", (8,))
        b = ws.get("b", (8,))
        a[:] = 1.0
        b[:] = 2.0
        assert np.all(ws.get("a", (8,)) == 1.0)
        i = ws.get("a", (8,), dtype=np.int64)
        i[:] = 7
        assert np.all(ws.get("a", (8,)) == 1.0)

    @pytest.mark.parametrize("kernel", ["algo3", "algo4"])
    @pytest.mark.parametrize("dist", ["uniform", "rademacher", "gaussian"])
    def test_workspace_reuse_is_bit_identical(self, kernel, dist):
        A = _matrix_with_empty_columns()
        ws = KernelWorkspace()
        base, _ = sketch_spmm(A, 48, make_rng("xoshiro", 5, dist),
                              kernel=kernel, b_d=16, b_n=7, backend="numpy")
        for _ in range(3):  # steady state: buffers already grown
            again, _ = sketch_spmm(A, 48, make_rng("xoshiro", 5, dist),
                                   kernel=kernel, b_d=16, b_n=7,
                                   backend="numpy", workspace=ws)
            assert np.array_equal(base, again)


class TestStatsSurface:
    def test_sketch_spmm_records_backend_and_jit_seconds(self, tall_sparse):
        _, stats = sketch_spmm(tall_sparse, 80, make_rng("xoshiro", 0),
                               backend="numpy")
        assert stats.extra["backend"] == "numpy"
        assert stats.extra["jit_compile_seconds"] >= 0.0

    def test_reference_path_reports_reference(self, small_sparse):
        _, stats = sketch_spmm(small_sparse, 25, make_rng("philox", 0),
                               reference=True)
        assert stats.extra["backend"] == "reference"
        assert stats.extra["jit_compile_seconds"] == 0.0

    def test_run_health_carries_backend(self, tall_sparse):
        from repro.parallel import ResilienceConfig, parallel_sketch_spmm

        _, stats = parallel_sketch_spmm(
            tall_sparse, 80, lambda w: make_rng("xoshiro", 0),
            threads=2, resilience=ResilienceConfig(), backend="numpy")
        assert stats.health is not None
        assert stats.health.backend == "numpy"
        assert "backend=numpy" in stats.health.summary()
        assert stats.health.as_dict()["backend"] == "numpy"

    def test_config_rejects_unregistered_backend(self):
        with pytest.raises(ConfigError, match="backend"):
            SketchConfig(backend="cython")

    def test_sketch_backend_kwarg(self, tall_sparse):
        res = sketch(tall_sparse, gamma=2.0, backend="numpy")
        assert res.stats.extra["backend"] == "numpy"

    def test_cli_backend_flag(self, capsys):
        from repro.cli import main

        rc = main(["--json", "sketch", "--random", "200", "30", "0.05",
                   "--backend", "numpy"])
        assert rc == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "numpy"
        assert payload["jit_compile_seconds"] >= 0.0

    def test_cli_numba_request_degrades_gracefully(self, capsys):
        # With numba absent this exercises the fallback; with numba
        # present it exercises the JIT path. Either way: exit 0, valid
        # payload, no exception.
        from repro.cli import main

        rc = main(["--json", "sketch", "--random", "120", "20", "0.05",
                   "--backend", "numba"])
        assert rc == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] in ("numpy", "numba")


class TestNumbaDelegation:
    """The numba backend object exists even without numba; requests it
    cannot serve (unsupported RNG/dtype, or numba absent) delegate to the
    numpy code paths and must match them exactly."""

    def test_junk_rng_delegates_to_numpy(self, tall_sparse):
        nb = get_backend("numba")
        d = 40
        expected, _ = sketch_spmm(tall_sparse, d, JunkRNG(0, "uniform"),
                                  backend="numpy")
        got, _ = sketch_spmm(tall_sparse, d, JunkRNG(0, "uniform"),
                             backend=nb)
        assert np.array_equal(expected, got)

    def test_delegation_counts_samples(self, small_sparse):
        nb = get_backend("numba")
        rng = make_rng("xoshiro", 1)
        _, stats = sketch_spmm(small_sparse, 30, rng, backend=nb)
        assert stats.samples_generated > 0


@needs_numba
class TestNumbaEquivalence:
    """Bit-identity of the fused JIT kernels against the reference
    (pseudocode-verbatim) kernels, plus ulp-level agreement with the
    vectorized numpy backend."""

    RNGS = ["philox", "threefry", "xoshiro"]
    DISTS = ["uniform", "uniform_scaled", "rademacher", "gaussian"]

    @pytest.mark.parametrize("rng_kind", RNGS)
    @pytest.mark.parametrize("dist", DISTS)
    def test_algo3_bit_identical_to_reference(self, rng_kind, dist):
        A = _matrix_with_empty_columns()
        nb = get_backend("numba")
        d1, r = 32, 19
        ref = np.zeros((d1, A.shape[1]))
        algo3_block_reference(ref, A, r, make_rng(rng_kind, 11, dist))
        got = np.zeros((d1, A.shape[1]))
        nb.algo3_block(got, A, r, make_rng(rng_kind, 11, dist))
        assert np.array_equal(ref, got)

    @pytest.mark.parametrize("rng_kind", RNGS)
    @pytest.mark.parametrize("dist", DISTS)
    def test_algo4_bit_identical_to_reference(self, rng_kind, dist):
        A = _matrix_with_empty_columns()
        blocked, _ = csc_to_blocked_csr(A, 7)   # b_n edge: 24 % 7 != 0
        nb = get_backend("numba")
        d1, r = 32, 19
        for j0, blk in blocked.iter_blocks():
            ref = np.zeros((d1, blk.shape[1]))
            algo4_block_reference(ref, blk, r, make_rng(rng_kind, 11, dist))
            got = np.zeros((d1, blk.shape[1]))
            nb.algo4_block(got, blk, r, make_rng(rng_kind, 11, dist))
            assert np.array_equal(ref, got)

    @pytest.mark.parametrize("kernel", ["algo3", "algo4"])
    @pytest.mark.parametrize("rng_kind", RNGS)
    def test_end_to_end_matches_reference_driver(self, kernel, rng_kind):
        A = _matrix_with_empty_columns()
        d = 50
        ref, _ = sketch_spmm(A, d, make_rng(rng_kind, 2), kernel=kernel,
                             b_d=16, b_n=7, reference=True)
        got, stats = sketch_spmm(A, d, make_rng(rng_kind, 2), kernel=kernel,
                                 b_d=16, b_n=7, backend="numba")
        assert stats.extra["backend"] == "numba"
        assert np.array_equal(ref, got)

    @pytest.mark.parametrize("kernel", ["algo3", "algo4"])
    @pytest.mark.parametrize("dist", DISTS)
    def test_numpy_vs_numba_agree_to_ulps(self, kernel, dist):
        # Accumulation order differs (vectorized segment sums vs
        # per-nonzero adds), so cross-backend equality is ulp-level, not
        # bitwise; the generated samples themselves are bit-identical
        # (tests/rng/test_jit.py).
        A = _matrix_with_empty_columns()
        d = 50
        a, _ = sketch_spmm(A, d, make_rng("xoshiro", 2, dist), kernel=kernel,
                           b_d=16, b_n=7, backend="numpy")
        b, _ = sketch_spmm(A, d, make_rng("xoshiro", 2, dist), kernel=kernel,
                           b_d=16, b_n=7, backend="numba")
        assert np.allclose(a, b, rtol=1e-12, atol=1e-12 * max(
            1.0, float(np.abs(a).max())))

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_output_dtype_blocks_bit_identical(self, dtype):
        # Sparse data is always float64 (CSCMatrix coerces); the output
        # block's dtype drives the accumulation rounding, which must match
        # the reference kernel's scalar in-place adds exactly.
        A = _matrix_with_empty_columns()
        nb = get_backend("numba")
        ref = np.zeros((24, A.shape[1]), dtype=dtype)
        algo3_block_reference(ref, A, 3, make_rng("philox", 9))
        got = np.zeros((24, A.shape[1]), dtype=dtype)
        nb.algo3_block(got, A, 3, make_rng("philox", 9))
        assert got.dtype == np.dtype(dtype)
        assert np.array_equal(ref, got)

    def test_sample_counter_matches_numpy_backend(self):
        A = _matrix_with_empty_columns()
        rng_np = make_rng("xoshiro", 4)
        rng_nb = make_rng("xoshiro", 4)
        sketch_spmm(A, 30, rng_np, kernel="algo4", b_n=7, backend="numpy")
        sketch_spmm(A, 30, rng_nb, kernel="algo4", b_n=7, backend="numba")
        assert rng_np.samples_generated == rng_nb.samples_generated

    def test_warmup_reports_compile_seconds(self):
        nb = get_backend("numba")
        nb.warmup(make_rng("philox", 0), np.float64)
        _, stats = sketch_spmm(_matrix_with_empty_columns(), 30,
                               make_rng("philox", 0), backend="numba")
        assert stats.extra["jit_compile_seconds"] >= 0.0

    def test_parallel_executor_with_numba(self):
        from repro.parallel import parallel_sketch_spmm

        A = random_sparse(300, 40, 0.05, seed=8)
        serial, _ = sketch_spmm(A, 90, make_rng("philox", 1),
                                backend="numpy")
        par, stats = parallel_sketch_spmm(
            A, 90, lambda w: make_rng("philox", 1), threads=3,
            backend="numba")
        assert stats.extra["backend"] == "numba"
        assert np.allclose(serial, par, rtol=1e-12)
