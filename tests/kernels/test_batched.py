"""Tests for the batched multi-sketch kernel tier.

The tier's single contract is bit-identity: ``sketch_spmm_batched`` (and
every layer under it — :class:`BatchedSketchRNG`, the batched block
kernels, each backend's fused overrides) must produce, for every member
``t``, exactly the bytes that ``k`` independent single-sketch runs
produce.  These tests pin that contract at each layer, plus the
:class:`KernelWorkspace` reuse semantics the batched tier leans on when
runs with different geometries interleave through one workspace.
"""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.kernels import KernelWorkspace, available_backends, get_backend
from repro.kernels.batched import algo3_block_batched, algo4_block_batched
from repro.kernels.blocking import sketch_spmm, sketch_spmm_batched
from repro.rng.base import make_rng
from repro.rng.batched import BatchedSketchRNG, make_batched_rng
from repro.sparse import CSCMatrix, csc_to_blocked_csr, random_sparse

SEEDS = (11, 22, 33, 44)
RNG_KINDS = ("philox", "threefry", "xoshiro")
DISTS = ("uniform", "rademacher", "gaussian")


def _matrix_with_empty_structure(seed: int = 3) -> CSCMatrix:
    """Sparse test matrix with fully empty columns and rows."""
    A = random_sparse(120, 32, 0.08, seed=seed)
    dense = A.to_dense()
    dense[:, 7] = 0.0
    dense[:, 31] = 0.0
    dense[50:70, :] = 0.0
    return CSCMatrix.from_dense(dense)


class TestBatchedRNG:
    @pytest.mark.parametrize("dist", DISTS)
    @pytest.mark.parametrize("kind", RNG_KINDS)
    def test_stack_slices_bit_identical_to_members(self, kind, dist):
        brng = make_batched_rng(kind, SEEDS, dist)
        js = np.array([0, 3, 4, 9, 17, 21], dtype=np.int64)
        stack = brng.column_block_stack(5, 48, js)
        assert stack.shape == (len(SEEDS), 48, js.size)
        for t, seed in enumerate(SEEDS):
            solo = make_rng(kind, seed, dist).column_block_batch(5, 48, js)
            assert np.array_equal(stack[t], solo)

    def test_chunking_is_bitwise_invisible(self, monkeypatch):
        import repro.rng.batched as rb
        js = np.arange(0, 40, dtype=np.int64)
        whole = make_batched_rng("philox", SEEDS).column_block_stack(0, 32, js)
        monkeypatch.setattr(rb, "BATCH_CHUNK_LANES", 7)
        tiny = make_batched_rng("philox", SEEDS).column_block_stack(0, 32, js)
        assert np.array_equal(whole, tiny)

    def test_samples_accounting_matches_independent_calls(self):
        brng = make_batched_rng("threefry", SEEDS)
        js = np.arange(0, 10, dtype=np.int64)
        brng.column_block_stack(0, 16, js)
        for m in brng.members:
            assert m.samples_generated == 16 * js.size
        assert brng.samples_generated == len(SEEDS) * 16 * js.size
        brng.reset_counters()
        assert brng.samples_generated == 0

    def test_mixed_family_rejected(self):
        with pytest.raises(ConfigError, match="share one family"):
            BatchedSketchRNG([make_rng("philox", 1), make_rng("threefry", 2)])

    def test_mixed_distribution_rejected(self):
        with pytest.raises(ConfigError, match="share one distribution"):
            BatchedSketchRNG([make_rng("philox", 1, "uniform"),
                              make_rng("philox", 2, "gaussian")])

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigError, match="at least one"):
            make_batched_rng("philox", [])

    def test_batch_of_one(self):
        brng = make_batched_rng("philox", [17])
        js = np.array([2, 5], dtype=np.int64)
        stack = brng.column_block_stack(3, 8, js)
        assert stack.shape == (1, 8, 2)
        solo = make_rng("philox", 17).column_block_batch(3, 8, js)
        assert np.array_equal(stack[0], solo)


class TestBatchedBlockKernels:
    """The pure-numpy batched block kernels vs the per-member loop."""

    A = _matrix_with_empty_structure()

    @pytest.mark.parametrize("use_workspace", (False, True))
    @pytest.mark.parametrize("kind", ("philox", "xoshiro"))
    def test_algo3_matches_member_loop(self, kind, use_workspace):
        d1, r = 24, 48
        be = get_backend("numpy")
        brng = make_batched_rng(kind, SEEDS)
        stack = np.zeros((len(SEEDS), d1, self.A.shape[1]))
        ws = KernelWorkspace() if use_workspace else None
        algo3_block_batched(stack, self.A, r, brng, workspace=ws)
        for t, seed in enumerate(SEEDS):
            solo = np.zeros((d1, self.A.shape[1]))
            be.algo3_block(solo, self.A, r, make_rng(kind, seed),
                           workspace=KernelWorkspace())
            assert np.array_equal(stack[t], solo)

    @pytest.mark.parametrize("use_workspace", (False, True))
    @pytest.mark.parametrize("row_chunk", (3, 64))
    def test_algo4_matches_member_loop(self, row_chunk, use_workspace):
        d1, r, b_n = 16, 32, 8
        be = get_backend("numpy")
        blocked, _ = csc_to_blocked_csr(self.A, b_n)
        for bi, A_blk in enumerate(blocked.blocks):
            brng = make_batched_rng("philox", SEEDS)
            stack = np.zeros((len(SEEDS), d1, A_blk.shape[1]))
            ws = KernelWorkspace() if use_workspace else None
            algo4_block_batched(stack, A_blk, r, brng, row_chunk=row_chunk,
                                workspace=ws)
            for t, seed in enumerate(SEEDS):
                solo = np.zeros((d1, A_blk.shape[1]))
                be.algo4_block(solo, A_blk, r, make_rng("philox", seed),
                               row_chunk=row_chunk,
                               workspace=KernelWorkspace())
                assert np.array_equal(stack[t], solo), f"block {bi}"

    def test_stack_shape_mismatch_rejected(self):
        brng = make_batched_rng("philox", SEEDS)
        stack = np.zeros((2, 8, self.A.shape[1]))       # wrong batch size
        with pytest.raises(ShapeError, match="batched"):
            algo3_block_batched(stack, self.A, 0, brng)


class TestBackendBatched:
    """Every backend's batched overrides vs the default member loop."""

    A = _matrix_with_empty_structure(seed=7)

    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("kernel", ("algo3", "algo4"))
    def test_backend_batched_matches_base_loop(self, backend, kernel):
        from repro.kernels.backends import KernelBackend
        be = get_backend(backend)
        d1, r = 20, 16
        brng = make_batched_rng("philox", SEEDS)
        if kernel == "algo3":
            stack = np.zeros((len(SEEDS), d1, self.A.shape[1]))
            be.algo3_block_batched(stack, self.A, r, brng,
                                   workspace=KernelWorkspace())
            base = np.zeros_like(stack)
            KernelBackend.algo3_block_batched(
                be, base, self.A, r, make_batched_rng("philox", SEEDS),
                workspace=KernelWorkspace())
        else:
            blocked, _ = csc_to_blocked_csr(self.A, 8)
            A_blk = blocked.blocks[1]
            stack = np.zeros((len(SEEDS), d1, A_blk.shape[1]))
            be.algo4_block_batched(stack, A_blk, r, brng,
                                   workspace=KernelWorkspace())
            base = np.zeros_like(stack)
            KernelBackend.algo4_block_batched(
                be, base, A_blk, r, make_batched_rng("philox", SEEDS),
                workspace=KernelWorkspace())
        assert np.array_equal(stack, base)


class TestSketchSpmmBatched:
    """End-to-end: k sketches in one pass == k independent runs."""

    A = random_sparse(300, 120, 0.05, seed=3)

    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("kind", ("philox", "threefry", "xoshiro"))
    @pytest.mark.parametrize("kernel", ("algo3", "algo4"))
    def test_bit_identical_to_independent_runs(self, kernel, kind, backend):
        d, b_d, b_n = 64, 32, 40
        brng = make_batched_rng(kind, SEEDS)
        stacked, stats = sketch_spmm_batched(
            self.A, d, brng, kernel=kernel, b_d=b_d, b_n=b_n,
            backend=backend, workspace=KernelWorkspace())
        assert stacked.shape == (len(SEEDS), d, self.A.shape[1])
        for t, seed in enumerate(SEEDS):
            solo, solo_stats = sketch_spmm(
                self.A, d, make_rng(kind, seed), kernel=kernel,
                b_d=b_d, b_n=b_n, backend=backend,
                workspace=KernelWorkspace())
            assert np.array_equal(stacked[t], solo)
        # Sample accounting equals k independent runs too.
        assert stats.samples_generated == len(SEEDS) * solo_stats.samples_generated

    def test_list_of_rngs_accepted(self):
        rngs = [make_rng("philox", s) for s in SEEDS]
        stacked, _ = sketch_spmm_batched(self.A, 32, rngs, kernel="algo3",
                                         b_d=16, b_n=30)
        solo, _ = sketch_spmm(self.A, 32, make_rng("philox", SEEDS[2]),
                              kernel="algo3", b_d=16, b_n=30)
        assert np.array_equal(stacked[2], solo)


class TestWorkspaceReuse:
    """Scratch reuse across changed r/b_d/b_n/batch must stay exact.

    Regression for the stale-view workspace bug: a long-lived workspace
    serving runs whose geometry (and batch size) changes between calls
    must re-derive every view at the requested shape, never hand back a
    stale-shaped alias of a previous run's scratch.
    """

    A = random_sparse(300, 120, 0.05, seed=3)

    def _expected(self, kernel, kind, seed, d, b_d, b_n):
        out, _ = sketch_spmm(self.A, d, make_rng(kind, seed), kernel=kernel,
                             b_d=b_d, b_n=b_n, workspace=KernelWorkspace())
        return out

    @pytest.mark.parametrize("backend", available_backends())
    def test_interleaved_geometries_one_workspace(self, backend):
        ws = KernelWorkspace()
        # Interleave batched and solo runs with shrinking AND growing
        # shapes (d, b_d, b_n, batch) through the same workspace; every
        # output must match a fresh-workspace run bit for bit.
        schedule = [
            ("algo4", "philox", 64, 32, 40, SEEDS),
            ("algo4", "philox", 32, 16, 24, SEEDS[:2]),   # shrink all
            ("algo3", "threefry", 48, 48, 120, SEEDS),    # grow back
            ("algo4", "philox", 64, 32, 40, (SEEDS[0],)), # batch of 1
            ("algo3", "threefry", 16, 8, 8, SEEDS[:3]),
        ]
        for kernel, kind, d, b_d, b_n, seeds in schedule:
            stacked, _ = sketch_spmm_batched(
                self.A, d, make_batched_rng(kind, seeds), kernel=kernel,
                b_d=b_d, b_n=b_n, backend=backend, workspace=ws)
            for t, seed in enumerate(seeds):
                expected = self._expected(kernel, kind, seed, d, b_d, b_n)
                assert np.array_equal(stacked[t], expected), \
                    f"{kernel}/{kind} d={d} b_d={b_d} b_n={b_n} seed={seed}"
            # Solo runs share the same workspace between batched runs.
            solo, _ = sketch_spmm(self.A, d, make_rng(kind, seeds[0]),
                                  kernel=kernel, b_d=b_d, b_n=b_n,
                                  backend=backend, workspace=ws)
            assert np.array_equal(
                solo, self._expected(kernel, kind, seeds[0], d, b_d, b_n))

    def test_view_rederived_after_shape_change(self):
        ws = KernelWorkspace()
        big = ws.get("scratch", (8, 16))
        big.fill(7.0)
        small = ws.get("scratch", (4, 4))
        assert small.shape == (4, 4)
        assert ws.last_shape("scratch") == (4, 4)
        # Growing again must still produce the requested shape, even
        # though the backing allocation never shrank.
        grown = ws.get("scratch", (8, 16))
        assert grown.shape == (8, 16)
        assert ws.last_shape("scratch") == (8, 16)

    def test_negative_extent_rejected(self):
        ws = KernelWorkspace()
        with pytest.raises(ConfigError, match="negative"):
            ws.get("scratch", (4, -1))

    def test_reset_drops_buffers_and_history(self):
        ws = KernelWorkspace()
        ws.get("scratch", (16,))
        assert ws.nbytes > 0
        ws.reset()
        assert ws.nbytes == 0
        assert ws.last_shape("scratch") is None

    def test_dtype_keys_are_independent(self):
        ws = KernelWorkspace()
        f = ws.get("scratch", (8,), np.float64)
        i = ws.get("scratch", (8,), np.int64)
        f.fill(1.5)
        i.fill(3)
        assert f.dtype == np.float64 and i.dtype == np.int64
        assert ws.last_shape("scratch", np.int64) == (8,)
