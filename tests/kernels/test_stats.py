"""Tests for repro.kernels.stats (KernelStats record)."""

import pytest

from repro.errors import ConfigError
from repro.kernels import KernelStats
from repro.parallel.resilience import RunHealth


class TestKernelStats:
    def test_gflops_rate(self):
        s = KernelStats(kernel="x", total_seconds=2.0, flops=4_000_000_000)
        assert s.gflops_rate == pytest.approx(2.0)

    def test_gflops_zero_time(self):
        assert KernelStats(kernel="x").gflops_rate == 0.0

    def test_sample_fraction(self):
        s = KernelStats(kernel="x", total_seconds=4.0, sample_seconds=1.0)
        assert s.sample_fraction == pytest.approx(0.25)

    def test_sample_fraction_zero_time(self):
        assert KernelStats(kernel="x").sample_fraction == 0.0

    def test_merge_accumulates(self):
        a = KernelStats(kernel="x", sample_seconds=1.0, compute_seconds=2.0,
                        total_seconds=3.5, samples_generated=10, flops=100,
                        blocks_processed=2)
        b = KernelStats(kernel="x", sample_seconds=0.5, compute_seconds=1.0,
                        total_seconds=1.75, samples_generated=5, flops=50,
                        blocks_processed=1)
        a.merge(b)
        assert a.sample_seconds == 1.5
        assert a.compute_seconds == 3.0
        assert a.total_seconds == 5.25
        assert a.samples_generated == 15
        assert a.flops == 150
        assert a.blocks_processed == 3

    def test_extra_dict_default(self):
        a = KernelStats(kernel="x")
        b = KernelStats(kernel="y")
        a.extra["k"] = 1
        assert "k" not in b.extra

    def test_gflops_rate_prefers_wall_clock(self):
        """With both axes recorded, the rate uses wall time — summing
        per-thread time would under-report parallel throughput."""
        s = KernelStats(kernel="x", total_seconds=8.0, wall_seconds=2.0,
                        flops=4_000_000_000)
        assert s.gflops_rate == pytest.approx(2.0)

    def test_sample_fraction_uses_cpu_axis(self):
        """sample_seconds is summed across workers, so the denominator
        must be the matching cpu axis, not a smaller wall clock."""
        s = KernelStats(kernel="x", total_seconds=1.0, wall_seconds=1.0,
                        cpu_seconds=4.0, sample_seconds=3.0)
        assert s.sample_fraction == pytest.approx(0.75)

    def test_sample_fraction_clamped_to_one(self):
        """Timer jitter can make sample_seconds exceed the total; the
        fraction is a share and must never leave [0, 1]."""
        s = KernelStats(kernel="x", total_seconds=1.0, sample_seconds=1.5)
        assert s.sample_fraction == 1.0


class TestKernelStatsMerge:
    def test_merge_numeric_extra_adds(self):
        a = KernelStats(kernel="x",
                        extra={"snapshots_written": 2, "bytes": 10.5})
        b = KernelStats(kernel="x",
                        extra={"snapshots_written": 1, "bytes": 2.5})
        a.merge(b)
        assert a.extra["snapshots_written"] == 3
        assert a.extra["bytes"] == 13.0

    def test_merge_non_numeric_extra_first_writer_wins(self):
        a = KernelStats(kernel="x", extra={"backend": "numpy"})
        b = KernelStats(kernel="x", extra={"backend": "numba",
                                           "resumed_from": "/tmp/ck"})
        a.merge(b)
        assert a.extra["backend"] == "numpy"
        assert a.extra["resumed_from"] == "/tmp/ck"

    def test_merge_bool_extra_not_summed(self):
        a = KernelStats(kernel="x", extra={"flag": True})
        a.merge(KernelStats(kernel="x", extra={"flag": True}))
        assert a.extra["flag"] is True

    def test_merge_adopts_blocking_params(self):
        a = KernelStats(kernel="x")
        a.merge(KernelStats(kernel="x", d=36, b_d=12, b_n=10))
        assert (a.d, a.b_d, a.b_n) == (36, 12, 10)

    def test_merge_rejects_conflicting_blocking_params(self):
        a = KernelStats(kernel="x", b_d=12)
        with pytest.raises(ConfigError):
            a.merge(KernelStats(kernel="x", b_d=16))

    def test_merge_health(self):
        a = KernelStats(kernel="x", health=RunHealth(tasks=2, retries=1))
        b = KernelStats(kernel="x", health=RunHealth(tasks=3, timeouts=2))
        a.merge(b)
        assert a.health.tasks == 5
        assert a.health.retries == 1
        assert a.health.timeouts == 2

    def test_merge_adopts_health_when_unset(self):
        a = KernelStats(kernel="x")
        health = RunHealth(tasks=3)
        a.merge(KernelStats(kernel="x", health=health))
        assert a.health is health

    def test_merge_cpu_sums_wall_maxes(self):
        """Parallel pieces overlap in wall time: cpu adds, wall takes
        the max, total keeps its historical summing behaviour."""
        a = KernelStats(kernel="x", total_seconds=2.0, cpu_seconds=2.0,
                        wall_seconds=2.0)
        a.merge(KernelStats(kernel="x", total_seconds=1.5, cpu_seconds=1.5,
                            wall_seconds=1.5))
        assert a.cpu_seconds == 3.5
        assert a.wall_seconds == 2.0
        assert a.total_seconds == 3.5
