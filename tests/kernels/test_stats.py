"""Tests for repro.kernels.stats (KernelStats record)."""

import pytest

from repro.kernels import KernelStats


class TestKernelStats:
    def test_gflops_rate(self):
        s = KernelStats(kernel="x", total_seconds=2.0, flops=4_000_000_000)
        assert s.gflops_rate == pytest.approx(2.0)

    def test_gflops_zero_time(self):
        assert KernelStats(kernel="x").gflops_rate == 0.0

    def test_sample_fraction(self):
        s = KernelStats(kernel="x", total_seconds=4.0, sample_seconds=1.0)
        assert s.sample_fraction == pytest.approx(0.25)

    def test_sample_fraction_zero_time(self):
        assert KernelStats(kernel="x").sample_fraction == 0.0

    def test_merge_accumulates(self):
        a = KernelStats(kernel="x", sample_seconds=1.0, compute_seconds=2.0,
                        total_seconds=3.5, samples_generated=10, flops=100,
                        blocks_processed=2)
        b = KernelStats(kernel="x", sample_seconds=0.5, compute_seconds=1.0,
                        total_seconds=1.75, samples_generated=5, flops=50,
                        blocks_processed=1)
        a.merge(b)
        assert a.sample_seconds == 1.5
        assert a.compute_seconds == 3.0
        assert a.total_seconds == 5.25
        assert a.samples_generated == 15
        assert a.flops == 150
        assert a.blocks_processed == 3

    def test_extra_dict_default(self):
        a = KernelStats(kernel="x")
        b = KernelStats(kernel="y")
        a.extra["k"] = 1
        assert "k" not in b.extra
