"""Tests for repro.kernels.pregen (pre-generated-S baselines)."""

import numpy as np
import pytest

from repro.kernels import (
    pregen_csr_transposed,
    pregen_full,
    pregen_rowblocks,
    sketch_spmm,
)
from repro.rng import PhiloxSketchRNG
from repro.sparse import random_sparse


@pytest.fixture
def A():
    return random_sparse(60, 18, 0.15, seed=91)


class TestAgreementAcrossBaselines:
    def test_full_matches_otf(self, A):
        d = 21
        otf, _ = sketch_spmm(A, d, PhiloxSketchRNG(2), kernel="algo3",
                             b_d=d, b_n=6)
        pre, _ = pregen_full(A, d, PhiloxSketchRNG(2))
        np.testing.assert_allclose(pre, otf)

    def test_rowblocks_matches_full(self, A):
        d = 21
        full, _ = pregen_full(A, d, PhiloxSketchRNG(2))
        blocks, _ = pregen_rowblocks(A, d, PhiloxSketchRNG(2), b_d=8)
        np.testing.assert_allclose(blocks, full)

    def test_csr_transposed_matches_full(self, A):
        d = 21
        full, _ = pregen_full(A, d, PhiloxSketchRNG(2))
        mkl, _ = pregen_csr_transposed(A, d, PhiloxSketchRNG(2))
        np.testing.assert_allclose(mkl, full)

    def test_scaling_trick_in_baselines(self, A):
        d = 15
        plain, _ = pregen_full(A, d, PhiloxSketchRNG(3, "uniform"))
        trick, _ = pregen_full(A, d, PhiloxSketchRNG(3, "uniform_scaled"))
        np.testing.assert_allclose(plain, trick)


class TestStats:
    def test_full_generates_d_times_m(self, A):
        d = 10
        _, stats = pregen_full(A, d, PhiloxSketchRNG(1))
        assert stats.samples_generated == d * 60
        assert stats.extra["sketch_bytes"] == d * 60 * 8

    def test_rowblocks_bounded_panel(self, A):
        d = 20
        _, stats = pregen_rowblocks(A, d, PhiloxSketchRNG(1), b_d=5)
        assert stats.extra["sketch_bytes"] == 5 * 60 * 8  # one panel only
        assert stats.blocks_processed == 4

    def test_pregen_memory_exceeds_otf(self, A):
        # The defining cost: pregen holds O(d*m); on-the-fly holds nothing.
        d = 30
        _, stats = pregen_full(A, d, PhiloxSketchRNG(1))
        assert stats.extra["sketch_bytes"] >= d * A.shape[0] * 8

    def test_sample_time_separated(self, A):
        _, stats = pregen_full(A, 10, PhiloxSketchRNG(1))
        assert stats.sample_seconds > 0
        assert stats.compute_seconds > 0

    def test_invalid_d(self, A):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            pregen_full(A, 0, PhiloxSketchRNG(1))
