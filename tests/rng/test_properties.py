"""Property-based tests (hypothesis) for the RNG substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import (
    PhiloxSketchRNG,
    XoshiroSketchRNG,
    checkpoint_bits,
    mix_key,
    philox_uint64,
    splitmix64,
)
from repro.rng.philox import key_from_seed

seeds = st.integers(min_value=0, max_value=2**32 - 1)
small_ints = st.integers(min_value=0, max_value=200)


class TestSplitmixProperties:
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_splitmix_is_deterministic(self, x):
        assert int(splitmix64(np.uint64(x))) == int(splitmix64(np.uint64(x)))

    @given(st.lists(st.integers(min_value=-2**31, max_value=2**31),
                    min_size=1, max_size=4))
    def test_mix_key_deterministic(self, parts):
        assert int(mix_key(*parts)) == int(mix_key(*parts))


class TestPhiloxProperties:
    @given(seeds, small_ints, small_ints)
    @settings(max_examples=30)
    def test_coordinate_function(self, seed, i, j):
        """S[i, j] depends only on (seed, i, j) — the CBRNG contract."""
        key = key_from_seed(seed)
        solo = philox_uint64(np.array([i]), np.array([j]), key)[0]
        grid = philox_uint64(
            np.arange(i + 1)[:, None], np.arange(j + 1)[None, :], key
        )
        assert grid[i, j] == solo

    @given(seeds, st.integers(min_value=1, max_value=32),
           st.integers(min_value=1, max_value=16))
    @settings(max_examples=25)
    def test_block_consistency(self, seed, d1, j):
        """column_block(r, d1, j) is a window of the full column."""
        rng1 = PhiloxSketchRNG(seed)
        rng2 = PhiloxSketchRNG(seed)
        full = rng1.column_block(0, 64, j)
        for r in (0, 5, 31):
            if r + d1 <= 64:
                window = rng2.column_block(r, d1, j)
                np.testing.assert_array_equal(window, full[r:r + d1])


class TestXoshiroProperties:
    @given(seeds, st.integers(min_value=0, max_value=10),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=25)
    def test_checkpoint_prefix(self, seed, j, count):
        """Shorter sample requests are prefixes of longer ones."""
        long = checkpoint_bits(seed, 0, np.array([j]), count + 16)
        short = checkpoint_bits(seed, 0, np.array([j]), count)
        np.testing.assert_array_equal(long[:count], short)

    @given(seeds, st.lists(st.integers(min_value=0, max_value=100),
                           min_size=1, max_size=8, unique=True))
    @settings(max_examples=25)
    def test_batch_order_invariance(self, seed, js):
        """Column content does not depend on batch composition or order."""
        rng = XoshiroSketchRNG(seed)
        js_arr = np.array(js, dtype=np.int64)
        batch = rng.column_block_batch(0, 12, js_arr)
        shuffled = js_arr[::-1].copy()
        batch_rev = rng.column_block_batch(0, 12, shuffled)
        for t, j in enumerate(js_arr):
            t_rev = list(shuffled).index(j)
            np.testing.assert_array_equal(batch[:, t], batch_rev[:, t_rev])


class TestStatisticalSanity:
    @given(seeds)
    @settings(max_examples=10)
    def test_uniform_bounds_any_seed(self, seed):
        rng = PhiloxSketchRNG(seed, "uniform")
        v = rng.column_block_batch(0, 256, np.arange(4))
        assert v.min() >= -1.0
        assert v.max() <= 1.0

    @given(seeds)
    @settings(max_examples=10)
    def test_rademacher_values_any_seed(self, seed):
        rng = XoshiroSketchRNG(seed, "rademacher")
        v = rng.column_block_batch(0, 64, np.arange(4))
        assert set(np.unique(v)) <= {-1.0, 1.0}
