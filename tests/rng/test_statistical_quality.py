"""Statistical-quality tests for the sketch generators.

Section IV-B warns that "the numbers may no longer have the desired
statistical properties if we manually change the state for each entry" —
the exact thing the checkpointed xoshiro does per block.  These tests
quantify the concern: Kolmogorov–Smirnov uniformity, lag autocorrelation
within checkpoint streams, cross-column correlation between adjacent
checkpoints, and moment checks for every generator family and
distribution.  Thresholds are loose enough to be seed-robust (fixed seeds
keep them deterministic) while tight enough to catch a broken generator
or transform.
"""

import numpy as np
import pytest
from scipy import stats as sps

from repro.rng import (
    GAUSSIAN,
    PhiloxSketchRNG,
    ThreefrySketchRNG,
    UNIFORM,
    XoshiroSketchRNG,
)

FAMILIES = [
    ("philox", PhiloxSketchRNG),
    ("threefry", ThreefrySketchRNG),
    ("xoshiro", XoshiroSketchRNG),
]


def _column(cls, seed, n=20_000, j=3, dist="uniform"):
    return cls(seed, dist).column_block(0, n, j)


class TestUniformity:
    @pytest.mark.parametrize("name,cls", FAMILIES)
    def test_ks_uniform(self, name, cls):
        """Entries should pass a KS test against U(-1, 1)."""
        x = _column(cls, 12345)
        stat, pvalue = sps.kstest(x, sps.uniform(loc=-1, scale=2).cdf)
        assert pvalue > 1e-4, f"{name}: KS p={pvalue:.2e}"

    @pytest.mark.parametrize("name,cls", FAMILIES)
    def test_chi2_bins(self, name, cls):
        """Equal-width bins should be evenly filled."""
        x = _column(cls, 999)
        counts, _ = np.histogram(x, bins=32, range=(-1, 1))
        chi2 = ((counts - counts.mean()) ** 2 / counts.mean()).sum()
        # 31 dof; 99.99th percentile ~ 66.
        assert chi2 < 70, f"{name}: chi2={chi2:.1f}"

    @pytest.mark.parametrize("name,cls", FAMILIES)
    def test_gaussian_normality(self, name, cls):
        x = cls(77, "gaussian").column_block(0, 20_000, 0)
        stat, pvalue = sps.kstest(x, "norm")
        assert pvalue > 1e-4, f"{name}: normal KS p={pvalue:.2e}"


class TestIndependenceWithinStream:
    @pytest.mark.parametrize("name,cls", FAMILIES)
    def test_lag1_autocorrelation(self, name, cls):
        """Within one checkpoint stream, consecutive draws are uncorrelated."""
        x = _column(cls, 2024, n=50_000)
        r = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert abs(r) < 0.02, f"{name}: lag-1 corr={r:.4f}"

    @pytest.mark.parametrize("name,cls", FAMILIES)
    def test_lane_stride_autocorrelation(self, name, cls):
        """The xoshiro lane interleaving must not imprint structure at the
        lane stride (the specific risk of the SIMD layout)."""
        from repro.rng.xoshiro import DEFAULT_LANES

        x = _column(cls, 31415, n=50_000)
        lag = DEFAULT_LANES
        r = np.corrcoef(x[:-lag], x[lag:])[0, 1]
        assert abs(r) < 0.02, f"{name}: lag-{lag} corr={r:.4f}"


class TestIndependenceAcrossCheckpoints:
    @pytest.mark.parametrize("name,cls", FAMILIES)
    def test_adjacent_columns_uncorrelated(self, name, cls):
        """Columns j and j+1 come from adjacent checkpoints — the paper's
        'blocks as checkpoints' construction must not correlate them."""
        rng = cls(555)
        block = rng.column_block_batch(0, 30_000, np.array([10, 11]))
        r = np.corrcoef(block[:, 0], block[:, 1])[0, 1]
        assert abs(r) < 0.02, f"{name}: cross-column corr={r:.4f}"

    @pytest.mark.parametrize("name,cls", FAMILIES)
    def test_adjacent_blocks_uncorrelated(self, name, cls):
        """Row blocks r and r+d1 are separate checkpoints for xoshiro and
        disjoint counters for the CBRNGs."""
        rng = cls(777)
        a = rng.column_block(0, 30_000, 4)
        b = rng.column_block(30_000, 30_000, 4)
        r = np.corrcoef(a, b)[0, 1]
        assert abs(r) < 0.02, f"{name}: cross-block corr={r:.4f}"

    @pytest.mark.parametrize("name,cls", FAMILIES)
    def test_nearby_seeds_uncorrelated(self, name, cls):
        """Low-entropy seeds (0, 1, 2...) must give unrelated sketches —
        the avalanche requirement SplitMix64 seeding provides."""
        a = _column(cls, 0, n=30_000)
        b = _column(cls, 1, n=30_000)
        r = np.corrcoef(a, b)[0, 1]
        assert abs(r) < 0.02, f"{name}: cross-seed corr={r:.4f}"


class TestSketchingMoments:
    @pytest.mark.parametrize("name,cls", FAMILIES)
    def test_jl_moment_property(self, name, cls):
        """E[||S x||^2 / (d Var)] == ||x||^2 — the property that makes S a
        sketch.  Checked empirically over a fixed x."""
        d, m = 4000, 50
        rng = cls(4242)
        S = rng.materialize(d, m)
        x = np.sin(np.arange(m))  # fixed deterministic direction
        ratio = np.linalg.norm(S @ x) ** 2 / (d * UNIFORM.variance)
        assert ratio == pytest.approx(np.linalg.norm(x) ** 2, rel=0.1)

    @pytest.mark.parametrize("name,cls", FAMILIES)
    def test_column_norms_concentrate(self, name, cls):
        d, m = 5000, 40
        S = cls(868).materialize(d, m)
        norms2 = (S ** 2).sum(axis=0) / (d * UNIFORM.variance)
        assert np.all(np.abs(norms2 - 1.0) < 0.15), (
            f"{name}: worst column-norm deviation "
            f"{np.abs(norms2 - 1.0).max():.3f}"
        )

    def test_gaussian_transform_kurtosis(self):
        x = PhiloxSketchRNG(9, "gaussian").column_block(0, 60_000, 0)
        assert sps.kurtosis(x) == pytest.approx(0.0, abs=0.1)
        assert GAUSSIAN.variance == 1.0
