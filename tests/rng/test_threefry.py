"""Tests for repro.rng.threefry (Threefry2x64 counter-based RNG)."""

import numpy as np
import pytest

from repro.rng import ThreefrySketchRNG, threefry2x64, threefry_uint64
from repro.rng.threefry import key_pair_from_seed


def _threefry2x64_scalar(ctr, key, rounds=20):
    """Pure-Python reference transcription of Threefry2x64 (Salmon et al.)."""
    mask = (1 << 64) - 1
    rot = (16, 42, 12, 31, 16, 32, 24, 21)
    k0, k1 = key
    k2 = 0x1BD11BDAA9FC1A22 ^ k0 ^ k1
    ks = (k0, k1, k2)
    x0 = (ctr[0] + ks[0]) & mask
    x1 = (ctr[1] + ks[1]) & mask
    for r in range(rounds):
        x0 = (x0 + x1) & mask
        x1 = ((x1 << rot[r % 8]) | (x1 >> (64 - rot[r % 8]))) & mask
        x1 ^= x0
        if (r + 1) % 4 == 0:
            inject = (r + 1) // 4
            x0 = (x0 + ks[inject % 3]) & mask
            x1 = (x1 + ks[(inject + 1) % 3] + inject) & mask
    return x0, x1


class TestThreefry2x64:
    def test_matches_scalar_reference(self):
        key = (0xDEADBEEF12345678, 0xCAFEF00DABCDEF01)
        counters = [(0, 0), (1, 0), (0, 1), (2**63, 2**64 - 1),
                    (123456789, 987654321)]
        for ctr in counters:
            got = threefry2x64(np.uint64(ctr[0]), np.uint64(ctr[1]),
                               (np.uint64(key[0]), np.uint64(key[1])))
            expected = _threefry2x64_scalar(ctr, key)
            assert (int(got[0]), int(got[1])) == expected

    def test_vectorized_matches_elementwise(self):
        rng = np.random.default_rng(0)
        c0 = rng.integers(0, 2**63, size=40, dtype=np.uint64)
        c1 = rng.integers(0, 2**63, size=40, dtype=np.uint64)
        key = key_pair_from_seed(7)
        b0, b1 = threefry2x64(c0, c1, key)
        for t in range(40):
            s0, s1 = threefry2x64(c0[t], c1[t], key)
            assert b0[t] == s0 and b1[t] == s1

    def test_rounds_matter(self):
        key = key_pair_from_seed(0)
        a = threefry2x64(np.uint64(1), np.uint64(2), key, rounds=13)
        b = threefry2x64(np.uint64(1), np.uint64(2), key, rounds=20)
        assert int(a[0]) != int(b[0])

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            threefry2x64(np.uint64(0), np.uint64(0), key_pair_from_seed(0),
                         rounds=0)

    def test_bit_balance(self):
        key = key_pair_from_seed(3)
        out = threefry_uint64(np.arange(4096), np.zeros(4096, dtype=np.int64),
                              key)
        ones = sum(bin(int(x)).count("1") for x in out)
        assert abs(ones / (64 * 4096) - 0.5) < 0.01


class TestThreefrySketchRNG:
    def test_coordinate_addressed(self):
        rng = ThreefrySketchRNG(5)
        batch = rng.column_block_batch(3, 6, np.array([2, 9]))
        solo = rng.column_block(3, 6, 9)
        np.testing.assert_array_equal(batch[:, 1], solo)

    def test_blocking_independent(self):
        rng = ThreefrySketchRNG(3)
        assert rng.blocking_independent
        S16 = rng.materialize(32, 10, b_d=16)
        S4 = rng.materialize(32, 10, b_d=4)
        np.testing.assert_array_equal(S16, S4)

    def test_distinct_from_philox(self):
        from repro.rng import PhiloxSketchRNG

        t = ThreefrySketchRNG(1).column_block(0, 32, 0)
        p = PhiloxSketchRNG(1).column_block(0, 32, 0)
        assert not np.allclose(t, p)

    def test_statistics(self):
        rng = ThreefrySketchRNG(11, "uniform")
        v = rng.column_block_batch(0, 2000, np.arange(20))
        assert abs(v.mean()) < 0.02
        assert v.var() == pytest.approx(1.0 / 3.0, rel=0.05)

    def test_kernel_equivalence(self):
        """Both CBRNG families drive the kernels to the same contract:
        algo3 == algo4 == dense reference."""
        from repro.kernels import sketch_spmm
        from repro.sparse import random_sparse

        A = random_sparse(60, 15, 0.2, seed=99)
        d = 30
        a3, _ = sketch_spmm(A, d, ThreefrySketchRNG(2), kernel="algo3",
                            b_d=10, b_n=5)
        a4, _ = sketch_spmm(A, d, ThreefrySketchRNG(2), kernel="algo4",
                            b_d=10, b_n=5)
        np.testing.assert_allclose(a3, a4)
        ref = ThreefrySketchRNG(2).materialize(d, 60) @ A.to_dense()
        np.testing.assert_allclose(a3, ref)

    def test_make_rng_kind(self):
        from repro.rng import make_rng

        assert isinstance(make_rng("threefry", 0), ThreefrySketchRNG)

    def test_sketch_config_accepts_threefry(self):
        from repro.core import SketchConfig

        cfg = SketchConfig(rng_kind="threefry")
        assert isinstance(cfg.build_rng(), ThreefrySketchRNG)
