"""Tests for repro.rng.philox (Philox4x32 counter-based RNG)."""

import numpy as np
import pytest

from repro.rng import philox4x32, philox_uint64
from repro.rng.philox import key_from_seed


def _philox4x32_scalar(ctr, key, rounds=10):
    """Pure-Python reference transcription of Philox4x32 (Salmon et al.)."""
    mask32 = 0xFFFFFFFF
    x = list(ctr)
    k0, k1 = key
    for _ in range(rounds):
        p0 = (0xD2511F53 * x[0]) & 0xFFFFFFFFFFFFFFFF
        p1 = (0xCD9E8D57 * x[2]) & 0xFFFFFFFFFFFFFFFF
        hi0, lo0 = (p0 >> 32) & mask32, p0 & mask32
        hi1, lo1 = (p1 >> 32) & mask32, p1 & mask32
        x = [hi1 ^ x[1] ^ k0, lo1, hi0 ^ x[3] ^ k1, lo0]
        k0 = (k0 + 0x9E3779B9) & mask32
        k1 = (k1 + 0xBB67AE85) & mask32
    return x


class TestPhilox4x32:
    def test_matches_scalar_reference(self):
        counters = [(0, 0, 0, 0), (1, 0, 0, 0), (123, 456, 789, 1011),
                    (0xFFFFFFFF,) * 4]
        key = (np.uint32(0xDEADBEEF), np.uint32(0xCAFEF00D))
        for ctr in counters:
            got = philox4x32(*(np.uint32(c) for c in ctr), key)
            expected = _philox4x32_scalar(ctr, (int(key[0]), int(key[1])))
            assert [int(g) for g in got] == expected

    def test_vectorized_matches_elementwise(self):
        rng = np.random.default_rng(0)
        c = rng.integers(0, 2**32, size=(4, 50), dtype=np.uint64).astype(np.uint32)
        key = key_from_seed(7)
        batch = philox4x32(c[0], c[1], c[2], c[3], key)
        for t in range(50):
            single = philox4x32(c[0, t], c[1, t], c[2, t], c[3, t], key)
            for w in range(4):
                assert batch[w][t] == single[w]

    def test_rounds_change_output(self):
        key = key_from_seed(0)
        a = philox4x32(np.uint32(1), np.uint32(2), np.uint32(3), np.uint32(4),
                       key, rounds=7)
        b = philox4x32(np.uint32(1), np.uint32(2), np.uint32(3), np.uint32(4),
                       key, rounds=10)
        assert any(int(x) != int(y) for x, y in zip(a, b))

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            philox4x32(np.uint32(0), np.uint32(0), np.uint32(0), np.uint32(0),
                       key_from_seed(0), rounds=0)

    def test_counters_not_mutated(self):
        c = np.zeros(3, dtype=np.uint32)
        philox4x32(c, c, c, c, key_from_seed(1))
        assert np.all(c == 0)


class TestPhiloxUint64:
    def test_deterministic(self):
        key = key_from_seed(5)
        a = philox_uint64(np.arange(10), np.arange(10), key)
        b = philox_uint64(np.arange(10), np.arange(10), key)
        assert np.array_equal(a, b)

    def test_coordinate_addressed(self):
        # Value at (i, j) is independent of what else is requested.
        key = key_from_seed(5)
        grid = philox_uint64(np.arange(8)[:, None], np.arange(6)[None, :], key)
        single = philox_uint64(np.array([3]), np.array([4]), key)
        assert grid[3, 4] == single[0]

    def test_distinct_keys_distinct_streams(self):
        rows, cols = np.arange(100), np.zeros(100, dtype=np.int64)
        a = philox_uint64(rows, cols, key_from_seed(1))
        b = philox_uint64(rows, cols, key_from_seed(2))
        assert not np.array_equal(a, b)

    def test_large_coordinates(self):
        key = key_from_seed(0)
        big = np.array([2**40], dtype=np.uint64)
        out = philox_uint64(big, big, key)
        assert out.shape == (1,)

    def test_row_column_asymmetry(self):
        key = key_from_seed(9)
        ab = philox_uint64(np.array([5]), np.array([7]), key)
        ba = philox_uint64(np.array([7]), np.array([5]), key)
        assert ab[0] != ba[0]

    def test_bit_balance(self):
        # Output bits should be roughly balanced across a large sample.
        key = key_from_seed(3)
        out = philox_uint64(np.arange(4096), np.zeros(4096, dtype=np.int64), key)
        ones = sum(bin(int(x)).count("1") for x in out)
        total = 64 * 4096
        assert abs(ones / total - 0.5) < 0.01


class TestKeyFromSeed:
    def test_deterministic(self):
        assert key_from_seed(42) == key_from_seed(42)

    def test_low_entropy_seeds_separate(self):
        k0, k1 = key_from_seed(0), key_from_seed(1)
        assert k0 != k1
