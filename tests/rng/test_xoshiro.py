"""Tests for repro.rng.xoshiro (vectorized xoshiro256** with checkpoints)."""

import numpy as np
import pytest

from repro.rng import checkpoint_bits, seed_states, xoshiro_next


def _xoshiro_scalar_next(state):
    """Pure-Python xoshiro256** reference step (Blackman & Vigna)."""
    mask = (1 << 64) - 1

    def rotl(x, k):
        return ((x << k) | (x >> (64 - k))) & mask

    s0, s1, s2, s3 = state
    result = (rotl((s1 * 5) & mask, 7) * 9) & mask
    t = (s1 << 17) & mask
    s2 ^= s0
    s3 ^= s1
    s1 ^= s2
    s0 ^= s3
    s2 ^= t
    s3 = rotl(s3, 45)
    state[:] = [s0, s1, s2, s3]
    return result


class TestXoshiroNext:
    def test_matches_scalar_reference(self):
        state = seed_states(np.array([12345], dtype=np.uint64))
        ref_state = [int(state[w, 0]) for w in range(4)]
        for _ in range(20):
            got = int(xoshiro_next(state)[0])
            expected = _xoshiro_scalar_next(ref_state)
            assert got == expected

    def test_lanes_independent(self):
        # Advancing a multi-lane state gives the same per-lane streams as
        # advancing each lane separately.
        keys = np.array([1, 2, 3], dtype=np.uint64)
        joint = seed_states(keys)
        seq_joint = [xoshiro_next(joint).copy() for _ in range(5)]
        for lane in range(3):
            solo = seed_states(keys[lane:lane + 1])
            for t in range(5):
                assert int(xoshiro_next(solo)[0]) == int(seq_joint[t][lane])

    def test_state_mutated_in_place(self):
        state = seed_states(np.array([7], dtype=np.uint64))
        before = state.copy()
        xoshiro_next(state)
        assert not np.array_equal(state, before)


class TestSeedStates:
    def test_shape(self):
        st = seed_states(np.arange(6, dtype=np.uint64).reshape(2, 3))
        assert st.shape == (4, 2, 3)

    def test_no_zero_states(self):
        st = seed_states(np.arange(1000, dtype=np.uint64))
        assert np.all(st.any(axis=0))

    def test_distinct_keys_distinct_states(self):
        st = seed_states(np.array([0, 1], dtype=np.uint64))
        assert not np.array_equal(st[:, 0], st[:, 1])


class TestCheckpointBits:
    def test_shape(self):
        out = checkpoint_bits(0, 0, np.arange(5), 13)
        assert out.shape == (13, 5)
        assert out.dtype == np.uint64

    def test_deterministic(self):
        a = checkpoint_bits(3, 10, np.array([1, 4]), 20)
        b = checkpoint_bits(3, 10, np.array([1, 4]), 20)
        assert np.array_equal(a, b)

    def test_columns_independent_of_batch(self):
        # Column for j is the same whether requested alone or in a batch.
        batch = checkpoint_bits(1, 5, np.array([2, 9, 17]), 16)
        solo = checkpoint_bits(1, 5, np.array([9]), 16)
        assert np.array_equal(batch[:, 1], solo[:, 0])

    def test_depends_on_r(self):
        a = checkpoint_bits(0, 0, np.array([3]), 8)
        b = checkpoint_bits(0, 64, np.array([3]), 8)
        assert not np.array_equal(a, b)

    def test_depends_on_seed(self):
        a = checkpoint_bits(0, 0, np.array([3]), 8)
        b = checkpoint_bits(1, 0, np.array([3]), 8)
        assert not np.array_equal(a, b)

    def test_prefix_property(self):
        # The first k samples of a longer request equal the shorter request.
        long = checkpoint_bits(0, 0, np.array([5]), 32)
        short = checkpoint_bits(0, 0, np.array([5]), 10)
        assert np.array_equal(long[:10], short)

    def test_lane_interleaving(self):
        # With n_lanes=1 the stream is a single sequential lane.
        out = checkpoint_bits(0, 0, np.array([0]), 6, n_lanes=1)
        assert out.shape == (6, 1)
        # Different lane counts give different realized streams
        # (the documented reproducibility caveat).
        out8 = checkpoint_bits(0, 0, np.array([0]), 6, n_lanes=8)
        assert not np.array_equal(out, out8)

    def test_zero_count(self):
        assert checkpoint_bits(0, 0, np.array([1]), 0).shape == (0, 1)

    def test_empty_js(self):
        assert checkpoint_bits(0, 0, np.array([], dtype=np.int64), 5).shape == (5, 0)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            checkpoint_bits(0, 0, np.array([1]), -1)

    def test_invalid_lanes_rejected(self):
        with pytest.raises(ValueError):
            checkpoint_bits(0, 0, np.array([1]), 4, n_lanes=0)
