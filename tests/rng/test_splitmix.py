"""Tests for repro.rng.splitmix."""

import numpy as np
import pytest

from repro.rng import mix_key, splitmix64, splitmix64_stream


class TestSplitmix64:
    def test_matches_scalar_reference(self):
        # Pure-Python transcription of the public-domain SplitMix64
        # reference (Steele/Lea/Flood): increment state, then finalize.
        def scalar_stream(seed, count):
            mask = (1 << 64) - 1
            state = seed & mask
            out = []
            for _ in range(count):
                state = (state + 0x9E3779B97F4A7C15) & mask
                z = state
                z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & mask
                z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & mask
                out.append(z ^ (z >> 31))
            return out

        for seed in (0, 1, 1234567, 2**63):
            got = splitmix64_stream(seed, 5)
            expected = scalar_stream(seed, 5)
            assert [int(g) for g in got] == expected

    def test_stream_first_output_is_splitmix64_of_seed(self):
        # splitmix64() itself performs the increment-then-mix step, so the
        # first stream output equals splitmix64(seed).
        assert int(splitmix64_stream(99, 1)[0]) == int(splitmix64(np.uint64(99)))

    def test_deterministic(self):
        a = splitmix64(np.uint64(42))
        b = splitmix64(np.uint64(42))
        assert a == b

    def test_elementwise_matches_scalar(self):
        xs = np.arange(10, dtype=np.uint64)
        vec = splitmix64(xs)
        for i, x in enumerate(xs):
            assert vec[i] == splitmix64(np.uint64(x))

    def test_stream_negative_count_rejected(self):
        with pytest.raises(ValueError):
            splitmix64_stream(0, -1)

    def test_stream_empty(self):
        assert splitmix64_stream(0, 0).size == 0

    def test_avalanche(self):
        # Single-bit input changes should flip ~half the output bits.
        a = int(splitmix64(np.uint64(0)))
        b = int(splitmix64(np.uint64(1)))
        flipped = bin(a ^ b).count("1")
        assert 16 <= flipped <= 48


class TestMixKey:
    def test_deterministic(self):
        assert mix_key(1, 2, 3) == mix_key(1, 2, 3)

    def test_order_sensitive(self):
        assert mix_key(1, 2) != mix_key(2, 1)

    def test_distinct_tuples_distinct_keys(self):
        keys = {int(mix_key(s, r, j)) for s in range(4) for r in range(4)
                for j in range(4)}
        assert len(keys) == 64

    def test_broadcasts_over_arrays(self):
        js = np.arange(5, dtype=np.int64)
        keys = mix_key(7, 3, js)
        assert keys.shape == (5,)
        for i, j in enumerate(js):
            assert keys[i] == mix_key(7, 3, int(j))

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            mix_key(1.5)

    def test_requires_parts(self):
        with pytest.raises(ValueError):
            mix_key()

    def test_negative_ints_ok(self):
        # Negative seeds are accepted (two's-complement reinterpretation).
        assert mix_key(-1, 2) != mix_key(1, 2)
