"""Tests for repro.rng.base (the SketchingRNG interface and implementations)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.rng import JunkRNG, PhiloxSketchRNG, SketchingRNG, XoshiroSketchRNG, make_rng


class TestPhiloxSketchRNG:
    def test_scalar_matches_batch(self):
        rng = PhiloxSketchRNG(1)
        batch = rng.column_block_batch(4, 7, np.array([2, 5, 2]))
        solo = rng.column_block(4, 7, 5)
        np.testing.assert_array_equal(batch[:, 1], solo)
        # Duplicate js regenerate identically.
        np.testing.assert_array_equal(batch[:, 0], batch[:, 2])

    def test_blocking_independent(self):
        rng = PhiloxSketchRNG(3)
        assert rng.blocking_independent
        S16 = rng.materialize(32, 10, b_d=16)
        S4 = rng.materialize(32, 10, b_d=4)
        np.testing.assert_array_equal(S16, S4)

    def test_block_offset_consistency(self):
        # column_block(r, d1, j) equals rows r..r+d1 of the full column.
        rng = PhiloxSketchRNG(5)
        full = rng.column_block(0, 50, 3)
        part = rng.column_block(20, 10, 3)
        np.testing.assert_array_equal(part, full[20:30])

    def test_sample_counter(self):
        rng = PhiloxSketchRNG(0)
        rng.column_block_batch(0, 10, np.arange(7))
        assert rng.samples_generated == 70
        rng.reset_counters()
        assert rng.samples_generated == 0

    def test_seed_sensitivity(self):
        a = PhiloxSketchRNG(1).column_block(0, 16, 0)
        b = PhiloxSketchRNG(2).column_block(0, 16, 0)
        assert not np.allclose(a, b)

    def test_distribution_plumbing(self):
        rng = PhiloxSketchRNG(1, "rademacher")
        v = rng.column_block(0, 100, 0)
        assert set(np.unique(v)) <= {-1.0, 1.0}

    def test_rejects_bad_js_shape(self):
        rng = PhiloxSketchRNG(1)
        with pytest.raises(ConfigError):
            rng.column_block_batch(0, 4, np.zeros((2, 2), dtype=np.int64))

    def test_rejects_negative_r(self):
        rng = PhiloxSketchRNG(1)
        with pytest.raises(ConfigError):
            rng.column_block_batch(-1, 4, np.arange(3))


class TestXoshiroSketchRNG:
    def test_scalar_matches_batch(self):
        rng = XoshiroSketchRNG(1)
        batch = rng.column_block_batch(8, 11, np.array([0, 9]))
        solo = rng.column_block(8, 11, 9)
        np.testing.assert_array_equal(batch[:, 1], solo)

    def test_blocking_dependent(self):
        rng = XoshiroSketchRNG(3)
        assert not rng.blocking_independent
        S16 = rng.materialize(32, 10, b_d=16)
        S4 = rng.materialize(32, 10, b_d=4)
        assert not np.array_equal(S16, S4)

    def test_checkpoint_reproducible(self):
        rng = XoshiroSketchRNG(7)
        a = rng.column_block(16, 12, 4)
        b = rng.column_block(16, 12, 4)
        np.testing.assert_array_equal(a, b)

    def test_materialize_matches_column_block(self):
        rng = XoshiroSketchRNG(9)
        S = rng.materialize(24, 6, b_d=8)
        v = rng.column_block(8, 8, 2)
        np.testing.assert_array_equal(S[8:16, 2], v)

    def test_statistics_uniform(self):
        rng = XoshiroSketchRNG(11, "uniform")
        v = rng.column_block_batch(0, 2000, np.arange(20))
        assert abs(v.mean()) < 0.02
        assert v.var() == pytest.approx(1.0 / 3.0, rel=0.05)


class TestJunkRNG:
    def test_deterministic_and_cheap(self):
        rng = JunkRNG()
        a = rng.column_block(0, 8, 3)
        b = rng.column_block(0, 8, 3)
        np.testing.assert_array_equal(a, b)

    def test_bounded_mean_zeroish(self):
        rng = JunkRNG()
        v = rng.column_block_batch(0, 700, np.arange(7))
        assert np.all(np.abs(v) <= 1.0)
        assert abs(v.mean()) < 0.2

    def test_counts_samples(self):
        rng = JunkRNG()
        rng.column_block_batch(0, 5, np.arange(4))
        assert rng.samples_generated == 20

    def test_blocking_independent(self):
        assert JunkRNG().blocking_independent


class TestMakeRng:
    def test_kinds(self):
        assert isinstance(make_rng("philox", 0), PhiloxSketchRNG)
        assert isinstance(make_rng("xoshiro", 0), XoshiroSketchRNG)
        assert isinstance(make_rng("junk", 0), JunkRNG)

    def test_unknown_kind(self):
        with pytest.raises(ConfigError, match="unknown RNG kind"):
            make_rng("mersenne", 0)

    def test_dist_forwarded(self):
        rng = make_rng("philox", 0, "gaussian")
        assert rng.dist.name == "gaussian"

    def test_is_sketching_rng(self):
        assert isinstance(make_rng("xoshiro", 1), SketchingRNG)


class TestMaterializeContract:
    @pytest.mark.parametrize("kind", ["philox", "xoshiro"])
    def test_post_scale_excluded(self, kind):
        # materialize() returns unscaled entries; post_scale documented as
        # applied by kernels.
        rng = make_rng(kind, 4, "uniform_scaled")
        S = rng.materialize(8, 5)
        assert np.abs(S).max() > 2.0  # raw int32-valued entries
        assert rng.post_scale == pytest.approx(2.0**-31)

    def test_invalid_dims(self):
        rng = PhiloxSketchRNG(0)
        with pytest.raises(ConfigError):
            rng.materialize(0, 5)
