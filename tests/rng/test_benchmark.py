"""Tests for repro.rng.benchmark (throughput probes)."""

import pytest

from repro.rng import estimate_h, make_rng, rng_sample_rate, stream_copy_bandwidth


class TestStreamCopyBandwidth:
    def test_positive(self):
        bw = stream_copy_bandwidth(n_elements=100_000, repeats=2)
        assert bw > 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            stream_copy_bandwidth(n_elements=0)
        with pytest.raises(ValueError):
            stream_copy_bandwidth(repeats=0)


class TestRngSampleRate:
    def test_positive(self):
        rng = make_rng("xoshiro", 0)
        rate = rng_sample_rate(rng, vector_length=1000, batch_columns=8,
                               repeats=2)
        assert rate > 0

    def test_rejects_bad_args(self):
        rng = make_rng("philox", 0)
        with pytest.raises(ValueError):
            rng_sample_rate(rng, vector_length=0)


class TestEstimateH:
    def test_probe_fields(self):
        probe = estimate_h("xoshiro", "rademacher", vector_length=1000)
        assert probe.kind == "xoshiro"
        assert probe.dist == "rademacher"
        assert probe.h > 0
        assert "h =" in probe.describe()

    def test_junk_is_cheapest(self):
        # The junk generator should beat the real generators' sample rate.
        junk = rng_sample_rate(make_rng("junk", 0), vector_length=2000,
                               batch_columns=16, repeats=2)
        xo = rng_sample_rate(make_rng("xoshiro", 0), vector_length=2000,
                             batch_columns=16, repeats=2)
        assert junk > xo * 0.5  # junk is at least comparable, usually faster
