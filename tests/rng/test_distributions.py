"""Tests for repro.rng.distributions."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.rng import (
    DISTRIBUTIONS,
    GAUSSIAN,
    RADEMACHER,
    UNIFORM,
    UNIFORM_SCALED,
    get_distribution,
)
from repro.rng.philox import key_from_seed, philox_uint64


def _bits(n=200_000, seed=0):
    return philox_uint64(np.arange(n, dtype=np.uint64),
                         np.zeros(n, dtype=np.uint64), key_from_seed(seed))


class TestUniform:
    def test_range(self):
        x = UNIFORM.sample_from_bits(_bits())
        assert x.min() >= -1.0
        assert x.max() < 1.0 + 1e-12

    def test_mean_near_zero(self):
        x = UNIFORM.sample_from_bits(_bits())
        assert abs(x.mean()) < 0.01

    def test_variance_matches_metadata(self):
        x = UNIFORM.sample_from_bits(_bits())
        assert x.var() == pytest.approx(UNIFORM.variance, rel=0.02)

    def test_is_int32_over_2_31(self):
        bits = np.array([0, 1, 2**31, 2**32 - 1], dtype=np.uint64)
        x = UNIFORM.sample_from_bits(bits)
        assert x[0] == 0.0
        assert x[1] == pytest.approx(2.0**-31)
        assert x[2] == -1.0  # sign wrap of int32


class TestUniformScaled:
    def test_integer_valued_entries(self):
        x = UNIFORM_SCALED.sample_from_bits(_bits(1000))
        assert np.array_equal(x, np.round(x))

    def test_post_scale_recovers_uniform(self):
        bits = _bits(1000)
        scaled = UNIFORM_SCALED.sample_from_bits(bits) * UNIFORM_SCALED.post_scale
        plain = UNIFORM.sample_from_bits(bits)
        np.testing.assert_allclose(scaled, plain)

    def test_variance_metadata_is_post_scale(self):
        bits = _bits()
        x = UNIFORM_SCALED.sample_from_bits(bits) * UNIFORM_SCALED.post_scale
        assert x.var() == pytest.approx(UNIFORM_SCALED.variance, rel=0.02)


class TestRademacher:
    def test_values_pm1(self):
        x = RADEMACHER.sample_from_bits(_bits(10_000))
        assert set(np.unique(x)) == {-1.0, 1.0}

    def test_balanced(self):
        x = RADEMACHER.sample_from_bits(_bits())
        assert abs(x.mean()) < 0.01

    def test_variance_one(self):
        x = RADEMACHER.sample_from_bits(_bits())
        assert x.var() == pytest.approx(1.0, rel=0.01)

    def test_eight_bit_storage_claim(self):
        assert RADEMACHER.bits_per_entry == 8


class TestGaussian:
    def test_moments(self):
        x = GAUSSIAN.sample_from_bits(_bits())
        assert abs(x.mean()) < 0.01
        assert x.var() == pytest.approx(1.0, rel=0.02)

    def test_no_infinities(self):
        # u1 offset keeps log finite even for extreme bit patterns.
        bits = np.array([0, 2**64 - 1, 2**32 - 1, 2**63], dtype=np.uint64)
        x = GAUSSIAN.sample_from_bits(bits)
        assert np.all(np.isfinite(x))

    def test_tail_mass(self):
        x = GAUSSIAN.sample_from_bits(_bits())
        frac_2sigma = np.mean(np.abs(x) > 2.0)
        assert frac_2sigma == pytest.approx(0.0455, abs=0.005)

    def test_is_most_expensive(self):
        assert GAUSSIAN.h_factor == max(d.h_factor for d in DISTRIBUTIONS.values())


class TestRegistry:
    def test_all_registered(self):
        assert set(DISTRIBUTIONS) == {
            "uniform", "uniform_scaled", "rademacher", "gaussian"
        }

    def test_get_by_name(self):
        assert get_distribution("uniform") is UNIFORM

    def test_get_passthrough(self):
        assert get_distribution(GAUSSIAN) is GAUSSIAN

    def test_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown distribution"):
            get_distribution("cauchy")

    def test_normalization(self):
        # 1 / sqrt(d * var): Rademacher with d=100 -> 0.1.
        assert RADEMACHER.normalization(100) == pytest.approx(0.1)

    def test_normalization_rejects_bad_d(self):
        with pytest.raises(ConfigError):
            UNIFORM.normalization(0)

    def test_cost_ordering(self):
        # The paper's Figure 4 ordering: pm1 cheapest, then the scaling
        # trick, then plain uniform, Gaussian far more expensive.
        assert (RADEMACHER.h_factor < UNIFORM_SCALED.h_factor
                < UNIFORM.h_factor < GAUSSIAN.h_factor)
