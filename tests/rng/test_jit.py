"""Tests for repro.rng.jit — scalar twins of the vectorized primitives.

The bit-identity contract these tests pin down is what makes the Numba
backend's output equal to the reference kernels': every scalar helper
must reproduce its vectorized counterpart's bits exactly, for every
coordinate.  The helpers degrade to plain Python when Numba is absent,
so the whole suite runs (and the contract stays guarded) on numba-less
hosts; scalar ``uint64`` arithmetic then raises NumPy overflow warnings
that the compiled versions don't, hence the ``errstate`` guards.
"""

import numpy as np
import pytest

from repro.rng import jit as rj
from repro.rng.detmath import det_cos_2pi, det_log
from repro.rng.distributions import (
    _bits_to_gaussian,
    _bits_to_rademacher,
    _bits_to_uniform,
    _bits_to_uniform_scaled,
)
from repro.rng.philox import key_from_seed, philox_uint64
from repro.rng.splitmix import mix_key, splitmix64
from repro.rng.threefry import key_pair_from_seed, threefry_uint64
from repro.rng.xoshiro import checkpoint_bits

_SEEDS = (0, 1, 42, 2**31 - 1, 2**63 + 5)
_COORDS = [(0, 0), (1, 0), (0, 1), (7, 13), (2**40 + 3, 2**33 + 9),
           (2**63 - 1, 2**62 + 1)]


def _u64(x):
    return np.uint64(x & 0xFFFFFFFFFFFFFFFF)


class TestSplitmixTwins:
    def test_splitmix64_matches_vectorized(self):
        xs = np.array([0, 1, 99, 2**64 - 1, 0x9E3779B97F4A7C15],
                      dtype=np.uint64)
        expected = splitmix64(xs)
        with np.errstate(over="ignore"):
            got = [rj.splitmix64(x) for x in xs]
        assert [int(g) for g in got] == [int(e) for e in expected]

    def test_mix_key3_matches_vectorized(self):
        for a, b, c in [(0, 0, 0), (1, 2, 3), (2**63, 7, 2**40),
                        (-1 % 2**64, 5, 11)]:
            expected = int(mix_key(np.uint64(a), np.uint64(b), np.uint64(c)))
            with np.errstate(over="ignore"):
                got = int(rj.mix_key3(_u64(a), _u64(b), _u64(c)))
            assert got == expected


class TestCounterTwins:
    @pytest.mark.parametrize("seed", _SEEDS)
    @pytest.mark.parametrize("rounds", [7, 10])
    def test_philox_matches_vectorized(self, seed, rounds):
        k0, k1 = key_from_seed(seed)
        rows = np.array([c[0] for c in _COORDS], dtype=np.uint64)
        cols = np.array([c[1] for c in _COORDS], dtype=np.uint64)
        expected = philox_uint64(rows, cols, (k0, k1), rounds=rounds)
        with np.errstate(over="ignore"):
            got = [rj.philox_u64(r, c, np.uint64(k0), np.uint64(k1), rounds)
                   for r, c in zip(rows, cols)]
        assert [int(g) for g in got] == [int(e) for e in expected]

    @pytest.mark.parametrize("seed", _SEEDS)
    @pytest.mark.parametrize("rounds", [13, 20])
    def test_threefry_matches_vectorized(self, seed, rounds):
        key = key_pair_from_seed(seed)
        rows = np.array([c[0] for c in _COORDS], dtype=np.uint64)
        cols = np.array([c[1] for c in _COORDS], dtype=np.uint64)
        expected = threefry_uint64(rows, cols, key, rounds=rounds)
        with np.errstate(over="ignore"):
            got = [rj.threefry_u64(r, c, np.uint64(key[0]), np.uint64(key[1]),
                                   rounds)
                   for r, c in zip(rows, cols)]
        assert [int(g) for g in got] == [int(e) for e in expected]


class TestXoshiroTwin:
    @pytest.mark.parametrize("n_lanes", [1, 3, 64])
    @pytest.mark.parametrize("count", [1, 5, 64, 200])
    def test_fill_matches_checkpoint_bits(self, n_lanes, count):
        seed, r, j = 1234, 17, 5
        expected = checkpoint_bits(seed, r, np.array([j]), count,
                                   n_lanes=n_lanes)[:, 0]
        state = np.empty((4, n_lanes), dtype=np.uint64)
        out = np.empty(count, dtype=np.uint64)
        with np.errstate(over="ignore"):
            rj.xoshiro_fill(_u64(seed), _u64(r), _u64(j), n_lanes, state, out)
        assert np.array_equal(out, expected)

    def test_negative_seed_convention(self):
        # Vectorized mix_key reinterprets int64 → uint64 (two's complement);
        # the caller of xoshiro_fill must pass the same reinterpretation.
        seed = -7
        expected = checkpoint_bits(seed, 0, np.array([2]), 8, n_lanes=2)[:, 0]
        state = np.empty((4, 2), dtype=np.uint64)
        out = np.empty(8, dtype=np.uint64)
        with np.errstate(over="ignore"):
            rj.xoshiro_fill(np.uint64(np.int64(seed)), _u64(0), _u64(2), 2,
                            state, out)
        assert np.array_equal(out, expected)


class TestTransformTwins:
    def _bits(self):
        # Edge patterns plus a pseudo-random spread of both 32-bit halves.
        fixed = np.array([0, 1, 2**31, 2**32 - 1, 2**63, 2**64 - 1,
                          0x8000000080000000, 0x7FFFFFFF7FFFFFFF],
                         dtype=np.uint64)
        spread = splitmix64(np.arange(500, dtype=np.uint64))
        return np.concatenate([fixed, spread])

    def test_uniform(self):
        bits = self._bits()
        expected = _bits_to_uniform(bits)
        got = np.array([rj.u64_to_uniform(b) for b in bits])
        assert np.array_equal(got, expected)

    def test_uniform_scaled(self):
        bits = self._bits()
        expected = _bits_to_uniform_scaled(bits)
        got = np.array([rj.u64_to_uniform_scaled(b) for b in bits])
        assert np.array_equal(got, expected)

    def test_rademacher(self):
        bits = self._bits()
        expected = _bits_to_rademacher(bits)
        got = np.array([rj.u64_to_rademacher(b) for b in bits])
        assert np.array_equal(got, expected)
        assert set(np.unique(got)) == {-1.0, 1.0}

    def test_gaussian(self):
        bits = self._bits()
        expected = _bits_to_gaussian(bits)
        got = np.array([rj.u64_to_gaussian(b) for b in bits])
        assert np.array_equal(got, expected)

    def test_dispatch_codes_cover_all_distributions(self):
        bits = self._bits()[:32]
        by_code = {0: _bits_to_uniform, 1: _bits_to_uniform_scaled,
                   2: _bits_to_rademacher, 3: _bits_to_gaussian}
        assert set(rj.DIST_CODES.values()) == set(by_code)
        for name, code in rj.DIST_CODES.items():
            expected = by_code[code](bits)
            got = np.array([rj.u64_to_value(b, code) for b in bits])
            assert np.array_equal(got, expected), name


class TestDetmathTwins:
    def test_log_det_matches_vectorized(self):
        xs = np.concatenate([
            np.linspace(1e-12, 1.0 - 1e-12, 400),
            np.array([0.5, 0.25, 0.70710678, 1.0 - 2**-53]),
        ])
        expected = det_log(xs)
        got = np.array([rj.log_det(x) for x in xs])
        assert np.array_equal(got, expected)

    def test_cos_2pi_det_matches_vectorized(self):
        us = np.linspace(0.0, 1.0, 1001, endpoint=False)
        expected = det_cos_2pi(us)
        got = np.array([rj.cos_2pi_det(u) for u in us])
        assert np.array_equal(got, expected)


class TestAvailabilityFlag:
    def test_flag_is_bool(self):
        assert rj.NUMBA_AVAILABLE in (True, False)

    def test_jit_decorator_preserves_callability(self):
        @rj.jit
        def plus_one(x):
            return x + 1.0

        assert plus_one(1.0) == 2.0
