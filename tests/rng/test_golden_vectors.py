"""Golden-vector regression tests for the RNG substrate.

The sketching contract is *reproducibility*: seeds must generate the same
sketch forever (across library versions, NumPy versions, platforms).
These vectors were captured from the reference implementation at v1.0.0;
any change to them is a breaking change to every stored experiment and
must be deliberate.
"""

import numpy as np

from repro.rng import PhiloxSketchRNG, ThreefrySketchRNG, XoshiroSketchRNG
from repro.rng.philox import key_from_seed, philox_uint64
from repro.rng.splitmix import splitmix64_stream
from repro.rng.threefry import key_pair_from_seed, threefry_uint64
from repro.rng.xoshiro import checkpoint_bits


class TestGoldenBits:
    def test_splitmix_seed42(self):
        expected = [0xBDD732262FEB6E95, 0x28EFE333B266F103,
                    0x47526757130F9F52, 0x581CE1FF0E4AE394]
        got = [int(x) for x in splitmix64_stream(42, 4)]
        assert got == expected

    def test_philox_seed42(self):
        expected = [0x4306B273A1D7A484, 0x1C24581036D4655A,
                    0x44BB2488C3B8A234, 0xFFEBA192CE9CA311]
        got = [int(x) for x in philox_uint64(
            np.arange(4), np.zeros(4, dtype=np.int64), key_from_seed(42))]
        assert got == expected

    def test_threefry_seed42(self):
        expected = [0xB6877A1552FE64C7, 0x8EA714C5ABBFFF22,
                    0xB3EEA6A265E0E177, 0x835E31178014C2BF]
        got = [int(x) for x in threefry_uint64(
            np.arange(4), np.zeros(4, dtype=np.int64),
            key_pair_from_seed(42))]
        assert got == expected

    def test_xoshiro_checkpoint_seed42(self):
        # 8-lane layout (the paper's SIMD width); independent of the wider
        # performance default, which is a separate stream by design.
        expected = [0xB83B8F17B2CAF02F, 0xBD2EE6D17D516256,
                    0xF25C781B8F645BDE, 0xFD29C93EE8E9428E]
        got = [int(x) for x in
               checkpoint_bits(42, 0, np.array([0]), 4, n_lanes=8)[:, 0]]
        assert got == expected


class TestGoldenSamples:
    def test_philox_uniform_seed42(self):
        expected = np.array([-0.7356066089123487, 0.4283568086102605,
                             -0.47092792950570583, -0.38584481878206134])
        np.testing.assert_array_equal(
            PhiloxSketchRNG(42).column_block(0, 4, 0), expected)

    def test_xoshiro_uniform_seed42(self):
        expected = np.array([-0.6031818171031773, 0.9790461463853717,
                             -0.8797497907653451, -0.18038147035986185])
        np.testing.assert_array_equal(
            XoshiroSketchRNG(42).column_block(0, 4, 0), expected)

    def test_threefry_rademacher_seed42(self):
        expected = np.array([-1.0, -1.0, 1.0, 1.0, 1.0, -1.0, 1.0, -1.0])
        np.testing.assert_array_equal(
            ThreefrySketchRNG(42, "rademacher").column_block(0, 8, 5),
            expected)

    def test_sketch_checksum_seed42(self):
        """End-to-end lock: the sketch of a fixed matrix has a fixed sum."""
        from repro.kernels import sketch_spmm
        from repro.sparse import random_sparse

        A = random_sparse(50, 10, 0.2, seed=42)
        Ahat, _ = sketch_spmm(A, 20, PhiloxSketchRNG(42), kernel="algo3",
                              b_d=8, b_n=4)
        checksum = float(Ahat.sum())
        assert checksum == np.float64(Ahat.sum())  # deterministic platform-wide
        # Value captured at v1.0.0:
        np.testing.assert_allclose(checksum, -20.54257487446298, rtol=0, atol=0)
