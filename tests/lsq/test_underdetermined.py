"""Tests for repro.lsq.underdetermined (footnote-2 extension)."""

import numpy as np
import pytest

from repro.core import SketchConfig
from repro.errors import ConfigError
from repro.lsq import CscOperator, lsqr, solve_sap_minnorm
from repro.sparse import random_sparse


def _wide_consistent(m=30, n=400, density=0.1, seed=0):
    """A wide system with a known consistent rhs."""
    A = random_sparse(m, n, density, seed=seed)
    rng = np.random.default_rng(seed)
    x0 = rng.standard_normal(n)
    b = CscOperator(A).matvec(x0)
    return A, b


class TestSolveSapMinnorm:
    def test_satisfies_system(self):
        A, b = _wide_consistent()
        sol = solve_sap_minnorm(A, b, config=SketchConfig(gamma=2.0, seed=1))
        residual = np.linalg.norm(CscOperator(A).matvec(sol.x) - b)
        assert residual / np.linalg.norm(b) < 1e-10
        assert sol.converged

    def test_is_minimum_norm(self):
        A, b = _wide_consistent(seed=2)
        sol = solve_sap_minnorm(A, b, config=SketchConfig(gamma=2.0, seed=3))
        # The min-norm solution is the pseudoinverse solution.
        expected = np.linalg.pinv(A.to_dense()) @ b
        np.testing.assert_allclose(sol.x, expected, atol=1e-8)
        assert np.linalg.norm(sol.x) <= np.linalg.norm(expected) * (1 + 1e-10)

    def test_preconditioning_cuts_iterations(self):
        # Build a row-scaled wide system (ill-conditioned rows).
        from repro.sparse import CSCMatrix

        A0, _ = _wide_consistent(m=40, n=500, seed=4)
        scale = np.logspace(-3, 3, 40)
        dense = A0.to_dense() * scale[:, None]
        A = CSCMatrix.from_dense(dense)
        rng = np.random.default_rng(4)
        b = CscOperator(A).matvec(rng.standard_normal(500))
        plain = lsqr(CscOperator(A), b, atol=1e-12, max_iter=5000)
        sap = solve_sap_minnorm(A, b, config=SketchConfig(gamma=2.0, seed=5),
                                atol=1e-12)
        assert sap.iterations < plain.iterations

    def test_iterations_in_gamma2_band(self):
        A, b = _wide_consistent(m=50, n=800, seed=6)
        sol = solve_sap_minnorm(A, b, config=SketchConfig(gamma=2.0, seed=7))
        assert sol.iterations <= 120

    def test_rejects_tall_system(self):
        A = random_sparse(100, 10, 0.2, seed=8)
        with pytest.raises(ConfigError, match="wide"):
            solve_sap_minnorm(A, np.zeros(100))

    def test_rejects_gamma_too_large(self):
        A = random_sparse(30, 40, 0.2, seed=9)
        with pytest.raises(ConfigError, match="not wide enough"):
            solve_sap_minnorm(A, np.zeros(30), gamma=2.0)

    def test_method_label_and_memory(self):
        A, b = _wide_consistent(seed=10)
        sol = solve_sap_minnorm(A, b, config=SketchConfig(gamma=2.0, seed=11))
        assert sol.method == "sap-minnorm"
        d = 2 * A.shape[0]
        assert sol.memory_bytes == d * A.shape[0] * 8 + A.shape[0] ** 2 * 8
