"""Tests for repro.lsq.diagnostics."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.lsq import LstsqSolution, error_metric, residual_norm
from repro.sparse import random_sparse


@pytest.fixture
def A():
    return random_sparse(60, 8, 0.3, seed=901)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestErrorMetric:
    def test_zero_at_exact_solution(self, A, rng):
        """At the least-squares optimum, A^T r == 0 so Error(x) ~ 0."""
        b = rng.standard_normal(60)
        x = np.linalg.lstsq(A.to_dense(), b, rcond=None)[0]
        assert error_metric(A, x, b) < 1e-13

    def test_zero_residual(self, A, rng):
        from repro.lsq import CscOperator

        x = rng.standard_normal(8)
        b = CscOperator(A).matvec(x)  # bitwise-consistent with the metric's
        assert error_metric(A, x, b) == 0.0  # own matvec -> exact zero residual

    def test_large_at_bad_point(self, A, rng):
        b = rng.standard_normal(60)
        x_opt = np.linalg.lstsq(A.to_dense(), b, rcond=None)[0]
        assert error_metric(A, x_opt + 1.0, b) > error_metric(A, x_opt, b)

    def test_matches_formula(self, A, rng):
        b = rng.standard_normal(60)
        x = rng.standard_normal(8)
        r = A.to_dense() @ x - b
        expected = (np.linalg.norm(A.to_dense().T @ r)
                    / (np.linalg.norm(A.to_dense(), "fro") * np.linalg.norm(r)))
        assert error_metric(A, x, b) == pytest.approx(expected)

    def test_shape_checks(self, A):
        with pytest.raises(ShapeError):
            error_metric(A, np.zeros(3), np.zeros(60))
        with pytest.raises(ShapeError):
            error_metric(A, np.zeros(8), np.zeros(5))


class TestResidualNorm:
    def test_matches_dense(self, A, rng):
        x, b = rng.standard_normal(8), rng.standard_normal(60)
        assert residual_norm(A, x, b) == pytest.approx(
            np.linalg.norm(A.to_dense() @ x - b)
        )


class TestLstsqSolution:
    def test_memory_mbytes(self):
        sol = LstsqSolution(method="x", x=np.zeros(2), seconds=1.0,
                            memory_bytes=2 * 1024 * 1024)
        assert sol.memory_mbytes == pytest.approx(2.0)

    def test_defaults(self):
        sol = LstsqSolution(method="x", x=np.zeros(2), seconds=1.0)
        assert sol.iterations == 0
        assert sol.converged
        assert sol.details == {}
