"""Tests for repro.lsq.lsqr (operators + the LSQR solver)."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.lsq import (
    CscOperator,
    DiagonalPreconditioner,
    IdentityPreconditioner,
    PreconditionedOperator,
    lsqr,
)
from repro.sparse import random_sparse


@pytest.fixture
def A():
    return random_sparse(120, 15, 0.2, seed=601)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestCscOperator:
    def test_matvec_matches_dense(self, A, rng):
        op = CscOperator(A)
        x = rng.standard_normal(15)
        np.testing.assert_allclose(op.matvec(x), A.to_dense() @ x)

    def test_rmatvec_matches_dense(self, A, rng):
        op = CscOperator(A)
        y = rng.standard_normal(120)
        np.testing.assert_allclose(op.rmatvec(y), A.to_dense().T @ y)

    def test_adjoint_identity(self, A, rng):
        # <A x, y> == <x, A^T y>.
        op = CscOperator(A)
        x, y = rng.standard_normal(15), rng.standard_normal(120)
        assert op.matvec(x) @ y == pytest.approx(x @ op.rmatvec(y))

    def test_empty_columns_handled(self):
        from repro.sparse import CSCMatrix

        A = CSCMatrix((4, 3), np.array([0, 2, 2, 3]), np.array([0, 2, 3]),
                      np.array([1.0, 2.0, 3.0]))
        op = CscOperator(A)
        out = op.rmatvec(np.ones(4))
        np.testing.assert_allclose(out, A.to_dense().T @ np.ones(4))

    def test_shape(self, A):
        assert CscOperator(A).shape == (120, 15)

    def test_size_checks(self, A):
        op = CscOperator(A)
        with pytest.raises(ShapeError):
            op.matvec(np.zeros(3))
        with pytest.raises(ShapeError):
            op.rmatvec(np.zeros(3))


class TestLsqrUnpreconditioned:
    def test_consistent_system_exact(self, A, rng):
        x_true = rng.standard_normal(15)
        b = CscOperator(A).matvec(x_true)
        res = lsqr(CscOperator(A), b, atol=1e-14)
        np.testing.assert_allclose(res.z, x_true, atol=1e-8)
        assert res.converged

    def test_inconsistent_matches_lstsq(self, A, rng):
        b = rng.standard_normal(120)
        res = lsqr(CscOperator(A), b, atol=1e-13)
        expected = np.linalg.lstsq(A.to_dense(), b, rcond=None)[0]
        np.testing.assert_allclose(res.z, expected, atol=1e-6)

    def test_zero_rhs(self, A):
        res = lsqr(CscOperator(A), np.zeros(120))
        assert res.iterations == 0
        assert res.stop_reason == "residual-zero"
        np.testing.assert_array_equal(res.z, np.zeros(15))

    def test_rhs_orthogonal_to_range(self, rng):
        from repro.sparse import CSCMatrix

        # A = e1 (single column); b orthogonal to it.
        A = CSCMatrix.from_dense(np.array([[1.0], [0.0]]))
        b = np.array([0.0, 5.0])
        res = lsqr(CscOperator(A), b)
        assert res.stop_reason == "ground-zero"
        np.testing.assert_array_equal(res.z, [0.0])

    def test_max_iter_cap(self, A, rng):
        b = rng.standard_normal(120)
        res = lsqr(CscOperator(A), b, atol=1e-30, max_iter=2)
        assert res.iterations == 2
        assert res.stop_reason == "max-iter"
        assert not res.converged

    def test_history(self, A, rng):
        b = rng.standard_normal(120)
        res = lsqr(CscOperator(A), b, keep_history=True)
        assert len(res.test2_history) == res.iterations
        # test2 should reach the tolerance at the end.
        assert res.test2_history[-1] <= 1e-14

    def test_validation(self, A):
        with pytest.raises(ShapeError):
            lsqr(CscOperator(A), np.zeros(3))
        with pytest.raises(ConfigError):
            lsqr(CscOperator(A), np.zeros(120), atol=0.0)


class TestPreconditionedLsqr:
    def test_identity_preconditioner_no_change(self, A, rng):
        b = rng.standard_normal(120)
        plain = lsqr(CscOperator(A), b)
        prec = PreconditionedOperator(CscOperator(A),
                                      IdentityPreconditioner(15))
        wrapped = lsqr(prec, b)
        np.testing.assert_allclose(wrapped.z, plain.z, atol=1e-8)

    def test_diagonal_preconditioner_recovers_solution(self, rng):
        # Badly column-scaled matrix: diagonal preconditioning fixes it.
        base = random_sparse(200, 12, 0.2, seed=602)
        from repro.sparse import scale_columns

        A = scale_columns(base, np.logspace(-4, 4, 12))
        b = rng.standard_normal(200)
        precond = DiagonalPreconditioner.from_matrix(A)
        B = PreconditionedOperator(CscOperator(A), precond)
        res = lsqr(B, b, atol=1e-13, max_iter=2000)
        x = precond.apply(res.z)
        expected = np.linalg.lstsq(A.to_dense(), b, rcond=None)[0]
        np.testing.assert_allclose(x, expected, rtol=1e-4, atol=1e-8)

    def test_diagonal_preconditioner_speeds_convergence(self, rng):
        base = random_sparse(200, 12, 0.2, seed=603)
        from repro.sparse import scale_columns

        A = scale_columns(base, np.logspace(-3, 3, 12))
        b = rng.standard_normal(200)
        plain = lsqr(CscOperator(A), b, atol=1e-12, max_iter=5000)
        precond = DiagonalPreconditioner.from_matrix(A)
        B = PreconditionedOperator(CscOperator(A), precond)
        pre = lsqr(B, b, atol=1e-12, max_iter=5000)
        assert pre.iterations < plain.iterations

    def test_dim_mismatch(self, A):
        with pytest.raises(ShapeError):
            PreconditionedOperator(CscOperator(A), IdentityPreconditioner(7))
