"""Tests for repro.lsq.sap (sketch-and-precondition + LSQR-D)."""

import numpy as np
import pytest

from repro.core import SketchConfig
from repro.errors import ConfigError, SingularMatrixError
from repro.lsq import CscOperator, solve_lsqr_diag, solve_sap
from repro.sparse import near_rank_deficient, random_sparse, setcover_sparse


def _problem(m=400, n=25, seed=801, noise=1.0):
    A = random_sparse(m, n, 0.15, seed=seed)
    rng = np.random.default_rng(seed)
    b = CscOperator(A).matvec(rng.standard_normal(n)) + \
        noise * rng.standard_normal(m)
    return A, b


class TestSapQr:
    def test_solution_matches_lstsq(self):
        A, b = _problem()
        sol = solve_sap(A, b, gamma=2.0, method="qr",
                        config=SketchConfig(gamma=2.0, seed=1))
        expected = np.linalg.lstsq(A.to_dense(), b, rcond=None)[0]
        np.testing.assert_allclose(sol.x, expected, atol=1e-7)
        assert sol.converged

    def test_error_metric_at_tolerance(self):
        A, b = _problem()
        sol = solve_sap(A, b, gamma=2.0, method="qr")
        assert sol.error < 1e-12

    def test_iteration_count_in_paper_band(self):
        """gamma=2 => preconditioned cond <= ~5.8 => a few dozen LSQR
        iterations regardless of the matrix (the paper sees ~80-88)."""
        for seed in (1, 2, 3):
            A, b = _problem(seed=800 + seed)
            sol = solve_sap(A, b, gamma=2.0, method="qr",
                            config=SketchConfig(gamma=2.0, seed=seed))
            assert 10 <= sol.iterations <= 120

    def test_memory_is_sketch_plus_factor(self):
        A, b = _problem(n=20)
        sol = solve_sap(A, b, gamma=2.0, method="qr")
        d = 40
        assert sol.memory_bytes == d * 20 * 8 + 20 * 20 * 8

    def test_timing_split(self):
        A, b = _problem()
        sol = solve_sap(A, b, gamma=2.0)
        assert sol.sketch_seconds > 0
        assert sol.factor_seconds > 0
        assert sol.solve_seconds > 0
        assert sol.seconds == pytest.approx(
            sol.sketch_seconds + sol.factor_seconds + sol.solve_seconds
        )

    def test_qr_fails_on_rank_deficient(self):
        # Strict mode: the QR path cannot handle rank deficiency.  (The
        # default divergence_fallback=True instead degrades to direct QR;
        # see tests/faults/test_quality.py.)
        A = near_rank_deficient(300, 15, 0.2, seed=3, perturb=0.0)
        b = np.random.default_rng(3).standard_normal(300)
        with pytest.raises(SingularMatrixError):
            solve_sap(A, b, gamma=2.0, method="qr",
                      divergence_fallback=False)

    def test_qr_rank_deficient_falls_back_by_default(self):
        A = near_rank_deficient(300, 15, 0.2, seed=3, perturb=0.0)
        b = np.random.default_rng(3).standard_normal(300)
        sol = solve_sap(A, b, gamma=2.0, method="qr")
        assert sol.method == "direct-qr(sap-fallback)"
        assert "fallback" in sol.details

    def test_gamma_too_large_for_m(self):
        A = random_sparse(30, 20, 0.3, seed=4)
        with pytest.raises(ConfigError, match="overdetermined"):
            solve_sap(A, np.zeros(30), gamma=2.0)

    def test_unknown_method(self):
        A, b = _problem()
        with pytest.raises(ConfigError):
            solve_sap(A, b, method="lu")


class TestSapSvd:
    def test_matches_qr_on_full_rank(self):
        A, b = _problem(seed=805)
        q = solve_sap(A, b, gamma=2.0, method="qr",
                      config=SketchConfig(gamma=2.0, seed=5))
        s = solve_sap(A, b, gamma=2.0, method="svd",
                      config=SketchConfig(gamma=2.0, seed=5))
        np.testing.assert_allclose(s.x, q.x, atol=1e-6)

    def test_handles_rank_deficiency(self):
        A = near_rank_deficient(300, 15, 0.2, seed=6, perturb=1e-15)
        rng = np.random.default_rng(6)
        b = CscOperator(A).matvec(rng.standard_normal(15)) + \
            0.1 * rng.standard_normal(300)
        sol = solve_sap(A, b, gamma=2.0, method="svd")
        assert np.all(np.isfinite(sol.x))
        assert sol.error < 1e-10
        assert sol.details["rank"] < 15  # truncation happened

    def test_rank_recorded(self):
        A, b = _problem(seed=807)
        sol = solve_sap(A, b, gamma=2.0, method="svd")
        assert sol.details["rank"] == 25

    def test_iterations_insensitive_to_condition(self):
        """The paper's key observation: SAP iteration counts barely vary
        across matrices, even horribly conditioned ones."""
        A1, b1 = _problem(seed=808)
        good = solve_sap(A1, b1, gamma=2.0, method="svd")
        A2 = near_rank_deficient(400, 25, 0.15, seed=809, perturb=1e-15)
        rng = np.random.default_rng(9)
        b2 = CscOperator(A2).matvec(rng.standard_normal(25)) + \
            rng.standard_normal(400)
        bad = solve_sap(A2, b2, gamma=2.0, method="svd")
        assert abs(good.iterations - bad.iterations) <= 40


class TestLsqrDiag:
    def test_solution_matches_lstsq(self):
        A, b = _problem(seed=810)
        sol = solve_lsqr_diag(A, b)
        expected = np.linalg.lstsq(A.to_dense(), b, rcond=None)[0]
        np.testing.assert_allclose(sol.x, expected, atol=1e-6)

    def test_essentially_no_memory(self):
        A, b = _problem(seed=811)
        sol = solve_lsqr_diag(A, b)
        assert sol.memory_bytes == 25 * 8  # just the diagonal

    def test_iterations_grow_with_conditioning(self):
        """The contrast SAP exploits: LSQR-D iterations track cond(AD)."""
        from repro.sparse import rail_like_sparse

        A_easy, b_easy = _problem(seed=812)
        easy = solve_lsqr_diag(A_easy, b_easy)
        # Hierarchically correlated columns: diagonal scaling cannot fix
        # the conditioning (the rail* mechanism).
        A_hard = rail_like_sparse(600, 25, 4000, seed=813)
        rng = np.random.default_rng(13)
        b_hard = CscOperator(A_hard).matvec(rng.standard_normal(25)) + \
            rng.standard_normal(600)
        hard = solve_lsqr_diag(A_hard, b_hard, max_iter=5000)
        assert hard.iterations > 2 * easy.iterations

    def test_method_label(self):
        A, b = _problem(seed=814)
        assert solve_lsqr_diag(A, b).method == "lsqr-d"


class TestCrossSolverAgreement:
    def test_all_three_agree(self):
        from repro.lsq import solve_direct_qr

        A, b = _problem(m=250, n=15, seed=815)
        d = solve_lsqr_diag(A, b)
        s = solve_sap(A, b, gamma=2.0, method="qr")
        q = solve_direct_qr(A, b)
        np.testing.assert_allclose(d.x, q.x, atol=1e-6)
        np.testing.assert_allclose(s.x, q.x, atol=1e-6)

    def test_all_errors_small(self):
        from repro.lsq import solve_direct_qr

        A, b = _problem(m=250, n=15, seed=816)
        for sol in (solve_lsqr_diag(A, b),
                    solve_sap(A, b, gamma=2.0),
                    solve_direct_qr(A, b)):
            assert sol.error < 1e-11, sol.method
