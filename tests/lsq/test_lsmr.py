"""Tests for repro.lsq.lsmr (Fong-Saunders LSMR)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.lsq import CscOperator, PreconditionedOperator, lsmr, lsqr, solve_sap
from repro.lsq.preconditioners import DiagonalPreconditioner
from repro.sparse import random_sparse, scale_columns


@pytest.fixture
def A():
    return random_sparse(150, 18, 0.2, seed=1501)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestCorrectness:
    def test_inconsistent_matches_lstsq(self, A, rng):
        b = rng.standard_normal(150)
        res = lsmr(CscOperator(A), b, atol=1e-13)
        expected = np.linalg.lstsq(A.to_dense(), b, rcond=None)[0]
        np.testing.assert_allclose(res.z, expected, atol=1e-8)
        assert res.converged

    def test_matches_scipy_lsmr_exactly(self, A, rng):
        import scipy.sparse.linalg as spla

        b = rng.standard_normal(150)
        ours = lsmr(CscOperator(A), b, atol=1e-13, btol=1e-13)
        theirs = spla.lsmr(A.to_scipy(), b, atol=1e-13, btol=1e-13)
        np.testing.assert_allclose(ours.z, theirs[0], atol=1e-10)
        assert ours.iterations == theirs[2]

    def test_consistent_system(self, A, rng):
        x0 = rng.standard_normal(18)
        b = CscOperator(A).matvec(x0)
        res = lsmr(CscOperator(A), b, atol=1e-13)
        np.testing.assert_allclose(res.z, x0, atol=1e-9)
        assert res.stop_reason in ("atol", "btol")

    def test_zero_rhs(self, A):
        res = lsmr(CscOperator(A), np.zeros(150))
        assert res.stop_reason == "residual-zero"

    def test_validation(self, A):
        with pytest.raises(ConfigError):
            lsmr(CscOperator(A), np.zeros(150), atol=0.0)


class TestLsmrVsLsqr:
    def test_same_solution(self, A, rng):
        b = rng.standard_normal(150)
        a = lsqr(CscOperator(A), b, atol=1e-13)
        m = lsmr(CscOperator(A), b, atol=1e-13)
        np.testing.assert_allclose(a.z, m.z, atol=1e-8)

    def test_monotone_backward_error(self, A, rng):
        """LSMR's defining property: test2 decreases monotonically (LSQR's
        can oscillate)."""
        b = rng.standard_normal(150)
        res = lsmr(CscOperator(A), b, atol=1e-30, max_iter=18,
                   keep_history=True)
        hist = np.array(res.test2_history)
        assert np.all(np.diff(hist) <= 1e-12)

    def test_preconditioned_run(self, rng):
        base = random_sparse(200, 12, 0.2, seed=1502)
        A = scale_columns(base, np.logspace(-3, 3, 12))
        b = rng.standard_normal(200)
        precond = DiagonalPreconditioner.from_matrix(A)
        B = PreconditionedOperator(CscOperator(A), precond)
        res = lsmr(B, b, atol=1e-13, max_iter=4000)
        x = precond.apply(res.z)
        expected = np.linalg.lstsq(A.to_dense(), b, rcond=None)[0]
        np.testing.assert_allclose(x, expected, rtol=1e-4, atol=1e-8)


class TestSapWithLsmr:
    def test_sap_lsmr_engine(self, rng):
        A = random_sparse(400, 25, 0.15, seed=1503)
        b = CscOperator(A).matvec(rng.standard_normal(25)) + \
            rng.standard_normal(400)
        from repro.core import SketchConfig

        q = solve_sap(A, b, gamma=2.0, iterative="lsqr",
                      config=SketchConfig(gamma=2.0, seed=1))
        m = solve_sap(A, b, gamma=2.0, iterative="lsmr",
                      config=SketchConfig(gamma=2.0, seed=1))
        np.testing.assert_allclose(m.x, q.x, atol=1e-7)
        assert m.details["iterative"] == "lsmr"
        assert m.error < 1e-11

    def test_unknown_engine_rejected(self, rng):
        A = random_sparse(100, 10, 0.2, seed=1504)
        with pytest.raises(ConfigError):
            solve_sap(A, np.zeros(100), iterative="cg")
