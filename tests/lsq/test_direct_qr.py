"""Tests for repro.lsq.direct_qr (George-Heath sparse Givens QR)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.lsq import givens_qr_factorize, solve_direct_qr
from repro.sparse import random_sparse, setcover_sparse
from repro.utils import MemoryLedger


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestFactorization:
    def test_rtr_equals_ata(self, rng):
        """The defining QR invariant: R^T R == A^T A."""
        A = random_sparse(40, 8, 0.25, seed=701)
        R = givens_qr_factorize(A, np.zeros(40))
        Rd = R.to_dense()
        np.testing.assert_allclose(Rd.T @ Rd, A.to_dense().T @ A.to_dense(),
                                   atol=1e-10)

    def test_r_is_upper_triangular(self):
        A = random_sparse(30, 6, 0.3, seed=702)
        R = givens_qr_factorize(A, np.zeros(30))
        Rd = R.to_dense()
        np.testing.assert_allclose(Rd, np.triu(Rd))

    def test_rhs_transformation(self, rng):
        """||R x - c||^2 + const == ||A x - b||^2: solving R x = c gives
        the least-squares solution."""
        A = random_sparse(50, 7, 0.3, seed=703)
        b = rng.standard_normal(50)
        R = givens_qr_factorize(A, b)
        x = R.solve()
        expected = np.linalg.lstsq(A.to_dense(), b, rcond=None)[0]
        np.testing.assert_allclose(x, expected, atol=1e-8)

    def test_matches_numpy_qr_r_up_to_signs(self):
        A = random_sparse(30, 5, 0.4, seed=704)
        R = givens_qr_factorize(A, np.zeros(30))
        Rd = R.to_dense()
        R_np = np.linalg.qr(A.to_dense(), mode="r")
        np.testing.assert_allclose(np.abs(Rd), np.abs(R_np), atol=1e-10)

    def test_empty_rows_skipped(self):
        from repro.sparse import CSCMatrix

        dense = np.zeros((5, 2))
        dense[0, 0] = 1.0
        dense[4, 1] = 2.0
        A = CSCMatrix.from_dense(dense)
        R = givens_qr_factorize(A, np.arange(5.0))
        x = R.solve()
        expected = np.linalg.lstsq(dense, np.arange(5.0), rcond=None)[0]
        np.testing.assert_allclose(x, expected, atol=1e-10)

    def test_memory_ledger_tracks_fill(self):
        A = setcover_sparse(300, 20, 1500, seed=705)
        ledger = MemoryLedger()
        R = givens_qr_factorize(A, np.zeros(300), ledger=ledger)
        assert ledger.peak_bytes >= R.memory_bytes
        assert ledger.peak_bytes > 0


class TestSolveDirectQr:
    def test_solution_accuracy(self, rng):
        A = random_sparse(80, 10, 0.2, seed=706)
        b = rng.standard_normal(80)
        sol = solve_direct_qr(A, b)
        expected = np.linalg.lstsq(A.to_dense(), b, rcond=None)[0]
        np.testing.assert_allclose(sol.x, expected, atol=1e-8)
        assert sol.error < 1e-12  # direct methods hit machine precision

    def test_timing_split(self, rng):
        A = random_sparse(60, 8, 0.25, seed=707)
        sol = solve_direct_qr(A, rng.standard_normal(60))
        assert sol.factor_seconds > 0
        assert sol.seconds >= sol.factor_seconds

    def test_fill_in_reported(self, rng):
        A = setcover_sparse(200, 15, 900, seed=708)
        sol = solve_direct_qr(A, rng.standard_normal(200))
        assert sol.details["fill_nnz"] > 0
        assert sol.details["fill_ratio"] > 0

    def test_fill_in_exceeds_column_count(self, rng):
        """Fill-in: R generally holds far more than n entries for
        overlapping sparsity (the Table XI memory story)."""
        A = setcover_sparse(400, 25, 3000, seed=709)
        sol = solve_direct_qr(A, rng.standard_normal(400))
        assert sol.details["fill_nnz"] > 25

    def test_rank_deficient_basic_solution(self, rng):
        # Duplicate column: pivot underflows; solver zeros that component.
        from repro.sparse import near_rank_deficient

        A = near_rank_deficient(100, 8, 0.3, seed=710, perturb=0.0)
        b = rng.standard_normal(100)
        sol = solve_direct_qr(A, b, rcond=1e-10)
        assert np.all(np.isfinite(sol.x))
        # Residual should still be (near) optimal despite deficiency.
        r_opt = np.linalg.lstsq(A.to_dense(), b, rcond=None)[1]
        r_got = np.linalg.norm(A.to_dense() @ sol.x - b) ** 2
        assert r_got <= (r_opt[0] if r_opt.size else r_got) * (1 + 1e-6)

    def test_underdetermined_rejected(self, rng):
        A = random_sparse(5, 10, 0.5, seed=711)
        with pytest.raises(ShapeError):
            solve_direct_qr(A, np.zeros(5))

    def test_method_label(self, rng):
        A = random_sparse(40, 6, 0.3, seed=712)
        sol = solve_direct_qr(A, rng.standard_normal(40))
        assert sol.method == "direct-qr"
        assert sol.iterations == 0


class TestGivensLog:
    def test_replay_matches_factorization_rhs(self, rng):
        from repro.lsq import GivensLog

        A = random_sparse(60, 9, 0.25, seed=713)
        b = rng.standard_normal(60)
        qlog = GivensLog(60, 9)
        R = givens_qr_factorize(A, b, qlog=qlog)
        np.testing.assert_allclose(qlog.apply_qt(b), R.rhs)

    def test_solves_new_rhs_without_refactorizing(self, rng):
        from repro.lsq import GivensLog

        A = random_sparse(70, 8, 0.25, seed=714)
        b1 = rng.standard_normal(70)
        qlog = GivensLog(70, 8)
        R = givens_qr_factorize(A, b1, qlog=qlog)
        b2 = rng.standard_normal(70)
        R.rhs = qlog.apply_qt(b2)
        x2 = R.solve()
        expected = np.linalg.lstsq(A.to_dense(), b2, rcond=None)[0]
        np.testing.assert_allclose(x2, expected, atol=1e-8)

    def test_memory_scales_with_rotations(self, rng):
        from repro.lsq import GivensLog

        A = setcover_sparse(300, 15, 1800, seed=715)
        qlog = GivensLog(300, 15)
        givens_qr_factorize(A, np.zeros(300), qlog=qlog)
        assert qlog.n_rotations > 0
        assert qlog.memory_bytes >= 24 * qlog.n_rotations

    def test_empty_rows_handled(self, rng):
        from repro.lsq import GivensLog
        from repro.sparse import CSCMatrix

        dense = np.zeros((6, 2))
        dense[1, 0] = 1.0
        dense[4, 1] = 2.0
        A = CSCMatrix.from_dense(dense)
        b = rng.standard_normal(6)
        qlog = GivensLog(6, 2)
        R = givens_qr_factorize(A, b, qlog=qlog)
        np.testing.assert_allclose(qlog.apply_qt(b), R.rhs)


class TestStoreQOption:
    def test_store_q_increases_memory(self, rng):
        A = setcover_sparse(400, 20, 3000, seed=716)
        b = rng.standard_normal(400)
        with_q = solve_direct_qr(A, b, store_q=True)
        without = solve_direct_qr(A, b, store_q=False)
        assert with_q.memory_bytes > without.memory_bytes
        np.testing.assert_allclose(with_q.x, without.x)

    def test_qlog_in_details(self, rng):
        A = random_sparse(50, 6, 0.3, seed=717)
        sol = solve_direct_qr(A, rng.standard_normal(50), store_q=True)
        assert "qlog" in sol.details
        assert sol.details["n_rotations"] == sol.details["qlog"].n_rotations

    def test_qless_omits_log(self, rng):
        A = random_sparse(50, 6, 0.3, seed=718)
        sol = solve_direct_qr(A, rng.standard_normal(50), store_q=False)
        assert "qlog" not in sol.details


class TestRefinement:
    def test_refinement_reduces_error(self, rng):
        """Corrected seminormal equations drive Error(x) toward roundoff."""
        from repro.lsq import refine_solution
        from repro.lsq.diagnostics import error_metric
        from repro.sparse import rail_like_sparse

        A = rail_like_sparse(500, 30, 4000, seed=720, mix_spread=3.5)
        b = rng.standard_normal(500)
        R = givens_qr_factorize(A, b)
        x0 = R.solve()
        x1 = refine_solution(A, R, x0, b, steps=2)
        assert error_metric(A, x1, b) <= error_metric(A, x0, b) * 1.01
        assert error_metric(A, x1, b) < 1e-12

    def test_solve_transposed_correct(self, rng):
        A = random_sparse(60, 10, 0.3, seed=721)
        R = givens_qr_factorize(A, np.zeros(60))
        Rd = R.to_dense()
        w = rng.standard_normal(10)
        y = R.solve_transposed(w)
        np.testing.assert_allclose(Rd.T @ y, w, atol=1e-10)

    def test_solve_with_custom_rhs(self, rng):
        A = random_sparse(60, 10, 0.3, seed=722)
        R = givens_qr_factorize(A, np.zeros(60))
        rhs = rng.standard_normal(10)
        x = R.solve(rhs=rhs)
        np.testing.assert_allclose(R.to_dense() @ x, rhs, atol=1e-10)

    def test_zero_steps_identity(self, rng):
        from repro.lsq import refine_solution

        A = random_sparse(40, 6, 0.3, seed=723)
        b = rng.standard_normal(40)
        R = givens_qr_factorize(A, b)
        x0 = R.solve()
        np.testing.assert_array_equal(refine_solution(A, R, x0, b, steps=0),
                                      x0)

    def test_refine_steps_in_solver(self, rng):
        A = random_sparse(80, 10, 0.2, seed=724)
        b = rng.standard_normal(80)
        plain = solve_direct_qr(A, b, refine_steps=0)
        refined = solve_direct_qr(A, b, refine_steps=2)
        assert refined.error <= plain.error * 1.5
        np.testing.assert_allclose(refined.x, plain.x, atol=1e-8)

    def test_negative_steps_rejected(self, rng):
        from repro.lsq import refine_solution

        A = random_sparse(20, 4, 0.4, seed=725)
        R = givens_qr_factorize(A, np.zeros(20))
        with pytest.raises(ShapeError):
            refine_solution(A, R, np.zeros(4), np.zeros(20), steps=-1)
