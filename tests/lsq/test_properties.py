"""Property-based tests (hypothesis) for the least-squares substrate."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.lsq import (
    CscOperator,
    DiagonalPreconditioner,
    PreconditionedOperator,
    givens_qr_factorize,
    lsqr,
)
from repro.sparse import random_sparse

seeds = st.integers(min_value=0, max_value=500)


@st.composite
def tall_problems(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    m = draw(st.integers(min_value=n + 2, max_value=60))
    density = draw(st.floats(min_value=0.15, max_value=0.6))
    seed = draw(seeds)
    A = random_sparse(m, n, density, seed=seed)
    return A


class TestLsqrProperties:
    @given(tall_problems(), seeds)
    @settings(max_examples=25, deadline=None)
    def test_consistent_systems_solved(self, A, seed):
        """For b in range(A), LSQR recovers a solution with zero residual."""
        rng = np.random.default_rng(seed)
        op = CscOperator(A)
        x_true = rng.standard_normal(A.shape[1])
        b = op.matvec(x_true)
        res = lsqr(op, b, atol=1e-13, max_iter=4000)
        # Zero-residual solution (x itself may differ when A is singular).
        assert np.linalg.norm(op.matvec(res.z) - b) <= 1e-7 * max(
            1.0, np.linalg.norm(b))

    @given(tall_problems(), seeds)
    @settings(max_examples=25, deadline=None)
    def test_normal_equations_at_optimum(self, A, seed):
        """Any LSQR limit satisfies A^T (A x - b) ~ 0 (optimality)."""
        rng = np.random.default_rng(seed + 1)
        op = CscOperator(A)
        b = rng.standard_normal(A.shape[0])
        res = lsqr(op, b, atol=1e-13, max_iter=4000)
        grad = op.rmatvec(op.matvec(res.z) - b)
        scale = max(np.linalg.norm(A.data), 1.0) * max(np.linalg.norm(b), 1.0)
        assert np.linalg.norm(grad) <= 1e-6 * scale

    @given(tall_problems(), seeds)
    @settings(max_examples=20, deadline=None)
    def test_preconditioning_preserves_optimum(self, A, seed):
        """The diagonally preconditioned run converges to the same
        least-squares residual as the plain run."""
        rng = np.random.default_rng(seed + 2)
        op = CscOperator(A)
        b = rng.standard_normal(A.shape[0])
        plain = lsqr(op, b, atol=1e-13, max_iter=4000)
        try:
            precond = DiagonalPreconditioner.from_matrix(A)
        except Exception:
            return  # zero columns can make the safeguard trip; skip
        wrapped = lsqr(PreconditionedOperator(op, precond), b,
                       atol=1e-13, max_iter=4000)
        x_pre = precond.apply(wrapped.z)
        r_plain = np.linalg.norm(op.matvec(plain.z) - b)
        r_pre = np.linalg.norm(op.matvec(x_pre) - b)
        assert r_pre <= r_plain + 1e-6 * max(1.0, np.linalg.norm(b))


class TestGivensQrProperties:
    @given(tall_problems())
    @settings(max_examples=25, deadline=None)
    def test_rtr_equals_ata(self, A):
        """R^T R == A^T A for every generated pattern."""
        R = givens_qr_factorize(A, np.zeros(A.shape[0]))
        Rd = R.to_dense()
        Ad = A.to_dense()
        np.testing.assert_allclose(Rd.T @ Rd, Ad.T @ Ad,
                                   atol=1e-8 * max(1.0, (Ad ** 2).sum()))

    @given(tall_problems())
    @settings(max_examples=25, deadline=None)
    def test_r_upper_triangular(self, A):
        R = givens_qr_factorize(A, np.zeros(A.shape[0]))
        Rd = R.to_dense()
        np.testing.assert_allclose(Rd, np.triu(Rd))

    @given(tall_problems(), seeds)
    @settings(max_examples=20, deadline=None)
    def test_residual_norm_preserved(self, A, seed):
        """||A x - b||^2 == ||R x - c||^2 + const for the transformed c:
        checked at the least-squares optimum where both give the optimal
        residual."""
        # The comparison oracle (lstsq) switches to a truncated
        # pseudo-inverse for ill-conditioned A while the triangular solve
        # does not, so the fixed tolerance only holds away from
        # rank-deficiency.
        assume(np.linalg.cond(A.to_dense()) < 1e6)
        rng = np.random.default_rng(seed + 3)
        b = rng.standard_normal(A.shape[0])
        R = givens_qr_factorize(A, b)
        x = R.solve()
        direct = np.linalg.lstsq(A.to_dense(), b, rcond=None)
        r_ours = np.linalg.norm(A.to_dense() @ x - b)
        r_opt = np.linalg.norm(A.to_dense() @ direct[0] - b)
        assert r_ours <= r_opt + 1e-6 * max(1.0, np.linalg.norm(b))

    @given(tall_problems(), seeds, seeds)
    @settings(max_examples=15, deadline=None)
    def test_qlog_replay_any_rhs(self, A, seed1, seed2):
        """The stored Givens log transforms any rhs identically to a fresh
        factorization with that rhs."""
        from repro.lsq import GivensLog

        rng = np.random.default_rng(seed1)
        b1 = rng.standard_normal(A.shape[0])
        qlog = GivensLog(*A.shape)
        givens_qr_factorize(A, b1, qlog=qlog)
        b2 = np.random.default_rng(seed2).standard_normal(A.shape[0])
        fresh = givens_qr_factorize(A, b2)
        np.testing.assert_allclose(qlog.apply_qt(b2), fresh.rhs, atol=1e-10)
