"""Tests for repro.lsq.preconditioners."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError, SingularMatrixError
from repro.lsq import (
    DiagonalPreconditioner,
    IdentityPreconditioner,
    SVDPreconditioner,
    TriangularPreconditioner,
)
from repro.sparse import column_norms, random_sparse


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestIdentity:
    def test_passthrough(self, rng):
        p = IdentityPreconditioner(5)
        z = rng.standard_normal(5)
        np.testing.assert_array_equal(p.apply(z), z)
        np.testing.assert_array_equal(p.apply_transpose(z), z)

    def test_shape(self):
        assert IdentityPreconditioner(5).shape == (5, 5)

    def test_memory_free(self):
        assert IdentityPreconditioner(5).memory_bytes == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            IdentityPreconditioner(0)


class TestDiagonal:
    def test_from_matrix_column_norms(self):
        A = random_sparse(50, 8, 0.3, seed=1)
        p = DiagonalPreconditioner.from_matrix(A)
        np.testing.assert_allclose(p.diag, 1.0 / column_norms(A))

    def test_tiny_column_safeguard(self):
        # A column with norm below eps*sqrt(n)*max gets D_ii = 1 (paper rule).
        from repro.sparse import CSCMatrix

        dense = np.zeros((4, 2))
        dense[0, 0] = 1.0
        dense[1, 1] = 1e-300
        A = CSCMatrix.from_dense(dense)
        p = DiagonalPreconditioner.from_matrix(A)
        assert p.diag[1] == 1.0
        assert p.diag[0] == 1.0  # 1/||col0|| = 1

    def test_apply_is_scaling(self, rng):
        p = DiagonalPreconditioner(np.array([2.0, 0.5]))
        np.testing.assert_allclose(p.apply(np.array([1.0, 1.0])), [2.0, 0.5])
        np.testing.assert_allclose(p.apply_transpose(np.array([1.0, 1.0])),
                                   [2.0, 0.5])

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            DiagonalPreconditioner(np.array([1.0, 0.0]))
        with pytest.raises(ConfigError):
            DiagonalPreconditioner(np.array([1.0, np.inf]))


class TestTriangular:
    def test_apply_is_solve(self, rng):
        R = np.triu(rng.standard_normal((6, 6))) + 5 * np.eye(6)
        p = TriangularPreconditioner(R)
        z = rng.standard_normal(6)
        np.testing.assert_allclose(R @ p.apply(z), z, atol=1e-10)
        np.testing.assert_allclose(R.T @ p.apply_transpose(z), z, atol=1e-10)

    def test_from_sketch(self, rng):
        Ahat = rng.standard_normal((40, 8))
        p = TriangularPreconditioner.from_sketch(Ahat)
        # R^T R == Ahat^T Ahat (the QR identity).
        np.testing.assert_allclose(p.R.T @ p.R, Ahat.T @ Ahat, rtol=1e-10)

    def test_rejects_singular(self, rng):
        R = np.triu(rng.standard_normal((5, 5)))
        R[2, 2] = 1e-300
        with pytest.raises(SingularMatrixError, match="SAP-SVD"):
            TriangularPreconditioner(R)

    def test_rejects_rank_deficient_sketch(self, rng):
        # Sketch with a duplicated column -> singular R.
        X = rng.standard_normal((30, 5))
        X[:, 4] = X[:, 0]
        with pytest.raises(SingularMatrixError):
            TriangularPreconditioner.from_sketch(X)

    def test_rejects_wide_sketch(self, rng):
        with pytest.raises(ShapeError):
            TriangularPreconditioner.from_sketch(rng.standard_normal((3, 6)))

    def test_memory(self, rng):
        p = TriangularPreconditioner.from_sketch(rng.standard_normal((20, 4)))
        assert p.memory_bytes == 4 * 4 * 8


class TestSVD:
    def test_full_rank_matches_triangular_effect(self, rng):
        # For a well-conditioned sketch, the SVD preconditioner spans the
        # same space: A P has condition ~1 in both cases.
        Ahat = rng.standard_normal((50, 6))
        p = SVDPreconditioner.from_sketch(Ahat)
        assert p.rank == 6
        # (Ahat V / sigma) should have singular values 1.
        mapped = Ahat @ p.V / p.sigma
        s = np.linalg.svd(mapped, compute_uv=False)
        np.testing.assert_allclose(s, 1.0, atol=1e-10)

    def test_truncates_tiny_singular_values(self, rng):
        X = rng.standard_normal((40, 5))
        X[:, 4] = X[:, 0] * (1 + 1e-15)
        p = SVDPreconditioner.from_sketch(X, drop_ratio=1e-12)
        assert p.rank == 4

    def test_drop_ratio_validation(self, rng):
        with pytest.raises(ConfigError):
            SVDPreconditioner.from_sketch(rng.standard_normal((10, 2)),
                                          drop_ratio=2.0)

    def test_apply_roundtrip(self, rng):
        Ahat = rng.standard_normal((30, 4))
        p = SVDPreconditioner.from_sketch(Ahat)
        z = rng.standard_normal(p.rank)
        x = p.apply(z)
        # apply_transpose(apply(z)) == V^T V z / sigma^2 == z / sigma^2.
        np.testing.assert_allclose(p.apply_transpose(x), z / p.sigma**2,
                                   atol=1e-12)

    def test_shape_is_n_by_rank(self, rng):
        X = rng.standard_normal((40, 5))
        X[:, 4] = X[:, 0]
        p = SVDPreconditioner.from_sketch(X)
        assert p.shape == (5, 4)

    def test_all_dropped_raises(self):
        with pytest.raises(Exception):
            SVDPreconditioner(np.zeros((3, 0)), np.zeros(0))
