"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import PhiloxSketchRNG, XoshiroSketchRNG
from repro.sparse import CSCMatrix, random_sparse


@pytest.fixture
def small_sparse() -> CSCMatrix:
    """A 60x20 uniform sparse matrix, density 0.1, fixed seed."""
    return random_sparse(60, 20, 0.1, seed=42)


@pytest.fixture
def tall_sparse() -> CSCMatrix:
    """A 400x50 uniform sparse matrix, density 0.03 — sketching shaped."""
    return random_sparse(400, 50, 0.03, seed=7)


@pytest.fixture
def philox_rng() -> PhiloxSketchRNG:
    return PhiloxSketchRNG(12345, "uniform")


@pytest.fixture
def xoshiro_rng() -> XoshiroSketchRNG:
    return XoshiroSketchRNG(12345, "uniform")


@pytest.fixture
def rng_np() -> np.random.Generator:
    return np.random.default_rng(0)


def dense_reference(rng_sketch, d: int, A: CSCMatrix, b_d: int | None = None) -> np.ndarray:
    """Reference product ``post_scale * S @ A_dense`` for a given generator.

    Uses a *fresh* materialization; callers must pass a generator with the
    same seed/distribution as the one under test (not the same object, so
    counters are unaffected).
    """
    S = rng_sketch.materialize(d, A.shape[0], b_d=b_d)
    return rng_sketch.post_scale * (S @ A.to_dense())
