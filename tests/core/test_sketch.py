"""Tests for repro.core.sketch (SketchOperator and sketch())."""

import numpy as np
import pytest

from repro.core import SketchConfig, SketchOperator, sketch
from repro.errors import ConfigError, ShapeError
from repro.model import FRONTERA, PERLMUTTER
from repro.sparse import abnormal_c, random_sparse


@pytest.fixture
def A():
    return random_sparse(150, 20, 0.1, seed=501)


class TestSketchOperator:
    def test_apply_matches_materialize(self, A):
        cfg = SketchConfig(rng_kind="philox", kernel="algo3", b_d=16, b_n=8,
                           seed=3)
        op = SketchOperator(60, 150, config=cfg)
        result = op.apply(A)
        S = op.materialize()
        np.testing.assert_allclose(result.sketch, S @ A.to_dense())

    def test_apply_dense_consistent(self, A):
        cfg = SketchConfig(rng_kind="xoshiro", kernel="algo3", b_d=16,
                           seed=3)
        op = SketchOperator(60, 150, config=cfg)
        X = np.random.default_rng(1).standard_normal((150, 4))
        np.testing.assert_allclose(op.apply_dense(X), op.materialize() @ X)

    def test_apply_dense_vector(self, A):
        op = SketchOperator(40, 150, config=SketchConfig(seed=2, b_d=16))
        x = np.random.default_rng(2).standard_normal(150)
        out = op.apply_dense(x)
        assert out.shape == (40,)
        np.testing.assert_allclose(out, op.materialize() @ x)

    def test_sketch_and_rhs_same_realization(self, A):
        """The SAP pipeline requirement: S A and S b use the same S."""
        cfg = SketchConfig(rng_kind="xoshiro", kernel="algo3", seed=5, b_d=16)
        op = SketchOperator(60, 150, config=cfg)
        x = np.random.default_rng(3).standard_normal(20)
        Ax = A.to_dense() @ x
        lhs = op.apply(A).sketch @ x        # (S A) x
        rhs = op.apply_dense(Ax)            # S (A x)
        np.testing.assert_allclose(lhs, rhs, atol=1e-8)

    def test_normalize_scales(self, A):
        cfg = SketchConfig(rng_kind="philox", normalize=True, seed=1,
                           distribution="rademacher", kernel="algo3")
        op = SketchOperator(100, 150, config=cfg)
        res = op.apply(A)
        assert res.scale == pytest.approx(0.1)  # 1/sqrt(100 * 1)
        S = op.materialize()
        # Normalized Rademacher columns have unit norm exactly.
        np.testing.assert_allclose(np.linalg.norm(S, axis=0), 1.0)

    def test_scaled_trick_through_operator(self, A):
        plain = SketchOperator(40, 150, config=SketchConfig(
            rng_kind="philox", distribution="uniform", seed=6, kernel="algo3"))
        trick = SketchOperator(40, 150, config=SketchConfig(
            rng_kind="philox", distribution="uniform_scaled", seed=6,
            kernel="algo3"))
        np.testing.assert_allclose(plain.apply(A).sketch,
                                   trick.apply(A).sketch)

    def test_shape_property(self):
        op = SketchOperator(30, 99)
        assert op.shape == (30, 99)

    def test_wrong_row_count(self, A):
        op = SketchOperator(30, 99)
        with pytest.raises(ShapeError):
            op.apply(A)
        with pytest.raises(ShapeError):
            op.apply_dense(np.zeros(5))

    def test_threads_path(self, A):
        cfg1 = SketchConfig(rng_kind="philox", kernel="algo3", seed=4,
                            b_d=16, b_n=8, threads=1)
        cfg3 = SketchConfig(rng_kind="philox", kernel="algo3", seed=4,
                            b_d=16, b_n=8, threads=3)
        a = SketchOperator(40, 150, config=cfg1).apply(A).sketch
        b = SketchOperator(40, 150, config=cfg3).apply(A).sketch
        np.testing.assert_allclose(a, b)

    def test_pregen_kernel_path(self, A):
        cfg = SketchConfig(rng_kind="philox", kernel="pregen", seed=4)
        res = SketchOperator(40, 150, config=cfg).apply(A)
        assert res.kernel_used == "pregen"
        ref = SketchOperator(40, 150, config=SketchConfig(
            rng_kind="philox", kernel="algo3", seed=4)).apply(A)
        np.testing.assert_allclose(res.sketch, ref.sketch)


class TestAutoDispatch:
    def test_frontera_picks_algo3(self, A):
        op = SketchOperator(40, 150, config=SketchConfig(kernel="auto"),
                            machine=FRONTERA)
        assert op.apply(A).kernel_used == "algo3"

    def test_perlmutter_picks_algo4(self, A):
        op = SketchOperator(40, 150, config=SketchConfig(kernel="auto"),
                            machine=PERLMUTTER)
        assert op.apply(A).kernel_used == "algo4"

    def test_perlmutter_abnormal_c_falls_back(self):
        A = abnormal_c(150, 100, period=50, seed=1)
        op = SketchOperator(310, 150, config=SketchConfig(kernel="auto"),
                            machine=PERLMUTTER)
        assert op.apply(A).kernel_used == "algo3"


class TestSketchFunction:
    def test_gamma_sizing(self, A):
        res = sketch(A, gamma=3.0, config=SketchConfig(seed=1))
        assert res.sketch.shape == (60, 20)

    def test_explicit_d(self, A):
        res = sketch(A, d=45, config=SketchConfig(seed=1))
        assert res.sketch.shape == (45, 20)

    def test_default_uses_config_gamma(self, A):
        res = sketch(A, config=SketchConfig(gamma=2.0, seed=1))
        assert res.sketch.shape == (40, 20)

    def test_rejects_both_gamma_and_d(self, A):
        with pytest.raises(ConfigError):
            sketch(A, gamma=2.0, d=50)

    def test_rejects_d_below_n(self, A):
        with pytest.raises(ConfigError):
            sketch(A, d=10)

    def test_rejects_gamma_below_one(self, A):
        with pytest.raises(ConfigError):
            sketch(A, gamma=0.5)

    def test_stats_attached(self, A):
        res = sketch(A, gamma=2.0, config=SketchConfig(seed=1))
        assert res.stats.flops == 2 * 40 * A.nnz
