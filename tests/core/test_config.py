"""Tests for repro.core.config."""

import pytest

from repro.errors import ConfigError
from repro.core import SketchConfig
from repro.rng import PhiloxSketchRNG, XoshiroSketchRNG


class TestValidation:
    def test_defaults_match_paper(self):
        cfg = SketchConfig()
        assert cfg.gamma == 3.0             # SpMM experiments
        assert cfg.distribution == "uniform"
        assert cfg.rng_kind == "xoshiro"    # the production generator
        assert cfg.kernel == "auto"

    def test_gamma_must_exceed_one(self):
        with pytest.raises(ConfigError, match="gamma"):
            SketchConfig(gamma=1.0)

    def test_unknown_distribution(self):
        with pytest.raises(ConfigError):
            SketchConfig(distribution="cauchy")

    def test_unknown_rng_kind(self):
        with pytest.raises(ConfigError):
            SketchConfig(rng_kind="mt19937")

    def test_unknown_kernel(self):
        with pytest.raises(ConfigError):
            SketchConfig(kernel="algo7")

    def test_bad_blocking(self):
        with pytest.raises(ConfigError):
            SketchConfig(b_d=0)
        with pytest.raises(ConfigError):
            SketchConfig(b_n=-5)

    def test_bad_threads(self):
        with pytest.raises(ConfigError):
            SketchConfig(threads=0)


class TestSketchSize:
    def test_ceil(self):
        assert SketchConfig(gamma=3.0).sketch_size(10) == 30
        assert SketchConfig(gamma=2.5).sketch_size(3) == 8

    def test_least_squares_gamma(self):
        assert SketchConfig(gamma=2.0).sketch_size(582) == 1164

    def test_rejects_bad_n(self):
        with pytest.raises(ConfigError):
            SketchConfig().sketch_size(0)


class TestBuildRng:
    def test_kind_respected(self):
        assert isinstance(SketchConfig(rng_kind="philox").build_rng(),
                          PhiloxSketchRNG)
        assert isinstance(SketchConfig(rng_kind="xoshiro").build_rng(),
                          XoshiroSketchRNG)

    def test_seed_and_dist_forwarded(self):
        rng = SketchConfig(seed=77, distribution="rademacher").build_rng()
        assert rng.seed == 77
        assert rng.dist.name == "rademacher"

    def test_fresh_instances(self):
        cfg = SketchConfig()
        a, b = cfg.build_rng(), cfg.build_rng()
        assert a is not b
