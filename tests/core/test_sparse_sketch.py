"""Tests for repro.core.sparse_sketch (sparse-sign comparison operator)."""

import numpy as np
import pytest

from repro.core.sparse_sketch import SparseSignSketch
from repro.errors import ConfigError, ShapeError
from repro.sparse import random_sparse


class TestConstruction:
    def test_shape(self):
        op = SparseSignSketch(40, 100, s=4)
        assert op.shape == (40, 100)
        assert op.operator_nnz == 400

    def test_s_bounded_by_d(self):
        with pytest.raises(ConfigError):
            SparseSignSketch(4, 10, s=8)

    def test_validation(self):
        with pytest.raises(ConfigError):
            SparseSignSketch(0, 10)


class TestStructure:
    def test_materialized_column_sparsity(self):
        op = SparseSignSketch(50, 30, s=4, seed=1)
        S = op.materialize()
        # At most s nonzeros per column (collisions can merge or cancel).
        nnz_per_col = (S != 0).sum(axis=0)
        assert np.all(nnz_per_col <= 4)
        assert nnz_per_col.mean() > 2.5  # mostly collision-free for s << d

    def test_values_are_scaled_signs(self):
        op = SparseSignSketch(64, 20, s=4, seed=2)
        S = op.materialize()
        vals = S[S != 0]
        scaled = vals * 2.0  # 1/sqrt(4) = 0.5
        assert set(np.round(np.unique(np.abs(scaled)), 9)) <= {1.0, 2.0}

    def test_deterministic(self):
        a = SparseSignSketch(30, 15, s=3, seed=5).materialize()
        b = SparseSignSketch(30, 15, s=3, seed=5).materialize()
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_operator(self):
        a = SparseSignSketch(30, 15, s=3, seed=5).materialize()
        b = SparseSignSketch(30, 15, s=3, seed=6).materialize()
        assert not np.array_equal(a, b)

    def test_column_entries_coordinate_addressed(self):
        op = SparseSignSketch(40, 50, s=5, seed=7)
        solo_rows, solo_vals = op.column_entries(np.array([17]))
        batch_rows, batch_vals = op.column_entries(np.array([3, 17, 40]))
        np.testing.assert_array_equal(batch_rows[:, 1], solo_rows[:, 0])
        np.testing.assert_array_equal(batch_vals[:, 1], solo_vals[:, 0])


class TestApplication:
    def test_apply_matches_materialized(self):
        A = random_sparse(60, 18, 0.2, seed=8)
        op = SparseSignSketch(25, 60, s=4, seed=9)
        res = op.apply(A)
        np.testing.assert_allclose(res.sketch,
                                   op.materialize() @ A.to_dense(),
                                   atol=1e-12)
        assert res.flops == 2 * 4 * A.nnz

    def test_apply_dense_matches(self):
        op = SparseSignSketch(25, 60, s=4, seed=10)
        X = np.random.default_rng(0).standard_normal((60, 3))
        np.testing.assert_allclose(op.apply_dense(X), op.materialize() @ X,
                                   atol=1e-12)

    def test_apply_dense_vector(self):
        op = SparseSignSketch(25, 60, s=4, seed=11)
        x = np.random.default_rng(1).standard_normal(60)
        out = op.apply_dense(x)
        assert out.shape == (25,)
        np.testing.assert_allclose(out, op.materialize() @ x, atol=1e-12)

    def test_shape_mismatch(self):
        A = random_sparse(10, 5, 0.3, seed=12)
        op = SparseSignSketch(8, 99)
        with pytest.raises(ShapeError):
            op.apply(A)


class TestSketchQuality:
    def test_norm_preservation(self):
        """E ||S x||^2 == ||x||^2 — columns have unit expected norm."""
        op = SparseSignSketch(2000, 60, s=8, seed=13)
        S = op.materialize()
        x = np.sin(np.arange(60))
        assert np.linalg.norm(S @ x) ** 2 == pytest.approx(
            np.linalg.norm(x) ** 2, rel=0.2)

    def test_usable_in_sap_pipeline(self):
        """The sparse-sign sketch preconditioners LSQR like the dense one."""
        from repro.lsq import CscOperator, PreconditionedOperator, lsqr
        from repro.lsq.preconditioners import TriangularPreconditioner

        A = random_sparse(500, 25, 0.15, seed=14)
        rng = np.random.default_rng(2)
        b = CscOperator(A).matvec(rng.standard_normal(25)) + \
            rng.standard_normal(500)
        op = SparseSignSketch(50, 500, s=8, seed=15)  # gamma = 2
        Ahat = op.apply(A).sketch
        precond = TriangularPreconditioner.from_sketch(Ahat)
        B = PreconditionedOperator(CscOperator(A), precond)
        run = lsqr(B, b, atol=1e-13)
        x = precond.apply(run.z)
        expected = np.linalg.lstsq(A.to_dense(), b, rcond=None)[0]
        np.testing.assert_allclose(x, expected, atol=1e-6)
        assert run.iterations < 200

    def test_cheaper_flops_than_dense(self):
        A = random_sparse(400, 30, 0.1, seed=16)
        d, s = 60, 8
        op = SparseSignSketch(d, 400, s=s, seed=17)
        res = op.apply(A)
        dense_flops = 2 * d * A.nnz
        assert res.flops == pytest.approx(dense_flops * s / d)
