"""Tests for repro.core.streaming (incremental sketch maintenance)."""

import numpy as np
import pytest

from repro.core.streaming import StreamingSketch
from repro.errors import ConfigError, ShapeError
from repro.kernels import sketch_spmm
from repro.rng import PhiloxSketchRNG, ThreefrySketchRNG
from repro.sparse import CSCMatrix, random_sparse


def _row_batches(A: CSCMatrix, sizes):
    """Split A into row batches of the given sizes (as CSC blocks)."""
    dense = A.to_dense()
    out = []
    start = 0
    for k in sizes:
        out.append(CSCMatrix.from_dense(dense[start:start + k]))
        start += k
    assert start == A.shape[0]
    return out


@pytest.fixture
def A():
    return random_sparse(120, 18, 0.15, seed=1201)


class TestStreamingEqualsOneShot:
    @pytest.mark.parametrize("sizes", [[120], [60, 60], [1] * 120,
                                       [50, 30, 25, 15]])
    def test_any_chunking_matches(self, A, sizes):
        d = 36
        st = StreamingSketch(d, 18, PhiloxSketchRNG(5), b_d=12, b_n=6)
        for batch in _row_batches(A, sizes):
            st.absorb(batch)
        oneshot, _ = sketch_spmm(A, d, PhiloxSketchRNG(5), kernel="algo3",
                                 b_d=12, b_n=6)
        np.testing.assert_allclose(st.sketch, oneshot, atol=1e-12)

    def test_threefry_family(self, A):
        d = 24
        st = StreamingSketch(d, 18, ThreefrySketchRNG(7), b_d=8)
        for batch in _row_batches(A, [40, 40, 40]):
            st.absorb(batch)
        oneshot, _ = sketch_spmm(A, d, ThreefrySketchRNG(7), kernel="algo3",
                                 b_d=8)
        np.testing.assert_allclose(st.sketch, oneshot, atol=1e-12)

    def test_algo4_kernel(self, A):
        d = 24
        st = StreamingSketch(d, 18, PhiloxSketchRNG(9), kernel="algo4",
                             b_d=8, b_n=5)
        for batch in _row_batches(A, [70, 50]):
            st.absorb(batch)
        oneshot, _ = sketch_spmm(A, d, PhiloxSketchRNG(9), kernel="algo3",
                                 b_d=8, b_n=5)
        np.testing.assert_allclose(st.sketch, oneshot, atol=1e-12)


class TestBookkeeping:
    def test_offsets_and_counters(self, A):
        st = StreamingSketch(20, 18, PhiloxSketchRNG(1))
        offsets = [st.absorb(b) for b in _row_batches(A, [30, 40, 50])]
        assert offsets == [0, 30, 70]
        assert st.rows_seen == 120
        assert st.batches_absorbed == 3

    def test_samples_accumulate_on_shared_rng(self, A):
        rng = PhiloxSketchRNG(1)
        st = StreamingSketch(20, 18, rng)
        for b in _row_batches(A, [60, 60]):
            st.absorb(b)
        assert rng.samples_generated == 20 * A.nnz  # algo3 volume overall

    def test_column_mismatch_rejected(self, A):
        st = StreamingSketch(20, 18, PhiloxSketchRNG(1))
        with pytest.raises(ShapeError):
            st.absorb(random_sparse(10, 5, 0.3, seed=1))

    def test_scaling_trick_rejected(self):
        with pytest.raises(ConfigError):
            StreamingSketch(20, 18, PhiloxSketchRNG(1, "uniform_scaled"))


class TestStreamingApplication:
    def test_growing_least_squares(self):
        """Sketch maintained over a stream preconditioners the final LSQR
        exactly as a batch sketch would."""
        from repro.lsq import CscOperator, PreconditionedOperator, lsqr
        from repro.lsq.preconditioners import TriangularPreconditioner

        full = random_sparse(600, 20, 0.1, seed=1301)
        rng_np = np.random.default_rng(3)
        b = CscOperator(full).matvec(rng_np.standard_normal(20)) + \
            rng_np.standard_normal(600)
        d = 40
        st = StreamingSketch(d, 20, PhiloxSketchRNG(11), b_d=16, b_n=8)
        for batch in _row_batches(full, [200, 200, 200]):
            st.absorb(batch)
        precond = TriangularPreconditioner.from_sketch(st.sketch)
        B = PreconditionedOperator(CscOperator(full), precond)
        run = lsqr(B, b, atol=1e-13)
        x = precond.apply(run.z)
        expected = np.linalg.lstsq(full.to_dense(), b, rcond=None)[0]
        np.testing.assert_allclose(x, expected, atol=1e-6)
        assert run.iterations < 150


class TestEntryStream:
    def test_entries_match_matrix_path(self, A):
        """absorb_entries over shuffled COO entries equals the one-shot
        sketch (CBRNG; absolute row coordinates)."""
        d = 30
        coo = A.to_coo()
        order = np.random.default_rng(4).permutation(coo.nnz)
        st = StreamingSketch(d, 18, PhiloxSketchRNG(13), b_d=8)
        for lo in range(0, coo.nnz, 37):
            sel = order[lo:lo + 37]
            st.absorb_entries(coo.rows[sel], coo.cols[sel], coo.vals[sel])
        oneshot, _ = sketch_spmm(A, d, PhiloxSketchRNG(13), kernel="algo3",
                                 b_d=8)
        np.testing.assert_allclose(st.sketch, oneshot, atol=1e-10)

    def test_entries_match_xoshiro_checkpoints(self, A):
        """With the same b_d grid, the entry path reproduces the
        checkpointed generator's sketch too."""
        from repro.rng import XoshiroSketchRNG

        d, b_d = 24, 8
        coo = A.to_coo()
        st = StreamingSketch(d, 18, XoshiroSketchRNG(14), b_d=b_d)
        st.absorb_entries(coo.rows, coo.cols, coo.vals)
        oneshot, _ = sketch_spmm(A, d, XoshiroSketchRNG(14), kernel="algo3",
                                 b_d=b_d)
        np.testing.assert_allclose(st.sketch, oneshot, atol=1e-10)

    def test_from_matrix_market_out_of_core(self, A, tmp_path):
        from repro.sparse import write_matrix_market

        path = tmp_path / "stream.mtx"
        write_matrix_market(A, path)
        d = 30
        st = StreamingSketch.from_matrix_market(
            path, d, PhiloxSketchRNG(15), chunk=17, b_d=8)
        oneshot, _ = sketch_spmm(A, d, PhiloxSketchRNG(15), kernel="algo3",
                                 b_d=8)
        np.testing.assert_allclose(st.sketch, oneshot, atol=1e-10)
        assert st.rows_seen == A.shape[0]
        assert st.batches_absorbed == -(-A.nnz // 17)

    def test_entry_validation(self):
        st = StreamingSketch(10, 5, PhiloxSketchRNG(0))
        with pytest.raises(ShapeError):
            st.absorb_entries(np.array([0]), np.array([9]), np.array([1.0]))
        with pytest.raises(ShapeError):
            st.absorb_entries(np.array([-1]), np.array([0]), np.array([1.0]))
        with pytest.raises(ShapeError):
            st.absorb_entries(np.array([0, 1]), np.array([0]),
                              np.array([1.0]))
        st.absorb_entries(np.array([], dtype=np.int64),
                          np.array([], dtype=np.int64), np.array([]))

    def test_duplicate_entries_accumulate(self):
        st = StreamingSketch(6, 3, PhiloxSketchRNG(1))
        st.absorb_entries(np.array([2, 2]), np.array([1, 1]),
                          np.array([0.5, 0.5]))
        ref = StreamingSketch(6, 3, PhiloxSketchRNG(1))
        ref.absorb_entries(np.array([2]), np.array([1]), np.array([1.0]))
        np.testing.assert_allclose(st.sketch, ref.sketch, atol=1e-14)
