"""Tests for repro.core.lowrank (randomized SVD on the sketching kernels)."""

import numpy as np
import pytest

from repro.core import SketchConfig
from repro.core.lowrank import randomized_range_finder, randomized_svd
from repro.errors import ConfigError, ShapeError
from repro.sparse import CSCMatrix, random_sparse


def _low_rank_sparse(m=300, n=60, true_rank=6, seed=0, noise=0.0):
    """A sparse matrix with a planted rank-`true_rank` spectrum.

    Built as a product of *sparse* factors so the result is genuinely
    low-rank yet sparse (an elementwise mask would destroy the rank);
    optional noise adds a small full-rank tail.
    """
    rng = np.random.default_rng(seed)
    U = rng.standard_normal((m, true_rank)) * (rng.random((m, true_rank)) < 0.15)
    V = rng.standard_normal((n, true_rank)) * (rng.random((n, true_rank)) < 0.4)
    s = np.logspace(0, -2, true_rank)
    dense = (U * s) @ V.T
    if noise:
        mask = rng.random((m, n)) < 0.05
        dense = dense + noise * rng.standard_normal((m, n)) * mask
    return CSCMatrix.from_dense(dense)


class TestRangeFinder:
    def test_orthonormal(self):
        A = random_sparse(120, 30, 0.2, seed=1)
        V, stats = randomized_range_finder(A, 10,
                                           config=SketchConfig(seed=2))
        assert V.shape == (30, 10)
        np.testing.assert_allclose(V.T @ V, np.eye(10), atol=1e-10)
        assert stats.samples_generated > 0

    def test_captures_row_space(self):
        # For an exactly rank-k matrix, the basis captures A entirely.
        A = _low_rank_sparse(true_rank=4, seed=3)
        V, _ = randomized_range_finder(A, 12, config=SketchConfig(seed=4))
        Ad = A.to_dense()
        residual = Ad - (Ad @ V) @ V.T
        assert np.linalg.norm(residual) < 1e-8 * np.linalg.norm(Ad)

    def test_power_iterations_improve_basis(self):
        A = _low_rank_sparse(true_rank=10, seed=5, noise=0.05)
        Ad = A.to_dense()

        def residual(p):
            V, _ = randomized_range_finder(A, 10, power_iters=p,
                                           config=SketchConfig(seed=6))
            return np.linalg.norm(Ad - (Ad @ V) @ V.T)

        assert residual(3) <= residual(0) * 1.05

    def test_size_validation(self):
        A = random_sparse(20, 10, 0.3, seed=7)
        with pytest.raises(ConfigError):
            randomized_range_finder(A, 11)


class TestRandomizedSvd:
    def test_exact_on_low_rank(self):
        A = _low_rank_sparse(true_rank=5, seed=8)
        res = randomized_svd(A, rank=5, oversample=8, power_iters=1,
                             config=SketchConfig(seed=9))
        np.testing.assert_allclose(res.reconstruct(), A.to_dense(),
                                   atol=1e-8)

    def test_singular_values_match_dense(self):
        A = _low_rank_sparse(true_rank=8, seed=10, noise=0.01)
        res = randomized_svd(A, rank=6, oversample=10, power_iters=2,
                             config=SketchConfig(seed=11))
        s_true = np.linalg.svd(A.to_dense(), compute_uv=False)[:6]
        np.testing.assert_allclose(res.s, s_true, rtol=0.05)

    def test_factor_shapes_and_orthogonality(self):
        A = random_sparse(100, 40, 0.2, seed=12)
        res = randomized_svd(A, rank=7, config=SketchConfig(seed=13))
        assert res.U.shape == (100, 7)
        assert res.s.shape == (7,)
        assert res.Vt.shape == (7, 40)
        np.testing.assert_allclose(res.U.T @ res.U, np.eye(7), atol=1e-10)
        np.testing.assert_allclose(res.Vt @ res.Vt.T, np.eye(7), atol=1e-10)
        assert np.all(np.diff(res.s) <= 1e-12)  # non-increasing

    def test_near_optimal_error(self):
        """Spectral error within a small factor of the best rank-k error."""
        A = _low_rank_sparse(true_rank=20, seed=14, noise=0.02)
        k = 8
        res = randomized_svd(A, rank=k, oversample=10, power_iters=2,
                             config=SketchConfig(seed=15))
        Ad = A.to_dense()
        err = np.linalg.norm(Ad - res.reconstruct(), 2)
        s_true = np.linalg.svd(Ad, compute_uv=False)
        optimal = s_true[k]
        assert err <= 3 * optimal + 1e-10

    def test_deterministic_given_seed(self):
        A = random_sparse(80, 25, 0.2, seed=16)
        a = randomized_svd(A, rank=5, config=SketchConfig(seed=17))
        b = randomized_svd(A, rank=5, config=SketchConfig(seed=17))
        np.testing.assert_array_equal(a.s, b.s)

    def test_rank_validation(self):
        A = random_sparse(20, 10, 0.3, seed=18)
        with pytest.raises(ShapeError):
            randomized_svd(A, rank=15)
        with pytest.raises(ConfigError):
            randomized_svd(A, rank=0)

    def test_counter_rng_families_work(self):
        A = _low_rank_sparse(true_rank=4, seed=19)
        for kind in ("philox", "threefry", "xoshiro"):
            res = randomized_svd(A, rank=4, power_iters=1,
                                 config=SketchConfig(seed=20, rng_kind=kind))
            np.testing.assert_allclose(res.reconstruct(), A.to_dense(),
                                       atol=1e-7)
