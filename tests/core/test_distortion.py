"""Tests for repro.core.distortion (sketch quality metrics)."""

import numpy as np
import pytest

from repro.core import (
    SketchConfig,
    SketchOperator,
    effective_distortion,
    preconditioned_condition,
    predicted_condition_bound,
    predicted_distortion,
    sketch_distortion,
)
from repro.errors import ConfigError
from repro.sparse import random_sparse


class TestEffectiveDistortion:
    def test_identity_embedding_zero(self):
        # S U with orthonormal columns and identical singular values.
        U = np.linalg.qr(np.random.default_rng(0).standard_normal((30, 5)))[0]
        assert effective_distortion(U) == pytest.approx(0.0, abs=1e-12)

    def test_formula(self):
        # Singular values {2, 1} -> distortion (2-1)/(2+1) = 1/3.
        SU = np.diag([2.0, 1.0])
        assert effective_distortion(SU) == pytest.approx(1.0 / 3.0)

    def test_rank_deficient_is_one(self):
        SU = np.zeros((4, 2))
        SU[0, 0] = 1.0
        assert effective_distortion(SU) == pytest.approx(1.0)

    def test_scale_invariant(self):
        rng = np.random.default_rng(1)
        SU = rng.standard_normal((20, 4))
        assert effective_distortion(3.0 * SU) == pytest.approx(
            effective_distortion(SU)
        )


class TestPredictions:
    def test_distortion_limit(self):
        assert predicted_distortion(4.0) == pytest.approx(0.5)

    def test_condition_bound(self):
        # gamma=4: (2+1)/(2-1) = 3.
        assert predicted_condition_bound(4.0) == pytest.approx(3.0)

    def test_gamma_validation(self):
        with pytest.raises(ConfigError):
            predicted_distortion(1.0)
        with pytest.raises(ConfigError):
            predicted_condition_bound(0.9)

    def test_consistency(self):
        # cond bound == (1 + delta) / (1 - delta) with delta = 1/sqrt(gamma).
        g = 2.7
        delta = predicted_distortion(g)
        assert predicted_condition_bound(g) == pytest.approx(
            (1 + delta) / (1 - delta)
        )


class TestSketchDistortion:
    @pytest.mark.parametrize("gamma", [2.0, 4.0])
    def test_matches_gaussian_limit(self, gamma):
        # Realized distortion should land near 1/sqrt(gamma) for modest n.
        A = random_sparse(3000, 40, 0.05, seed=2)
        d = int(gamma * 40)
        cfg = SketchConfig(rng_kind="philox", normalize=True, seed=3,
                           kernel="algo3")
        op = SketchOperator(d, 3000, config=cfg)
        delta = sketch_distortion(op, A)
        assert delta == pytest.approx(predicted_distortion(gamma), abs=0.15)

    def test_larger_gamma_smaller_distortion(self):
        A = random_sparse(2000, 30, 0.05, seed=4)
        cfg = SketchConfig(rng_kind="philox", seed=5, kernel="algo3")
        d_small = sketch_distortion(SketchOperator(60, 2000, config=cfg), A)
        d_large = sketch_distortion(SketchOperator(300, 2000, config=cfg), A)
        assert d_large < d_small

    def test_xoshiro_sketch_quality(self):
        """Section IV-B's claim: checkpointed xoshiro sketches are fine as
        measured by effective distortion."""
        A = random_sparse(2000, 30, 0.05, seed=6)
        cfg = SketchConfig(rng_kind="xoshiro", seed=7, kernel="algo3")
        delta = sketch_distortion(SketchOperator(120, 2000, config=cfg), A)
        assert delta < 0.75  # far from degenerate (1.0)
        assert delta == pytest.approx(0.5, abs=0.2)  # gamma=4 limit


class TestPreconditionedCondition:
    def test_qr_preconditioner_flattens_spectrum(self):
        A = random_sparse(1500, 25, 0.08, seed=8)
        cfg = SketchConfig(rng_kind="philox", seed=9, kernel="algo3")
        op = SketchOperator(50, 1500, config=cfg)  # gamma = 2
        Ahat = op.apply(A).sketch
        R = np.linalg.qr(Ahat, mode="r")
        kappa = preconditioned_condition(A, R)
        # Paper: bounded by (sqrt(2)+1)/(sqrt(2)-1) ~ 5.83 in the limit.
        assert kappa < 3 * predicted_condition_bound(2.0)

    def test_shape_checks(self):
        A = random_sparse(30, 5, 0.3, seed=10)
        with pytest.raises(Exception):
            preconditioned_condition(A, np.zeros((3, 3)))
