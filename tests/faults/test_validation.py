"""Input validation and error-hierarchy tests for the robustness layer."""

import math

import pytest

from repro.core import SketchConfig
from repro.errors import (
    ConfigError,
    ReproError,
    RetryExhaustedError,
    SketchQualityError,
    TaskFailedError,
    TaskTimeoutError,
)
from repro.faults import InjectedFaultError
from repro.kernels import choose_kernel
from repro.model import LAPTOP, MachineModel
from repro.parallel import ResilienceConfig
from repro.parallel.resilience import (
    column_abs_sums,
    entry_abs_bound,
    validate_block,
)
from repro.rng.distributions import get_distribution
from repro.sparse import CSCMatrix, random_sparse

import numpy as np


class TestErrorHierarchy:
    def test_task_errors_under_repro_error(self):
        assert issubclass(TaskFailedError, ReproError)
        assert issubclass(TaskTimeoutError, TaskFailedError)
        assert issubclass(RetryExhaustedError, TaskFailedError)
        assert issubclass(SketchQualityError, ReproError)

    def test_injected_fault_outside_hierarchy(self):
        # Injected faults simulate third-party crashes: the executor must
        # survive them *without* them being library errors.
        assert not issubclass(InjectedFaultError, ReproError)
        assert issubclass(InjectedFaultError, RuntimeError)


class TestChooseKernelValidation:
    def test_empty_rows_rejected(self):
        A = CSCMatrix((0, 5), np.zeros(6, dtype=np.int64),
                      np.array([], dtype=np.int64), np.array([]))
        with pytest.raises(ConfigError):
            choose_kernel(LAPTOP, A)

    def test_empty_columns_rejected(self):
        A = CSCMatrix((5, 0), np.zeros(1, dtype=np.int64),
                      np.array([], dtype=np.int64), np.array([]))
        with pytest.raises(ConfigError):
            choose_kernel(LAPTOP, A)

    def test_all_zero_matrix_rejected(self):
        A = CSCMatrix((5, 4), np.zeros(5, dtype=np.int64),
                      np.array([], dtype=np.int64), np.array([]))
        with pytest.raises(ConfigError):
            choose_kernel(LAPTOP, A)

    @pytest.mark.parametrize("attr", ["h_base", "random_access_penalty",
                                      "peak_gflops", "bandwidth_gbs"])
    @pytest.mark.parametrize("bad", [math.nan, math.inf])
    def test_non_finite_machine_parameters_rejected(self, attr, bad):
        params = {
            "name": "broken",
            "peak_gflops": LAPTOP.peak_gflops,
            "bandwidth_gbs": LAPTOP.bandwidth_gbs,
            "cache_bytes": LAPTOP.cache_bytes,
            "h_base": LAPTOP.h_base,
            "random_access_penalty": LAPTOP.random_access_penalty,
            "cores": LAPTOP.cores,
            "bandwidth_saturation_threads":
                LAPTOP.bandwidth_saturation_threads,
        }
        params[attr] = bad
        machine = MachineModel(**params)
        A = random_sparse(50, 10, 0.2, seed=1)
        with pytest.raises(ConfigError):
            choose_kernel(machine, A)

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.nan])
    def test_bad_concentration_threshold_rejected(self, bad):
        A = random_sparse(50, 10, 0.2, seed=1)
        with pytest.raises(ConfigError):
            choose_kernel(LAPTOP, A, concentration_threshold=bad)

    def test_valid_input_still_dispatches(self):
        A = random_sparse(50, 10, 0.2, seed=1)
        choice = choose_kernel(LAPTOP, A)
        assert choice.kernel in ("algo3", "algo4")


class TestResilienceConfigValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigError):
            ResilienceConfig(max_retries=-1)

    def test_non_integer_retries_rejected(self):
        with pytest.raises(ConfigError):
            ResilienceConfig(max_retries=1.5)

    def test_non_positive_timeout_rejected(self):
        with pytest.raises(ConfigError):
            ResilienceConfig(task_timeout=0.0)

    def test_unknown_guardrail_rejected(self):
        with pytest.raises(ConfigError):
            ResilienceConfig(guardrail="pray")

    def test_small_bound_factor_rejected(self):
        with pytest.raises(ConfigError):
            ResilienceConfig(guardrail_bound_factor=0.5)

    def test_sketch_config_type_checks_resilience(self):
        with pytest.raises(ConfigError):
            SketchConfig(resilience="retry please")

    def test_defaults_valid(self):
        cfg = ResilienceConfig()
        assert cfg.max_retries == 2
        assert cfg.guardrail is None


class TestGuardrailHelpers:
    def test_column_abs_sums(self):
        dense = np.array([[1.0, -2.0, 0.0],
                          [0.0, 3.0, 0.0],
                          [-4.0, 0.0, 0.0]])
        A = CSCMatrix.from_dense(dense)
        np.testing.assert_allclose(column_abs_sums(A), [5.0, 5.0, 0.0])

    def test_entry_abs_bound_bounded_distributions(self):
        assert entry_abs_bound(get_distribution("uniform")) == 1.0
        assert entry_abs_bound(get_distribution("rademacher")) == 1.0
        assert entry_abs_bound(get_distribution("uniform_scaled")) == 2.0 ** 31

    def test_entry_abs_bound_gaussian_cutoff(self):
        dist = get_distribution("gaussian")
        bound = entry_abs_bound(dist)
        sigma = np.sqrt(dist.variance) / dist.post_scale
        np.testing.assert_allclose(bound, 16.0 * sigma)

    def test_validate_block_labels(self):
        clean = np.ones((3, 3))
        assert validate_block(clean, bound=10.0) is None
        assert validate_block(clean, bound=None) is None
        nanful = clean.copy()
        nanful[1, 1] = np.nan
        assert validate_block(nanful, bound=10.0) == "non-finite"
        big = clean * 100.0
        assert validate_block(big, bound=10.0) == "magnitude"
        # Non-finite outranks magnitude in the label.
        nanful[0, 0] = 1e9
        assert validate_block(nanful, bound=10.0) == "non-finite"


class TestCLIFlags:
    def test_defaults_build_no_resilience(self):
        from repro.cli import _resilience_from_args, build_parser

        args = build_parser().parse_args(
            ["sketch", "--random", "50", "10", "0.2"])
        assert _resilience_from_args(args) is None

    def test_flags_build_config(self):
        from repro.cli import _resilience_from_args, build_parser

        args = build_parser().parse_args(
            ["sketch", "--random", "50", "10", "0.2", "--max-retries", "5",
             "--task-timeout", "1.5", "--guardrail", "mask"])
        cfg = _resilience_from_args(args)
        assert cfg.max_retries == 5
        assert cfg.task_timeout == 1.5
        assert cfg.guardrail == "mask"

    def test_guardrail_alone_enables_resilience(self):
        from repro.cli import _resilience_from_args, build_parser

        args = build_parser().parse_args(
            ["sketch", "--random", "50", "10", "0.2",
             "--guardrail", "recompute"])
        cfg = _resilience_from_args(args)
        assert cfg.guardrail == "recompute"
        assert cfg.max_retries == 2   # documented default when enabled

    def test_cli_surfaces_health(self, capsys):
        from repro.cli import main

        rc = main(["--json", "sketch", "--random", "60", "12", "0.1",
                   "--gamma", "2.0", "--max-retries", "1"])
        assert rc == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["health"]["ok"] is True
        assert payload["health"]["clean"] is True
