"""Regression: fault injection wired through the event bus still fires.

The plan/compile/execute refactor stopped threading ``injector=``
through the executor internals — the injector now subscribes to the
runtime's ``task_start`` / ``rng_request`` / ``block_computed`` hook
events (:meth:`repro.faults.FaultInjector.register`), and only the
out-of-band storage faults (``torn_write`` / ``bitflip``) keep their
direct line into the snapshot writer.  These tests pin that every fault
family still reaches the new runtime.
"""

import numpy as np
import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedCrashError,
)
from repro.kernels.blocking import sketch_spmm
from repro.parallel import ResilienceConfig
from repro.plan import (
    RETRY,
    EventBus,
    PersistencePolicy,
    ProblemSpec,
    RngSpec,
    Runtime,
    SketchPlan,
)
from repro.rng import make_rng
from repro.sparse import random_sparse

D, B_D, B_N = 36, 12, 10
SEED = 9


@pytest.fixture
def A():
    return random_sparse(120, 30, 0.1, seed=301)


def make_plan(A, **overrides):
    base = dict(
        problem=ProblemSpec(m=A.shape[0], n=A.shape[1], d=D, nnz=A.nnz),
        kernel="algo3", b_d=B_D, b_n=B_N,
        rng=RngSpec(kind="philox", seed=SEED),
    )
    base.update(overrides)
    return SketchPlan(**base)


def reference(A):
    out, _ = sketch_spmm(A, D, make_rng("philox", SEED), kernel="algo3",
                         b_d=B_D, b_n=B_N)
    return out


class TestBusRegistration:
    def test_register_is_idempotent_per_bus(self, A):
        """Double registration must not double-fire faults."""
        inj = FaultInjector(FaultPlan([
            FaultSpec(kind="raise", task=(0, 0), max_hits=1)]))
        bus = EventBus()
        inj.register(bus)
        inj.register(bus)
        plan = make_plan(A, resilience=ResilienceConfig(max_retries=2))
        result = Runtime(bus=bus).run(plan, A, injector=inj)
        np.testing.assert_array_equal(result.sketch, reference(A))
        assert inj.events_by_kind() == {"raise": 1}

    def test_injector_alone_selects_guarded_engine(self, A):
        """An injector with an empty plan still routes to the engine (the
        hooks are live), and the output stays bit-identical."""
        inj = FaultInjector(FaultPlan())
        rt = Runtime()
        assert rt.resolve_driver(make_plan(A), inj) == "engine"
        result = rt.run(make_plan(A), A, injector=inj)
        np.testing.assert_array_equal(result.sketch, reference(A))

    def test_rng_substitution_flows_through_rng_request(self, A):
        """The rng fault works purely by mutating the ``rng_request``
        event payload; the magnitude guardrail must still catch it."""
        inj = FaultInjector(FaultPlan([
            FaultSpec(kind="rng", task=(24, 0), magnitude=1e12)]))
        plan = make_plan(A, resilience=ResilienceConfig(
            max_retries=2, guardrail="recompute"))
        result = Runtime().run(plan, A, injector=inj)
        np.testing.assert_array_equal(result.sketch, reference(A))
        assert [e.kind for e in inj.events] == ["rng"]
        assert [f.kind for f in result.stats.health.failures] == \
            ["guardrail-magnitude"]


class TestTornWrite:
    def test_torn_write_still_fires_and_crashes(self, A, tmp_path):
        inj = FaultInjector(FaultPlan([
            FaultSpec(kind="torn_write", task=(1, 0))]))
        plan = make_plan(A, persistence=PersistencePolicy(
            checkpoint_dir=str(tmp_path), every=1))
        with pytest.raises(InjectedCrashError):
            Runtime().run(plan, A, injector=inj)
        assert inj.events_by_kind() == {"torn_write": 1}

    def test_torn_write_crash_recovers_on_resume(self, A, tmp_path):
        # Tear the *second* snapshot so an older verified one survives.
        inj = FaultInjector(FaultPlan([
            FaultSpec(kind="torn_write", task=(2, 0))]))
        plan = make_plan(A, persistence=PersistencePolicy(
            checkpoint_dir=str(tmp_path), every=1))
        with pytest.raises(InjectedCrashError):
            Runtime().run(plan, A, injector=inj)
        resumed = Runtime().run(
            make_plan(A, persistence=PersistencePolicy(
                checkpoint_dir=str(tmp_path), every=1, resume=True)), A)
        np.testing.assert_array_equal(resumed.sketch, reference(A))


class TestStragglers:
    def test_straggler_still_fires_and_reexecutes(self, A):
        inj = FaultInjector(FaultPlan([
            FaultSpec(kind="stall", task=(0, 0), sleep_seconds=1.5)]))
        plan = make_plan(A, threads=2, resilience=ResilienceConfig(
            max_retries=1, task_timeout=0.1))
        bus = EventBus()
        retries = []
        bus.subscribe(RETRY, lambda e: retries.append(e.get("kind")))
        result = Runtime(bus=bus).run(plan, A, injector=inj)
        np.testing.assert_array_equal(result.sketch, reference(A))
        health = result.stats.health
        assert health.timeouts >= 1
        assert health.stragglers_reexecuted >= 1
        assert inj.events_by_kind() == {"stall": 1}
        assert "straggler" in retries
