"""End-to-end resilient-executor tests under injected faults.

The central claim (ISSUE acceptance criterion): with any single-task
fault injected, the resilient executor returns an ``Ahat`` bit-identical
to a fault-free run, and the :class:`RunHealth` report records exactly
the injected faults and the recovery actions taken.
"""

import numpy as np
import pytest

from repro.errors import (
    RetryExhaustedError,
    SketchQualityError,
    TaskTimeoutError,
)
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.parallel import (
    DegradationPolicy,
    ResilienceConfig,
    parallel_sketch_spmm,
)
from repro.rng import PhiloxSketchRNG
from repro.sparse import random_sparse

D, B_D, B_N = 36, 12, 10   # 3 x 3 = 9 block tasks over a 120 x 30 input
TASKS = [(i, j) for i in (0, 12, 24) for j in (0, 10, 20)]


@pytest.fixture
def A():
    return random_sparse(120, 30, 0.1, seed=301)


def factory(w):
    return PhiloxSketchRNG(9)


def reference(A, kernel="algo3"):
    out, _ = parallel_sketch_spmm(A, D, factory, threads=1, kernel=kernel,
                                  b_d=B_D, b_n=B_N)
    return out


def run(A, *, threads=2, kernel="algo3", cfg=None, plan=None):
    inj = FaultInjector(plan) if plan is not None else None
    out, stats = parallel_sketch_spmm(
        A, D, factory, threads=threads, kernel=kernel, b_d=B_D, b_n=B_N,
        resilience=cfg, injector=inj,
    )
    return out, stats, inj


class TestFastPath:
    def test_no_resilience_keeps_seed_behaviour(self, A):
        out, stats, _ = run(A, cfg=None, plan=None)
        np.testing.assert_array_equal(out, reference(A))
        assert stats.health is None
        assert stats.extra["resilient"] is False

    def test_guarded_clean_run_matches_fast_path(self, A):
        out, stats, _ = run(A, cfg=ResilienceConfig(max_retries=1))
        np.testing.assert_array_equal(out, reference(A))
        assert stats.health.ok and stats.health.clean
        assert stats.health.tasks == stats.health.completed == len(TASKS)
        assert stats.extra["resilient"] is True

    def test_guarded_serial_matches_fast_path(self, A):
        out, stats, _ = run(A, threads=1,
                            cfg=ResilienceConfig(guardrail="recompute"))
        np.testing.assert_array_equal(out, reference(A))
        assert stats.health.clean


class TestTransientFaultRecovery:
    @pytest.mark.parametrize("task", [(0, 0), (12, 10), (24, 20)])
    def test_single_raise_fault_bit_identical(self, A, task):
        plan = FaultPlan([FaultSpec(kind="raise", task=task)])
        out, stats, inj = run(A, cfg=ResilienceConfig(max_retries=2),
                              plan=plan)
        np.testing.assert_array_equal(out, reference(A))
        h = stats.health
        assert h.ok and not h.clean
        assert h.retries == 1
        assert h.attempts == len(TASKS) + 1
        # Exactly the injected fault, nothing else.
        assert [e.kind for e in inj.events] == ["raise"]
        assert [(f.task, f.kind) for f in h.failures] == \
            [(task, "InjectedFaultError")]

    def test_nan_without_guardrail_poisons_output(self, A):
        # Control experiment: the guardrail is what saves the sketch.
        plan = FaultPlan([FaultSpec(kind="nan", task=(12, 10))])
        out, stats, _ = run(A, cfg=ResilienceConfig(max_retries=2), plan=plan)
        assert np.isnan(out).sum() == 1
        assert stats.health.ok   # nothing raised, so the run "succeeded"

    def test_nan_repaired_by_recompute_bit_identical(self, A):
        plan = FaultPlan([FaultSpec(kind="nan", task=(12, 10))])
        cfg = ResilienceConfig(max_retries=2, guardrail="recompute")
        out, stats, inj = run(A, cfg=cfg, plan=plan)
        np.testing.assert_array_equal(out, reference(A))
        h = stats.health
        assert h.guardrail_violations == 1
        assert h.corrupted_blocks_repaired == 1
        assert h.retries == 1
        assert [e.kind for e in inj.events] == ["nan"]
        assert [f.kind for f in h.failures] == ["guardrail-non-finite"]

    def test_inf_repaired_by_recompute_bit_identical(self, A):
        plan = FaultPlan([FaultSpec(kind="inf", task=(0, 20))])
        cfg = ResilienceConfig(max_retries=2, guardrail="recompute")
        out, stats, _ = run(A, cfg=cfg, plan=plan)
        np.testing.assert_array_equal(out, reference(A))
        assert stats.health.corrupted_blocks_repaired == 1

    def test_rng_corruption_caught_by_magnitude_guardrail(self, A):
        # Finite but wildly out-of-distribution samples: only the
        # moment-derived magnitude bound can notice.
        plan = FaultPlan([FaultSpec(kind="rng", task=(24, 0),
                                    magnitude=1e12)])
        cfg = ResilienceConfig(max_retries=2, guardrail="recompute")
        out, stats, inj = run(A, cfg=cfg, plan=plan)
        np.testing.assert_array_equal(out, reference(A))
        assert [f.kind for f in stats.health.failures] == \
            ["guardrail-magnitude"]
        assert [e.kind for e in inj.events] == ["rng"]

    def test_random_plan_recovery_thread_invariant(self, A):
        cfg = ResilienceConfig(max_retries=2, guardrail="recompute")
        ref = reference(A)
        fired = []
        for threads in (1, 2, 4):
            plan = FaultPlan.random(seed=13, rate=0.5,
                                    kinds=("raise", "nan"))
            out, _, inj = run(A, threads=threads, cfg=cfg, plan=plan)
            np.testing.assert_array_equal(out, ref)
            fired.append(sorted((e.kind, e.task) for e in inj.events))
        assert fired[0] == fired[1] == fired[2]
        assert fired[0]   # the 50% plan actually poisoned something


class TestGuardrailPolicies:
    def test_raise_policy_fails_fast(self, A):
        plan = FaultPlan([FaultSpec(kind="nan", task=(0, 0))])
        cfg = ResilienceConfig(guardrail="raise")
        with pytest.raises(SketchQualityError):
            run(A, threads=1, cfg=cfg, plan=plan)

    def test_mask_policy_zeroes_block_and_continues(self, A):
        plan = FaultPlan([FaultSpec(kind="nan", task=(12, 10))])
        cfg = ResilienceConfig(guardrail="mask")
        out, stats, _ = run(A, cfg=cfg, plan=plan)
        ref = reference(A)
        np.testing.assert_array_equal(out[12:24, 10:20],
                                      np.zeros((12, 10)))
        masked = np.zeros_like(ref, dtype=bool)
        masked[12:24, 10:20] = True
        np.testing.assert_array_equal(out[~masked], ref[~masked])
        assert stats.health.masked_blocks == 1
        assert stats.health.ok


class TestRetryExhaustion:
    def test_permanent_fault_exhausts_retries(self, A):
        plan = FaultPlan([FaultSpec(kind="raise", task=(0, 0),
                                    max_hits=None)])
        with pytest.raises(RetryExhaustedError):
            run(A, threads=1, cfg=ResilienceConfig(max_retries=2), plan=plan)

    def test_exhaustion_without_serial_fallback(self, A):
        plan = FaultPlan([FaultSpec(kind="raise", task=(0, 0),
                                    max_hits=None)])
        cfg = ResilienceConfig(
            max_retries=1,
            degradation=DegradationPolicy(serial_fallback=False))
        with pytest.raises(RetryExhaustedError):
            run(A, threads=2, cfg=cfg, plan=plan)

    def test_budget_boundary(self, A):
        # max_hits=3 faults vs max_retries=3 -> 4th attempt succeeds.
        plan = FaultPlan([FaultSpec(kind="raise", task=(0, 0), max_hits=3)])
        out, stats, inj = run(A, threads=1,
                              cfg=ResilienceConfig(max_retries=3), plan=plan)
        np.testing.assert_array_equal(out, reference(A))
        assert inj.fault_count == 3
        assert stats.health.retries == 3


class TestDegradation:
    def test_algo4_falls_back_to_algo3(self, A):
        # The fault only fires under algo4: its retry budget burns out,
        # then the pattern-oblivious algo3 completes the task.
        plan = FaultPlan([FaultSpec(kind="raise", task=(12, 0),
                                    max_hits=None, kernel="algo4")])
        cfg = ResilienceConfig(max_retries=1)
        out, stats, inj = run(A, threads=1, kernel="algo4", cfg=cfg,
                              plan=plan)
        # The fallback block is computed by algo3 (different accumulation
        # order, so last-bit differences vs algo4); every untouched block
        # stays bit-identical to the algo4 run.
        ref4, ref3 = reference(A, kernel="algo4"), reference(A)
        np.testing.assert_allclose(out, ref4, atol=1e-12)
        np.testing.assert_array_equal(out[12:24, 0:10], ref3[12:24, 0:10])
        untouched = np.ones_like(out, dtype=bool)
        untouched[12:24, 0:10] = False
        np.testing.assert_array_equal(out[untouched], ref4[untouched])
        h = stats.health
        assert h.kernel_fallbacks == 1
        assert h.ok
        assert all(e.kernel == "algo4" for e in inj.events)
        assert any("degrading to pattern-oblivious algo3" in d
                   for d in h.decisions)

    def test_kernel_fallback_disabled(self, A):
        plan = FaultPlan([FaultSpec(kind="raise", task=(12, 0),
                                    max_hits=None, kernel="algo4")])
        cfg = ResilienceConfig(
            max_retries=1,
            degradation=DegradationPolicy(kernel_fallback=False,
                                          serial_fallback=False))
        with pytest.raises(RetryExhaustedError):
            run(A, threads=1, kernel="algo4", cfg=cfg, plan=plan)

    def test_parallel_degrades_to_serial(self, A):
        # The fault fires only inside pool workers, so the serial re-run
        # in the driver thread succeeds.
        plan = FaultPlan([FaultSpec(kind="raise", task=(24, 20),
                                    max_hits=None, scope="parallel")])
        cfg = ResilienceConfig(max_retries=1)
        out, stats, _ = run(A, threads=2, cfg=cfg, plan=plan)
        np.testing.assert_array_equal(out, reference(A))
        h = stats.health
        assert h.degraded_to_serial
        assert h.ok
        assert any("parallel -> serial" in d for d in h.decisions)

    def test_degradation_ordering_kernel_before_serial(self, A):
        # algo4-scoped fault in the pool: the kernel fallback must fire
        # inside the worker (before any serial degradation is needed).
        plan = FaultPlan([FaultSpec(kind="raise", task=(0, 10),
                                    max_hits=None, kernel="algo4")])
        cfg = ResilienceConfig(max_retries=0)
        out, stats, _ = run(A, threads=2, kernel="algo4", cfg=cfg, plan=plan)
        np.testing.assert_allclose(out, reference(A, kernel="algo4"),
                                   atol=1e-12)
        h = stats.health
        assert h.kernel_fallbacks == 1
        assert not h.degraded_to_serial


class TestStragglers:
    def test_straggler_reexecuted_bit_identical(self, A):
        plan = FaultPlan([FaultSpec(kind="stall", task=(0, 0),
                                    sleep_seconds=1.5)])
        cfg = ResilienceConfig(max_retries=1, task_timeout=0.1)
        out, stats, _ = run(A, threads=2, cfg=cfg, plan=plan)
        np.testing.assert_array_equal(out, reference(A))
        h = stats.health
        assert h.timeouts >= 1
        assert h.stragglers_reexecuted >= 1
        assert h.ok

    def test_timeout_raises_when_reexecution_disabled(self, A):
        plan = FaultPlan([FaultSpec(kind="stall", task=(0, 0),
                                    sleep_seconds=1.5)])
        cfg = ResilienceConfig(task_timeout=0.1,
                               reexecute_stragglers=False)
        with pytest.raises(TaskTimeoutError):
            run(A, threads=2, cfg=cfg, plan=plan)


class TestAlgo4Recovery:
    def test_nan_repair_on_blocked_csr_kernel(self, A):
        plan = FaultPlan([FaultSpec(kind="nan", task=(24, 10))])
        cfg = ResilienceConfig(max_retries=2, guardrail="recompute")
        out, stats, _ = run(A, kernel="algo4", cfg=cfg, plan=plan)
        np.testing.assert_array_equal(out, reference(A, kernel="algo4"))
        assert stats.health.corrupted_blocks_repaired == 1
