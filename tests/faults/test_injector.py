"""Tests for repro.faults.injector — the stateful fault runtime."""

import numpy as np
import pytest

from repro.faults import (
    CorruptingRNG,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
)
from repro.rng import PhiloxSketchRNG


class TestHooks:
    def test_raise_fault_fires_once(self):
        inj = FaultInjector(FaultPlan([FaultSpec(kind="raise", task=(0, 0))]))
        with pytest.raises(InjectedFaultError):
            inj.on_task_start((0, 0), "algo3", "parallel", 1)
        # max_hits=1 consumed: the retry sails through.
        inj.on_task_start((0, 0), "algo3", "parallel", 2)
        assert inj.fault_count == 1

    def test_unlimited_budget(self):
        inj = FaultInjector(FaultPlan(
            [FaultSpec(kind="raise", task=(0, 0), max_hits=None)]))
        for attempt in (1, 2, 3):
            with pytest.raises(InjectedFaultError):
                inj.on_task_start((0, 0), "algo3", "parallel", attempt)
        assert inj.fault_count == 3

    def test_nan_poisons_block_in_place(self):
        inj = FaultInjector(FaultPlan([FaultSpec(kind="nan", task=(0, 0))]))
        block = np.ones((4, 5))
        inj.on_block_computed((0, 0), "algo3", "parallel", 1, block)
        assert np.isnan(block).sum() == 1

    def test_inf_poisons_block_in_place(self):
        inj = FaultInjector(FaultPlan([FaultSpec(kind="inf", task=(0, 0))]))
        block = np.ones((4, 5))
        inj.on_block_computed((0, 0), "algo3", "parallel", 1, block)
        assert np.isinf(block).sum() == 1

    def test_untargeted_task_untouched(self):
        inj = FaultInjector(FaultPlan([FaultSpec(kind="nan", task=(0, 0))]))
        block = np.ones((4, 5))
        inj.on_block_computed((12, 0), "algo3", "parallel", 1, block)
        assert np.isfinite(block).all()
        assert inj.fault_count == 0

    def test_rng_fault_wraps_generator(self):
        inj = FaultInjector(FaultPlan(
            [FaultSpec(kind="rng", task=(0, 0), magnitude=1e6)]))
        rng = PhiloxSketchRNG(3)
        wrapped = inj.rng_for((0, 0), "algo3", "parallel", 1, rng)
        assert isinstance(wrapped, CorruptingRNG)
        # Budget consumed: next attempt gets the clean generator back.
        assert inj.rng_for((0, 0), "algo3", "parallel", 2, rng) is rng

    def test_event_log_contents(self):
        inj = FaultInjector(FaultPlan([FaultSpec(kind="raise", task=(12, 10))]))
        with pytest.raises(InjectedFaultError):
            inj.on_task_start((12, 10), "algo4", "serial", 3)
        (event,) = inj.events
        assert event.kind == "raise"
        assert event.task == (12, 10)
        assert event.attempt == 3
        assert event.context == "serial"
        assert event.kernel == "algo4"

    def test_events_by_kind_and_reset(self):
        inj = FaultInjector(FaultPlan([
            FaultSpec(kind="nan", task=(0, 0)),
            FaultSpec(kind="nan", task=(12, 0)),
            FaultSpec(kind="inf", task=(0, 10)),
        ]))
        for task in [(0, 0), (12, 0), (0, 10)]:
            inj.on_block_computed(task, "algo3", "parallel", 1,
                                  np.ones((2, 2)))
        assert inj.events_by_kind() == {"nan": 2, "inf": 1}
        inj.reset()
        assert inj.fault_count == 0
        # Hit budgets forgotten too: the plan fires again after reset.
        inj.on_block_computed((0, 0), "algo3", "parallel", 1, np.ones((2, 2)))
        assert inj.fault_count == 1


class TestCorruptingRNG:
    def test_scales_samples(self):
        rng = PhiloxSketchRNG(3)
        bad = CorruptingRNG(PhiloxSketchRNG(3), 1e6)
        js = np.arange(5, dtype=np.int64)
        clean = rng.column_block_batch(0, 4, js)
        np.testing.assert_allclose(
            bad.column_block_batch(0, 4, js), clean * 1e6)

    def test_delegates_everything_else(self):
        inner = PhiloxSketchRNG(3)
        bad = CorruptingRNG(inner, 10.0)
        assert bad.post_scale == inner.post_scale
        assert bad.dist is inner.dist
        assert bad.family == inner.family
        assert bad.seed == inner.seed

    def test_is_a_sketching_rng(self):
        from repro.rng.base import SketchingRNG

        assert isinstance(CorruptingRNG(PhiloxSketchRNG(3), 10.0),
                          SketchingRNG)

    def test_derived_helpers_route_through_corruption(self):
        """column_block and materialize must see the scaled samples, not
        bypass the wrapper by delegating to the inner generator."""
        js = np.arange(5, dtype=np.int64)
        clean = PhiloxSketchRNG(3).column_block_batch(0, 4, js)
        bad = CorruptingRNG(PhiloxSketchRNG(3), 10.0)
        np.testing.assert_allclose(bad.column_block(0, 4, 2), clean[:, 2] * 10.0)
        ref = PhiloxSketchRNG(3).materialize(4, 5)
        np.testing.assert_allclose(
            CorruptingRNG(PhiloxSketchRNG(3), 10.0).materialize(4, 5),
            ref * 10.0)

    def test_counter_setter_forwards(self):
        inner = PhiloxSketchRNG(3)
        bad = CorruptingRNG(inner, 10.0)
        bad.column_block_batch(0, 4, np.arange(5, dtype=np.int64))
        assert bad.samples_generated == inner.samples_generated > 0
        bad.reset_counters()
        assert inner.samples_generated == 0
        assert bad.samples_generated == 0

    def test_composes_with_offset_views_both_ways(self):
        """Corruption applied over or under a streaming offset view must
        produce the same (scaled, shifted) entries."""
        from repro.core.streaming import _OffsetRNG

        js = np.arange(6, dtype=np.int64)
        shifted = PhiloxSketchRNG(3).column_block_batch(0, 4, js + 17)
        over = CorruptingRNG(_OffsetRNG(PhiloxSketchRNG(3), 17), 10.0)
        under = _OffsetRNG(CorruptingRNG(PhiloxSketchRNG(3), 10.0), 17)
        np.testing.assert_allclose(over.column_block_batch(0, 4, js),
                                   shifted * 10.0)
        np.testing.assert_allclose(under.column_block_batch(0, 4, js),
                                   shifted * 10.0)
        assert over.family == under.family == "philox"


class TestDeterminism:
    def test_same_plan_same_events(self):
        plan = FaultPlan.random(seed=9, rate=0.4)
        grid = [(i, j) for i in range(0, 60, 12) for j in range(0, 30, 10)]

        def run(order):
            inj = FaultInjector(plan)
            for task in order:
                try:
                    inj.on_task_start(task, "algo3", "parallel", 1)
                except InjectedFaultError:
                    pass
                inj.on_block_computed(task, "algo3", "parallel", 1,
                                      np.ones((2, 2)))
            return sorted((e.kind, e.task) for e in inj.events)

        # Scheduling (visit order) must not change which faults fire.
        assert run(grid) == run(list(reversed(grid)))
