"""End-of-run quality checks: distortion spot-check and SAP fallback."""

import numpy as np
import pytest

import repro
from repro.core import SketchConfig, sketch
from repro.errors import ConfigError, SingularMatrixError, SketchQualityError
from repro.sparse import CSCMatrix, random_sparse


@pytest.fixture
def A():
    return random_sparse(300, 20, 0.1, seed=17)


class TestDistortionSpotCheck:
    def test_healthy_sketch_passes(self, A):
        result = sketch(A, gamma=4.0, quality_check=True)
        assert result.stats.extra["resketches"] == 0
        delta = result.stats.extra["distortion"]
        assert 0.0 < delta <= result.stats.extra["distortion_threshold"]

    def test_no_check_records_nothing(self, A):
        result = sketch(A, gamma=4.0)
        assert "distortion" not in result.stats.extra

    def test_impossible_threshold_raises(self, A):
        with pytest.raises(SketchQualityError):
            sketch(A, gamma=2.0, quality_check=True, quality_threshold=1e-9,
                   max_resketch=0)

    def test_resketch_grows_d_before_raising(self, A):
        # Force failure every round: the error message reports the final
        # (grown) d, proving re-sketching actually escalated.
        with pytest.raises(SketchQualityError, match=r"last d=90"):
            sketch(A, d=40, quality_check=True, quality_threshold=1e-9,
                   max_resketch=2)   # 40 -> 60 -> 90

    def test_resketch_repairs_marginal_sketch(self, A):
        # A threshold between gamma=2.05's typical distortion and
        # gamma=3's: round 0 fails, the 1.5x re-sketch passes.
        loose = sketch(A, gamma=2.05, quality_check=True).stats.extra
        tight_threshold = loose["distortion"] - 1e-9
        result = sketch(A, gamma=2.05, quality_check=True,
                        quality_threshold=tight_threshold, max_resketch=3)
        assert result.stats.extra["resketches"] >= 1
        assert result.stats.extra["distortion"] <= tight_threshold
        assert result.sketch.shape[0] > int(np.ceil(2.05 * A.shape[1]))

    def test_negative_max_resketch_rejected(self, A):
        with pytest.raises(ConfigError):
            sketch(A, gamma=2.0, quality_check=True, max_resketch=-1)


def _rank_deficient_problem(seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((80, 6))
    dense[:, 3] = dense[:, 2]            # exact duplicate column
    dense[np.abs(dense) < 1.0] = 0.0
    A = CSCMatrix.from_dense(dense)
    b = rng.standard_normal(80)
    return A, b


class TestSapDivergenceFallback:
    def test_rank_deficiency_falls_back_to_direct_qr(self):
        A, b = _rank_deficient_problem()
        sol = repro.solve_sap(A, b, gamma=2.0)
        assert sol.method.endswith("(sap-fallback)")
        assert "fallback" in sol.details
        assert np.all(np.isfinite(sol.x))
        # The fallback really solved the problem: its residual is (near-)
        # optimal even though A is exactly rank-deficient.
        dense = A.to_dense()
        best = np.linalg.lstsq(dense, b, rcond=None)[0]
        best_res = np.linalg.norm(dense @ best - b)
        got_res = np.linalg.norm(dense @ sol.x - b)
        assert got_res <= 1.05 * best_res

    def test_strict_mode_propagates_singularity(self):
        A, b = _rank_deficient_problem()
        with pytest.raises(SingularMatrixError):
            repro.solve_sap(A, b, gamma=2.0, divergence_fallback=False)

    def test_healthy_problem_untouched(self):
        A = random_sparse(300, 20, 0.1, seed=17)
        rng = np.random.default_rng(1)
        b = rng.standard_normal(300)
        sol = repro.solve_sap(A, b, gamma=2.0)
        assert sol.method == "sap-qr"
        assert "fallback" not in sol.details

    def test_fallback_accounts_wasted_sketch_time(self):
        A, b = _rank_deficient_problem()
        sol = repro.solve_sap(A, b, gamma=2.0)
        assert sol.sketch_seconds > 0.0
        assert sol.seconds >= sol.sketch_seconds


class TestResilientSketchIntegration:
    def test_resilience_config_preserves_sketch(self, A):
        from repro.parallel import ResilienceConfig

        plain = sketch(A, gamma=2.0, config=SketchConfig(gamma=2.0))
        guarded = sketch(A, gamma=2.0, config=SketchConfig(
            gamma=2.0,
            resilience=ResilienceConfig(max_retries=1,
                                        guardrail="recompute")))
        np.testing.assert_array_equal(plain.sketch, guarded.sketch)
        assert plain.stats.health is None
        assert guarded.stats.health.clean
