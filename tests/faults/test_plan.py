"""Tests for repro.faults.plan — deterministic fault planning."""

import pytest

from repro.errors import ConfigError
from repro.faults import FAULT_KINDS, FaultPlan, FaultSpec, task_hash


class TestTaskHash:
    def test_deterministic(self):
        assert task_hash(7, 12, 30) == task_hash(7, 12, 30)

    def test_sensitive_to_every_coordinate(self):
        base = task_hash(7, 12, 30)
        assert task_hash(8, 12, 30) != base
        assert task_hash(7, 13, 30) != base
        assert task_hash(7, 12, 31) != base
        assert task_hash(7, 12, 30, salt=1) != base

    def test_64_bit_range(self):
        for seed in range(5):
            h = task_hash(seed, 0, 0)
            assert 0 <= h < (1 << 64)


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="segfault")

    def test_bad_scope_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="raise", scope="gpu")

    def test_bad_max_hits_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="raise", max_hits=0)

    def test_negative_sleep_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="stall", sleep_seconds=-1.0)

    def test_all_kinds_constructible(self):
        for kind in FAULT_KINDS:
            FaultSpec(kind=kind)


class TestFaultSpecMatching:
    def test_task_filter(self):
        spec = FaultSpec(kind="raise", task=(12, 30))
        assert spec.matches((12, 30), "algo3", "parallel")
        assert not spec.matches((0, 30), "algo3", "parallel")

    def test_wildcard_task(self):
        spec = FaultSpec(kind="nan")
        assert spec.matches((0, 0), "algo3", "serial")
        assert spec.matches((99, 7), "algo4", "parallel")

    def test_kernel_filter(self):
        spec = FaultSpec(kind="raise", kernel="algo4")
        assert spec.matches((0, 0), "algo4", "parallel")
        assert not spec.matches((0, 0), "algo3", "parallel")

    def test_scope_filter(self):
        par = FaultSpec(kind="raise", scope="parallel")
        ser = FaultSpec(kind="raise", scope="serial")
        assert par.matches((0, 0), "algo3", "parallel")
        assert not par.matches((0, 0), "algo3", "serial")
        assert ser.matches((0, 0), "algo3", "serial")
        assert not ser.matches((0, 0), "algo3", "parallel")


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan.empty()
        assert plan.is_empty
        assert list(plan.faults_for((0, 0), "algo3", "parallel")) == []

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(rate=1.5)

    def test_bad_random_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(rate=0.1, kinds=("raise", "meteor"))

    def test_explicit_specs_keyed_by_index(self):
        specs = [FaultSpec(kind="raise", task=(0, 0)),
                 FaultSpec(kind="nan", task=(0, 0))]
        plan = FaultPlan(specs)
        hits = list(plan.faults_for((0, 0), "algo3", "parallel"))
        assert [sid for sid, _ in hits] == [0, 1]
        assert [s.kind for _, s in hits] == ["raise", "nan"]

    def test_random_plan_deterministic(self):
        grid = [(i, j) for i in range(0, 60, 12) for j in range(0, 30, 10)]
        plan_a = FaultPlan.random(seed=5, rate=0.5)
        plan_b = FaultPlan.random(seed=5, rate=0.5)
        fired_a = [(t, [s.kind for _, s in plan_a.faults_for(t, "algo3", "parallel")])
                   for t in grid]
        fired_b = [(t, [s.kind for _, s in plan_b.faults_for(t, "algo3", "parallel")])
                   for t in grid]
        assert fired_a == fired_b

    def test_random_plan_seed_sensitivity(self):
        grid = [(i, j) for i in range(0, 600, 12) for j in range(0, 300, 10)]

        def fired(seed):
            plan = FaultPlan.random(seed=seed, rate=0.3)
            return {t for t in grid
                    if list(plan.faults_for(t, "algo3", "parallel"))}

        assert fired(1) != fired(2)

    def test_random_rate_roughly_honoured(self):
        grid = [(i, j) for i in range(0, 1200, 12) for j in range(0, 300, 10)]
        plan = FaultPlan.random(seed=11, rate=0.25)
        hit = sum(bool(list(plan.faults_for(t, "algo3", "parallel")))
                  for t in grid)
        frac = hit / len(grid)
        assert 0.15 < frac < 0.35

    def test_rate_zero_never_fires(self):
        plan = FaultPlan.random(seed=3, rate=0.0)
        assert plan.is_empty
