"""Robustness / failure-injection tests across the stack.

Edge inputs a downstream user will eventually feed the library: empty
matrices, single entries, denormal and huge values, NaN/Inf propagation,
duplicate-heavy COO input, and degenerate solver problems.  The contract
under test: garbage is either *rejected with a library error* or
*propagated predictably* (NaN in -> NaN out), never silently wrong.
"""

import numpy as np
import pytest

from repro.core import SketchConfig, sketch
from repro.errors import ConfigError, ReproError
from repro.kernels import sketch_spmm
from repro.lsq import CscOperator, lsqr, solve_lsqr_diag
from repro.rng import PhiloxSketchRNG
from repro.sparse import COOMatrix, CSCMatrix, random_sparse


class TestDegenerateShapes:
    def test_empty_matrix_sketches_to_zero(self):
        A = CSCMatrix((50, 4), np.zeros(5, dtype=np.int64),
                      np.array([], dtype=np.int64), np.array([]))
        Ahat, stats = sketch_spmm(A, 10, PhiloxSketchRNG(0), b_d=5, b_n=2)
        np.testing.assert_array_equal(Ahat, np.zeros((10, 4)))
        assert stats.samples_generated == 0

    def test_single_entry_matrix(self):
        A = CSCMatrix((30, 3), np.array([0, 0, 1, 1]), np.array([17]),
                      np.array([2.5]))
        rng = PhiloxSketchRNG(1)
        Ahat, _ = sketch_spmm(A, 6, rng, b_d=6, b_n=1)
        ref = PhiloxSketchRNG(1).materialize(6, 30) @ A.to_dense()
        np.testing.assert_allclose(Ahat, ref)

    def test_one_by_one(self):
        A = CSCMatrix.from_dense(np.array([[3.0]]))
        Ahat, _ = sketch_spmm(A, 2, PhiloxSketchRNG(2), b_d=1, b_n=1)
        assert Ahat.shape == (2, 1)

    def test_single_column_blocking_extremes(self):
        A = random_sparse(40, 1, 0.3, seed=1)
        for b_n in (1, 5):
            Ahat, _ = sketch_spmm(A, 8, PhiloxSketchRNG(3), b_d=3, b_n=b_n)
            ref = PhiloxSketchRNG(3).materialize(8, 40, b_d=3) @ A.to_dense()
            np.testing.assert_allclose(Ahat, ref)

    def test_d_one(self):
        A = random_sparse(20, 6, 0.3, seed=2)
        Ahat, _ = sketch_spmm(A, 1, PhiloxSketchRNG(4), b_d=1, b_n=2)
        assert Ahat.shape == (1, 6)


class TestValuePropagation:
    def test_nan_propagates_not_hides(self):
        dense = np.zeros((10, 3))
        dense[2, 1] = np.nan
        dense[5, 0] = 1.0
        A = CSCMatrix.from_dense(dense)
        Ahat, _ = sketch_spmm(A, 4, PhiloxSketchRNG(5), b_d=4, b_n=3)
        assert np.isnan(Ahat[:, 1]).all()      # the NaN column poisons itself
        assert np.isfinite(Ahat[:, 0]).all()   # other columns unaffected

    def test_inf_propagates(self):
        dense = np.zeros((10, 2))
        dense[3, 0] = np.inf
        A = CSCMatrix.from_dense(dense)
        Ahat, _ = sketch_spmm(A, 4, PhiloxSketchRNG(6), b_d=2, b_n=1)
        assert np.all(np.isinf(Ahat[:, 0]) | np.isnan(Ahat[:, 0]))

    def test_denormal_and_huge_values(self):
        dense = np.zeros((12, 2))
        dense[1, 0] = 5e-324          # smallest subnormal
        dense[2, 1] = 1e308           # near overflow
        A = CSCMatrix.from_dense(dense)
        Ahat, _ = sketch_spmm(A, 4, PhiloxSketchRNG(7), b_d=4, b_n=2)
        ref = PhiloxSketchRNG(7).materialize(4, 12) @ A.to_dense()
        np.testing.assert_allclose(Ahat, ref)
        assert np.all(np.isfinite(Ahat))

    def test_negative_zero_roundtrip(self):
        import io

        from repro.sparse import read_matrix_market, write_matrix_market

        A = CSCMatrix((2, 2), np.array([0, 1, 1]), np.array([0]),
                      np.array([-0.0]))
        buf = io.StringIO()
        write_matrix_market(A, buf)
        buf.seek(0)
        B = read_matrix_market(buf)
        assert B.nnz == 1
        assert np.signbit(B.data[0])


class TestMessyConstruction:
    def test_duplicate_heavy_coo(self):
        rows = np.zeros(1000, dtype=np.int64)
        cols = np.zeros(1000, dtype=np.int64)
        vals = np.ones(1000)
        A = COOMatrix((3, 3), rows, cols, vals).to_csc()
        assert A.nnz == 1
        assert A.to_dense()[0, 0] == 1000.0

    def test_unsorted_coo_input(self):
        rng = np.random.default_rng(3)
        rows = rng.integers(0, 20, size=50)
        cols = rng.integers(0, 10, size=50)
        vals = rng.standard_normal(50)
        A = COOMatrix((20, 10), rows, cols, vals).to_csc()
        A.validate()
        dense = np.zeros((20, 10))
        np.add.at(dense, (rows, cols), vals)
        np.testing.assert_allclose(A.to_dense(), dense)


class TestSolverDegeneracies:
    def test_zero_matrix_least_squares(self):
        A = CSCMatrix((20, 4), np.zeros(5, dtype=np.int64),
                      np.array([], dtype=np.int64), np.array([]))
        b = np.ones(20)
        res = lsqr(CscOperator(A), b)
        np.testing.assert_array_equal(res.z, np.zeros(4))
        assert res.stop_reason == "ground-zero"

    def test_lsqrd_all_zero_columns_safeguard(self):
        # Every column norm trips the epsilon rule -> D = I; must not crash.
        dense = np.zeros((10, 3))
        dense[0, 0] = 1.0
        A = CSCMatrix.from_dense(dense)
        sol = solve_lsqr_diag(A, np.ones(10))
        assert np.all(np.isfinite(sol.x))

    def test_sketch_rejects_zero_columns(self):
        A = CSCMatrix((5, 0), np.zeros(1, dtype=np.int64),
                      np.array([], dtype=np.int64), np.array([]))
        with pytest.raises(ConfigError):
            sketch_spmm(A, 4, PhiloxSketchRNG(0))

    def test_library_errors_are_repro_errors(self):
        """Every intentional rejection derives from ReproError."""
        A = random_sparse(10, 5, 0.3, seed=4)
        failures = 0
        for bad_call in (
            lambda: sketch_spmm(A, 0, PhiloxSketchRNG(0)),
            lambda: sketch_spmm(A, 4, PhiloxSketchRNG(0), kernel="nope"),
            lambda: sketch(A, gamma=0.5),
            lambda: SketchConfig(gamma=1.0),
        ):
            try:
                bad_call()
            except ReproError:
                failures += 1
        assert failures == 4


class TestFormatConfusionGuards:
    def test_csr_rejected_by_sketch(self):
        """A CSR matrix duck-types CSC's buffers with transposed meaning;
        the kernels must refuse it rather than compute garbage."""
        A = random_sparse(20, 8, 0.3, seed=5).to_csr()
        with pytest.raises(ConfigError, match="CSCMatrix"):
            sketch_spmm(A, 10, PhiloxSketchRNG(0))

    def test_csr_rejected_by_operator(self):
        from repro.errors import ShapeError

        A = random_sparse(20, 8, 0.3, seed=6).to_csr()
        with pytest.raises(ShapeError, match="CSCMatrix"):
            CscOperator(A)
