"""Randomized cross-validation against scipy/LAPACK oracles.

A consolidated sweep: random problem configurations spanning the full
option space (generator family x distribution x kernel x blocking), each
checked against an independent implementation — scipy's sparse matmul on
the materialized sketch, scipy's LSQR/LSMR, LAPACK's QR.  These overlap
individual unit tests deliberately: the point is one place that exercises
*combinations*.
"""

import numpy as np
import pytest

from repro.kernels import sketch_spmm
from repro.rng import make_rng
from repro.sparse import random_sparse

CONFIGS = [
    # (m, n, density, d, b_d, b_n, kernel, rng_kind, dist, seed)
    (50, 12, 0.25, 18, 7, 4, "algo3", "philox", "uniform", 1),
    (80, 20, 0.10, 30, 30, 20, "algo3", "xoshiro", "rademacher", 2),
    (64, 16, 0.15, 24, 5, 3, "algo4", "philox", "uniform", 3),
    (100, 25, 0.08, 40, 13, 9, "algo4", "threefry", "uniform", 4),
    (40, 10, 0.30, 15, 4, 2, "algo3", "threefry", "gaussian", 5),
    (90, 18, 0.12, 27, 9, 6, "algo4", "xoshiro", "rademacher", 6),
    (70, 14, 0.20, 21, 21, 14, "algo3", "philox", "uniform_scaled", 7),
    (55, 11, 0.25, 16, 3, 5, "algo4", "philox", "gaussian", 8),
    (120, 30, 0.05, 45, 11, 7, "algo3", "xoshiro", "uniform", 9),
    (60, 15, 0.18, 22, 8, 15, "algo4", "xoshiro", "uniform_scaled", 10),
]


class TestSketchAgainstScipy:
    @pytest.mark.parametrize("cfg", CONFIGS,
                             ids=[f"{c[6]}-{c[7]}-{c[8]}" for c in CONFIGS])
    def test_config(self, cfg):
        m, n, density, d, b_d, b_n, kernel, kind, dist, seed = cfg
        A = random_sparse(m, n, density, seed=100 + seed)
        rng = make_rng(kind, seed, dist)
        Ahat, stats = sketch_spmm(A, d, rng, kernel=kernel, b_d=b_d, b_n=b_n)
        # Independent oracle: materialize S with a fresh generator and
        # multiply through scipy's sparse product.
        ref_rng = make_rng(kind, seed, dist)
        S = ref_rng.materialize(d, m, b_d=b_d)
        expected = ref_rng.post_scale * np.asarray(S @ A.to_scipy().todense())
        np.testing.assert_allclose(Ahat, expected, atol=1e-9)
        assert stats.flops == 2 * d * A.nnz


class TestSolversAgainstScipy:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_lsqr_matches_scipy(self, seed):
        import scipy.sparse.linalg as spla

        from repro.lsq import CscOperator, lsqr

        A = random_sparse(90 + 10 * seed, 12 + seed, 0.2, seed=200 + seed)
        b = np.random.default_rng(seed).standard_normal(A.shape[0])
        ours = lsqr(CscOperator(A), b, atol=1e-12, btol=1e-12)
        theirs = spla.lsqr(A.to_scipy(), b, atol=1e-12, btol=1e-12)
        np.testing.assert_allclose(ours.z, theirs[0], atol=1e-6)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_direct_qr_matches_lapack(self, seed):
        from scipy.linalg import qr as lapack_qr

        from repro.lsq import givens_qr_factorize

        A = random_sparse(60 + 5 * seed, 9 + seed, 0.3, seed=300 + seed)
        R_ours = givens_qr_factorize(A, np.zeros(A.shape[0])).to_dense()
        R_lapack = lapack_qr(A.to_dense(), mode="r")[0][:A.shape[1], :]
        np.testing.assert_allclose(np.abs(R_ours), np.abs(R_lapack),
                                   atol=1e-9)

    @pytest.mark.parametrize("seed", [5, 6])
    def test_sap_matches_dense_lstsq(self, seed):
        from repro.core import SketchConfig
        from repro.lsq import solve_sap

        A = random_sparse(260, 14, 0.2, seed=400 + seed)
        b = np.random.default_rng(seed).standard_normal(260)
        sol = solve_sap(A, b, gamma=2.0,
                        config=SketchConfig(gamma=2.0, seed=seed))
        expected = np.linalg.lstsq(A.to_dense(), b, rcond=None)[0]
        np.testing.assert_allclose(sol.x, expected, atol=1e-6)


class TestSpGemmAgainstScipy:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_matmul_chain(self, seed):
        from repro.sparse.arithmetic import matmul

        rng = np.random.default_rng(seed)
        dims = rng.integers(4, 20, size=4)
        A = random_sparse(int(dims[0]), int(dims[1]), 0.3, seed=500 + seed)
        B = random_sparse(int(dims[1]), int(dims[2]), 0.3, seed=600 + seed)
        C = random_sparse(int(dims[2]), int(dims[3]), 0.3, seed=700 + seed)
        ours = matmul(matmul(A, B), C).to_dense()
        theirs = (A.to_scipy() @ B.to_scipy() @ C.to_scipy()).toarray()
        np.testing.assert_allclose(ours, theirs, atol=1e-10)
