"""Tests for the command-line interface (repro.cli)."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.sparse import random_sparse, write_matrix_market


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sketch_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sketch"])

    def test_mutually_exclusive_sources(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sketch", "--matrix", "a.mtx", "--random", "1", "2", "0.1"]
            )


class TestSketchCommand:
    def test_random_input(self, capsys):
        rc = main(["sketch", "--random", "200", "20", "0.05", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kernel" in out
        assert "samples_generated" in out

    def test_json_output(self, capsys):
        rc = main(["--json", "sketch", "--random", "150", "15", "0.1",
                   "--kernel", "algo3"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernel"] == "algo3"
        assert payload["sketch_shape"] == [45, 15]
        assert payload["samples_generated"] > 0

    def test_matrix_market_input(self, tmp_path, capsys):
        A = random_sparse(60, 8, 0.2, seed=5)
        path = tmp_path / "a.mtx"
        write_matrix_market(A, path)
        rc = main(["--json", "sketch", "--matrix", str(path),
                   "--gamma", "2.0"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["input_shape"] == [60, 8]
        assert payload["sketch_shape"] == [16, 8]

    def test_npy_output(self, tmp_path, capsys):
        out_file = tmp_path / "sketch.npy"
        rc = main(["sketch", "--random", "100", "10", "0.1",
                   "--output", str(out_file), "--kernel", "algo4"])
        assert rc == 0
        arr = np.load(out_file)
        assert arr.shape == (30, 10)


class TestLsqCommand:
    @pytest.mark.parametrize("solver", ["sap-qr", "sap-svd", "lsqr-d",
                                        "direct"])
    def test_solvers(self, capsys, solver):
        rc = main(["--json", "lsq", "--random", "300", "12", "0.15",
                   "--solver", solver, "--seed", "7"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["converged"]
        assert payload["error"] < 1e-8

    def test_solvers_agree(self, capsys):
        xs = {}
        for solver in ("sap-qr", "direct"):
            main(["--json", "lsq", "--random", "300", "12", "0.15",
                  "--solver", solver, "--seed", "7"])
            xs[solver] = json.loads(capsys.readouterr().out)["error"]
        assert all(v < 1e-8 for v in xs.values())


class TestProbeCommand:
    def test_probe(self, capsys):
        rc = main(["--json", "probe", "--rng", "junk"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["samples_per_second"] > 0
        assert payload["h"] > 0


class TestSuiteCommand:
    def test_lists_all_suites(self, capsys):
        rc = main(["--json", "suite"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["suites"]) == {"spmm", "lsq", "abnormal"}
        assert len(payload["suites"]["spmm"]) == 5
        assert len(payload["suites"]["lsq"]) == 7

    def test_table_output(self, capsys):
        rc = main(["suite"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "shar_te2-b2" in out
        assert "rail2586" in out


class TestErrorHandling:
    def test_missing_file_fails_cleanly(self, capsys):
        rc = main(["sketch", "--matrix", "/nonexistent/file.mtx"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_wide_matrix_lsq_fails_cleanly(self, capsys):
        rc = main(["lsq", "--random", "10", "50", "0.3", "--solver",
                   "sap-qr"])
        assert rc == 1


class TestSvdCommand:
    def test_random_input(self, capsys):
        rc = main(["--json", "svd", "--random", "200", "30", "0.2",
                   "--rank", "5", "--seed", "3"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rank"] == 5
        assert len(payload["singular_values"]) == 5
        svals = payload["singular_values"]
        assert svals == sorted(svals, reverse=True)

    def test_rank_too_large_fails_cleanly(self, capsys):
        rc = main(["svd", "--random", "20", "5", "0.4", "--rank", "10"])
        assert rc == 1


class TestProbeCalibrate:
    def test_calibrate_flag(self, capsys):
        rc = main(["--json", "probe", "--rng", "junk", "--calibrate"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["peak_gflops"] > 0
        assert payload["recommended_kernel"] in ("algo3", "algo4")


class TestCacheFlags:
    def _sketch(self, capsys, *extra):
        rc = main(["--json", "sketch", "--random", "200", "20", "0.05",
                   "--kernel", "algo4", "--seed", "3", *extra])
        assert rc == 0
        return json.loads(capsys.readouterr().out)

    def test_cold_then_warm(self, tmp_path, capsys):
        cold = self._sketch(capsys, "--cache-dir", str(tmp_path))
        assert cold["cache"]["misses"] >= 1
        assert cold["cache"]["blocked_csr_source"] == "converted"
        warm = self._sketch(capsys, "--cache-dir", str(tmp_path))
        assert warm["cache"]["misses"] == 0
        assert warm["cache"]["hits"] >= 1
        assert warm["cache"]["blocked_csr_source"] == "cache"
        np.testing.assert_array_equal(np.array(cold["sketch_shape"]),
                                      np.array(warm["sketch_shape"]))

    def test_no_cache_wins_over_env(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        payload = self._sketch(capsys, "--no-cache")
        assert "cache" not in payload
        assert not any(tmp_path.iterdir())

    def test_env_var_enables(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        payload = self._sketch(capsys)
        assert payload["cache"]["dir"] == str(tmp_path)


class TestCacheCommand:
    def test_stats_clear_verify(self, tmp_path, capsys):
        rc = main(["--json", "sketch", "--random", "200", "20", "0.05",
                   "--kernel", "algo4", "--cache-dir", str(tmp_path)])
        assert rc == 0
        capsys.readouterr()

        rc = main(["--json", "cache", "stats", "--cache-dir", str(tmp_path)])
        assert rc == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] >= 1
        assert "blocked_csr" in stats["artifacts"]

        rc = main(["--json", "cache", "verify", "--cache-dir", str(tmp_path)])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["corrupt"] == []
        assert report["ok"] == report["checked"]

        rc = main(["--json", "cache", "clear", "--cache-dir", str(tmp_path)])
        assert rc == 0
        cleared = json.loads(capsys.readouterr().out)
        assert cleared["removed_entries"] >= 1

    def test_requires_a_directory(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        rc = main(["cache", "stats"])
        assert rc == 1
        assert "cache directory" in capsys.readouterr().err

    def test_verify_corrupt_entry_exits_nonzero(self, tmp_path, capsys):
        """``repro cache verify`` is a CI guard: a damaged entry must
        fail the pipeline (exit 2), not just print a report."""
        rc = main(["--json", "sketch", "--random", "200", "20", "0.05",
                   "--kernel", "algo4", "--cache-dir", str(tmp_path)])
        assert rc == 0
        capsys.readouterr()

        victim = next(tmp_path.glob("*/*/data.npy"))
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0xFF
        victim.write_bytes(bytes(raw))

        rc = main(["--json", "cache", "verify", "--cache-dir",
                   str(tmp_path)])
        assert rc == 2
        report = json.loads(capsys.readouterr().out)
        assert len(report["corrupt"]) == 1
        # the damaged entry was quarantined; a re-verify is clean again
        rc = main(["--json", "cache", "verify", "--cache-dir",
                   str(tmp_path)])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["corrupt"] == []
