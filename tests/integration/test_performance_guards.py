"""Coarse performance-regression guards.

Not benchmarks: these assert order-of-magnitude properties with generous
margins (10x headroom), so they stay green across hosts while catching
the failure modes that silently ruin this library — accidental
de-vectorization of a kernel, a quadratic slip in a format conversion, or
batching being bypassed.
"""

import time

import numpy as np
import pytest

from repro.kernels import sketch_spmm
from repro.rng import PhiloxSketchRNG, XoshiroSketchRNG
from repro.sparse import csc_to_blocked_csr, random_sparse


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class TestKernelVectorization:
    @pytest.mark.parametrize("kernel", ["algo3", "algo4"])
    def test_vectorized_beats_reference(self, kernel):
        """The production kernels must beat the pseudocode-verbatim loops
        by a wide margin; equality means batching broke."""
        A = random_sparse(600, 80, 0.05, seed=1601)
        d = 120
        fast = _best_of(lambda: sketch_spmm(
            A, d, PhiloxSketchRNG(0), kernel=kernel, b_d=40, b_n=16))
        slow = _best_of(lambda: sketch_spmm(
            A, d, PhiloxSketchRNG(0), kernel=kernel, b_d=40, b_n=16,
            reference=True), repeats=1)
        assert fast * 5 < slow, (
            f"{kernel}: vectorized {fast:.4f}s vs reference {slow:.4f}s"
        )

    def test_batched_rng_beats_narrow_lanes(self):
        """Wide-lane xoshiro must clearly beat single-lane generation."""
        wide = XoshiroSketchRNG(0, n_lanes=64)
        narrow = XoshiroSketchRNG(0, n_lanes=1)
        js = np.arange(8)
        t_wide = _best_of(lambda: wide.column_block_batch(0, 4000, js))
        t_narrow = _best_of(lambda: narrow.column_block_batch(0, 4000, js),
                            repeats=1)
        assert t_wide * 2 < t_narrow

    def test_conversion_is_near_linear(self):
        """Blocked-CSR conversion must scale ~linearly in nnz (catches an
        accidental quadratic pass)."""
        small = random_sparse(2000, 200, 0.02, seed=1602)
        big = random_sparse(8000, 200, 0.02, seed=1603)  # 4x the entries
        t_small = _best_of(lambda: csc_to_blocked_csr(small, 25))
        t_big = _best_of(lambda: csc_to_blocked_csr(big, 25))
        assert t_big < 40 * max(t_small, 1e-5), (
            f"conversion scaled {t_big / max(t_small, 1e-9):.1f}x for 4x nnz"
        )


class TestOperatorVectorization:
    def test_csc_operator_beats_python_loop(self):
        """CscOperator's matvec must be O(nnz) vectorized, not per-column
        Python loops."""
        from repro.lsq import CscOperator
        from repro.sparse.ops import spmv_csc

        A = random_sparse(5000, 800, 0.01, seed=1604)
        x = np.random.default_rng(0).standard_normal(800)
        op = CscOperator(A)
        op.matvec(x)  # warm
        t_fast = _best_of(lambda: op.matvec(x))
        t_loop = _best_of(lambda: spmv_csc(A, x), repeats=1)
        assert t_fast * 3 < t_loop

    def test_sample_counters_free(self):
        """Instrumentation must not dominate generation."""
        rng = PhiloxSketchRNG(0)
        js = np.arange(64)
        t = _best_of(lambda: rng.column_block_batch(0, 2000, js))
        # 128k samples; even a slow host does this well under a second.
        assert t < 1.0
