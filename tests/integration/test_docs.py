"""Documentation consistency tests."""

import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]


class TestApiReference:
    def test_api_md_in_sync(self):
        """docs/api.md must match what the generator produces now."""
        sys.path.insert(0, str(ROOT / "docs"))
        try:
            import generate_api
        finally:
            sys.path.pop(0)
        committed = (ROOT / "docs" / "api.md").read_text()
        assert committed == generate_api.render(), (
            "docs/api.md is stale — run `python docs/generate_api.py`"
        )

    def test_every_public_symbol_documented(self):
        """Every __all__ symbol must carry a docstring."""
        import importlib
        import inspect

        sys.path.insert(0, str(ROOT / "docs"))
        try:
            import generate_api
        finally:
            sys.path.pop(0)
        missing = []
        for mod_name in generate_api.MODULES:
            mod = importlib.import_module(mod_name)
            for name in getattr(mod, "__all__", []):
                if name == "__version__":
                    continue
                obj = getattr(mod, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        missing.append(f"{mod_name}.{name}")
        assert not missing, f"undocumented public symbols: {missing}"


class TestRepoDocs:
    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md",
                                      "EXPERIMENTS.md", "docs/theory.md"])
    def test_exists_and_nonempty(self, name):
        p = ROOT / name
        assert p.exists()
        assert len(p.read_text()) > 500

    def test_design_covers_every_bench(self):
        """Every bench module must appear in DESIGN.md's experiment index."""
        design = (ROOT / "DESIGN.md").read_text()
        missing = []
        for bench in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            if bench.name not in design:
                missing.append(bench.name)
        assert not missing, f"benches missing from DESIGN.md: {missing}"

    def test_examples_referenced_in_readme(self):
        readme = (ROOT / "README.md").read_text()
        missing = []
        for ex in sorted((ROOT / "examples").glob("*.py")):
            if ex.name not in readme:
                missing.append(ex.name)
        assert not missing, f"examples missing from README.md: {missing}"
