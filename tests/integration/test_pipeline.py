"""End-to-end integration: sketch -> precondition -> solve on workloads."""

import numpy as np
import pytest

from repro.core import SketchConfig
from repro.lsq import (
    CscOperator,
    error_metric,
    solve_direct_qr,
    solve_lsqr_diag,
    solve_sap,
)
from repro.workloads import LSQ_SUITE, SPMM_SUITE, build_matrix


def _rhs(A, seed):
    """The paper's right-hand side: a vector in range(A) plus N(0, I)."""
    rng = np.random.default_rng(seed)
    return (CscOperator(A).matvec(rng.standard_normal(A.shape[1]))
            + rng.standard_normal(A.shape[0]))


class TestSpmmPipeline:
    @pytest.mark.parametrize("name", ["mk-12", "cis-n4c6-b4"])
    def test_sketch_on_suite_matrix(self, name):
        from repro.core import sketch

        A = build_matrix(SPMM_SUITE[name], scale="ci")
        res = sketch(A, gamma=3.0, config=SketchConfig(seed=1))
        assert res.sketch.shape == (3 * A.shape[1], A.shape[1])
        assert np.all(np.isfinite(res.sketch))
        assert res.stats.samples_generated > 0

    def test_kernels_agree_on_suite_matrix(self):
        from repro.kernels import sketch_spmm
        from repro.rng import PhiloxSketchRNG

        A = build_matrix(SPMM_SUITE["mk-12"], scale="ci")
        d = 3 * A.shape[1]
        a3, _ = sketch_spmm(A, d, PhiloxSketchRNG(7), kernel="algo3",
                            b_d=100, b_n=16)
        a4, _ = sketch_spmm(A, d, PhiloxSketchRNG(7), kernel="algo4",
                            b_d=100, b_n=16)
        np.testing.assert_allclose(a3, a4)


class TestLeastSquaresPipeline:
    def test_rail_case_full_pipeline(self):
        A = build_matrix(LSQ_SUITE["rail582"], scale="ci")
        b = _rhs(A, 1)
        lsqrd = solve_lsqr_diag(A, b, max_iter=20000)
        sap = solve_sap(A, b, gamma=2.0, method="qr",
                        config=SketchConfig(gamma=2.0, seed=2))
        # Both converge to the same minimizer.
        np.testing.assert_allclose(sap.x, lsqrd.x, rtol=1e-4, atol=1e-6)
        # SAP uses far fewer iterations (the Table IX shape).
        assert sap.iterations < lsqrd.iterations

    def test_illcond_case_needs_svd(self):
        A = build_matrix(LSQ_SUITE["connectus"], scale="ci")
        b = _rhs(A, 3)
        sol = solve_sap(A, b, gamma=2.0, method="svd",
                        config=SketchConfig(gamma=2.0, seed=4))
        assert np.all(np.isfinite(sol.x))
        assert sol.error < 1e-10

    def test_direct_vs_sap_memory(self):
        """Table XI shape: the direct factor dwarfs the sketch workspace."""
        A = build_matrix(LSQ_SUITE["rail582"], scale="ci")
        b = _rhs(A, 5)
        sap = solve_sap(A, b, gamma=2.0, method="qr",
                        config=SketchConfig(gamma=2.0, seed=6))
        direct = solve_direct_qr(A, b)
        assert direct.memory_bytes > sap.memory_bytes

    def test_error_metric_consistency(self):
        A = build_matrix(LSQ_SUITE["rail582"], scale="ci")
        b = _rhs(A, 7)
        sol = solve_sap(A, b, gamma=2.0, config=SketchConfig(gamma=2.0, seed=8))
        assert sol.error == pytest.approx(error_metric(A, sol.x, b))


class TestReproducibilityAcrossPaths:
    def test_sequential_vs_parallel_pipeline(self):
        from repro.core import SketchOperator

        A = build_matrix(SPMM_SUITE["mk-12"], scale="ci")
        d = 2 * A.shape[1]
        seq = SketchOperator(d, A.shape[0], config=SketchConfig(
            seed=9, kernel="algo3", threads=1, b_d=64, b_n=16))
        par = SketchOperator(d, A.shape[0], config=SketchConfig(
            seed=9, kernel="algo3", threads=4, b_d=64, b_n=16))
        np.testing.assert_allclose(seq.apply(A).sketch, par.apply(A).sketch)

    def test_sap_deterministic_given_seed(self):
        A = build_matrix(LSQ_SUITE["rail582"], scale="ci")
        b = _rhs(A, 10)
        s1 = solve_sap(A, b, gamma=2.0, config=SketchConfig(gamma=2.0, seed=11))
        s2 = solve_sap(A, b, gamma=2.0, config=SketchConfig(gamma=2.0, seed=11))
        np.testing.assert_array_equal(s1.x, s2.x)
        assert s1.iterations == s2.iterations
