"""Tests for repro.workloads (surrogate suites)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads import (
    ABNORMAL_SUITE,
    LSQ_SUITE,
    SPMM_SUITE,
    build_matrix,
    current_scale,
    scale_dims,
)


class TestSuiteContents:
    def test_spmm_suite_names(self):
        assert set(SPMM_SUITE) == {
            "mk-12", "ch7-9-b3", "shar_te2-b2", "mesh_deform", "cis-n4c6-b4"
        }

    def test_lsq_suite_names(self):
        assert set(LSQ_SUITE) == {
            "rail582", "rail2586", "rail4284", "spal_004",
            "specular", "connectus", "landmark"
        }

    def test_abnormal_suite_names(self):
        assert set(ABNORMAL_SUITE) == {"Abnormal_A", "Abnormal_B", "Abnormal_C"}

    def test_published_stats_match_table1(self):
        c = SPMM_SUITE["shar_te2-b2"]
        assert (c.m, c.n, c.nnz) == (200200, 17160, 600600)
        assert c.density == pytest.approx(1.75e-4, rel=0.01)
        assert c.paper["d"] == 51480  # = 3n

    def test_published_stats_match_table8(self):
        c = LSQ_SUITE["rail2586"]
        assert c.paper["cond"] == 496.0
        assert c.paper["suitesparse_mem"] == pytest.approx(15950.11)

    def test_d_is_3n_for_spmm_suite(self):
        for case in SPMM_SUITE.values():
            assert case.paper["d"] == 3 * case.n

    def test_svd_cases_flagged(self):
        for name in ("specular", "connectus", "landmark"):
            assert LSQ_SUITE[name].paper["sap_method"] == "svd"
        for name in ("rail582", "rail2586", "rail4284", "spal_004"):
            assert LSQ_SUITE[name].paper["sap_method"] == "qr"


class TestScaling:
    def test_scale_dims_paper_identity(self):
        assert scale_dims(1000, 500, "paper") == (1000, 500)

    def test_scale_dims_ci_shrinks(self):
        m, n = scale_dims(100_000, 10_000, "ci")
        assert m == 2000 and n == 200

    def test_floors_respected(self):
        m, n = scale_dims(100, 30, "ci")
        assert m >= 64 and n >= 24

    def test_unknown_scale(self):
        with pytest.raises(ConfigError):
            scale_dims(10, 10, "huge")

    def test_current_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert current_scale() == "small"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ConfigError):
            current_scale()

    def test_current_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale() == "ci"


class TestBuildMatrix:
    @pytest.mark.parametrize("name", sorted(SPMM_SUITE))
    def test_spmm_surrogates_build_at_ci(self, name):
        A = build_matrix(SPMM_SUITE[name], scale="ci")
        A.validate()
        m, n = scale_dims(SPMM_SUITE[name].m, SPMM_SUITE[name].n, "ci")
        assert A.shape == (m, n)
        assert A.nnz > 0

    @pytest.mark.parametrize("name", sorted(LSQ_SUITE))
    def test_lsq_surrogates_build_at_ci(self, name):
        A = build_matrix(LSQ_SUITE[name], scale="ci")
        A.validate()
        assert A.shape[0] > A.shape[1]  # all tall after transposition

    @pytest.mark.parametrize("name", sorted(ABNORMAL_SUITE))
    def test_abnormal_surrogates_build_at_ci(self, name):
        A = build_matrix(ABNORMAL_SUITE[name], scale="ci")
        A.validate()
        # The paper's target is ~1e-3; at CI scale the dense-line period is
        # clipped to the shrunken dimensions, widening the band.
        assert 1e-4 < A.density <= 3e-2

    def test_boundary_surrogate_keeps_col_nnz(self):
        case = SPMM_SUITE["ch7-9-b3"]
        A = build_matrix(case, scale="ci")
        np.testing.assert_array_equal(A.col_nnz(), np.full(A.shape[1], 24))

    def test_deterministic(self):
        a = build_matrix(SPMM_SUITE["mk-12"], scale="ci")
        b = build_matrix(SPMM_SUITE["mk-12"], scale="ci")
        np.testing.assert_array_equal(a.to_dense(), b.to_dense())

    def test_illcond_surrogates_are_illcond(self):
        from repro.sparse import condition_number

        A = build_matrix(LSQ_SUITE["specular"], scale="ci")
        assert condition_number(A) > 1e8


class TestRealMatrixOverride:
    def test_loads_real_file_when_present(self, tmp_path, monkeypatch):
        """REPRO_MATRIX_DIR with a <name>.mtx overrides the surrogate."""
        from repro.sparse import random_sparse, write_matrix_market

        real = random_sparse(77, 9, 0.3, seed=99)
        write_matrix_market(real, tmp_path / "mk-12.mtx")
        monkeypatch.setenv("REPRO_MATRIX_DIR", str(tmp_path))
        got = build_matrix(SPMM_SUITE["mk-12"], scale="ci")
        np.testing.assert_array_equal(got.to_dense(), real.to_dense())

    def test_wide_file_transposed(self, tmp_path, monkeypatch):
        """Wide inputs are transposed to tall, as the paper does."""
        from repro.sparse import random_sparse, write_matrix_market

        # Dense enough that no rows/columns are empty (cleanup would
        # legitimately drop those).
        wide = random_sparse(6, 40, 0.9, seed=98)
        write_matrix_market(wide, tmp_path / "rail582.mtx")
        monkeypatch.setenv("REPRO_MATRIX_DIR", str(tmp_path))
        got = build_matrix(LSQ_SUITE["rail582"])
        assert got.shape == (40, 6)
        np.testing.assert_array_equal(got.to_dense(), wide.to_dense().T)

    def test_empty_rows_and_columns_removed(self, tmp_path, monkeypatch):
        """The paper's data hygiene: empty rows/columns are dropped."""
        from repro.sparse import CSCMatrix, write_matrix_market

        dense = np.zeros((6, 3))
        dense[0, 0] = 1.0
        dense[5, 2] = 2.0  # column 1 empty; rows 1-4 empty
        write_matrix_market(CSCMatrix.from_dense(dense),
                            tmp_path / "specular.mtx")
        monkeypatch.setenv("REPRO_MATRIX_DIR", str(tmp_path))
        got = build_matrix(LSQ_SUITE["specular"])
        assert got.shape == (2, 2)
        assert got.nnz == 2

    def test_missing_file_falls_back_to_surrogate(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MATRIX_DIR", str(tmp_path))
        got = build_matrix(SPMM_SUITE["mk-12"], scale="ci")
        surrogate = SPMM_SUITE["mk-12"].builder(
            *scale_dims(13860, 1485, "ci"), SPMM_SUITE["mk-12"].seed)
        np.testing.assert_array_equal(got.to_dense(), surrogate.to_dense())

    def test_unset_env_uses_surrogate(self, monkeypatch):
        monkeypatch.delenv("REPRO_MATRIX_DIR", raising=False)
        got = build_matrix(SPMM_SUITE["cis-n4c6-b4"], scale="ci")
        assert got.nnz > 0
