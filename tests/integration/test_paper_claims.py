"""Shape-level assertions for the paper's headline claims.

These tests encode the acceptance criteria from DESIGN.md section 5: not
the absolute numbers (our substrate is a vectorized-NumPy simulator, not
the authors' Julia/SIMD testbed) but the *relations* every table and
figure reports — who wins, in which regime, and why.
"""

import numpy as np
import pytest

from repro.kernels import sketch_spmm
from repro.model import (
    FRONTERA,
    PERLMUTTER,
    advantage_over_gemm,
    algo3_traffic,
    algo4_traffic,
    ci_small_rho,
    gemm_ci,
    simulate_algo3,
    simulate_pregen,
)
from repro.parallel import parallel_efficiency, predict_time, simulate_strong_scaling
from repro.rng import PhiloxSketchRNG, XoshiroSketchRNG
from repro.sparse import random_sparse
from repro.workloads import ABNORMAL_SUITE, build_matrix


class TestSectionIIITheory:
    def test_sqrt_m_advantage(self):
        """Abstract: 'beat the data movement lower bound of GEMM by a
        factor of sqrt(M)' for cheap on-the-fly generation."""
        M = FRONTERA.cache_words
        assert advantage_over_gemm(M, 1e-12) > np.sqrt(M)

    def test_h_below_one_required(self):
        """Section III-A considers h < 1; at h >= 1 regeneration loses its
        edge over precomputing (CI falls below the GEMM curve well before
        the sqrt(M) gain is realized)."""
        M = 10**6
        assert ci_small_rho(M, 1e-4) > gemm_ci(M)
        assert ci_small_rho(M, 4.0) < gemm_ci(M)

    def test_cache_simulator_confirms_otf_wins(self):
        """The mechanism behind everything: regenerating S keeps it out of
        the cache, so measured word traffic drops vs a stored sketch."""
        A = random_sparse(60, 20, 0.1, seed=1)
        d = 40
        otf = simulate_algo3(A, d, b_d=8, b_n=4, cache_words=128)
        pre = simulate_pregen(A, d, b_d=8, b_n=4, cache_words=128)
        assert otf.words_moved < 0.75 * pre.words_moved


class TestSectionIIIBAccounting:
    def test_algo3_generates_d_nnz(self):
        """'it will always generate d x nnz(A) random numbers.'"""
        A = random_sparse(100, 30, 0.08, seed=2)
        rng = PhiloxSketchRNG(1)
        _, stats = sketch_spmm(A, 60, rng, kernel="algo3", b_d=20, b_n=10)
        assert stats.samples_generated == 60 * A.nnz

    def test_algo4_saves_generation(self):
        """'we can cut down the total number of randomly generated entries
        to O(ceil(ndm / b_n))' — and below via empty rows."""
        A = random_sparse(100, 30, 0.08, seed=2)
        _, s3 = sketch_spmm(A, 60, PhiloxSketchRNG(1), kernel="algo3",
                            b_d=20, b_n=10)
        _, s4 = sketch_spmm(A, 60, PhiloxSketchRNG(1), kernel="algo4",
                            b_d=20, b_n=10)
        assert s4.samples_generated < s3.samples_generated
        assert s4.samples_generated <= 60 * 100 * 3  # d * m * ceil(n/b_n)


class TestTableIIShape:
    def test_otf_traffic_beats_pregen_baseline(self):
        """Table II's mechanism: Algorithm 3 wins over library SpMM with a
        stored S because it moves less memory (model-level check; wall
        clock on this host is a NumPy-dispatch contest, not a memory
        contest)."""
        from repro.model import pregen_traffic

        A = build_matrix(list(ABNORMAL_SUITE.values())[0], scale="ci")
        d = 3 * A.shape[1]
        h = FRONTERA.h("uniform")
        t3 = algo3_traffic(A, d, b_d=3000, b_n=500)
        tp = pregen_traffic(A, d, b_d=3000, b_n=500,
                            cache_words=FRONTERA.cache_words)
        assert (t3.effective_words(h, FRONTERA.random_access_penalty)
                < tp.effective_words(0.0, 1.0) + t3.rng_entries * h)
        # Raw movement comparison (the real claim):
        assert t3.effective_words(0.0) < tp.effective_words(0.0)

    def test_pm1_cheaper_than_uniform(self):
        """Table II: the +-1 column is consistently faster than (-1,1)."""
        from repro.rng import RADEMACHER, UNIFORM

        assert RADEMACHER.h_factor < UNIFORM.h_factor
        # And the machine model converts that into a faster predicted run.
        A = random_sparse(400, 60, 0.05, seed=3)
        t = algo3_traffic(A, 180, b_d=3000, b_n=20)
        fast = predict_time(t, FRONTERA, 1, FRONTERA.h("rademacher")).seconds
        slow = predict_time(t, FRONTERA, 1, FRONTERA.h("uniform")).seconds
        assert fast <= slow


class TestTablesIIIandVCrossover:
    """Frontera favours Algorithm 3; Perlmutter favours Algorithm 4."""

    @pytest.fixture
    def problem(self):
        A = random_sparse(1000, 120, 0.02, seed=4)
        return A, 360

    def test_frontera_algo3_wins(self, problem):
        A, d = problem
        t3 = algo3_traffic(A, d, b_d=3000, b_n=40)
        t4 = algo4_traffic(A, d, b_d=3000, b_n=40)
        h = FRONTERA.h("uniform")
        s3 = predict_time(t3, FRONTERA, 1, h).seconds
        s4 = predict_time(t4, FRONTERA, 1, h).seconds
        # On the random-access-punishing machine with cheap RNG, the
        # strided kernel is at least competitive.
        assert s3 <= s4 * 1.05

    def test_perlmutter_algo4_wins(self, problem):
        A, d = problem
        t3 = algo3_traffic(A, d, b_d=3000, b_n=40)
        t4 = algo4_traffic(A, d, b_d=3000, b_n=40)
        h = PERLMUTTER.h("uniform")
        s3 = predict_time(t3, PERLMUTTER, 1, h).seconds
        s4 = predict_time(t4, PERLMUTTER, 1, h).seconds
        assert s4 <= s3

    def test_sample_time_smaller_for_algo4(self, problem):
        """Tables III/V: Algorithm 4's 'sample time' column is roughly half
        of Algorithm 3's."""
        A, d = problem
        _, s3 = sketch_spmm(A, d, XoshiroSketchRNG(1), kernel="algo3",
                            b_d=120, b_n=40)
        _, s4 = sketch_spmm(A, d, XoshiroSketchRNG(1), kernel="algo4",
                            b_d=120, b_n=40)
        assert s4.samples_generated < s3.samples_generated


class TestTableVIShape:
    """Abnormal patterns: Algorithm 3 oblivious, Algorithm 4 pattern-bound."""

    def _samples(self, name, kernel):
        A = build_matrix(ABNORMAL_SUITE[name], scale="ci")
        d = A.shape[1] // 2 + 2
        _, stats = sketch_spmm(A, d, PhiloxSketchRNG(1), kernel=kernel,
                               b_d=d, b_n=max(1, A.shape[1] // 10))
        return stats, A

    def test_algo3_rng_volume_pattern_oblivious(self):
        """Algorithm 3 generates d*nnz for every pattern — the Table VI
        'consistent performance' observation."""
        vols = {}
        for name in ABNORMAL_SUITE:
            stats, A = self._samples(name, "algo3")
            vols[name] = stats.samples_generated / (stats.d * A.nnz)
        assert all(v == pytest.approx(1.0) for v in vols.values())

    def test_algo4_best_on_abnormal_a(self):
        """Abnormal_A (dense rows) maximizes Algorithm 4's reuse: its RNG
        volume collapses to ~(#dense rows) * d per block column."""
        sa, Aa = self._samples("Abnormal_A", "algo4")
        s3, _ = self._samples("Abnormal_A", "algo3")
        assert sa.samples_generated < 0.2 * s3.samples_generated

    def test_algo4_worst_on_abnormal_c(self):
        """Abnormal_C (dense columns) gives Algorithm 4 no reuse advantage
        relative to what A demands, while scattering updates: its RNG
        saving over Algorithm 3 is much smaller than on Abnormal_A."""
        sa, Aa = self._samples("Abnormal_A", "algo4")
        sc, Ac = self._samples("Abnormal_C", "algo4")
        ratio_a = sa.samples_generated / (sa.d * Aa.nnz)
        ratio_c = sc.samples_generated / (sc.d * Ac.nnz)
        assert ratio_c > ratio_a


class TestTableVIIShape:
    def test_scaling_and_efficiency(self):
        """Table VII: near-linear scaling to ~8 threads, saturation by 32;
        the tall 'setup2' blocking scales further; parallel efficiency at
        32 threads lands in the tens of percent (paper: up to 45%)."""
        A = random_sparse(4000, 340, 0.001, seed=5)
        d = 3 * 340
        pts = simulate_strong_scaling(A, d, FRONTERA, kernel="algo3",
                                      b_d=d, b_n=24,
                                      threads_list=[1, 2, 4, 8, 16, 32])
        eff = parallel_efficiency(pts)
        assert eff[2] > 0.9
        assert 0.1 < eff[32] < 0.9
        squat = simulate_strong_scaling(A, d, FRONTERA, kernel="algo3",
                                        b_d=120, b_n=340, threads_list=[32])
        tall = simulate_strong_scaling(A, d, FRONTERA, kernel="algo3",
                                       b_d=d, b_n=24, threads_list=[32])
        assert tall[0].seconds <= squat[0].seconds


class TestSectionVANote:
    def test_junk_rng_upper_bound(self):
        """'replacing each randomly generated entry of S with junk ...
        provided for a factor 2x speed up' — the junk generator must be
        meaningfully faster at pure generation."""
        from repro.rng import JunkRNG, rng_sample_rate

        junk = rng_sample_rate(JunkRNG(), vector_length=4000,
                               batch_columns=32, repeats=3)
        real = rng_sample_rate(XoshiroSketchRNG(0), vector_length=4000,
                               batch_columns=32, repeats=3)
        assert junk > real
