"""Shard events → observer metrics and tracer spans."""

from repro.core import SketchConfig
from repro.obs import RunObserver
from repro.plan import (
    SHARD_MERGED,
    SHARD_RESUMED,
    SHARD_START,
    TASK_REQUEUED,
    EventBus,
    PartitionSpec,
    Planner,
    Runtime,
)
from repro.sparse import random_sparse


def _run_sharded(observer_kwargs=None):
    A = random_sparse(300, 96, 0.05, seed=3)
    cfg = SketchConfig(gamma=2.0, kernel="algo4", rng_kind="philox",
                       seed=11, b_d=16, b_n=16)
    rt = Runtime()
    obs = RunObserver(**(observer_kwargs or {})).attach(rt.bus)
    plan = Planner().compile(A, cfg, partition=PartitionSpec(
        shards=4, strategy="propagation"))
    result = rt.run(plan, A)
    assert rt.bus.dropped_total() == 0
    return obs, result


class TestShardMetrics:
    def test_sharded_run_populates_shard_families(self):
        obs, result = _run_sharded()
        snap = obs.metrics_dict()
        by_name = {f["name"]: f for f in snap["metrics"]}
        shards = by_name["repro_shards_total"]["samples"]
        assert shards == [{"labels": {"strategy": "propagation"},
                           "value": 4.0}]
        merge = by_name["repro_shard_merge_seconds"]["samples"][0]
        assert merge["count"] == 4
        assert merge["sum"] >= 0.0
        words = by_name["repro_shard_merge_words_total"]["samples"][0]
        d = result.sketch.shape[0]
        assert words["value"] == float(d * 96)
        obs.detach()

    def test_requeues_labeled_by_active_shard(self):
        bus = EventBus()
        obs = RunObserver(trace=False).attach(bus)
        bus.emit(SHARD_START, shard=2, shards=4, col_start=32, col_stop=48,
                 nnz=10, strategy="even")
        bus.emit(TASK_REQUEUED, reason="worker_crashed", task=(0, 0))
        bus.emit(SHARD_MERGED, shard=2, col_start=32, col_stop=48,
                 seconds=0.001, words=100)
        # Requeues outside any shard stay unlabeled.
        bus.emit(TASK_REQUEUED, reason="worker_crashed", task=(0, 1))
        snap = obs.metrics_dict()
        by_name = {f["name"]: f for f in snap["metrics"]}
        samples = by_name["repro_shard_requeues_total"]["samples"]
        assert samples == [{"labels": {"shard": "2"}, "value": 1.0}]
        pool = by_name["repro_pool_requeues_total"]["samples"]
        assert sum(s["value"] for s in pool) == 2.0
        obs.detach()

    def test_resumed_shards_counted_by_repartition(self):
        bus = EventBus()
        obs = RunObserver(trace=False).attach(bus)
        bus.emit(SHARD_RESUMED, shard=0, rows=(0, 8), repartitioned=True,
                 source="shard-00000000-00000016/snapshot-00000001")
        bus.emit(SHARD_RESUMED, shard=1, rows=(0, 8), repartitioned=False,
                 source="shard-00000016-00000032/snapshot-00000002")
        snap = obs.metrics_dict()
        by_name = {f["name"]: f for f in snap["metrics"]}
        samples = {s["labels"]["repartitioned"]: s["value"]
                   for s in by_name["repro_shards_resumed_total"]["samples"]}
        assert samples == {"yes": 1.0, "no": 1.0}
        obs.detach()


class TestShardSpans:
    def test_one_closed_span_per_shard_with_merge_attrs(self):
        obs, _ = _run_sharded()
        spans = [s for s in obs.tracer.spans if s.name == "shard"]
        assert len(spans) == 4
        for s in spans:
            assert s.end is not None
            assert s.attrs["strategy"] == "propagation"
            assert s.attrs["merge_seconds"] >= 0.0
            assert s.attrs["merge_words"] > 0
            assert "unfinished" not in s.attrs
        ranges = sorted((s.attrs["col_start"], s.attrs["col_stop"])
                        for s in spans)
        assert ranges[0][0] == 0 and ranges[-1][1] == 96
        obs.detach()

    def test_shard_resumed_becomes_an_annotation(self):
        bus = EventBus()
        obs = RunObserver().attach(bus)
        bus.emit(SHARD_RESUMED, shard=0, repartitioned=True,
                 source="shard-00000000-00000016/snapshot-00000001")
        names = [a.name for a in obs.tracer.annotations]
        assert "shard_resumed" in names
        obs.detach()

    def test_unmerged_shard_closes_unfinished_on_done(self):
        from repro.plan import DONE

        bus = EventBus()
        obs = RunObserver().attach(bus)
        bus.emit(SHARD_START, shard=0, shards=2, col_start=0, col_stop=48,
                 nnz=5, strategy="even")
        bus.emit(DONE, stats=None)
        spans = [s for s in obs.tracer.spans if s.name == "shard"]
        assert len(spans) == 1
        assert spans[0].attrs.get("unfinished") is True
        obs.detach()
