"""KernelStats.merge aggregation: no aliasing, no double counting.

A sharded run folds per-shard records into a run aggregate, and a
service folds run aggregates into service totals.  Both levels rely on
the same two guarantees: the aggregate is a *fresh* record (never an
alias of a constituent — the old behaviour adopted shard 0's record as
the run total, so sum-of-parts reconciliation double-counted it), and
the ``merge_seconds``/``merge_words`` extras attached by the shard
sweep add exactly once per level.  The observability bar on top: the
exported shard-merge metrics equal the aggregate's extras bit for bit.
"""

import copy

import numpy as np
import pytest

from repro.core import SketchConfig
from repro.errors import ConfigError
from repro.kernels import KernelStats
from repro.obs import RunObserver
from repro.plan import SHARD_MERGED, PartitionSpec, Planner, Runtime
from repro.sparse import random_sparse

SHARDS = 4


@pytest.fixture(scope="module")
def A():
    return random_sparse(300, 96, 0.05, seed=3)


def sharded_run(A, seed=11, observe=False):
    cfg = SketchConfig(gamma=2.0, kernel="algo4", rng_kind="philox",
                       seed=seed, b_d=16, b_n=16)
    rt = Runtime()
    obs = RunObserver(trace=False).attach(rt.bus) if observe else None
    merged = []
    rt.bus.subscribe(SHARD_MERGED, lambda e: merged.append(e.payload))
    plan = Planner().compile(A, cfg, partition=PartitionSpec(
        shards=SHARDS, strategy="propagation"))
    result = rt.run(plan, A)
    return result, merged, obs


class TestSelfMergeGuard:
    def test_merge_into_itself_rejected(self):
        st = KernelStats(kernel="algo3")
        with pytest.raises(ConfigError, match="into itself"):
            st.merge(st)

    def test_merge_of_equal_copy_still_allowed(self):
        st = KernelStats(kernel="algo3", sample_seconds=0.5,
                         extra={"merge_words": 10})
        st.merge(copy.deepcopy(st))
        assert st.sample_seconds == 1.0
        assert st.extra["merge_words"] == 20


class TestShardedAggregate:
    def test_aggregate_extras_equal_shard_event_sums(self, A):
        """Bit-for-bit: the aggregate's merge extras are exactly the
        sums the SHARD_MERGED event stream reports, once each."""
        result, merged, _ = sharded_run(A)
        st = result.stats
        assert len(merged) == SHARDS
        assert st.extra["shards"] == SHARDS
        # Same addition order as the runtime's accumulation → exact.
        seconds = 0.0
        for payload in merged:
            seconds += payload["seconds"]
        assert st.extra["merge_seconds"] == seconds
        assert st.extra["merge_words"] == \
            sum(p["words"] for p in merged)
        d = result.sketch.shape[0]
        assert st.extra["merge_words"] == d * A.shape[1]

    def test_aggregate_matches_unsharded_totals(self, A):
        """The fresh-record aggregate counts each shard exactly once:
        its work totals equal the unsharded run's."""
        result, _, _ = sharded_run(A)
        cfg = SketchConfig(gamma=2.0, kernel="algo4", rng_kind="philox",
                           seed=11, b_d=16, b_n=16)
        plain = Runtime().run(Planner().compile(A, cfg), A)
        assert np.array_equal(result.sketch, plain.sketch)
        assert result.stats.samples_generated \
            == plain.stats.samples_generated
        assert result.stats.flops == plain.stats.flops
        assert result.stats.blocks_processed \
            == plain.stats.blocks_processed

    def test_exported_metrics_equal_aggregate_extras(self, A):
        """The scrape never invents merge traffic: exported shard-merge
        families equal the returned aggregate's extras bit for bit."""
        result, _, obs = sharded_run(A, observe=True)
        st = result.stats
        snap = obs.metrics_dict()
        by_name = {f["name"]: f for f in snap["metrics"]}
        words = by_name["repro_shard_merge_words_total"]["samples"][0]
        assert words["value"] == float(st.extra["merge_words"])
        secs = by_name["repro_shard_merge_seconds"]["samples"][0]
        assert secs["count"] == SHARDS
        assert secs["sum"] == st.extra["merge_seconds"]
        obs.detach()


class TestSecondLevelMerge:
    def test_service_total_adds_each_run_once(self, A):
        """Folding sharded runs into a service aggregate must yield
        sum-of-runs extras — the regression the aliased-aggregate bug
        broke (shard 0's record doubling under a second-level merge)."""
        r1, _, _ = sharded_run(A, seed=11)
        r2, _, _ = sharded_run(A, seed=12)
        before = (r1.stats.extra["merge_seconds"],
                  r1.stats.extra["merge_words"])
        total = KernelStats(kernel=r1.stats.kernel)
        total.merge(r1.stats)
        total.merge(r2.stats)
        assert total.extra["merge_seconds"] == \
            r1.stats.extra["merge_seconds"] + r2.stats.extra["merge_seconds"]
        assert total.extra["merge_words"] == \
            r1.stats.extra["merge_words"] + r2.stats.extra["merge_words"]
        assert total.samples_generated == \
            r1.stats.samples_generated + r2.stats.samples_generated
        # Folding into the aggregate never mutates the constituents.
        assert (r1.stats.extra["merge_seconds"],
                r1.stats.extra["merge_words"]) == before

    def test_aggregate_never_aliases_a_constituent(self, A):
        result, _, _ = sharded_run(A)
        total = KernelStats(kernel=result.stats.kernel)
        total.merge(result.stats)
        assert total is not result.stats
        assert total.extra is not result.stats.extra
        # A second fold of a *different* record works; re-merging the
        # aggregate into itself is the rejected aliasing pattern.
        with pytest.raises(ConfigError):
            total.merge(total)
