"""Tests for repro.obs.metrics (registry, families, exporters)."""

import json
import math
import threading

import pytest

from repro.errors import ConfigError
from repro.obs import MetricsRegistry, validate_prometheus_text
from repro.obs.schema import SchemaError


class TestCounter:
    def test_inc_and_value(self):
        c = MetricsRegistry().counter("hits_total", "x", ("kernel",))
        c.inc(kernel="algo3")
        c.inc(2.5, kernel="algo3")
        c.inc(kernel="algo4")
        assert c.value(kernel="algo3") == 3.5
        assert c.value(kernel="algo4") == 1.0
        assert c.value(kernel="missing") == 0.0

    def test_counter_cannot_decrease(self):
        c = MetricsRegistry().counter("hits_total")
        with pytest.raises(ConfigError):
            c.inc(-1.0)

    def test_label_schema_enforced(self):
        c = MetricsRegistry().counter("hits_total", "x", ("kernel",))
        with pytest.raises(ConfigError):
            c.inc()  # missing label
        with pytest.raises(ConfigError):
            c.inc(kernel="a", extra="b")  # extra label

    def test_float_add_is_exact(self):
        # Reconciliation relies on 0.0 + x == x bit-for-bit.
        c = MetricsRegistry().counter("seconds_total")
        value = 0.12345678901234567
        c.inc(value)
        assert c.value() == value


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("in_flight")
        g.inc()
        g.inc()
        g.dec()
        assert g.value() == 1.0
        g.set(7.5)
        assert g.value() == 7.5


class TestHistogram:
    def test_bucket_counts_are_cumulative(self):
        h = MetricsRegistry().histogram("lat", "x", (),
                                        buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        s = h.series()
        assert s["count"] == 5
        assert s["sum"] == pytest.approx(56.05)
        assert s["buckets"]["0.1"] == 1
        assert s["buckets"]["1"] == 3
        assert s["buckets"]["10"] == 4
        assert s["buckets"]["+Inf"] == 5

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ConfigError):
            MetricsRegistry().histogram("lat", buckets=(1.0, 0.5))

    def test_empty_series(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0,))
        assert h.series() == {"count": 0, "sum": 0.0,
                              "buckets": {"1": 0, "+Inf": 0}}


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        r = MetricsRegistry()
        assert r.counter("a_total", "x", ("k",)) is \
            r.counter("a_total", "x", ("k",))

    def test_kind_conflict_rejected(self):
        r = MetricsRegistry()
        r.counter("a_total")
        with pytest.raises(ConfigError):
            r.gauge("a_total")

    def test_label_conflict_rejected(self):
        r = MetricsRegistry()
        r.counter("a_total", "x", ("k",))
        with pytest.raises(ConfigError):
            r.counter("a_total", "x", ("other",))

    def test_invalid_names_rejected(self):
        r = MetricsRegistry()
        with pytest.raises(ConfigError):
            r.counter("bad name")
        with pytest.raises(ConfigError):
            r.counter("ok_total", "x", ("bad-label",))

    def test_namespace_prefix(self):
        r = MetricsRegistry(namespace="myns")
        c = r.counter("a_total")
        assert c.name == "myns_a_total"

    def test_concurrent_updates(self):
        c = MetricsRegistry().counter("n_total")

        def bump():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 4000.0


class TestExporters:
    def _populated(self):
        r = MetricsRegistry()
        r.counter("runs_total", "Runs.", ("kernel",)).inc(kernel="algo3")
        r.gauge("ratio", "Ratio.").set(0.5)
        h = r.histogram("lat_seconds", "Latency.", ("kernel",),
                        buckets=(0.1, 1.0))
        h.observe(0.05, kernel="algo3")
        h.observe(5.0, kernel="algo3")
        return r

    def test_prometheus_text_validates(self):
        text = self._populated().to_prometheus()
        families = validate_prometheus_text(text)
        assert families == {"repro_runs_total": "counter",
                            "repro_ratio": "gauge",
                            "repro_lat_seconds": "histogram"}

    def test_prometheus_escapes_label_values(self):
        r = MetricsRegistry()
        r.counter("a_total", "x", ("k",)).inc(k='we"ird\\v')
        text = r.to_prometheus()
        assert r'k="we\"ird\\v"' in text
        validate_prometheus_text(text)

    def test_histogram_renders_inf_bucket(self):
        text = self._populated().to_prometheus()
        assert 'le="+Inf"' in text
        assert "repro_lat_seconds_sum" in text
        assert "repro_lat_seconds_count" in text

    def test_json_round_trips(self):
        payload = json.loads(json.dumps(self._populated().to_dict()))
        by_name = {m["name"]: m for m in payload["metrics"]}
        assert by_name["repro_runs_total"]["samples"] == \
            [{"labels": {"kernel": "algo3"}, "value": 1.0}]
        hist = by_name["repro_lat_seconds"]["samples"][0]
        assert hist["count"] == 2
        assert hist["buckets"]["+Inf"] == 2

    def test_write_files(self, tmp_path):
        r = self._populated()
        prom = r.write_prometheus(tmp_path / "m.prom")
        js = r.write_json(tmp_path / "m.json")
        validate_prometheus_text(prom.read_text())
        json.loads(js.read_text())

    def test_validator_rejects_garbage(self):
        with pytest.raises(SchemaError):
            validate_prometheus_text("repro_orphan 1\n")
        with pytest.raises(SchemaError):
            validate_prometheus_text("# TYPE a counter\na {=} 1\n")
        with pytest.raises(SchemaError):
            validate_prometheus_text("# TYPE a counter\na one\n")

    def test_format_inf_values(self):
        g = MetricsRegistry().gauge("g")
        g.set(math.inf)
        assert g.render_prometheus() == ["repro_g +Inf"]
