"""Reconciliation suite: exported metrics must equal KernelStats totals.

The acceptance bar for the observability layer is that it never invents
numbers: every seconds/samples/flops figure a scrape reports is exactly
(bit-for-bit) the figure the run returned in its
:class:`~repro.kernels.KernelStats` — across the serial, engine and
pregen drivers, and with faults injected.  The second bar is isolation:
a deliberately-raising observer must not change the sketch output.
"""

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.obs import RunObserver, validate_prometheus_text
from repro.parallel import ResilienceConfig
from repro.plan import (
    DONE,
    EventBus,
    Planner,
    ProblemSpec,
    RngSpec,
    Runtime,
    SketchPlan,
)
from repro.sparse import random_sparse

D, B_D, B_N = 36, 12, 10
SEED = 9


@pytest.fixture
def A():
    return random_sparse(120, 30, 0.1, seed=301)


def make_plan(A, **overrides):
    base = dict(
        problem=ProblemSpec(m=A.shape[0], n=A.shape[1], d=D, nnz=A.nnz),
        kernel="algo3", b_d=B_D, b_n=B_N,
        rng=RngSpec(kind="philox", seed=SEED),
    )
    base.update(overrides)
    return SketchPlan(**base)


def observed_run(plan, A, injector=None):
    rt = Runtime()
    obs = RunObserver().attach(rt.bus)
    result = rt.run(plan, A, injector=injector)
    return obs, result


def counter_value(obs, name, **labels):
    """Value of ``repro_<name>`` — registered families are get-or-create,
    so look up with the observer's own label schema."""
    family = {f.name: f for f in obs.registry.families()}[f"repro_{name}"]
    return family.value(**labels)


def assert_reconciled(obs, result, driver):
    """Every exported total equals the returned KernelStats, exactly."""
    st = result.stats
    k = st.kernel
    assert counter_value(obs, "runs_total", kernel=k, driver=driver) == 1.0
    assert counter_value(obs, "sample_seconds_total", kernel=k) \
        == st.sample_seconds
    assert counter_value(obs, "compute_seconds_total", kernel=k) \
        == st.compute_seconds
    assert counter_value(obs, "conversion_seconds_total", kernel=k) \
        == st.conversion_seconds
    assert counter_value(obs, "cpu_seconds_total", kernel=k) \
        == st.cpu_seconds
    assert counter_value(obs, "wall_seconds_total", kernel=k) \
        == (st.wall_seconds or st.total_seconds)
    assert counter_value(obs, "samples_generated_total", kernel=k) \
        == float(st.samples_generated)
    assert counter_value(obs, "flops_total", kernel=k) == float(st.flops)
    assert counter_value(obs, "sample_fraction", kernel=k) \
        == st.sample_fraction
    assert counter_value(obs, "attained_gflops", kernel=k) == st.gflops_rate
    assert counter_value(obs, "blocks_in_flight") == 0.0
    # The profile reports the same numbers, and the exported text parses.
    prof = obs.profile(result)
    assert prof.attained_gflops == st.gflops_rate
    assert prof.sample_fraction == st.sample_fraction
    assert prof.flops == st.flops
    validate_prometheus_text(obs.metrics_text())


class TestReconciliationAcrossDrivers:
    def test_serial_driver(self, A):
        obs, result = observed_run(make_plan(A), A)
        assert_reconciled(obs, result, "serial")

    def test_engine_driver(self, A):
        obs, result = observed_run(make_plan(A, driver="engine"), A)
        assert_reconciled(obs, result, "engine")
        # The engine records both time axes.
        assert result.stats.cpu_seconds > 0
        assert result.stats.wall_seconds > 0

    def test_engine_multithreaded(self, A):
        obs, result = observed_run(make_plan(A, driver="engine", threads=2),
                                   A)
        assert_reconciled(obs, result, "engine")
        # Parallel wall time must not over-count: the rate denominator is
        # wall clock, not the per-thread sum.
        assert result.stats.wall_seconds <= result.stats.total_seconds

    def test_pregen_driver(self, A):
        from repro.core import SketchConfig

        plan = Planner().compile(A, SketchConfig(kernel="pregen"), d=D)
        rt = Runtime()
        obs = RunObserver().attach(rt.bus)
        result = rt.run(plan, A)
        assert_reconciled(obs, result, rt.resolve_driver(plan))

    def test_block_counts_match_stats(self, A):
        obs, result = observed_run(make_plan(A, driver="engine"), A)
        # Block events carry the plan kernel; the engine's summary stats
        # rename to "<kernel>-parallel".
        done = counter_value(obs, "blocks_total",
                             kernel=result.plan.kernel, phase="done")
        assert done == float(result.stats.blocks_processed)


class TestReconciliationWithFaults:
    def test_injected_retry_still_reconciles(self, A):
        inj = FaultInjector(FaultPlan([
            FaultSpec(kind="raise", task=(0, 0), max_hits=1)]))
        plan = make_plan(A, resilience=ResilienceConfig(max_retries=2))
        obs, result = observed_run(plan, A, injector=inj)
        assert_reconciled(obs, result, "engine")
        assert counter_value(obs, "retries_total",
                             kind="InjectedFaultError") >= 1.0
        assert obs.profile(result).retries >= 1

    def test_checkpointed_run_reconciles(self, A, tmp_path):
        from repro.plan import PersistencePolicy

        plan = make_plan(A, persistence=PersistencePolicy(
            checkpoint_dir=str(tmp_path), every=1))
        obs, result = observed_run(plan, A)
        assert_reconciled(obs, result, "engine")
        written = counter_value(obs, "checkpoints_total")
        assert written >= 1.0
        prof = obs.profile(result)
        assert prof.checkpoints_written == int(written)
        assert prof.checkpoint_seconds >= prof.checkpoint_max_seconds > 0.0


class TestObserverIsolation:
    def test_raising_observer_does_not_change_output(self, A):
        plan = make_plan(A)
        baseline = Runtime().run(plan, A)

        rt = Runtime()
        obs = RunObserver().attach(rt.bus)
        for name in (DONE, "block_start", "block_done", "plan_compiled"):
            rt.bus.subscribe_observer(
                name, lambda e: (_ for _ in ()).throw(RuntimeError("boom")))
        result = rt.run(plan, A)

        np.testing.assert_array_equal(result.sketch, baseline.sketch)
        assert rt.bus.dropped_total() > 0
        assert obs.dropped_events() == rt.bus.dropped_total()
        # The failing co-observer did not poison the real one.
        assert_reconciled(obs, result, "serial")
        text = obs.metrics_text()
        assert "repro_dropped_events" in text

    def test_raising_observer_does_not_select_guarded_path(self, A):
        """Observers subscribe only to lifecycle events, so attaching
        them never flips the runtime onto the guarded engine path."""
        rt = Runtime()
        RunObserver().attach(rt.bus)
        bus_driver = rt.resolve_driver(make_plan(A))
        assert bus_driver == Runtime().resolve_driver(make_plan(A))

    def test_detach_restores_silent_bus(self, A):
        rt = Runtime()
        obs = RunObserver().attach(rt.bus)
        obs.detach()
        assert not rt.bus.has_subscribers(DONE)
        result = rt.run(make_plan(A), A)
        assert counter_value(obs, "runs_total",
                             kernel="algo3", driver="serial") == 0.0
        assert result.stats.blocks_processed > 0


class TestStreamingObservability:
    def test_streaming_batches_feed_one_observer(self, A):
        from repro.core import StreamingSketch
        from repro.rng import PhiloxSketchRNG

        bus = EventBus()
        obs = RunObserver().attach(bus)
        st = StreamingSketch(D, A.shape[1], PhiloxSketchRNG(SEED),
                             b_d=B_D, b_n=B_N, bus=bus)
        dense = A.to_dense()
        from repro.sparse import CSCMatrix

        for lo in range(0, A.shape[0], 40):
            st.absorb(CSCMatrix.from_dense(dense[lo:lo + 40]))
        assert counter_value(obs, "runs_total",
                             kernel="algo3", driver="serial") == 3.0
        validate_prometheus_text(obs.metrics_text())

    def test_streaming_checkpoint_emits_latency(self, A, tmp_path):
        from repro.core import StreamingSketch
        from repro.plan import PersistencePolicy
        from repro.rng import PhiloxSketchRNG

        bus = EventBus()
        obs = RunObserver().attach(bus)
        st = StreamingSketch(
            D, A.shape[1], PhiloxSketchRNG(SEED), b_d=B_D, b_n=B_N,
            bus=bus,
            persistence=PersistencePolicy(checkpoint_dir=str(tmp_path),
                                          every=40))
        st.absorb(A)
        assert counter_value(obs, "checkpoints_total") >= 1.0
        hist = {f.name: f for f in obs.registry.families()}[
            "repro_checkpoint_seconds"]
        series = hist.series()
        assert series["count"] >= 1
        assert series["sum"] > 0.0
