"""Tests for repro.obs.profile (roofline-annotated run profiles)."""

import json

import pytest

from repro.kernels import KernelStats
from repro.model import FRONTERA, LAPTOP
from repro.model.roofline import fraction_of_peak, gemm_ci
from repro.obs import build_profile, validate_profile
from repro.obs.schema import SchemaError
from repro.plan import Planner, Runtime
from repro.sparse import random_sparse


@pytest.fixture
def A():
    return random_sparse(120, 30, 0.1, seed=301)


def run(A, **kwargs):
    plan = Planner().compile(A, d=36, **kwargs)
    return Runtime().run(plan, A)


class TestBuildProfile:
    def test_measured_numbers_are_bit_for_bit(self, A):
        result = run(A)
        prof = build_profile(result, driver="serial")
        st = result.stats
        assert prof.total_seconds == st.total_seconds
        assert prof.sample_seconds == st.sample_seconds
        assert prof.compute_seconds == st.compute_seconds
        assert prof.conversion_seconds == st.conversion_seconds
        assert prof.attained_gflops == st.gflops_rate
        assert prof.sample_fraction == st.sample_fraction
        assert prof.samples_generated == st.samples_generated
        assert prof.flops == st.flops
        assert prof.blocks_processed == st.blocks_processed

    def test_problem_numbers_come_from_plan(self, A):
        prof = build_profile(run(A))
        assert (prof.m, prof.n) == A.shape
        assert prof.nnz == A.nnz
        assert prof.rho == pytest.approx(A.nnz / (A.shape[0] * A.shape[1]))
        assert prof.d == 36

    def test_roofline_prediction_reuses_planner_decision(self, A):
        """The plan's blocking decision recorded model_ci; the profile's
        prediction must agree with Eq. 4 applied to that CI."""
        result = run(A)
        blocking = [d for d in result.plan.decisions
                    if d.field == "blocking"][0]
        prof = build_profile(result)
        assert prof.model_ci == pytest.approx(blocking.data["model_ci"])
        expected = fraction_of_peak(prof.model_ci, LAPTOP)
        assert prof.predicted_fraction_of_peak == pytest.approx(expected)
        assert prof.predicted_gflops == \
            pytest.approx(expected * LAPTOP.peak_gflops)

    def test_pregen_scored_against_gemm_ci(self):
        prof = build_profile(stats=KernelStats(kernel="pregen",
                                               total_seconds=1.0,
                                               flops=10, d=36),
                             plan=None)
        assert prof.model_ci == pytest.approx(gemm_ci(LAPTOP.cache_words))

    def test_machine_override(self, A):
        prof = build_profile(run(A), machine=FRONTERA)
        assert prof.machine == "frontera"
        assert prof.peak_gflops == FRONTERA.peak_gflops
        assert prof.gemm_ci == pytest.approx(gemm_ci(FRONTERA.cache_words))

    def test_model_ratio(self, A):
        prof = build_profile(run(A))
        assert prof.model_ratio == \
            pytest.approx(prof.attained_gflops / prof.predicted_gflops)

    def test_stats_only_profile(self):
        st = KernelStats(kernel="algo3", total_seconds=2.0,
                         sample_seconds=1.0, flops=100, d=8)
        prof = build_profile(stats=st)
        assert prof.m == 0 and prof.nnz is None
        assert prof.predicted_gflops is None  # density unknown
        assert prof.model_ratio is None
        validate_profile(prof.as_dict())

    def test_requires_result_or_stats(self):
        with pytest.raises(ValueError):
            build_profile()


class TestProfileSerialization:
    def test_as_dict_validates_and_round_trips(self, A):
        prof = build_profile(run(A), driver="serial",
                             checkpoints=(2, 0.5, 0.3), retries=1,
                             degraded=0, dropped_events=4)
        payload = validate_profile(json.dumps(prof.as_dict()))
        assert payload["version"] == 1
        assert payload["events"] == {
            "checkpoints_written": 2, "checkpoint_seconds": 0.5,
            "checkpoint_max_seconds": 0.3, "retries": 1, "degraded": 0,
            "dropped_events": 4}

    def test_render_mentions_key_numbers(self, A):
        prof = build_profile(run(A), driver="serial",
                             checkpoints=(1, 0.2, 0.2), retries=2,
                             degraded=1, dropped_events=3)
        text = prof.render()
        assert "roofline" in text
        assert "checkpoints : 1 written" in text
        assert "retries=2" in text
        assert "3 event(s)" in text

    def test_validator_rejects_bad_payloads(self, A):
        good = build_profile(run(A)).as_dict()
        bad = dict(good)
        del bad["roofline"]
        with pytest.raises(SchemaError):
            validate_profile(bad)
        bad = json.loads(json.dumps(good))
        bad["measured"]["sample_fraction"] = 1.5
        with pytest.raises(SchemaError):
            validate_profile(bad)
        bad = json.loads(json.dumps(good))
        bad["version"] = 99
        with pytest.raises(SchemaError):
            validate_profile(bad)
        with pytest.raises(SchemaError):
            validate_profile("not json{")
