"""Tests for repro.obs.tracing (span collection from bus events)."""

import json

import pytest

from repro.obs import Span, Tracer
from repro.plan import (
    BLOCK_DONE,
    BLOCK_START,
    CHECKPOINT_WRITTEN,
    DEGRADED,
    DONE,
    PLAN_COMPILED,
    RETRY,
    EventBus,
    ProblemSpec,
    RngSpec,
    SketchPlan,
)


def make_plan():
    return SketchPlan(problem=ProblemSpec(m=120, n=30, d=36, nnz=360),
                      kernel="algo3", b_d=12, b_n=10,
                      rng=RngSpec(kind="philox", seed=9))


class TestSpan:
    def test_seconds(self):
        assert Span("x", 1.0, end=3.5).seconds == 2.5
        assert Span("x", 1.0).seconds == 0.0  # still open

    def test_to_dict(self):
        d = Span("block", 0.0, end=1.0, attrs={"task": [0, 0]}).to_dict()
        assert d == {"name": "block", "start": 0.0, "end": 1.0,
                     "seconds": 1.0, "attrs": {"task": [0, 0]}}


class TestTracer:
    def test_run_and_block_spans(self):
        bus = EventBus()
        tracer = Tracer().attach(bus)
        bus.emit(PLAN_COMPILED, plan=make_plan(), driver="serial")
        bus.emit(BLOCK_START, task=(0, 0), kernel="algo3")
        bus.emit(BLOCK_DONE, task=(0, 0), kernel="algo3")
        bus.emit(DONE, plan=make_plan(), driver="serial")
        spans = tracer.to_dict()["spans"]
        assert [s["name"] for s in spans] == ["run", "block"]
        run, block = spans
        assert run["attrs"]["driver"] == "serial"
        assert run["attrs"]["kernel"] == "algo3"
        assert run["end"] is not None
        assert block["attrs"]["task"] == [0, 0]
        assert block["end"] >= block["start"]

    def test_checkpoint_span_backdated_by_payload_seconds(self):
        bus = EventBus()
        tracer = Tracer().attach(bus)
        bus.emit(PLAN_COMPILED, plan=make_plan(), driver="engine")
        bus.emit(CHECKPOINT_WRITTEN, path="/tmp/x", rows=(0, 12),
                 snapshots_written=1, seconds=0.25)
        ck = [s for s in tracer.to_dict()["spans"]
              if s["name"] == "checkpoint"][0]
        assert ck["seconds"] == pytest.approx(0.25)

    def test_retry_and_degraded_become_annotations(self):
        bus = EventBus()
        tracer = Tracer().attach(bus)
        bus.emit(RETRY, task=(0, 0), attempt=1, kind="injected")
        bus.emit(DEGRADED, kind="serial_fallback", tasks=3)
        anns = tracer.to_dict()["annotations"]
        assert [a["name"] for a in anns] == ["retry", "degraded"]
        assert anns[0]["attrs"]["kind"] == "injected"
        assert anns[1]["attrs"]["tasks"] == 3

    def test_unfinished_blocks_flagged_at_done(self):
        bus = EventBus()
        tracer = Tracer().attach(bus)
        bus.emit(PLAN_COMPILED, plan=make_plan(), driver="engine")
        bus.emit(BLOCK_START, task=(0, 0), kernel="algo3")
        bus.emit(DONE, plan=make_plan(), driver="engine")
        block = [s for s in tracer.to_dict()["spans"]
                 if s["name"] == "block"][0]
        assert block["attrs"]["unfinished"] is True

    def test_duplicate_start_keeps_earliest(self):
        bus = EventBus()
        tracer = Tracer().attach(bus)
        bus.emit(BLOCK_START, task=(0, 0), kernel="algo3")
        bus.emit(BLOCK_START, task=(0, 0), kernel="algo3")
        bus.emit(BLOCK_DONE, task=(0, 0), kernel="algo3")
        blocks = [s for s in tracer.to_dict()["spans"]
                  if s["name"] == "block"]
        assert len(blocks) == 1
        assert blocks[0]["end"] is not None

    def test_done_without_start_recorded(self):
        bus = EventBus()
        tracer = Tracer().attach(bus)
        bus.emit(BLOCK_DONE, task=(3, 0), kernel="algo3")
        blocks = [s for s in tracer.to_dict()["spans"]
                  if s["name"] == "block"]
        assert len(blocks) == 1

    def test_detach_stops_collection(self):
        bus = EventBus()
        tracer = Tracer().attach(bus)
        bus.emit(BLOCK_START, task=(0, 0), kernel="algo3")
        tracer.detach()
        bus.emit(BLOCK_START, task=(1, 0), kernel="algo3")
        assert len(tracer.to_dict()["spans"]) == 1

    def test_double_attach_rejected(self):
        tracer = Tracer().attach(EventBus())
        with pytest.raises(RuntimeError):
            tracer.attach(EventBus())

    def test_json_and_chrome_export(self, tmp_path):
        bus = EventBus()
        tracer = Tracer().attach(bus)
        bus.emit(PLAN_COMPILED, plan=make_plan(), driver="serial")
        bus.emit(RETRY, task=(0, 0), attempt=1, kind="x")
        bus.emit(DONE, plan=make_plan(), driver="serial")
        path = tmp_path / "trace.json"
        text = tracer.to_json(path)
        assert json.loads(path.read_text()) == json.loads(text)
        chrome = tracer.to_chrome()
        assert {e["ph"] for e in chrome} == {"X", "i"}
        json.dumps(chrome)  # must be serializable

    def test_tracer_bug_is_swallowed_by_observer_boundary(self):
        """Tracer handlers are observers: a bug in one is isolated and
        counted, and later observers (the real tracer) still run."""
        bus = EventBus()

        def boom(event):
            raise RuntimeError("tracer bug")

        bus.subscribe_observer(PLAN_COMPILED, boom)
        tracer = Tracer().attach(bus)
        bus.emit(PLAN_COMPILED, plan=make_plan(), driver="serial")
        assert bus.dropped_events[PLAN_COMPILED] == 1
        assert [s["name"] for s in tracer.to_dict()["spans"]] == ["run"]
