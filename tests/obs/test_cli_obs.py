"""CLI observability flags: --metrics-out / --trace-out / --profile."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.obs import validate_profile, validate_prometheus_text

ARGS = ["sketch", "--random", "120", "30", "0.1", "--seed", "3"]


class TestCliObservability:
    def test_metrics_out_writes_valid_prometheus(self, tmp_path, capsys):
        path = tmp_path / "m.prom"
        assert main(ARGS + ["--metrics-out", str(path)]) == 0
        families = validate_prometheus_text(path.read_text())
        assert "repro_runs_total" in families
        assert str(path) in capsys.readouterr().out

    def test_metrics_out_json_flavour(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        assert main(ARGS + ["--metrics-out", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["namespace"] == "repro"
        names = {m["name"] for m in payload["metrics"]}
        assert "repro_runs_total" in names

    def test_trace_out(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        assert main(ARGS + ["--trace-out", str(path)]) == 0
        trace = json.loads(path.read_text())
        assert [s["name"] for s in trace["spans"]][0] == "run"

    def test_trace_out_chrome_flavour(self, tmp_path, capsys):
        path = tmp_path / "t.chrome.json"
        assert main(ARGS + ["--trace-out", str(path)]) == 0
        events = json.loads(path.read_text())
        assert isinstance(events, list) and events[0]["ph"] in ("X", "i")

    def test_profile_text_and_json(self, tmp_path, capsys):
        path = tmp_path / "p.json"
        assert main(ARGS + ["--profile", "--profile-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "roofline" in out
        payload = validate_profile(path.read_text())
        assert payload["kernel"] in ("algo3", "algo4", "pregen")

    def test_profile_reconciles_with_reported_stats(self, tmp_path, capsys):
        path = tmp_path / "p.json"
        assert main(["--json"] + ARGS
                    + ["--profile-out", str(path)]) == 0
        report = json.loads(capsys.readouterr().out)
        payload = validate_profile(path.read_text())
        assert payload == report["profile"]
        assert payload["measured"]["attained_gflops"] == report["gflops"]
        assert payload["measured"]["total_seconds"] == \
            report["total_seconds"]
        assert payload["measured"]["sample_seconds"] == \
            report["sample_seconds"]
        assert payload["measured"]["samples_generated"] == \
            report["samples_generated"]

    def test_raising_observer_changes_neither_output_nor_exit_code(
            self, tmp_path, capsys, monkeypatch):
        """The acceptance test: sabotage every metric handler so each
        event drops, and the sketch bytes and exit code are unchanged."""
        out_plain = tmp_path / "plain.npy"
        out_observed = tmp_path / "observed.npy"
        assert main(ARGS + ["--output", str(out_plain)]) == 0
        capsys.readouterr()

        from repro.obs import observer as observer_mod

        class SabotagedObserver(observer_mod.RunObserver):
            def attach(self, bus):
                for name in ("plan_compiled", "block_start", "block_done",
                             "checkpoint_written", "retry", "degraded",
                             "done"):
                    bus.subscribe_observer(name, self._boom)
                self._bus = bus
                return self

            @staticmethod
            def _boom(event):
                raise RuntimeError("deliberately broken metrics subscriber")

        monkeypatch.setattr("repro.obs.RunObserver", SabotagedObserver)
        metrics = tmp_path / "m.prom"
        code = main(ARGS + ["--output", str(out_observed),
                            "--metrics-out", str(metrics)])
        assert code == 0
        np.testing.assert_array_equal(np.load(out_plain),
                                      np.load(out_observed))
        text = metrics.read_text()
        validate_prometheus_text(text)
        assert 'repro_dropped_events{event="done"} 1' in text
