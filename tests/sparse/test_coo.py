"""Tests for repro.sparse.coo."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.sparse import COOMatrix


def _toy():
    # [[1, 0], [0, 2], [3, 0]]
    return COOMatrix((3, 2), np.array([0, 1, 2]), np.array([0, 1, 0]),
                     np.array([1.0, 2.0, 3.0]))


class TestConstruction:
    def test_basic(self):
        c = _toy()
        assert c.shape == (3, 2)
        assert c.nnz == 3

    def test_density(self):
        assert _toy().density == pytest.approx(0.5)

    def test_empty(self):
        c = COOMatrix((4, 4), np.array([], dtype=np.int64),
                      np.array([], dtype=np.int64), np.array([]))
        assert c.nnz == 0
        assert c.density == 0.0

    def test_row_out_of_range(self):
        with pytest.raises(FormatError, match="row indices"):
            COOMatrix((2, 2), np.array([2]), np.array([0]), np.array([1.0]))

    def test_col_out_of_range(self):
        with pytest.raises(FormatError, match="column indices"):
            COOMatrix((2, 2), np.array([0]), np.array([-1]), np.array([1.0]))

    def test_length_mismatch(self):
        with pytest.raises(FormatError, match="equal length"):
            COOMatrix((2, 2), np.array([0]), np.array([0, 1]), np.array([1.0]))

    def test_negative_shape(self):
        with pytest.raises(ShapeError):
            COOMatrix((-1, 2), np.array([], dtype=np.int64),
                      np.array([], dtype=np.int64), np.array([]))

    def test_check_false_skips_validation(self):
        c = COOMatrix((1, 1), np.array([5]), np.array([5]), np.array([1.0]),
                      check=False)
        with pytest.raises(FormatError):
            c.validate()


class TestFromDense:
    def test_roundtrip(self):
        d = np.array([[0.0, 1.5], [2.5, 0.0]])
        c = COOMatrix.from_dense(d)
        np.testing.assert_array_equal(c.to_dense(), d)

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            COOMatrix.from_dense(np.array([1.0, 2.0]))


class TestCoalesce:
    def test_sums_duplicates(self):
        c = COOMatrix((2, 2), np.array([0, 0, 1]), np.array([0, 0, 1]),
                      np.array([1.0, 2.0, 5.0]))
        cc = c.coalesce()
        assert cc.nnz == 2
        dense = cc.to_dense()
        assert dense[0, 0] == 3.0
        assert dense[1, 1] == 5.0

    def test_sorted_column_major(self):
        c = COOMatrix((3, 3), np.array([2, 0, 1]), np.array([1, 1, 0]),
                      np.array([1.0, 1.0, 1.0]))
        cc = c.coalesce()
        keys = cc.cols * 3 + cc.rows
        assert np.all(np.diff(keys) > 0)

    def test_empty(self):
        c = COOMatrix((2, 2), np.array([], dtype=np.int64),
                      np.array([], dtype=np.int64), np.array([]))
        assert c.coalesce().nnz == 0


class TestConversions:
    def test_to_csc_matches_dense(self):
        c = _toy()
        np.testing.assert_array_equal(c.to_csc().to_dense(), c.to_dense())

    def test_to_csr_matches_dense(self):
        c = _toy()
        np.testing.assert_array_equal(c.to_csr().to_dense(), c.to_dense())

    def test_to_csc_with_duplicates(self):
        c = COOMatrix((2, 2), np.array([0, 0]), np.array([1, 1]),
                      np.array([1.0, 1.0]))
        csc = c.to_csc()
        assert csc.nnz == 1
        assert csc.to_dense()[0, 1] == 2.0

    def test_transpose(self):
        c = _toy()
        np.testing.assert_array_equal(c.transpose().to_dense(),
                                      c.to_dense().T)

    def test_repr(self):
        assert "nnz=3" in repr(_toy())
