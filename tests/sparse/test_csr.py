"""Tests for repro.sparse.csr."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.sparse import CSRMatrix, random_sparse


def _toy():
    # [[1, 0, 2], [0, 3, 0]]
    return CSRMatrix((2, 3), np.array([0, 2, 3]), np.array([0, 2, 1]),
                     np.array([1.0, 2.0, 3.0]))


class TestValidation:
    def test_valid(self):
        _toy().validate()

    def test_bad_indptr_length(self):
        with pytest.raises(FormatError, match="length m\\+1"):
            CSRMatrix((2, 3), np.array([0, 1]), np.array([0]),
                      np.array([1.0]))

    def test_unsorted_cols_in_row(self):
        with pytest.raises(FormatError, match="strictly increasing"):
            CSRMatrix((1, 3), np.array([0, 2]), np.array([2, 0]),
                      np.array([1.0, 1.0]))

    def test_col_out_of_range(self):
        with pytest.raises(FormatError, match="out of range"):
            CSRMatrix((1, 2), np.array([0, 1]), np.array([2]),
                      np.array([1.0]))


class TestAccessors:
    def test_row(self):
        cols, vals = _toy().row(0)
        np.testing.assert_array_equal(cols, [0, 2])
        np.testing.assert_array_equal(vals, [1.0, 2.0])

    def test_row_nnz(self):
        np.testing.assert_array_equal(_toy().row_nnz(), [2, 1])

    def test_nonempty_rows(self):
        A = CSRMatrix((3, 2), np.array([0, 1, 1, 2]), np.array([0, 1]),
                      np.array([1.0, 1.0]))
        np.testing.assert_array_equal(A.nonempty_rows(), [0, 2])

    def test_nonempty_rows_all_empty(self):
        A = CSRMatrix((3, 2), np.zeros(4, dtype=np.int64),
                      np.array([], dtype=np.int64), np.array([]))
        assert A.nonempty_rows().size == 0

    def test_density(self):
        assert _toy().density == pytest.approx(0.5)


class TestConversions:
    def test_dense_roundtrip(self):
        A = random_sparse(20, 12, 0.2, seed=7).to_csr()
        np.testing.assert_array_equal(
            CSRMatrix.from_dense(A.to_dense()).to_dense(), A.to_dense()
        )

    def test_to_csc_roundtrip(self):
        A = random_sparse(20, 12, 0.2, seed=8).to_csr()
        np.testing.assert_array_equal(A.to_csc().to_dense(), A.to_dense())
        csc = A.to_csc()
        csc.validate()

    def test_to_coo(self):
        np.testing.assert_array_equal(_toy().to_coo().to_dense(),
                                      _toy().to_dense())

    def test_scipy_interop(self):
        A = random_sparse(15, 9, 0.25, seed=9).to_csr()
        back = CSRMatrix.from_scipy(A.to_scipy())
        np.testing.assert_array_equal(back.to_dense(), A.to_dense())

    def test_memory_bytes_positive(self):
        assert _toy().memory_bytes > 0

    def test_repr(self):
        assert "CSRMatrix" in repr(_toy())
