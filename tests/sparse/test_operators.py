"""Tests for CSCMatrix operator dunders (@, +, -, *, T)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import random_sparse


@pytest.fixture
def A():
    return random_sparse(15, 10, 0.3, seed=1701)


@pytest.fixture
def B():
    return random_sparse(15, 10, 0.3, seed=1702)


class TestMatmul:
    def test_sparse_sparse(self, A):
        C = random_sparse(10, 7, 0.3, seed=1703)
        got = A @ C
        np.testing.assert_allclose(got.to_dense(),
                                   A.to_dense() @ C.to_dense(), atol=1e-12)

    def test_sparse_vector(self, A):
        x = np.random.default_rng(0).standard_normal(10)
        np.testing.assert_allclose(A @ x, A.to_dense() @ x)

    def test_sparse_dense_matrix(self, A):
        X = np.random.default_rng(1).standard_normal((10, 4))
        np.testing.assert_allclose(A @ X, A.to_dense() @ X)

    def test_bad_ndim(self, A):
        with pytest.raises(ShapeError):
            A @ np.zeros((2, 2, 2))

    def test_unsupported_type(self, A):
        with pytest.raises(TypeError):
            A @ "nope"


class TestAddSub:
    def test_add(self, A, B):
        np.testing.assert_allclose((A + B).to_dense(),
                                   A.to_dense() + B.to_dense())

    def test_sub(self, A, B):
        np.testing.assert_allclose((A - B).to_dense(),
                                   A.to_dense() - B.to_dense())

    def test_self_cancellation(self, A):
        assert (A - A).nnz == 0


class TestScalarScaling:
    def test_right_scalar(self, A):
        np.testing.assert_allclose((A * 2.5).to_dense(), 2.5 * A.to_dense())

    def test_left_scalar(self, A):
        np.testing.assert_allclose((2.5 * A).to_dense(), 2.5 * A.to_dense())

    def test_neg(self, A):
        np.testing.assert_allclose((-A).to_dense(), -A.to_dense())

    def test_int_scalar(self, A):
        np.testing.assert_allclose((A * 3).to_dense(), 3.0 * A.to_dense())


class TestTranspose:
    def test_T_property(self, A):
        np.testing.assert_array_equal(A.T.to_dense(), A.to_dense().T)

    def test_algebra_composes(self, A):
        # (A^T A) x == A^T (A x) through the operators.
        x = np.random.default_rng(2).standard_normal(10)
        lhs = (A.T @ A) @ x
        rhs = A.T @ (A @ x)
        np.testing.assert_allclose(lhs, rhs, atol=1e-12)
