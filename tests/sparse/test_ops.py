"""Tests for repro.sparse.ops (reference SpMV/SpMM baselines)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import (
    csr_times_dense,
    dense_times_csc,
    dense_times_csc_reference,
    random_sparse,
    rmatvec_csc,
    spmv_csc,
    spmv_csr,
)


@pytest.fixture
def A():
    return random_sparse(30, 12, 0.2, seed=31)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestSpmv:
    def test_csc_matches_dense(self, A, rng):
        x = rng.standard_normal(12)
        np.testing.assert_allclose(spmv_csc(A, x), A.to_dense() @ x)

    def test_csr_matches_dense(self, A, rng):
        x = rng.standard_normal(12)
        np.testing.assert_allclose(spmv_csr(A.to_csr(), x), A.to_dense() @ x)

    def test_csc_csr_agree(self, A, rng):
        x = rng.standard_normal(12)
        np.testing.assert_allclose(spmv_csc(A, x), spmv_csr(A.to_csr(), x))

    def test_rmatvec(self, A, rng):
        y = rng.standard_normal(30)
        np.testing.assert_allclose(rmatvec_csc(A, y), A.to_dense().T @ y)

    def test_size_mismatch(self, A):
        with pytest.raises(ShapeError):
            spmv_csc(A, np.zeros(5))
        with pytest.raises(ShapeError):
            rmatvec_csc(A, np.zeros(5))

    def test_zero_vector(self, A):
        np.testing.assert_array_equal(spmv_csc(A, np.zeros(12)), np.zeros(30))


class TestDenseTimesCsc:
    def test_matches_dense(self, A, rng):
        S = rng.standard_normal((8, 30))
        np.testing.assert_allclose(dense_times_csc(S, A), S @ A.to_dense())

    def test_reference_matches_vectorized(self, A, rng):
        S = rng.standard_normal((5, 30))
        np.testing.assert_allclose(
            dense_times_csc_reference(S, A), dense_times_csc(S, A)
        )

    def test_matches_scipy(self, A, rng):
        S = rng.standard_normal((6, 30))
        expected = S @ A.to_scipy().toarray()
        np.testing.assert_allclose(dense_times_csc(S, A), expected)

    def test_shape_mismatch(self, A, rng):
        with pytest.raises(ShapeError):
            dense_times_csc(rng.standard_normal((4, 10)), A)

    def test_empty_columns_are_zero(self, rng):
        from repro.sparse import CSCMatrix

        A = CSCMatrix((5, 3), np.array([0, 1, 1, 2]), np.array([0, 4]),
                      np.array([1.0, 2.0]))
        S = rng.standard_normal((3, 5))
        out = dense_times_csc(S, A)
        np.testing.assert_array_equal(out[:, 1], np.zeros(3))


class TestCsrTimesDense:
    def test_matches_dense(self, A, rng):
        B = rng.standard_normal((12, 4))
        got = csr_times_dense(A.to_csr(), B)
        np.testing.assert_allclose(got, A.to_dense() @ B)

    def test_transposed_mkl_identity(self, A, rng):
        # (A^T S^T)^T == S A — the MKL-emulation algebra of Section V-A.
        S = rng.standard_normal((7, 30))
        from repro.sparse import CSRMatrix

        At_csr = CSRMatrix((12, 30), A.indptr, A.indices, A.data, check=False)
        got = csr_times_dense(At_csr, np.ascontiguousarray(S.T)).T
        np.testing.assert_allclose(got, S @ A.to_dense())

    def test_shape_mismatch(self, A, rng):
        with pytest.raises(ShapeError):
            csr_times_dense(A.to_csr(), rng.standard_normal((5, 2)))
