"""Malformed MatrixMarket input must fail loudly, with line numbers."""

import io

import numpy as np
import pytest

from repro.errors import FormatError
from repro.sparse import read_matrix_market
from repro.sparse.io_mm import iter_matrix_market_entries

HEADER = "%%MatrixMarket matrix coordinate real general\n"


def _mm(*lines):
    return io.StringIO("".join(lines))


def _drain(source, chunk=4):
    return list(iter_matrix_market_entries(source, chunk=chunk))


class TestReaderMalformed:
    def test_truncated_entry_list(self):
        src = _mm(HEADER, "3 3 3\n", "1 1 1.0\n", "2 2 2.0\n")
        with pytest.raises(FormatError, match=r"declared 3 entries.*after 2"):
            read_matrix_market(src)

    def test_file_ends_before_size_line(self):
        src = _mm(HEADER, "% only comments\n", "%\n")
        with pytest.raises(FormatError, match="before the size line"):
            read_matrix_market(src)

    def test_size_line_not_three_integers(self):
        with pytest.raises(FormatError, match="line 2.*size line"):
            read_matrix_market(_mm(HEADER, "3 3\n"))
        with pytest.raises(FormatError, match="line 2.*size line"):
            read_matrix_market(_mm(HEADER, "3 3 x\n"))

    def test_negative_size_rejected(self):
        with pytest.raises(FormatError, match="non-negative"):
            read_matrix_market(_mm(HEADER, "3 -3 1\n", "1 1 1.0\n"))

    def test_more_entries_than_declared(self):
        src = _mm(HEADER, "3 3 1\n", "1 1 1.0\n", "2 2 2.0\n")
        with pytest.raises(FormatError, match="line 4.*more entries"):
            read_matrix_market(src)

    def test_zero_index_rejected(self):
        src = _mm(HEADER, "3 3 1\n", "0 1 1.0\n")
        with pytest.raises(FormatError, match=r"line 3.*\(0, 1\).*1-based"):
            read_matrix_market(src)

    def test_out_of_range_index_rejected(self):
        src = _mm(HEADER, "3 3 1\n", "1 4 1.0\n")
        with pytest.raises(FormatError, match=r"line 3.*out of range"):
            read_matrix_market(src)

    def test_non_integer_index_rejected(self):
        src = _mm(HEADER, "3 3 1\n", "1.5 2 1.0\n")
        with pytest.raises(FormatError, match="line 3.*non-integer index"):
            read_matrix_market(src)

    def test_non_numeric_value_rejected(self):
        src = _mm(HEADER, "3 3 1\n", "1 2 abc\n")
        with pytest.raises(FormatError, match="line 3.*non-numeric value"):
            read_matrix_market(src)

    def test_missing_value_rejected(self):
        src = _mm(HEADER, "3 3 1\n", "1 2\n")
        with pytest.raises(FormatError, match="line 3.*missing value"):
            read_matrix_market(src)

    def test_single_token_entry_rejected(self):
        src = _mm(HEADER, "3 3 1\n", "7\n")
        with pytest.raises(FormatError, match="line 3"):
            read_matrix_market(src)

    def test_duplicate_coordinates_rejected(self):
        src = _mm(HEADER, "3 3 3\n", "1 1 1.0\n", "2 2 2.0\n", "1 1 9.0\n")
        with pytest.raises(FormatError,
                           match=r"line 5: duplicate entry \(1, 1\).*line 3"):
            read_matrix_market(src)

    def test_missing_banner(self):
        with pytest.raises(FormatError, match="line 1.*MatrixMarket"):
            read_matrix_market(_mm("3 3 1\n", "1 1 1.0\n"))

    def test_valid_files_still_parse(self):
        A = read_matrix_market(_mm(HEADER, "% c\n", "\n", "2 3 2\n",
                                   "1 2 1.5\n", "2 3 -2.0\n"))
        np.testing.assert_array_equal(
            A.to_dense(), [[0.0, 1.5, 0.0], [0.0, 0.0, -2.0]])
        sym = read_matrix_market(_mm(
            "%%MatrixMarket matrix coordinate real symmetric\n",
            "2 2 2\n", "1 1 1.0\n", "2 1 3.0\n"))
        np.testing.assert_array_equal(sym.to_dense(), [[1.0, 3.0], [3.0, 0.0]])
        pat = read_matrix_market(_mm(
            "%%MatrixMarket matrix coordinate pattern general\n",
            "1 2 1\n", "1 2\n"))
        np.testing.assert_array_equal(pat.to_dense(), [[0.0, 1.0]])


class TestStreamingMalformed:
    def test_truncation_detected_before_final_chunk(self):
        src = _mm(HEADER, "9 9 9\n",
                  *(f"{i} {i} 1.0\n" for i in range(1, 7)))
        with pytest.raises(FormatError, match="declared 9 entries.*after 6"):
            _drain(src, chunk=4)

    def test_entry_errors_carry_line_numbers(self):
        src = _mm(HEADER, "3 3 2\n", "1 1 1.0\n", "1 9 1.0\n")
        with pytest.raises(FormatError, match="line 4.*out of range"):
            _drain(src)
        src = _mm(HEADER, "3 3 2\n", "1 1 1.0\n", "2 2 oops\n")
        with pytest.raises(FormatError, match="line 4.*non-numeric"):
            _drain(src)

    def test_more_entries_than_declared(self):
        src = _mm(HEADER, "3 3 1\n", "1 1 1.0\n", "2 2 2.0\n")
        with pytest.raises(FormatError, match="line 4.*more entries"):
            _drain(src)

    def test_duplicates_pass_through_documented(self):
        """The O(chunk)-memory iterator deliberately skips the duplicate
        check; read_matrix_market is the validating path."""
        src = _mm(HEADER, "3 3 2\n", "1 1 1.0\n", "1 1 9.0\n")
        chunks = _drain(src)
        assert sum(r.size for _s, r, _c, _v in chunks) == 2
