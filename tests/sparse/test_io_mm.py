"""Tests for repro.sparse.io_mm (MatrixMarket I/O)."""

import io

import numpy as np
import pytest

from repro.errors import FormatError
from repro.sparse import random_sparse, read_matrix_market, write_matrix_market


class TestRoundTrip:
    def test_file_roundtrip(self, tmp_path):
        A = random_sparse(25, 10, 0.2, seed=41)
        path = tmp_path / "a.mtx"
        write_matrix_market(A, path, comment="test matrix")
        B = read_matrix_market(path)
        np.testing.assert_allclose(B.to_dense(), A.to_dense())

    def test_stream_roundtrip(self):
        A = random_sparse(12, 7, 0.3, seed=42)
        buf = io.StringIO()
        write_matrix_market(A, buf)
        buf.seek(0)
        B = read_matrix_market(buf)
        np.testing.assert_allclose(B.to_dense(), A.to_dense())

    def test_values_exact(self):
        # repr()-based writing preserves doubles bit-exactly.
        A = random_sparse(20, 8, 0.25, seed=43)
        buf = io.StringIO()
        write_matrix_market(A, buf)
        buf.seek(0)
        B = read_matrix_market(buf)
        np.testing.assert_array_equal(B.data, A.data)


class TestReader:
    def test_pattern_field(self):
        text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n"
        A = read_matrix_market(io.StringIO(text))
        np.testing.assert_array_equal(A.to_dense(), np.eye(2))

    def test_integer_field(self):
        text = "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 2 7\n"
        A = read_matrix_market(io.StringIO(text))
        assert A.to_dense()[0, 1] == 7.0

    def test_symmetric_expansion(self):
        text = ("%%MatrixMarket matrix coordinate real symmetric\n"
                "3 3 3\n1 1 1.0\n2 1 5.0\n3 3 2.0\n")
        A = read_matrix_market(io.StringIO(text))
        dense = A.to_dense()
        assert dense[1, 0] == 5.0
        assert dense[0, 1] == 5.0
        assert A.nnz == 4

    def test_comments_and_blank_lines(self):
        text = ("%%MatrixMarket matrix coordinate real general\n"
                "% a comment\n\n2 2 1\n1 1 3.5\n")
        A = read_matrix_market(io.StringIO(text))
        assert A.to_dense()[0, 0] == 3.5

    def test_one_based_indexing(self):
        text = "%%MatrixMarket matrix coordinate real general\n3 3 1\n3 3 9.0\n"
        A = read_matrix_market(io.StringIO(text))
        assert A.to_dense()[2, 2] == 9.0


class TestReaderErrors:
    def test_missing_header(self):
        with pytest.raises(FormatError, match="header"):
            read_matrix_market(io.StringIO("1 1 0\n"))

    def test_array_format_rejected(self):
        text = "%%MatrixMarket matrix array real general\n2 2\n1.0\n"
        with pytest.raises(FormatError, match="coordinate"):
            read_matrix_market(io.StringIO(text))

    def test_complex_field_rejected(self):
        text = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n"
        with pytest.raises(FormatError, match="field"):
            read_matrix_market(io.StringIO(text))

    def test_too_few_entries(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n"
        with pytest.raises(FormatError, match="declared 3"):
            read_matrix_market(io.StringIO(text))

    def test_too_many_entries(self):
        text = ("%%MatrixMarket matrix coordinate real general\n"
                "2 2 1\n1 1 1.0\n2 2 2.0\n")
        with pytest.raises(FormatError, match="more entries"):
            read_matrix_market(io.StringIO(text))

    def test_bad_size_line(self):
        text = "%%MatrixMarket matrix coordinate real general\nfoo bar\n"
        with pytest.raises(FormatError, match="size line"):
            read_matrix_market(io.StringIO(text))

    def test_missing_value(self):
        text = "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1\n"
        with pytest.raises(FormatError, match="missing value"):
            read_matrix_market(io.StringIO(text))


class TestEntryStreaming:
    def test_chunks_reassemble_exactly(self):
        from repro.sparse import iter_matrix_market_entries

        A = random_sparse(40, 15, 0.2, seed=44)
        buf = io.StringIO()
        write_matrix_market(A, buf)
        buf.seek(0)
        rows, cols, vals = [], [], []
        shapes = set()
        for shape, r, c, v in iter_matrix_market_entries(buf, chunk=7):
            shapes.add(shape)
            rows.append(r); cols.append(c); vals.append(v)
        assert shapes == {(40, 15, A.nnz)}
        from repro.sparse import COOMatrix

        back = COOMatrix((40, 15), np.concatenate(rows),
                         np.concatenate(cols), np.concatenate(vals)).to_csc()
        np.testing.assert_array_equal(back.to_dense(), A.to_dense())

    def test_chunk_sizes_respected(self):
        from repro.sparse import iter_matrix_market_entries

        A = random_sparse(30, 10, 0.3, seed=45)
        buf = io.StringIO()
        write_matrix_market(A, buf)
        buf.seek(0)
        sizes = [r.size for _, r, _, _ in
                 iter_matrix_market_entries(buf, chunk=13)]
        assert all(s == 13 for s in sizes[:-1])
        assert 0 < sizes[-1] <= 13
        assert sum(sizes) == A.nnz

    def test_symmetric_rejected(self):
        from repro.sparse import iter_matrix_market_entries

        text = ("%%MatrixMarket matrix coordinate real symmetric\n"
                "2 2 1\n1 1 1.0\n")
        with pytest.raises(FormatError, match="general"):
            list(iter_matrix_market_entries(io.StringIO(text)))

    def test_declared_count_enforced(self):
        from repro.sparse import iter_matrix_market_entries

        text = ("%%MatrixMarket matrix coordinate real general\n"
                "2 2 3\n1 1 1.0\n")
        with pytest.raises(FormatError, match="declared 3"):
            list(iter_matrix_market_entries(io.StringIO(text)))

    def test_bad_chunk(self):
        from repro.sparse import iter_matrix_market_entries

        with pytest.raises(FormatError):
            list(iter_matrix_market_entries(io.StringIO(""), chunk=0))
