"""Tests for repro.sparse.blocked_csr and convert."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.sparse import (
    BlockedCSR,
    CSRMatrix,
    blocked_csr_workspace_bytes,
    csc_to_blocked_csr,
    random_sparse,
)


class TestConversion:
    def test_content_preserved(self):
        A = random_sparse(50, 23, 0.15, seed=11)
        B, _ = csc_to_blocked_csr(A, 7)
        np.testing.assert_array_equal(B.to_dense(), A.to_dense())

    def test_block_count(self):
        A = random_sparse(10, 23, 0.2, seed=12)
        B, stats = csc_to_blocked_csr(A, 7)
        assert B.n_blocks == 4  # ceil(23 / 7)
        assert stats.n_blocks == 4

    def test_ragged_last_block(self):
        A = random_sparse(10, 23, 0.2, seed=12)
        B, _ = csc_to_blocked_csr(A, 7)
        assert B.block_width(3) == 2

    def test_blocks_use_local_indices(self):
        A = random_sparse(10, 9, 0.3, seed=13)
        B, _ = csc_to_blocked_csr(A, 3)
        for j0, blk in B.iter_blocks():
            if blk.nnz:
                assert blk.indices.max() < 3

    def test_single_block(self):
        A = random_sparse(10, 5, 0.3, seed=14)
        B, _ = csc_to_blocked_csr(A, 100)
        assert B.n_blocks == 1
        np.testing.assert_array_equal(B.to_dense(), A.to_dense())

    def test_width_one_blocks(self):
        A = random_sparse(10, 5, 0.3, seed=15)
        B, _ = csc_to_blocked_csr(A, 1)
        assert B.n_blocks == 5
        np.testing.assert_array_equal(B.to_dense(), A.to_dense())

    def test_nnz_preserved(self):
        A = random_sparse(40, 17, 0.1, seed=16)
        B, _ = csc_to_blocked_csr(A, 5)
        assert B.nnz == A.nnz


class TestConversionStats:
    def test_op_count_formula(self):
        # Section III-B: O(ceil(n/b_n) * m + nnz).
        A = random_sparse(30, 20, 0.1, seed=17)
        _, stats = csc_to_blocked_csr(A, 6)
        n_blocks = -(-20 // 6)
        assert stats.op_count == n_blocks * 30 + A.nnz

    def test_critical_path_shrinks_with_threads(self):
        A = random_sparse(30, 40, 0.1, seed=18)
        _, s1 = csc_to_blocked_csr(A, 4, threads=1)
        _, s4 = csc_to_blocked_csr(A, 4, threads=4)
        assert s4.critical_path_ops <= s1.critical_path_ops
        assert s1.critical_path_ops == s1.op_count

    def test_workspace_bytes(self):
        assert blocked_csr_workspace_bytes(100, 4) == 8 * 100 * 4

    def test_timed(self):
        A = random_sparse(30, 20, 0.1, seed=19)
        _, stats = csc_to_blocked_csr(A, 6)
        assert stats.seconds >= 0.0


class TestBlockedCSRValidation:
    def test_bad_block_starts(self):
        blk = CSRMatrix((3, 2), np.zeros(4, dtype=np.int64),
                        np.array([], dtype=np.int64), np.array([]))
        with pytest.raises(FormatError):
            BlockedCSR((3, 4), np.array([0, 2, 3]), [blk])  # wrong count

    def test_block_shape_mismatch(self):
        blk = CSRMatrix((3, 3), np.zeros(4, dtype=np.int64),
                        np.array([], dtype=np.int64), np.array([]))
        with pytest.raises(FormatError, match="shape"):
            BlockedCSR((3, 4), np.array([0, 2, 4]), [blk, blk])

    def test_memory_bytes(self):
        A = random_sparse(10, 8, 0.3, seed=20)
        B, _ = csc_to_blocked_csr(A, 4)
        assert B.memory_bytes > 0

    def test_repr(self):
        A = random_sparse(10, 8, 0.3, seed=21)
        B, _ = csc_to_blocked_csr(A, 4)
        assert "BlockedCSR" in repr(B)
