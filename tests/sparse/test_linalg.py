"""Tests for repro.sparse.linalg."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import (
    column_norms,
    condition_number,
    frobenius_norm,
    near_rank_deficient,
    random_sparse,
    scale_columns,
)


@pytest.fixture
def A():
    return random_sparse(40, 15, 0.2, seed=51)


class TestColumnNorms:
    def test_matches_dense(self, A):
        np.testing.assert_allclose(
            column_norms(A), np.linalg.norm(A.to_dense(), axis=0)
        )

    def test_empty_column(self):
        from repro.sparse import CSCMatrix

        M = CSCMatrix((3, 2), np.array([0, 1, 1]), np.array([0]),
                      np.array([2.0]))
        norms = column_norms(M)
        assert norms[0] == 2.0
        assert norms[1] == 0.0


class TestFrobenius:
    def test_matches_dense(self, A):
        assert frobenius_norm(A) == pytest.approx(
            np.linalg.norm(A.to_dense(), "fro")
        )


class TestConditionNumber:
    def test_well_conditioned(self, A):
        c = condition_number(A)
        expected = np.linalg.cond(A.to_dense())
        assert c == pytest.approx(expected, rel=1e-8)

    def test_singular_matrix(self):
        from repro.sparse import CSCMatrix

        # Rank-1 matrix: cond is inf over min(m, n) singular values.
        dense = np.outer(np.ones(4), np.ones(3))
        M = CSCMatrix.from_dense(dense)
        assert condition_number(M) == float("inf")

    def test_near_deficient_is_huge(self):
        M = near_rank_deficient(100, 8, 0.3, seed=1, perturb=1e-13)
        assert condition_number(M) > 1e9


class TestScaleColumns:
    def test_matches_dense(self, A):
        scale = np.linspace(0.5, 2.0, 15)
        got = scale_columns(A, scale)
        np.testing.assert_allclose(got.to_dense(), A.to_dense() * scale)

    def test_shape_check(self, A):
        with pytest.raises(ShapeError):
            scale_columns(A, np.ones(3))

    def test_original_unchanged(self, A):
        before = A.data.copy()
        scale_columns(A, np.full(15, 3.0))
        np.testing.assert_array_equal(A.data, before)
