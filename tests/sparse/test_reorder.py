"""Tests for repro.sparse.reorder (permutations + reverse Cuthill-McKee)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import CSCMatrix, random_sparse
from repro.sparse.reorder import (
    pattern_bandwidth,
    permute,
    rcm_ordering,
    symmetrize_pattern,
)


def _banded_square(n=40, band=3, seed=1):
    rng = np.random.default_rng(seed)
    dense = np.zeros((n, n))
    for i in range(n):
        for j in range(max(0, i - band), min(n, i + band + 1)):
            if rng.random() < 0.6 or i == j:
                dense[i, j] = rng.standard_normal()
    return CSCMatrix.from_dense(dense)


class TestPermute:
    def test_matches_dense_fancy_indexing(self):
        A = random_sparse(12, 9, 0.3, seed=2)
        rp = np.random.default_rng(0).permutation(12)
        cp = np.random.default_rng(1).permutation(9)
        got = permute(A, rp, cp)
        np.testing.assert_array_equal(got.to_dense(),
                                      A.to_dense()[rp][:, cp])
        got.validate()

    def test_row_only(self):
        A = random_sparse(10, 6, 0.3, seed=3)
        rp = np.arange(10)[::-1].copy()
        np.testing.assert_array_equal(permute(A, rp).to_dense(),
                                      A.to_dense()[rp])

    def test_col_only(self):
        A = random_sparse(10, 6, 0.3, seed=4)
        cp = np.arange(6)[::-1].copy()
        np.testing.assert_array_equal(permute(A, col_perm=cp).to_dense(),
                                      A.to_dense()[:, cp])

    def test_identity(self):
        A = random_sparse(8, 8, 0.3, seed=5)
        got = permute(A, np.arange(8), np.arange(8))
        np.testing.assert_array_equal(got.to_dense(), A.to_dense())

    def test_invalid_permutation(self):
        A = random_sparse(5, 5, 0.3, seed=6)
        with pytest.raises(ShapeError):
            permute(A, np.array([0, 0, 1, 2, 3]))

    def test_inverse_roundtrip(self):
        A = random_sparse(15, 15, 0.2, seed=7)
        p = np.random.default_rng(2).permutation(15)
        inv = np.argsort(p)
        back = permute(permute(A, p), inv)
        np.testing.assert_array_equal(back.to_dense(), A.to_dense())


class TestBandwidth:
    def test_diagonal_is_zero(self):
        A = CSCMatrix.from_dense(np.eye(5))
        assert pattern_bandwidth(A) == 0

    def test_known_band(self):
        A = _banded_square(n=20, band=4, seed=8)
        assert pattern_bandwidth(A) <= 4

    def test_rectangular_rejected(self):
        with pytest.raises(ShapeError):
            pattern_bandwidth(random_sparse(4, 5, 0.5, seed=9))


class TestSymmetrizePattern:
    def test_square_symmetric(self):
        A = random_sparse(10, 10, 0.2, seed=10)
        adj = symmetrize_pattern(A)
        for u, nbrs in enumerate(adj):
            for v in nbrs:
                assert u in adj[int(v)]
            assert u not in nbrs  # no self loops

    def test_rectangular_column_graph(self):
        # Two columns sharing a row must be adjacent.
        dense = np.zeros((4, 3))
        dense[0, 0] = dense[0, 2] = 1.0  # columns 0 and 2 share row 0
        dense[2, 1] = 1.0
        adj = symmetrize_pattern(CSCMatrix.from_dense(dense))
        assert 2 in adj[0] and 0 in adj[2]
        assert adj[1].size == 0


class TestRcmOrdering:
    def test_is_permutation(self):
        A = random_sparse(25, 25, 0.1, seed=11)
        order = rcm_ordering(A)
        assert sorted(order.tolist()) == list(range(25))

    def test_reduces_bandwidth_of_shuffled_band(self):
        """RCM recovers a narrow band from a randomly shuffled one."""
        A = _banded_square(n=60, band=2, seed=12)
        p = np.random.default_rng(3).permutation(60)
        shuffled = permute(A, p, p)
        assert pattern_bandwidth(shuffled) > 10  # shuffle destroyed the band
        order = rcm_ordering(shuffled)
        recovered = permute(shuffled, order, order)
        assert pattern_bandwidth(recovered) < pattern_bandwidth(shuffled) / 2

    def test_competitive_with_networkx(self):
        """Bandwidth within 2x of networkx's RCM (independent oracle)."""
        import networkx as nx

        A = _banded_square(n=50, band=3, seed=13)
        p = np.random.default_rng(4).permutation(50)
        shuffled = permute(A, p, p)
        ours = rcm_ordering(shuffled)
        ours_bw = pattern_bandwidth(permute(shuffled, ours, ours))

        G = nx.Graph()
        G.add_nodes_from(range(50))
        coo = shuffled.to_coo()
        G.add_edges_from((int(r), int(c)) for r, c in zip(coo.rows, coo.cols)
                         if r != c)
        nx_order = np.array(list(nx.utils.reverse_cuthill_mckee_ordering(G)))
        nx_bw = pattern_bandwidth(permute(shuffled, nx_order, nx_order))
        assert ours_bw <= 2 * max(nx_bw, 1)

    def test_disconnected_components(self):
        dense = np.zeros((6, 6))
        dense[0, 1] = dense[1, 0] = 1.0
        dense[4, 5] = dense[5, 4] = 1.0
        for i in range(6):
            dense[i, i] = 1.0
        order = rcm_ordering(CSCMatrix.from_dense(dense))
        assert sorted(order.tolist()) == list(range(6))


class TestOrderingEffects:
    def test_row_permutation_preserves_algo4_rng_volume(self):
        """A row permutation bijects each block's nonempty-row set, so
        Algorithm 4's generated-sample count is exactly invariant."""
        from repro.kernels import sketch_spmm
        from repro.rng import PhiloxSketchRNG
        from repro.sparse import banded_sparse

        A = banded_sparse(300, 30, 0.05, bandwidth_frac=0.05, seed=14)
        p = np.random.default_rng(5).permutation(300)
        shuffled = permute(A, p)
        d, b_n = 20, 6
        _, ordered = sketch_spmm(A, d, PhiloxSketchRNG(0), kernel="algo4",
                                 b_d=d, b_n=b_n)
        _, scrambled = sketch_spmm(shuffled, d, PhiloxSketchRNG(0),
                                   kernel="algo4", b_d=d, b_n=b_n)
        assert ordered.samples_generated == scrambled.samples_generated

    def test_column_ordering_cuts_algo4_rng_volume(self):
        """Column ordering decides which columns share a vertical block:
        scattering a band's columns destroys row co-occurrence and raises
        Algorithm 4's generated-sample count."""
        from repro.kernels import sketch_spmm
        from repro.rng import PhiloxSketchRNG
        from repro.sparse import banded_sparse

        A = banded_sparse(600, 60, 0.03, bandwidth_frac=0.03, seed=15)
        cp = np.random.default_rng(6).permutation(60)
        shuffled = permute(A, col_perm=cp)
        d, b_n = 20, 10
        _, ordered = sketch_spmm(A, d, PhiloxSketchRNG(0), kernel="algo4",
                                 b_d=d, b_n=b_n)
        _, scrambled = sketch_spmm(shuffled, d, PhiloxSketchRNG(0),
                                   kernel="algo4", b_d=d, b_n=b_n)
        assert ordered.samples_generated < scrambled.samples_generated

    def test_rcm_reduces_qr_fill(self):
        """Column ordering reduces Givens-QR fill-in on band-like problems
        (the knob that would narrow Table XI's memory gap)."""
        from repro.lsq import givens_qr_factorize

        rng = np.random.default_rng(6)
        n = 40
        dense = np.zeros((120, n))
        for i in range(120):
            c = int(i * n / 120)
            for j in range(max(0, c - 2), min(n, c + 3)):
                dense[i, j] = rng.standard_normal()
        A = CSCMatrix.from_dense(dense)
        cp = rng.permutation(n)
        scrambled = permute(A, col_perm=cp)
        fill_scrambled = givens_qr_factorize(scrambled, np.zeros(120)).nnz
        order = rcm_ordering(scrambled)
        restored = permute(scrambled, col_perm=order)
        fill_restored = givens_qr_factorize(restored, np.zeros(120)).nnz
        assert fill_restored <= fill_scrambled
