"""Property-based tests (hypothesis) for the sparse substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sparse import COOMatrix, CSCMatrix, csc_to_blocked_csr, random_sparse


@st.composite
def dense_matrices(draw, max_dim=12):
    m = draw(st.integers(min_value=1, max_value=max_dim))
    n = draw(st.integers(min_value=1, max_value=max_dim))
    # Values from a small set including zeros so patterns are sparse-ish.
    vals = draw(arrays(np.float64, (m, n),
                       elements=st.sampled_from([0.0, 0.0, 0.0, 1.0, -2.5, 3.25])))
    return vals


@st.composite
def sparse_matrices(draw):
    m = draw(st.integers(min_value=2, max_value=40))
    n = draw(st.integers(min_value=2, max_value=20))
    density = draw(st.floats(min_value=0.01, max_value=0.5))
    seed = draw(st.integers(min_value=0, max_value=1000))
    return random_sparse(m, n, density, seed=seed)


class TestFormatRoundTrips:
    @given(dense_matrices())
    @settings(max_examples=40)
    def test_dense_coo_dense(self, dense):
        np.testing.assert_array_equal(
            COOMatrix.from_dense(dense).to_dense(), dense
        )

    @given(dense_matrices())
    @settings(max_examples=40)
    def test_dense_csc_dense(self, dense):
        np.testing.assert_array_equal(
            CSCMatrix.from_dense(dense).to_dense(), dense
        )

    @given(sparse_matrices())
    @settings(max_examples=30)
    def test_csc_csr_csc(self, A):
        back = A.to_csr().to_csc()
        np.testing.assert_array_equal(back.to_dense(), A.to_dense())
        back.validate()

    @given(sparse_matrices())
    @settings(max_examples=30)
    def test_csc_coo_csc(self, A):
        back = A.to_coo().to_csc()
        np.testing.assert_array_equal(back.to_dense(), A.to_dense())

    @given(sparse_matrices())
    @settings(max_examples=30)
    def test_double_transpose_identity(self, A):
        back = A.transpose().transpose()
        np.testing.assert_array_equal(back.to_dense(), A.to_dense())


class TestBlockedCsrProperties:
    @given(sparse_matrices(), st.integers(min_value=1, max_value=25))
    @settings(max_examples=30)
    def test_blocked_csr_any_width(self, A, b_n):
        B, stats = csc_to_blocked_csr(A, b_n)
        np.testing.assert_array_equal(B.to_dense(), A.to_dense())
        assert B.nnz == A.nnz
        assert stats.n_blocks == -(-A.shape[1] // b_n)

    @given(sparse_matrices(), st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=20)
    def test_conversion_thread_invariant(self, A, t1, t2):
        """The built structure is identical for any accounted thread count."""
        B1, _ = csc_to_blocked_csr(A, 4, threads=t1)
        B2, _ = csc_to_blocked_csr(A, 4, threads=t2)
        np.testing.assert_array_equal(B1.to_dense(), B2.to_dense())


class TestSliceProperties:
    @given(sparse_matrices(), st.data())
    @settings(max_examples=30)
    def test_col_block_consistency(self, A, data):
        n = A.shape[1]
        j0 = data.draw(st.integers(min_value=0, max_value=n))
        j1 = data.draw(st.integers(min_value=j0, max_value=n))
        blk = A.col_block(j0, j1)
        np.testing.assert_array_equal(blk.to_dense(), A.to_dense()[:, j0:j1])

    @given(sparse_matrices())
    @settings(max_examples=30)
    def test_col_blocks_tile(self, A):
        """Concatenated width-3 blocks reconstruct the matrix."""
        n = A.shape[1]
        parts = [A.col_block(j, min(j + 3, n)).to_dense()
                 for j in range(0, n, 3)]
        np.testing.assert_array_equal(np.hstack(parts), A.to_dense())


class TestScipyAgreement:
    @given(sparse_matrices())
    @settings(max_examples=25)
    def test_matches_scipy_csc(self, A):
        import scipy.sparse as sp

        ours = A.to_dense()
        theirs = sp.csc_matrix(
            (A.data, A.indices, A.indptr), shape=A.shape
        ).toarray()
        np.testing.assert_array_equal(ours, theirs)
