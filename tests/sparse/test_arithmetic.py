"""Tests for repro.sparse.arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.sparse import CSCMatrix, random_sparse
from repro.sparse.arithmetic import (
    add,
    diagonal,
    elementwise_multiply,
    gram,
    hstack,
    matmul,
    prune,
    scale,
    vstack,
)


@pytest.fixture
def A():
    return random_sparse(25, 12, 0.2, seed=1001)


@pytest.fixture
def B():
    return random_sparse(25, 12, 0.25, seed=1002)


class TestAdd:
    def test_matches_dense(self, A, B):
        got = add(A, B, 2.0, -0.5)
        np.testing.assert_allclose(got.to_dense(),
                                   2.0 * A.to_dense() - 0.5 * B.to_dense())

    def test_cancellation_pruned(self, A):
        got = add(A, A, 1.0, -1.0)
        assert got.nnz == 0
        np.testing.assert_array_equal(got.to_dense(), np.zeros(A.shape))

    def test_shape_mismatch(self, A):
        with pytest.raises(ShapeError):
            add(A, random_sparse(5, 5, 0.2, seed=1))

    def test_result_valid(self, A, B):
        add(A, B).validate()


class TestScale:
    def test_matches_dense(self, A):
        np.testing.assert_allclose(scale(A, -3.5).to_dense(),
                                   -3.5 * A.to_dense())

    def test_original_unchanged(self, A):
        before = A.data.copy()
        scale(A, 7.0)
        np.testing.assert_array_equal(A.data, before)


class TestElementwiseMultiply:
    def test_matches_dense(self, A, B):
        got = elementwise_multiply(A, B)
        np.testing.assert_allclose(got.to_dense(),
                                   A.to_dense() * B.to_dense())

    def test_pattern_intersection(self, A, B):
        got = elementwise_multiply(A, B)
        mask = (A.to_dense() != 0) & (B.to_dense() != 0)
        assert got.nnz <= mask.sum()

    def test_self_product(self, A):
        got = elementwise_multiply(A, A)
        np.testing.assert_allclose(got.to_dense(), A.to_dense() ** 2)


class TestMatmul:
    def test_matches_dense(self):
        A = random_sparse(10, 15, 0.3, seed=1003)
        B = random_sparse(15, 8, 0.3, seed=1004)
        got = matmul(A, B)
        np.testing.assert_allclose(got.to_dense(),
                                   A.to_dense() @ B.to_dense(), atol=1e-12)
        got.validate()

    def test_matches_scipy(self):
        A = random_sparse(20, 12, 0.2, seed=1005)
        B = random_sparse(12, 9, 0.25, seed=1006)
        expected = (A.to_scipy() @ B.to_scipy()).toarray()
        np.testing.assert_allclose(matmul(A, B).to_dense(), expected,
                                   atol=1e-12)

    def test_inner_dim_mismatch(self):
        with pytest.raises(ShapeError):
            matmul(random_sparse(4, 5, 0.5, seed=1),
                   random_sparse(6, 4, 0.5, seed=2))

    def test_empty_result(self):
        A = CSCMatrix((3, 2), np.array([0, 0, 0]), np.array([], dtype=np.int64),
                      np.array([]))
        B = random_sparse(2, 4, 0.5, seed=3)
        got = matmul(A, B)
        assert got.nnz == 0
        assert got.shape == (3, 4)

    def test_gram(self, A):
        G = gram(A)
        np.testing.assert_allclose(G.to_dense(),
                                   A.to_dense().T @ A.to_dense(), atol=1e-12)
        # Gram matrices are symmetric.
        np.testing.assert_allclose(G.to_dense(), G.to_dense().T, atol=1e-12)


class TestPrune:
    def test_drops_explicit_zeros(self):
        M = CSCMatrix((2, 2), np.array([0, 1, 2]), np.array([0, 1]),
                      np.array([0.0, 5.0]))
        got = prune(M)
        assert got.nnz == 1
        np.testing.assert_array_equal(got.to_dense(), M.to_dense())

    def test_tolerance(self, A):
        got = prune(A, tol=0.5)
        assert np.all(np.abs(got.data) > 0.5)
        dense = A.to_dense().copy()
        dense[np.abs(dense) <= 0.5] = 0.0
        np.testing.assert_array_equal(got.to_dense(), dense)

    def test_noop_when_clean(self, A):
        got = prune(A)
        np.testing.assert_array_equal(got.to_dense(), A.to_dense())

    def test_negative_tol(self, A):
        with pytest.raises(ShapeError):
            prune(A, tol=-1.0)


class TestDiagonal:
    def test_matches_dense(self, A):
        np.testing.assert_array_equal(diagonal(A), np.diag(A.to_dense()))

    def test_wide_matrix(self):
        M = random_sparse(4, 9, 0.4, seed=1007)
        np.testing.assert_array_equal(diagonal(M), np.diag(M.to_dense()))


class TestStacking:
    def test_hstack_matches_dense(self, A, B):
        got = hstack([A, B])
        np.testing.assert_array_equal(
            got.to_dense(), np.hstack([A.to_dense(), B.to_dense()])
        )
        got.validate()

    def test_vstack_matches_dense(self, A, B):
        got = vstack([A, B])
        np.testing.assert_array_equal(
            got.to_dense(), np.vstack([A.to_dense(), B.to_dense()])
        )
        got.validate()

    def test_hstack_row_mismatch(self, A):
        with pytest.raises(ShapeError):
            hstack([A, random_sparse(5, 3, 0.5, seed=1)])

    def test_vstack_col_mismatch(self, A):
        with pytest.raises(ShapeError):
            vstack([A, random_sparse(5, 3, 0.5, seed=1)])

    def test_empty_list(self):
        with pytest.raises(ShapeError):
            hstack([])


class TestAlgebraProperties:
    @given(st.integers(min_value=0, max_value=50),
           st.floats(min_value=-3, max_value=3, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_add_commutes(self, seed, alpha):
        A = random_sparse(12, 8, 0.3, seed=seed)
        B = random_sparse(12, 8, 0.3, seed=seed + 1)
        ab = add(A, B, alpha, 1.0).to_dense()
        ba = add(B, A, 1.0, alpha).to_dense()
        np.testing.assert_allclose(ab, ba, atol=1e-12)

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_matmul_associates_with_dense(self, seed):
        A = random_sparse(6, 7, 0.4, seed=seed)
        B = random_sparse(7, 5, 0.4, seed=seed + 1)
        C = random_sparse(5, 4, 0.4, seed=seed + 2)
        left = matmul(matmul(A, B), C).to_dense()
        right = matmul(A, matmul(B, C)).to_dense()
        np.testing.assert_allclose(left, right, atol=1e-10)

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_transpose_product_identity(self, seed):
        A = random_sparse(9, 6, 0.4, seed=seed)
        B = random_sparse(6, 7, 0.4, seed=seed + 1)
        lhs = matmul(A, B).transpose().to_dense()
        rhs = matmul(B.transpose(), A.transpose()).to_dense()
        np.testing.assert_allclose(lhs, rhs, atol=1e-12)
