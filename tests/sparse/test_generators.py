"""Tests for repro.sparse.generators."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sparse import (
    abnormal_a,
    abnormal_b,
    abnormal_c,
    banded_sparse,
    fixed_col_nnz_sparse,
    near_rank_deficient,
    pattern_density_grid,
    random_sparse,
    setcover_sparse,
)


class TestRandomSparse:
    def test_exact_nnz(self):
        A = random_sparse(100, 50, 0.1, seed=1)
        assert A.nnz == 500

    def test_deterministic(self):
        a = random_sparse(50, 20, 0.1, seed=5)
        b = random_sparse(50, 20, 0.1, seed=5)
        np.testing.assert_array_equal(a.to_dense(), b.to_dense())

    def test_seed_changes_pattern(self):
        a = random_sparse(50, 20, 0.1, seed=5)
        b = random_sparse(50, 20, 0.1, seed=6)
        assert not np.array_equal(a.to_dense(), b.to_dense())

    def test_no_stored_zeros(self):
        A = random_sparse(80, 40, 0.05, seed=2)
        assert np.all(A.data != 0.0)

    def test_value_kinds(self):
        pm1 = random_sparse(50, 20, 0.1, seed=3, values="pm1")
        assert set(np.unique(pm1.data)) <= {-1.0, 1.0}
        ones = random_sparse(50, 20, 0.1, seed=3, values="ones")
        assert np.all(ones.data == 1.0)

    def test_density_bounds(self):
        with pytest.raises(ConfigError):
            random_sparse(10, 10, 1.5)

    def test_full_density(self):
        A = random_sparse(6, 5, 1.0, seed=4)
        assert A.nnz == 30

    def test_large_space_sampling_path(self):
        # Exercises the oversampling branch (space > 2^22).
        A = random_sparse(3000, 3000, 1e-5, seed=7)
        assert A.nnz == 90
        A.validate()


class TestFixedColNnz:
    def test_column_counts(self):
        A = fixed_col_nnz_sparse(100, 30, 7, seed=1)
        np.testing.assert_array_equal(A.col_nnz(), np.full(30, 7))

    def test_pm1_values(self):
        A = fixed_col_nnz_sparse(50, 10, 4, seed=2)
        assert set(np.unique(A.data)) <= {-1.0, 1.0}

    def test_k_exceeds_m(self):
        with pytest.raises(ConfigError):
            fixed_col_nnz_sparse(5, 3, 10)

    def test_no_duplicate_rows_per_column(self):
        A = fixed_col_nnz_sparse(20, 8, 5, seed=3)
        A.validate()  # strictly increasing row indices per column


class TestBandedSparse:
    def test_band_confinement(self):
        A = banded_sparse(200, 40, 0.05, bandwidth_frac=0.05, seed=1)
        coo = A.to_coo()
        centers = coo.cols * 200 // 40
        assert np.all(np.abs(coo.rows - centers) <= 0.05 * 200 + 1)

    def test_density_approx(self):
        A = banded_sparse(300, 30, 0.02, bandwidth_frac=0.1, seed=2)
        assert A.density == pytest.approx(0.02, rel=0.5)

    def test_invalid_bandwidth(self):
        with pytest.raises(ConfigError):
            banded_sparse(10, 5, 0.1, bandwidth_frac=0.0)


class TestAbnormalPatterns:
    def test_abnormal_a_structure(self):
        A = abnormal_a(100, 20, period=10, seed=1)
        dense = A.to_dense()
        row_counts = (dense != 0).sum(axis=1)
        assert np.all(row_counts[::10] == 20)      # dense rows
        mask = np.ones(100, dtype=bool)
        mask[::10] = False
        assert np.all(row_counts[mask] == 0)       # all others empty

    def test_abnormal_a_density(self):
        A = abnormal_a(1000, 50, period=10, seed=1)
        assert A.density == pytest.approx(0.1, rel=0.01)

    def test_abnormal_c_structure(self):
        A = abnormal_c(40, 100, period=10, seed=1)
        counts = A.col_nnz()
        assert np.all(counts[::10] == 40)
        mask = np.ones(100, dtype=bool)
        mask[::10] = False
        assert np.all(counts[mask] == 0)

    def test_abnormal_b_concentration(self):
        A = abnormal_b(300, 90, density=0.05, middle_frac=0.95, seed=1)
        j_lo, j_hi = 30, 60
        counts = A.col_nnz()
        mid = counts[j_lo:j_hi].sum()
        assert mid / A.nnz > 0.85

    def test_abnormal_b_needs_columns(self):
        with pytest.raises(ConfigError, match="middle third"):
            abnormal_b(10, 2, density=0.5)

    def test_abnormal_transposition_relation(self):
        # Abnormal_C is the transpose structure of Abnormal_A.
        Aa = abnormal_a(60, 30, period=6, seed=2)
        Ac = abnormal_c(30, 60, period=6, seed=2)
        assert Aa.nnz == Ac.nnz


class TestSetcover:
    def test_values_are_unit(self):
        A = setcover_sparse(200, 20, 600, seed=1)
        assert set(np.unique(A.data)) == {1.0}

    def test_every_column_covered(self):
        A = setcover_sparse(300, 40, 400, seed=2)
        assert np.all(A.col_nnz() >= 1)

    def test_heavy_tail_rows(self):
        A = setcover_sparse(500, 30, 3000, seed=3)
        row_counts = np.diff(A.to_csr().indptr)
        # Top 10% of rows should hold well over 10% of entries.
        top = np.sort(row_counts)[-50:].sum()
        assert top / A.nnz > 0.2

    def test_nnz_floor(self):
        with pytest.raises(ConfigError):
            setcover_sparse(10, 20, 5)


class TestNearRankDeficient:
    def test_condition_is_huge(self):
        from repro.sparse import condition_number

        A = near_rank_deficient(150, 12, 0.2, seed=1, perturb=1e-14)
        assert condition_number(A) > 1e10

    def test_base_is_well_conditioned(self):
        from repro.sparse import condition_number

        A = random_sparse(150, 12, 0.2, seed=1)
        assert condition_number(A) < 1e4

    def test_dup_cols_bound(self):
        with pytest.raises(ConfigError):
            near_rank_deficient(50, 5, 0.2, dup_cols=5)

    def test_valid_structure(self):
        A = near_rank_deficient(80, 10, 0.2, seed=2)
        A.validate()


class TestPatternDensityGrid:
    def test_total_counts(self):
        A = random_sparse(100, 60, 0.1, seed=1)
        grid = pattern_density_grid(A, 10, 6)
        assert grid.sum() == A.nnz

    def test_abnormal_a_rows_visible(self):
        A = abnormal_a(100, 40, period=50, seed=1)
        grid = pattern_density_grid(A, 10, 4)
        # Dense rows at 0 and 50 -> bins 0 and 5 hot, others empty.
        assert grid[0].sum() > 0 and grid[5].sum() > 0
        assert grid[1].sum() == 0

    def test_grid_shape(self):
        A = random_sparse(50, 50, 0.1, seed=1)
        assert pattern_density_grid(A, 7, 9).shape == (7, 9)


class TestRailLike:
    def test_structure_valid(self):
        from repro.sparse import rail_like_sparse

        A = rail_like_sparse(400, 30, 3000, seed=1)
        A.validate()
        assert A.shape == (400, 30)

    def test_ill_conditioned_after_normalization(self):
        """The defining property: cond(AD) stays large (rail mechanism)."""
        from repro.sparse import (
            column_norms,
            condition_number,
            rail_like_sparse,
            scale_columns,
        )

        A = rail_like_sparse(800, 40, 6000, seed=2, mix_spread=2.5)
        D = 1.0 / column_norms(A)
        cond_ad = condition_number(scale_columns(A, D))
        assert cond_ad > 50

    def test_mix_spread_controls_conditioning(self):
        from repro.sparse import (
            column_norms,
            condition_number,
            rail_like_sparse,
            scale_columns,
        )

        def cond_ad(ms):
            A = rail_like_sparse(800, 40, 6000, seed=3, mix_spread=ms)
            return condition_number(scale_columns(A, 1.0 / column_norms(A)))

        assert cond_ad(3.0) > cond_ad(0.5)

    def test_positive_values(self):
        from repro.sparse import rail_like_sparse

        A = rail_like_sparse(300, 20, 2000, seed=4)
        assert np.all(A.data > 0)

    def test_deterministic(self):
        from repro.sparse import rail_like_sparse

        a = rail_like_sparse(200, 16, 1200, seed=5)
        b = rail_like_sparse(200, 16, 1200, seed=5)
        np.testing.assert_array_equal(a.to_dense(), b.to_dense())

    def test_validation(self):
        from repro.sparse import rail_like_sparse

        with pytest.raises(ConfigError):
            rail_like_sparse(10, 5, 40, mix_spread=-1.0)
        with pytest.raises(ConfigError):
            rail_like_sparse(3, 5, 1000)  # per-column entries exceed rows
