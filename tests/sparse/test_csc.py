"""Tests for repro.sparse.csc."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.sparse import CSCMatrix, random_sparse


def _toy():
    # [[1, 0, 2], [0, 3, 0]]
    return CSCMatrix((2, 3), np.array([0, 1, 2, 3]), np.array([0, 1, 0]),
                     np.array([1.0, 3.0, 2.0]))


class TestValidation:
    def test_valid(self):
        _toy().validate()

    def test_bad_indptr_length(self):
        with pytest.raises(FormatError, match="length n\\+1"):
            CSCMatrix((2, 3), np.array([0, 1, 2]), np.array([0, 1]),
                      np.array([1.0, 1.0]))

    def test_indptr_must_start_zero(self):
        with pytest.raises(FormatError, match="indptr\\[0\\]"):
            CSCMatrix((2, 2), np.array([1, 1, 2]), np.array([0, 0]),
                      np.array([1.0, 1.0]))

    def test_decreasing_indptr(self):
        with pytest.raises(FormatError, match="non-decreasing"):
            CSCMatrix((2, 2), np.array([0, 2, 1]), np.array([0, 1]),
                      np.array([1.0, 1.0]))

    def test_index_out_of_range(self):
        with pytest.raises(FormatError, match="out of range"):
            CSCMatrix((2, 2), np.array([0, 1, 1]), np.array([5]),
                      np.array([1.0]))

    def test_unsorted_rows_in_column(self):
        with pytest.raises(FormatError, match="strictly increasing"):
            CSCMatrix((3, 1), np.array([0, 2]), np.array([2, 0]),
                      np.array([1.0, 1.0]))

    def test_duplicate_rows_in_column(self):
        with pytest.raises(FormatError, match="strictly increasing"):
            CSCMatrix((3, 1), np.array([0, 2]), np.array([1, 1]),
                      np.array([1.0, 1.0]))


class TestAccessors:
    def test_nnz_density(self):
        A = _toy()
        assert A.nnz == 3
        assert A.density == pytest.approx(0.5)

    def test_col(self):
        rows, vals = _toy().col(1)
        np.testing.assert_array_equal(rows, [1])
        np.testing.assert_array_equal(vals, [3.0])

    def test_col_nnz(self):
        np.testing.assert_array_equal(_toy().col_nnz(), [1, 1, 1])

    def test_col_views_not_copies(self):
        A = _toy()
        rows, vals = A.col(0)
        assert vals.base is A.data or vals.base is A.data.base

    def test_memory_bytes(self):
        A = _toy()
        assert A.memory_bytes == A.indptr.nbytes + A.indices.nbytes + A.data.nbytes


class TestColBlock:
    def test_block_content(self):
        A = random_sparse(30, 12, 0.2, seed=1)
        blk = A.col_block(3, 9)
        np.testing.assert_array_equal(blk.to_dense(), A.to_dense()[:, 3:9])

    def test_block_is_view(self):
        A = random_sparse(30, 12, 0.2, seed=1)
        blk = A.col_block(0, 6)
        assert blk.data.base is A.data or blk.data.base is A.data.base

    def test_full_block(self):
        A = _toy()
        blk = A.col_block(0, 3)
        np.testing.assert_array_equal(blk.to_dense(), A.to_dense())

    def test_empty_block(self):
        A = _toy()
        blk = A.col_block(1, 1)
        assert blk.shape == (2, 0)
        assert blk.nnz == 0

    def test_out_of_range(self):
        with pytest.raises(ShapeError):
            _toy().col_block(0, 4)
        with pytest.raises(ShapeError):
            _toy().col_block(2, 1)


class TestConversions:
    def test_dense_roundtrip(self):
        A = random_sparse(25, 10, 0.15, seed=2)
        np.testing.assert_array_equal(
            CSCMatrix.from_dense(A.to_dense()).to_dense(), A.to_dense()
        )

    def test_to_csr_roundtrip(self):
        A = random_sparse(25, 10, 0.15, seed=3)
        np.testing.assert_array_equal(A.to_csr().to_dense(), A.to_dense())
        np.testing.assert_array_equal(A.to_csr().to_csc().to_dense(),
                                      A.to_dense())

    def test_to_coo(self):
        A = _toy()
        np.testing.assert_array_equal(A.to_coo().to_dense(), A.to_dense())

    def test_transpose(self):
        A = random_sparse(15, 8, 0.2, seed=4)
        np.testing.assert_array_equal(A.transpose().to_dense(), A.to_dense().T)

    def test_scipy_interop(self):
        A = random_sparse(20, 9, 0.2, seed=5)
        s = A.to_scipy()
        back = CSCMatrix.from_scipy(s)
        np.testing.assert_array_equal(back.to_dense(), A.to_dense())

    def test_csr_indices_sorted(self):
        A = random_sparse(40, 15, 0.2, seed=6)
        csr = A.to_csr()
        csr.validate()  # sorted columns within rows

    def test_repr(self):
        assert "CSCMatrix" in repr(_toy())
