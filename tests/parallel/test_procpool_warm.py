"""Warm-pool lifecycle of :class:`ProcessPoolSupervisor`.

The serving daemon keeps supervisors alive across requests: explicit
``start()`` / ``execute()`` / ``close()`` instead of the historical
one-shot ``run()``.  These tests pin the contract: warm executions are
bit-identical to serial runs, a plan swap reloads the workers in place,
deadline expiry taints the pool (and a tainted pool refuses work), and
a collapsed fleet is never silently resurrected.
"""

import time

import numpy as np
import pytest

from repro.core import SketchConfig
from repro.errors import ConfigError, TaskTimeoutError
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.parallel import WorkerPoolConfig
from repro.parallel.procpool import ProcessPoolSupervisor
from repro.plan import Planner, Runtime
from repro.sparse import random_sparse

POOL = WorkerPoolConfig(workers=2, heartbeat_timeout=2.0, backoff_base=0.0)


@pytest.fixture(scope="module")
def A():
    return random_sparse(120, 30, 0.1, seed=77)


def make_plan(A, *, d=24, seed=5, kernel="algo3"):
    cfg = SketchConfig(kernel=kernel, rng_kind="philox", seed=seed,
                       b_d=12, b_n=10)
    return Planner().compile(A, cfg, d=d, driver="process", pool=POOL)


def serial(A, plan):
    import dataclasses

    return Runtime().run(
        dataclasses.replace(plan, driver="serial"), A).sketch


@pytest.fixture
def pool(A):
    plan = make_plan(A)
    sup = ProcessPoolSupervisor(plan, A, plan.rng_factory())
    sup.start()
    yield sup
    sup.close()


class TestWarmReuse:
    def test_repeat_executions_bit_identical(self, A, pool):
        plan = pool.plan
        ref = serial(A, plan) / plan.scale()
        first, _ = pool.execute(plan, plan.rng_factory())
        second, _ = pool.execute(plan, plan.rng_factory())
        assert np.array_equal(first, ref)
        assert np.array_equal(second, ref)

    def test_warm_run_pays_no_conversion(self, A, pool):
        plan = pool.plan
        pool.execute(plan, plan.rng_factory())
        _, stats = pool.execute(plan, plan.rng_factory())
        assert stats.conversion_seconds == 0.0

    def test_plan_swap_reloads_workers(self, A, pool):
        plan2 = make_plan(A, d=36, seed=99)
        out, _ = pool.execute(plan2, plan2.rng_factory())
        assert out.shape == (36, A.shape[1])
        assert np.array_equal(out, serial(A, plan2) / plan2.scale())
        # and back again: the original plan still produces its bytes
        plan1 = make_plan(A)
        out1, _ = pool.execute(plan1, plan1.rng_factory())
        assert np.array_equal(out1, serial(A, plan1) / plan1.scale())

    def test_workers_survive_across_executions(self, A, pool):
        plan = pool.plan
        pool.execute(plan, plan.rng_factory())
        pids = pool.worker_pids()
        pool.execute(plan, plan.rng_factory())
        assert pool.worker_pids() == pids


class TestGuards:
    def test_execute_before_start_rejected(self, A):
        plan = make_plan(A)
        sup = ProcessPoolSupervisor(plan, A, plan.rng_factory())
        with pytest.raises(ConfigError, match="start"):
            sup.execute(plan, plan.rng_factory())

    def test_incompatible_plan_rejected(self, A, pool):
        other = make_plan(A, kernel="algo4")
        with pytest.raises(ConfigError, match="bound to kernel"):
            pool.execute(other, other.rng_factory())

    def test_start_and_close_idempotent(self, A):
        plan = make_plan(A)
        sup = ProcessPoolSupervisor(plan, A, plan.rng_factory())
        sup.start()
        sup.start()
        sup.close()
        sup.close()


class TestDeadline:
    def test_deadline_cancels_and_taints(self, A, pool):
        plan = pool.plan
        inj = FaultInjector(FaultPlan([
            FaultSpec(kind="hang_worker", sleep_seconds=5.0, max_hits=2),
        ]))
        with pytest.raises(TaskTimeoutError, match="deadline"):
            pool.execute(plan, plan.rng_factory(), injector=inj,
                         deadline=time.monotonic() + 0.5)
        assert pool.tainted
        # a tainted pool must refuse further work: stale workers may
        # still be writing into the shared output segment
        with pytest.raises(ConfigError, match="tainted"):
            pool.execute(plan, plan.rng_factory())

    def test_generous_deadline_is_harmless(self, A, pool):
        plan = pool.plan
        ref = serial(A, plan) / plan.scale()
        out, _ = pool.execute(plan, plan.rng_factory(),
                              deadline=time.monotonic() + 60.0)
        assert np.array_equal(out, ref)
        assert not pool.tainted


class TestRunCompatibility:
    def test_one_shot_run_still_works(self, A):
        """The historical ``run()`` (start + execute + close) contract."""
        plan = make_plan(A)
        sup = ProcessPoolSupervisor(plan, A, plan.rng_factory())
        out, stats = sup.run()
        assert np.array_equal(out * plan.scale(), serial(A, plan))
        assert stats.health.clean
