"""Tests for repro.parallel.bandwidth (saturating-bandwidth model)."""

import pytest

from repro.errors import ConfigError
from repro.model import FRONTERA, algo3_traffic
from repro.parallel import bandwidth_at, predict_time, rng_rate_per_core
from repro.sparse import random_sparse


class TestBandwidthCurve:
    def test_linear_ramp(self):
        b1 = bandwidth_at(FRONTERA, 1)
        b2 = bandwidth_at(FRONTERA, 2)
        assert b2 == pytest.approx(2 * b1)

    def test_saturates_at_knee(self):
        knee = FRONTERA.bandwidth_saturation_threads
        assert bandwidth_at(FRONTERA, knee) == bandwidth_at(FRONTERA, knee + 10)
        assert bandwidth_at(FRONTERA, knee) == pytest.approx(
            FRONTERA.bandwidth_gbs * 1e9
        )

    def test_invalid_threads(self):
        with pytest.raises(ConfigError):
            bandwidth_at(FRONTERA, 0)


class TestRngRate:
    def test_inverse_in_h(self):
        assert rng_rate_per_core(FRONTERA, 0.1) == pytest.approx(
            2 * rng_rate_per_core(FRONTERA, 0.2)
        )

    def test_definitional_identity(self):
        # rate = single-thread words/s divided by h.
        h = 0.5
        words_per_s = bandwidth_at(FRONTERA, 1) / 8.0
        assert rng_rate_per_core(FRONTERA, h) == pytest.approx(words_per_s / h)

    def test_rejects_zero_h(self):
        with pytest.raises(ConfigError):
            rng_rate_per_core(FRONTERA, 0.0)


class TestPredictTime:
    @pytest.fixture
    def traffic(self):
        A = random_sparse(300, 60, 0.05, seed=1)
        return algo3_traffic(A, d=180, b_d=3000, b_n=20)

    def test_time_decreases_then_flattens(self, traffic):
        times = [predict_time(traffic, FRONTERA, p, 0.25).seconds
                 for p in (1, 2, 4, 8, 16, 32)]
        assert times[1] < times[0]
        assert times[-1] <= times[0]
        # Monotone non-increasing throughout.
        assert all(b <= a * 1.0001 for a, b in zip(times, times[1:]))

    def test_becomes_memory_bound(self, traffic):
        # At enough threads the compute side shrinks but bandwidth has
        # saturated: the run turns memory-bound.
        run = predict_time(traffic, FRONTERA, FRONTERA.cores, 0.25)
        assert run.bound == "memory"

    def test_compute_bound_single_thread(self, traffic):
        run = predict_time(traffic, FRONTERA, 1, 0.25)
        assert run.bound == "compute"

    def test_serial_overhead_added(self, traffic):
        base = predict_time(traffic, FRONTERA, 4, 0.25).seconds
        plus = predict_time(traffic, FRONTERA, 4, 0.25,
                            serial_seconds=1.0).seconds
        assert plus == pytest.approx(base + 1.0)

    def test_gflops_consistent(self, traffic):
        run = predict_time(traffic, FRONTERA, 4, 0.25)
        assert run.gflops == pytest.approx(traffic.flops / run.seconds / 1e9)

    def test_cheaper_h_faster(self, traffic):
        slow = predict_time(traffic, FRONTERA, 2, 1.0).seconds
        fast = predict_time(traffic, FRONTERA, 2, 0.05).seconds
        assert fast <= slow

    def test_validation(self, traffic):
        with pytest.raises(ConfigError):
            predict_time(traffic, FRONTERA, 0, 0.25)
        with pytest.raises(ConfigError):
            predict_time(traffic, FRONTERA, 1, -0.1)
