"""Per-task deadlines on the serial (threads=1) engine path.

Historically ``task_timeout`` only bound under ``threads >= 2`` (the
futures path could abandon a stuck worker).  The serial path now
enforces deadlines *post hoc*: a single-threaded engine cannot preempt
a running kernel, but it times every task and (a) raises a typed
:class:`TaskTimeoutError` under ``reexecute_stragglers=False``, or
(b) records the overrun in :class:`RunHealth` and keeps going —
so serve-style deadline propagation works on every driver.
"""

import numpy as np
import pytest

from repro.core import SketchConfig
from repro.errors import TaskTimeoutError
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.parallel import ResilienceConfig
from repro.plan import Planner, Runtime
from repro.sparse import random_sparse


@pytest.fixture(scope="module")
def A():
    return random_sparse(120, 30, 0.1, seed=17)


def run_engine(A, *, resilience, faults=None, threads=1):
    cfg = SketchConfig(seed=3, b_d=12, b_n=10, threads=threads,
                       resilience=resilience)
    plan = Planner().compile(A, cfg, d=24, driver="engine")
    inj = FaultInjector(FaultPlan(faults)) if faults else None
    return Runtime().run(plan, A, injector=inj)


# pinned to one task: max_hits budgets are per (spec, task), so a
# wildcard stall would fire on every task of the run
STALL = [FaultSpec(kind="stall", sleep_seconds=0.4, task=(0, 0))]


class TestStrictSerialDeadline:
    def test_overrun_raises_typed_error(self, A):
        res = ResilienceConfig(task_timeout=0.05,
                               reexecute_stragglers=False)
        with pytest.raises(TaskTimeoutError, match="serial path"):
            run_engine(A, resilience=res, faults=STALL)

    def test_fast_tasks_unaffected(self, A):
        res = ResilienceConfig(task_timeout=30.0,
                               reexecute_stragglers=False)
        result = run_engine(A, resilience=res)
        assert result.stats.health.timeouts == 0


class TestLenientSerialDeadline:
    def test_overrun_recorded_but_run_completes(self, A):
        res = ResilienceConfig(task_timeout=0.05)
        result = run_engine(A, resilience=res, faults=STALL)
        assert result.stats.health.timeouts == 1
        # the overrun changed nothing about the bytes produced
        clean = run_engine(A, resilience=ResilienceConfig())
        assert np.array_equal(result.sketch, clean.sketch)

    def test_matches_threaded_behaviour(self, A):
        """Same plan, same fault: serial and threaded runs agree on the
        output bits (the deadline machinery is driver-invariant)."""
        res = ResilienceConfig(task_timeout=30.0)
        serial = run_engine(A, resilience=res, threads=1)
        threaded = run_engine(A, resilience=res, threads=3)
        assert np.array_equal(serial.sketch, threaded.sketch)
