"""Tests for repro.parallel.scheduler."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kernels import iter_block_tasks
from repro.parallel import estimate_task_costs, partition_tasks
from repro.sparse import abnormal_b, random_sparse


@pytest.fixture
def tasks():
    return list(iter_block_tasks(20, 12, 5, 3))


class TestPartitionStatic:
    def test_all_tasks_assigned_once(self, tasks):
        buckets = partition_tasks(tasks, 3, "static")
        flat = [t for b in buckets for t in b]
        assert sorted(flat) == sorted(tasks)

    def test_contiguous_ranges(self, tasks):
        buckets = partition_tasks(tasks, 2, "static")
        assert buckets[0] == tasks[:len(buckets[0])]

    def test_more_threads_than_tasks(self, tasks):
        buckets = partition_tasks(tasks, 100, "static")
        flat = [t for b in buckets for t in b]
        assert sorted(flat) == sorted(tasks)

    def test_single_thread(self, tasks):
        buckets = partition_tasks(tasks, 1, "static")
        assert buckets == [tasks]


class TestPartitionCyclic:
    def test_round_robin(self, tasks):
        buckets = partition_tasks(tasks, 3, "cyclic")
        assert buckets[0][0] == tasks[0]
        assert buckets[1][0] == tasks[1]
        assert buckets[2][0] == tasks[2]
        flat = [t for b in buckets for t in b]
        assert sorted(flat) == sorted(tasks)


class TestPartitionGuided:
    def test_requires_costs(self, tasks):
        with pytest.raises(ConfigError, match="costs"):
            partition_tasks(tasks, 2, "guided")

    def test_balances_skewed_costs(self):
        # One very heavy task plus many light ones: guided should not put
        # any light task with the heavy one until other threads fill up.
        tasks = [(i, 1, 0, 1) for i in range(9)]
        costs = np.array([100.0] + [1.0] * 8)
        buckets = partition_tasks(tasks, 2, "guided", costs)
        loads = [sum(costs[tasks.index(t)] for t in b) for b in buckets]
        assert max(loads) == 100.0  # heavy task alone on one thread

    def test_cost_length_mismatch(self, tasks):
        with pytest.raises(ConfigError):
            partition_tasks(tasks, 2, "guided", np.ones(3))


class TestEstimateTaskCosts:
    def test_flop_proxy(self):
        A = random_sparse(30, 12, 0.2, seed=1)
        tasks = list(iter_block_tasks(10, 12, 5, 4))
        costs = estimate_task_costs(A, tasks)
        for (i, d1, j, n1), c in zip(tasks, costs):
            nnz_blk = int(A.indptr[j + n1] - A.indptr[j])
            assert c == 2.0 * d1 * nnz_blk

    def test_detects_hot_middle_block(self):
        # Abnormal_B's middle-third concentration shows up as cost skew.
        A = abnormal_b(100, 30, density=0.05, middle_frac=0.95, seed=2)
        tasks = list(iter_block_tasks(10, 30, 10, 10))
        costs = estimate_task_costs(A, tasks)
        mid = costs[1]  # second column block = columns 10..20
        assert mid > costs[0]
        assert mid > costs[2]


class TestValidation:
    def test_unknown_strategy(self, tasks):
        with pytest.raises(ConfigError):
            partition_tasks(tasks, 2, "magic")

    def test_zero_threads(self, tasks):
        with pytest.raises(ConfigError):
            partition_tasks(tasks, 0, "static")

    def test_empty_tasks(self):
        assert partition_tasks([], 3, "static") == [[], [], []]
