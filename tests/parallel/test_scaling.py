"""Tests for repro.parallel.scaling (Table VII-style sweeps)."""

import pytest

from repro.errors import ConfigError
from repro.model import FRONTERA
from repro.parallel import (
    measure_strong_scaling,
    parallel_efficiency,
    simulate_strong_scaling,
)
from repro.rng import PhiloxSketchRNG
from repro.sparse import random_sparse


@pytest.fixture
def A():
    # Scaled-down shar_te2-b2 stand-in.
    return random_sparse(800, 80, 0.02, seed=401)


class TestSimulatedScaling:
    def test_point_fields(self, A):
        pts = simulate_strong_scaling(A, 240, FRONTERA, kernel="algo3",
                                      b_d=3000, b_n=40,
                                      threads_list=[1, 2, 4])
        assert [p.threads for p in pts] == [1, 2, 4]
        assert all(p.seconds > 0 for p in pts)
        assert all(p.algorithm == "algo3" for p in pts)

    def test_speedup_before_saturation(self, A):
        pts = simulate_strong_scaling(A, 240, FRONTERA, kernel="algo3",
                                      b_d=3000, b_n=40,
                                      threads_list=[1, 2, 4, 8])
        assert pts[1].seconds < pts[0].seconds
        assert pts[3].seconds <= pts[1].seconds

    def test_gflops_grow_with_threads(self, A):
        pts = simulate_strong_scaling(A, 240, FRONTERA, kernel="algo3",
                                      b_d=3000, b_n=40,
                                      threads_list=[1, 8, 32])
        assert pts[-1].gflops > pts[0].gflops

    def test_tall_blocking_scales_further(self, A):
        """Section V-B: large b_d / small b_n (setup2) saturates later."""
        squat = simulate_strong_scaling(A, 240, FRONTERA, kernel="algo3",
                                        b_d=60, b_n=80,
                                        threads_list=[32])
        tall = simulate_strong_scaling(A, 240, FRONTERA, kernel="algo3",
                                       b_d=240, b_n=10,
                                       threads_list=[32])
        assert tall[0].seconds <= squat[0].seconds

    def test_algo3_beats_algo4_at_scale_on_frontera(self, A):
        """Table VII: at 32 threads Algorithm 3 wins (scattered output
        saturates Algorithm 4's bandwidth earlier)."""
        a3 = simulate_strong_scaling(A, 240, FRONTERA, kernel="algo3",
                                     b_d=240, b_n=10, threads_list=[32])
        a4 = simulate_strong_scaling(A, 240, FRONTERA, kernel="algo4",
                                     b_d=240, b_n=10, threads_list=[32])
        assert a3[0].seconds <= a4[0].seconds

    def test_conversion_charged_when_asked(self, A):
        no = simulate_strong_scaling(A, 240, FRONTERA, kernel="algo4",
                                     b_d=240, b_n=10, threads_list=[4])
        yes = simulate_strong_scaling(A, 240, FRONTERA, kernel="algo4",
                                      b_d=240, b_n=10, threads_list=[4],
                                      include_conversion=True)
        assert yes[0].seconds > no[0].seconds

    def test_unknown_kernel(self, A):
        with pytest.raises(ConfigError):
            simulate_strong_scaling(A, 240, FRONTERA, kernel="x",
                                    b_d=1, b_n=1, threads_list=[1])


class TestMeasuredScaling:
    def test_runs_and_is_correct_shape(self, A):
        pts = measure_strong_scaling(A, 120, lambda w: PhiloxSketchRNG(1),
                                     kernel="algo3", b_d=40, b_n=20,
                                     threads_list=[1, 2])
        assert len(pts) == 2
        assert all(p.bound == "measured" for p in pts)
        assert all(p.seconds > 0 for p in pts)


class TestParallelEfficiency:
    def test_perfect_scaling_is_one(self, A):
        from repro.parallel.scaling import ScalingPoint

        pts = [ScalingPoint("algo3", 1, 8.0, 1.0, "x"),
               ScalingPoint("algo3", 2, 4.0, 2.0, "x"),
               ScalingPoint("algo3", 8, 1.0, 8.0, "x")]
        eff = parallel_efficiency(pts)
        assert eff[1] == pytest.approx(1.0)
        assert eff[2] == pytest.approx(1.0)
        assert eff[8] == pytest.approx(1.0)

    def test_paper_45_percent_shape(self, A):
        """The abstract's headline: with 32 threads, parallel efficiency up
        to ~45%. The simulated sweep should land in a sane band (10-100%)."""
        pts = simulate_strong_scaling(A, 240, FRONTERA, kernel="algo3",
                                      b_d=240, b_n=10,
                                      threads_list=[1, 2, 4, 8, 16, 32])
        eff = parallel_efficiency(pts)
        assert 0.10 <= eff[32] <= 1.0
        # Efficiency declines as bandwidth saturates.
        assert eff[32] <= eff[8] + 1e-9

    def test_requires_baseline(self):
        from repro.parallel.scaling import ScalingPoint

        with pytest.raises(ConfigError):
            parallel_efficiency([ScalingPoint("a", 2, 1.0, 1.0, "x")])
