"""Crash-tolerance tests for the ``process`` driver (procpool).

The central claim (ISSUE acceptance criterion): a run that loses one
worker to SIGKILL *and* one worker to a hang past the heartbeat deadline
still returns a sketch bit-identical to the serial driver's output, with
every loss, requeue, and respawn visible in :class:`RunHealth` and the
observability layer.  Determinism holds because generators are
coordinate-keyed: any requeued task re-derives exactly the entries the
dead worker would have produced.
"""

import json

import numpy as np
import pytest

from repro.core import SketchConfig
from repro.errors import ConfigError
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.parallel import WorkerPoolConfig, backoff_seconds, pool_start_method
from repro.plan import DEGRADED, PersistencePolicy, Planner, Runtime, SketchPlan
from repro.sparse import random_sparse

D, B_D, B_N = 36, 12, 10   # 3 x 3 = 9 block tasks over a 120 x 30 input
TASKS = [(i, j) for i in (0, 12, 24) for j in (0, 10, 20)]

# A short deadline keeps the hung-worker tests fast; clean workers send a
# heartbeat per task, so this never false-positives on a healthy fleet.
FAST_POOL = WorkerPoolConfig(workers=2, heartbeat_timeout=1.0,
                             backoff_base=0.0)


@pytest.fixture(scope="module")
def A():
    return random_sparse(120, 30, 0.1, seed=301)


def make_plan(A, *, kernel="algo3", driver="process", pool=None, seed=9):
    cfg = SketchConfig(kernel=kernel, rng_kind="philox", seed=seed,
                       b_d=B_D, b_n=B_N)
    return Planner().compile(A, cfg, d=D, driver=driver, pool=pool)


@pytest.fixture(scope="module")
def reference(A):
    """Serial-driver sketches the process driver must match bit-for-bit."""
    out = {}
    for kernel in ("algo3", "algo4"):
        plan = make_plan(A, kernel=kernel, driver="serial")
        out[kernel] = Runtime().run(plan, A).sketch
    return out


def run_process(A, *, kernel="algo3", pool=FAST_POOL, faults=None,
                runtime=None):
    plan = make_plan(A, kernel=kernel, pool=pool)
    inj = FaultInjector(FaultPlan(faults)) if faults else None
    rt = runtime if runtime is not None else Runtime()
    result = rt.run(plan, A, injector=inj)
    return result, result.stats.health


class TestWorkerPoolConfig:
    def test_defaults_round_trip(self):
        pool = WorkerPoolConfig()
        assert WorkerPoolConfig.from_dict(pool.to_dict()) == pool

    def test_custom_round_trip(self):
        pool = WorkerPoolConfig(workers=3, heartbeat_timeout=2.5,
                                batch_size=4, max_requeues=1, max_respawns=2,
                                backoff_base=0.01, backoff_factor=3.0,
                                backoff_max=0.5, start_method="fork")
        assert WorkerPoolConfig.from_dict(pool.to_dict()) == pool

    @pytest.mark.parametrize("kwargs", [
        {"workers": 0},
        {"heartbeat_timeout": 0.0},
        {"max_requeues": -1},
        {"max_respawns": -1},
        {"backoff_base": -0.1},
        {"backoff_factor": 0.5},
        {"backoff_max": -1.0},
        {"start_method": "threads"},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            WorkerPoolConfig(**kwargs)

    def test_start_method_resolves(self):
        assert pool_start_method("auto") in ("fork", "spawn")
        assert pool_start_method("spawn") == "spawn"


class TestPlanIntegration:
    def test_process_driver_synthesizes_pool(self, A):
        plan = make_plan(A)
        assert plan.driver == "process"
        assert plan.pool == WorkerPoolConfig()

    def test_pool_survives_json_round_trip(self, A):
        plan = make_plan(A, pool=FAST_POOL)
        clone = SketchPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert clone.pool == FAST_POOL
        assert clone == plan

    def test_explain_mentions_pool(self, A):
        text = make_plan(A, pool=FAST_POOL).explain()
        assert "workers=2" in text and "heartbeat=1" in text

    def test_process_driver_rejects_persistence(self, A, tmp_path):
        cfg = SketchConfig(kernel="algo3", b_d=B_D, b_n=B_N)
        plan = Planner().compile(
            A, cfg, d=D, driver="process",
            persistence=PersistencePolicy(checkpoint_dir=str(tmp_path)))
        with pytest.raises(ConfigError, match="persistence"):
            Runtime().run(plan, A)


class TestCleanRuns:
    @pytest.mark.parametrize("kernel", ["algo3", "algo4"])
    def test_bit_identical_to_serial(self, A, reference, kernel):
        result, health = run_process(A, kernel=kernel)
        np.testing.assert_array_equal(result.sketch, reference[kernel])
        assert health.ok and health.clean
        assert health.completed == len(TASKS)
        assert health.workers_lost == 0
        assert result.stats.extra["driver"] == "process"

    def test_stats_carry_pool_context(self, A):
        result, health = run_process(A)
        assert result.stats.kernel == "algo3-procpool"
        assert result.stats.extra["workers"] == 2
        assert result.stats.extra["start_method"] in ("fork", "spawn")
        assert health.workers_spawned >= 1


class TestCrashRecovery:
    def test_sigkilled_worker_recovers_bit_identical(self, A, reference):
        faults = [FaultSpec(kind="kill_worker", task=(12, 10))]
        result, health = run_process(A, faults=faults)
        np.testing.assert_array_equal(result.sketch, reference["algo3"])
        assert health.ok and not health.clean
        assert health.workers_lost >= 1
        assert health.tasks_requeued >= 1
        assert health.completed == len(TASKS)
        assert any("lost: crashed" in d for d in health.decisions)

    def test_hung_worker_killed_by_heartbeat(self, A, reference):
        # The worker sleeps far past the 1 s deadline without heartbeating;
        # the supervisor must declare it hung, SIGKILL it, and requeue.
        faults = [FaultSpec(kind="hang_worker", task=(0, 10),
                            sleep_seconds=30.0)]
        result, health = run_process(A, faults=faults)
        np.testing.assert_array_equal(result.sketch, reference["algo3"])
        assert health.workers_lost >= 1
        assert health.tasks_requeued >= 1
        assert any("lost: hung" in d for d in health.decisions)

    def test_corrupt_tile_rejected_by_checksum(self, A, reference):
        # The worker corrupts the shared-memory tile *after* checksumming
        # it: the claimed-before-commit verification must refuse the tile
        # and requeue the task instead of accepting torn output.
        faults = [FaultSpec(kind="corrupt_tile", task=(24, 0))]
        result, health = run_process(A, faults=faults)
        np.testing.assert_array_equal(result.sketch, reference["algo3"])
        assert any(f.kind == "checksum_mismatch" for f in health.failures)
        assert health.tasks_requeued >= 1

    def test_acceptance_kill_and_hang_in_one_run(self, A, reference):
        # The ISSUE acceptance criterion: one SIGKILLed worker AND one
        # hung worker in the same run, everything requeued, output
        # bit-identical to the fault-free serial driver.
        faults = [
            FaultSpec(kind="kill_worker", task=(0, 0)),
            FaultSpec(kind="hang_worker", task=(24, 20), sleep_seconds=30.0),
        ]
        pool = WorkerPoolConfig(workers=3, heartbeat_timeout=1.0,
                                backoff_base=0.0)
        result, health = run_process(A, pool=pool, faults=faults)
        np.testing.assert_array_equal(result.sketch, reference["algo3"])
        assert health.workers_lost >= 2
        assert health.tasks_requeued >= 2
        # (A warm respawn usually happens here too, but whether one is
        # *needed* depends on how many tasks remain at the moment of each
        # loss -- the invariants are the losses, requeues, and recovery.)
        assert health.completed == len(TASKS)


class TestQuarantineAndDegradation:
    def test_poison_task_quarantined_then_thread_fallback(self, A, reference):
        # A task that kills its worker on *every* replay exhausts the
        # requeue budget, is quarantined, and is finished by the thread
        # rung of the degradation ladder -- still bit-identical.
        faults = [FaultSpec(kind="kill_worker", task=(12, 0), max_hits=None)]
        pool = WorkerPoolConfig(workers=2, heartbeat_timeout=1.0,
                                max_requeues=1, max_respawns=4,
                                backoff_base=0.0)
        bus_events = []
        rt = Runtime()
        rt.bus.subscribe_observer(
            DEGRADED, lambda e: bus_events.append(e.get("kind")))
        result, health = run_process(A, pool=pool, faults=faults, runtime=rt)
        np.testing.assert_array_equal(result.sketch, reference["algo3"])
        assert health.quarantined_tasks == 1
        assert health.degraded_to_thread
        assert not health.clean
        assert "pool_fallback" in bus_events


class TestObservability:
    def test_pool_metrics_and_worker_spans(self, A, reference):
        from repro.obs import RunObserver

        faults = [FaultSpec(kind="kill_worker", task=(12, 10))]
        rt = Runtime()
        obs = RunObserver().attach(rt.bus)
        result, health = run_process(A, faults=faults, runtime=rt)
        np.testing.assert_array_equal(result.sketch, reference["algo3"])

        r = obs.registry
        assert r.counter("pool_workers_lost_total",
                         labels=("reason",)).value(reason="crashed") >= 1.0
        total_requeues = sum(
            s["value"] for fam in r.to_dict()["metrics"]
            if fam["name"] == "repro_pool_requeues_total"
            for s in fam["samples"])
        assert total_requeues >= 1.0
        # Every spawned worker opened a span; shutdown closed them all.
        worker_spans = [s for s in obs.tracer.spans if s.name == "worker"]
        assert len(worker_spans) == health.workers_spawned
        assert all(s.end is not None for s in worker_spans)
        reasons = {s.attrs.get("reason") for s in worker_spans}
        assert "crashed" in reasons and "shutdown" in reasons
        # The requeue shows up as a trace annotation.
        assert any(a.name == "task_requeued" for a in obs.tracer.annotations)
        obs.detach()

    def test_respawn_metric_increments(self, A):
        from repro.obs import RunObserver

        faults = [FaultSpec(kind="kill_worker", task=(0, 20))]
        rt = Runtime()
        obs = RunObserver(trace=False).attach(rt.bus)
        _, health = run_process(A, faults=faults, runtime=rt)
        assert obs.registry.counter("pool_respawns_total").value() \
            == float(health.worker_respawns)
        obs.detach()


class TestDroppedEventsSurfaced:
    def test_run_health_carries_bus_drop_count(self, A):
        # Satellite 1: a crashing observer handler is isolated by the bus
        # but its drop count must surface in the run's RunHealth.
        rt = Runtime()

        def bad_handler(event):
            raise RuntimeError("broken metrics sink")

        rt.bus.subscribe_observer(DEGRADED, bad_handler)
        from repro.plan.events import WORKER_SPAWNED
        rt.bus.subscribe_observer(WORKER_SPAWNED, bad_handler)
        result, health = run_process(A, runtime=rt)
        assert health.dropped_events >= 1
        assert health.dropped_events == rt.bus.dropped_total()
        # Dropped observer events never taint the computation itself.
        assert health.ok and health.clean


class TestDeterministicBackoff:
    def test_pure_function_of_inputs(self):
        a = backoff_seconds(0.1, 2.0, 5.0, seed=7, task=(12, 10), attempt=2)
        b = backoff_seconds(0.1, 2.0, 5.0, seed=7, task=(12, 10), attempt=2)
        assert a == b

    def test_varies_with_task_seed_and_attempt(self):
        base = backoff_seconds(0.1, 2.0, 5.0, seed=7, task=(12, 10), attempt=2)
        assert backoff_seconds(0.1, 2.0, 5.0, seed=8,
                               task=(12, 10), attempt=2) != base
        assert backoff_seconds(0.1, 2.0, 5.0, seed=7,
                               task=(12, 20), attempt=2) != base
        assert backoff_seconds(0.1, 2.0, 5.0, seed=7,
                               task=(12, 10), attempt=3) != base

    def test_jitter_window_and_cap(self):
        for attempt in range(1, 8):
            raw = min(5.0, 0.1 * 2.0 ** (attempt - 1))
            val = backoff_seconds(0.1, 2.0, 5.0, seed=3, task=(0, 0),
                                  attempt=attempt)
            assert 0.5 * raw <= val <= raw

    def test_disabled_and_degenerate(self):
        assert backoff_seconds(0.0, 2.0, 1.0, seed=1, task=(0, 0),
                               attempt=3) == 0.0
        assert backoff_seconds(0.1, 2.0, 1.0, seed=1, task=(0, 0),
                               attempt=0) == 0.0

    def test_engine_retry_applies_backoff(self, A, reference):
        # Satellite 2: the thread engine sleeps the deterministic backoff
        # between retries; recovery output is still bit-identical.
        from repro.parallel import ResilienceConfig

        cfg = SketchConfig(
            kernel="algo3", rng_kind="philox", seed=9, b_d=B_D, b_n=B_N,
            threads=2,
            resilience=ResilienceConfig(max_retries=2, retry_backoff=0.01,
                                        retry_backoff_max=0.05))
        plan = Planner().compile(A, cfg, d=D, driver="engine")
        inj = FaultInjector(FaultPlan(
            [FaultSpec(kind="raise", task=(12, 10))]))
        result = Runtime().run(plan, A, injector=inj)
        np.testing.assert_array_equal(result.sketch, reference["algo3"])
        assert result.stats.health.retries == 1
