"""Tests for repro.parallel.executor (thread-pool sketching)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kernels import sketch_spmm
from repro.parallel import parallel_sketch_spmm
from repro.rng import PhiloxSketchRNG, XoshiroSketchRNG
from repro.sparse import csc_to_blocked_csr, random_sparse


@pytest.fixture
def A():
    return random_sparse(120, 30, 0.1, seed=301)


def _ref(A, d, b_d, b_n):
    Ahat, _ = sketch_spmm(A, d, PhiloxSketchRNG(9), kernel="algo3",
                          b_d=b_d, b_n=b_n)
    return Ahat


class TestCorrectness:
    @pytest.mark.parametrize("threads", [1, 2, 3, 8])
    @pytest.mark.parametrize("kernel", ["algo3", "algo4"])
    def test_thread_count_invariant(self, A, threads, kernel):
        d, b_d, b_n = 36, 10, 7
        out, _ = parallel_sketch_spmm(
            A, d, lambda w: PhiloxSketchRNG(9), threads=threads,
            kernel=kernel, b_d=b_d, b_n=b_n,
        )
        np.testing.assert_allclose(out, _ref(A, d, b_d, b_n))

    @pytest.mark.parametrize("strategy", ["static", "cyclic", "guided"])
    def test_strategy_invariant(self, A, strategy):
        d, b_d, b_n = 24, 8, 5
        out, _ = parallel_sketch_spmm(
            A, d, lambda w: PhiloxSketchRNG(9), threads=3,
            kernel="algo3", b_d=b_d, b_n=b_n, strategy=strategy,
        )
        np.testing.assert_allclose(out, _ref(A, d, b_d, b_n))

    def test_xoshiro_thread_invariant(self, A):
        # Checkpoints are coordinate-keyed, so even the sequential
        # generator is reproducible across thread counts (fixed blocking).
        d, b_d, b_n = 24, 8, 5
        one, _ = parallel_sketch_spmm(A, d, lambda w: XoshiroSketchRNG(4),
                                      threads=1, kernel="algo3",
                                      b_d=b_d, b_n=b_n)
        four, _ = parallel_sketch_spmm(A, d, lambda w: XoshiroSketchRNG(4),
                                       threads=4, kernel="algo3",
                                       b_d=b_d, b_n=b_n)
        np.testing.assert_allclose(one, four)

    def test_scaling_trick_parallel(self, A):
        d = 24
        plain, _ = parallel_sketch_spmm(
            A, d, lambda w: PhiloxSketchRNG(2, "uniform"), threads=2,
            kernel="algo3", b_d=8, b_n=5)
        trick, _ = parallel_sketch_spmm(
            A, d, lambda w: PhiloxSketchRNG(2, "uniform_scaled"), threads=2,
            kernel="algo3", b_d=8, b_n=5)
        np.testing.assert_allclose(plain, trick)

    def test_prebuilt_blocked(self, A):
        d, b_d, b_n = 24, 8, 5
        blocked, _ = csc_to_blocked_csr(A, b_n)
        out, stats = parallel_sketch_spmm(
            A, d, lambda w: PhiloxSketchRNG(9), threads=2,
            kernel="algo4", b_d=b_d, b_n=b_n, blocked=blocked)
        np.testing.assert_allclose(out, _ref(A, d, b_d, b_n))
        assert stats.conversion_seconds == 0.0


class TestStats:
    def test_aggregated_counters(self, A):
        d = 24
        _, stats = parallel_sketch_spmm(
            A, d, lambda w: PhiloxSketchRNG(1), threads=3,
            kernel="algo3", b_d=8, b_n=5)
        assert stats.samples_generated == d * A.nnz
        assert stats.extra["threads"] == 3
        assert stats.kernel == "algo3-parallel"

    def test_worker_exception_propagates(self, A):
        def bad_factory(w):
            raise RuntimeError("factory boom")

        with pytest.raises(RuntimeError, match="factory boom"):
            parallel_sketch_spmm(A, 12, bad_factory, threads=2)

    def test_invalid_kernel(self, A):
        with pytest.raises(ConfigError):
            parallel_sketch_spmm(A, 12, lambda w: PhiloxSketchRNG(0),
                                 threads=2, kernel="nope")

    def test_invalid_threads(self, A):
        with pytest.raises(ConfigError):
            parallel_sketch_spmm(A, 12, lambda w: PhiloxSketchRNG(0),
                                 threads=0)
