"""Property-based tests (hypothesis) for the parallel substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import iter_block_tasks
from repro.parallel import bandwidth_at, partition_tasks
from repro.model import FRONTERA


@st.composite
def task_grids(draw):
    d = draw(st.integers(min_value=1, max_value=40))
    n = draw(st.integers(min_value=1, max_value=40))
    b_d = draw(st.integers(min_value=1, max_value=12))
    b_n = draw(st.integers(min_value=1, max_value=12))
    return d, n, b_d, b_n


class TestTaskGridProperties:
    @given(task_grids())
    @settings(max_examples=50)
    def test_tasks_tile_output_exactly(self, grid):
        d, n, b_d, b_n = grid
        cover = np.zeros((d, n), dtype=int)
        for i, d1, j, n1 in iter_block_tasks(d, n, b_d, b_n):
            assert 1 <= d1 <= b_d and 1 <= n1 <= b_n
            cover[i:i + d1, j:j + n1] += 1
        assert np.all(cover == 1)

    @given(task_grids(), st.integers(min_value=1, max_value=9),
           st.sampled_from(["static", "cyclic"]))
    @settings(max_examples=50)
    def test_partitions_are_exact_covers(self, grid, threads, strategy):
        tasks = list(iter_block_tasks(*grid))
        buckets = partition_tasks(tasks, threads, strategy)
        assert len(buckets) == threads
        flat = [t for b in buckets for t in b]
        assert sorted(flat) == sorted(tasks)

    @given(task_grids(), st.integers(min_value=1, max_value=9))
    @settings(max_examples=30)
    def test_guided_balances_within_max_cost(self, grid, threads):
        """Greedy LPT keeps the heaviest bucket below total/threads +
        max(single task) — the classical LPT guarantee."""
        tasks = list(iter_block_tasks(*grid))
        rng = np.random.default_rng(hash(grid) % 2**32)
        costs = rng.uniform(0.1, 10.0, size=len(tasks))
        buckets = partition_tasks(tasks, threads, "guided", costs)
        index = {t: c for t, c in zip(tasks, costs)}
        loads = [sum(index[t] for t in b) for b in buckets]
        bound = costs.sum() / threads + costs.max()
        assert max(loads) <= bound + 1e-9

    @given(task_grids(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=25)
    def test_static_buckets_contiguous(self, grid, threads):
        tasks = list(iter_block_tasks(*grid))
        buckets = partition_tasks(tasks, threads, "static")
        pos = {t: k for k, t in enumerate(tasks)}
        for b in buckets:
            idx = [pos[t] for t in b]
            assert idx == list(range(idx[0], idx[0] + len(idx))) if idx else True


class TestBandwidthProperties:
    @given(st.integers(min_value=1, max_value=256))
    @settings(max_examples=50)
    def test_bandwidth_monotone_and_capped(self, p):
        bw = bandwidth_at(FRONTERA, p)
        assert 0 < bw <= FRONTERA.bandwidth_gbs * 1e9 + 1e-6
        assert bandwidth_at(FRONTERA, p + 1) >= bw - 1e-6
