"""Extension — analytic cost model for non-uniform sparsity patterns.

The paper's Section VI names extending the analysis to non-uniform
patterns as future work; :mod:`repro.model.patterns` implements it for
the dense-row / dense-column / banded families.  This bench regenerates
Table VI *analytically at the paper's dimensions* (m = 100000, n = 10000,
density ~1e-3) and cross-checks the closed forms against exact counts on
generated matrices, plus reports the extension's underdetermined-solver
demo (footnote 2).
"""

from __future__ import annotations

import numpy as np
from _harness import emit_report, shape_check

from repro.core import SketchConfig
from repro.lsq import CscOperator, solve_sap_minnorm
from repro.model import (
    banded_costs,
    dense_cols_costs,
    dense_rows_costs,
    uniform_costs,
)
from repro.sparse import random_sparse


def test_pattern_analysis_report(benchmark):
    m, n, d, b_n = 100_000, 10_000, 5_000, 1_200
    period = 1000  # the paper's Table VI construction

    def run():
        return {
            "Abnormal_A (dense rows)": dense_rows_costs(m, n, d, b_n, period),
            "uniform rho=1e-3": uniform_costs(m, n, d, b_n, 1e-3),
            "banded (FEM)": banded_costs(m, n, d, b_n,
                                         bandwidth_rows=2000, per_col=100),
            "Abnormal_C (dense cols)": dense_cols_costs(m, n, d, b_n, period),
        }

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, c.nnz, c.nonempty_rows_per_block, c.rng_entries,
             c.algo3_rng_entries, c.reuse_factor]
            for name, c in costs.items()]
    a = costs["Abnormal_A (dense rows)"].reuse_factor
    u = costs["uniform rho=1e-3"].reuse_factor
    c_ = costs["Abnormal_C (dense cols)"].reuse_factor
    notes = [
        shape_check(a < u <= c_ + 1e-9,
                    f"analytic Table VI ordering: dense-rows {a:.3f} < "
                    f"uniform {u:.3f} <= dense-cols {c_:.3f}"),
        shape_check(c_ > 0.85,
                    "dense columns eliminate Algorithm 4's reuse "
                    f"(A4/A3 = {c_:.2f}; the residual saving is just "
                    "ceil(n/b_n)/#dense-cols — the Table VI collapse in "
                    "closed form)"),
    ]
    emit_report(
        "ext_patterns",
        "Extension: non-uniform-pattern analysis at paper dimensions "
        "(Algorithm 4 RNG accounting)",
        ["pattern", "nnz", "nonempty rows/block", "A4 RNG entries",
         "A3 RNG entries", "A4/A3"],
        rows,
        notes="\n".join(notes),
    )
    assert a < u <= c_ + 1e-9


def test_underdetermined_solver_report(benchmark):
    def run():
        A = random_sparse(60, 1200, 0.08, seed=31)
        rng = np.random.default_rng(31)
        b = CscOperator(A).matvec(rng.standard_normal(1200))
        sol = solve_sap_minnorm(A, b, config=SketchConfig(gamma=2.0, seed=32))
        pinv_x = np.linalg.pinv(A.to_dense()) @ b
        return A, sol, float(np.linalg.norm(sol.x - pinv_x)
                             / np.linalg.norm(pinv_x))

    A, sol, rel = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f"{A.shape[0]} x {A.shape[1]}", sol.iterations, sol.seconds,
             sol.error, rel]]
    notes = [shape_check(
        rel < 1e-6,
        f"sketch-preconditioned LSQR returns the minimum-norm solution "
        f"(relative deviation from pinv: {rel:.1e})",
    )]
    emit_report(
        "ext_underdetermined",
        "Extension: underdetermined least squares (footnote 2) — "
        "SAP min-norm solver",
        ["system", "iterations", "seconds", "rel residual", "vs pinv"],
        rows,
        notes="\n".join(notes),
    )
    assert rel < 1e-6
