"""Table II — sequential Algorithm 3 vs library SpMM baselines (Frontera).

The paper compares Algorithm 3 (uniform(-1,1) and +-1 entries) against
MKL / Eigen / Julia, all of which multiply with a *pre-generated* sketch.
Here the library role is played by (a) scipy's compiled CSR-times-dense
(the operation MKL performs, transposed storage and all) and (b) our own
pre-generated-S kernels; Algorithm 3 runs with the paper's blocking
ratios scaled to the surrogate dimensions.

Absolute times on this host compare a vectorized-NumPy kernel against
compiled scipy — not the contest the paper ran — so the report prints the
machine-model *effective data movement* comparison alongside wall clock;
the movement ratio is where the paper's "2x over MKL/Eigen" shape lives.
"""

from __future__ import annotations

import pytest
from _harness import (
    REPEATS,
    best_of,
    emit_report,
    paper_scale_traffic_ratio,
    shape_check,
    spmm_case,
    suite_matrix,
)

from repro.kernels import pregen_csr_transposed, sketch_spmm
from repro.model import FRONTERA
from repro.rng import PhiloxSketchRNG
from repro.workloads import SPMM_SUITE

#: The paper's Frontera blocking is (b_d, b_n) = (3000, 500) at n ~ 17k;
#: keep the same proportions relative to each surrogate's dimensions.
def _blocking(d: int, n: int) -> tuple[int, int]:
    return max(1, min(d, 3000)), max(1, min(n, max(8, n // 35)))


def _scipy_spmm(A, d: int, seed: int) -> float:
    """Library baseline: pre-generate S, multiply with scipy (compiled)."""
    rng = PhiloxSketchRNG(seed, "uniform")
    S = rng.materialize(d, A.shape[0])
    sp = A.to_scipy().tocsr()
    secs, _ = best_of(lambda: S @ sp)
    return secs


def _run_case(name: str, seed: int = 0) -> dict:
    case = spmm_case(name)
    A = suite_matrix("spmm", name)
    d = 3 * A.shape[1]
    b_d, b_n = _blocking(d, A.shape[1])

    t_scipy = _scipy_spmm(A, d, seed)
    t_pregen, _ = best_of(
        lambda: pregen_csr_transposed(A, d, PhiloxSketchRNG(seed, "uniform"))
    )
    t_a3_uni, _ = best_of(
        lambda: sketch_spmm(A, d, PhiloxSketchRNG(seed, "uniform"),
                            kernel="algo3", b_d=b_d, b_n=b_n)
    )
    t_a3_pm1, _ = best_of(
        lambda: sketch_spmm(A, d, PhiloxSketchRNG(seed, "rademacher"),
                            kernel="algo3", b_d=b_d, b_n=b_n)
    )

    move_ratio = paper_scale_traffic_ratio(case, FRONTERA)
    return {
        "case": case, "d": d,
        "t_scipy": t_scipy, "t_pregen": t_pregen,
        "t_a3_uni": t_a3_uni, "t_a3_pm1": t_a3_pm1,
        "move_ratio": move_ratio,
    }


@pytest.mark.parametrize("name", sorted(SPMM_SUITE))
def test_algo3_kernel_speed(benchmark, name):
    """Microbenchmark: Algorithm 3 (+-1) on each suite matrix."""
    A = suite_matrix("spmm", name)
    d = 3 * A.shape[1]
    b_d, b_n = _blocking(d, A.shape[1])

    def run():
        return sketch_spmm(A, d, PhiloxSketchRNG(0, "rademacher"),
                           kernel="algo3", b_d=b_d, b_n=b_n)

    benchmark.pedantic(run, rounds=max(1, REPEATS), iterations=1)


def test_table02_report(benchmark):
    results = benchmark.pedantic(
        lambda: [_run_case(name) for name in SPMM_SUITE],
        rounds=1, iterations=1,
    )
    rows = []
    notes = []
    for r in results:
        c = r["case"]
        rows.append([
            c.name,
            c.paper["mkl"], c.paper["eigen"], c.paper["julia"],
            c.paper["algo3_uniform"], c.paper["algo3_pm1"],
            r["t_scipy"], r["t_pregen"], r["t_a3_uni"], r["t_a3_pm1"],
            r["move_ratio"],
        ])
        notes.append(shape_check(
            r["t_a3_pm1"] <= r["t_a3_uni"] * 1.1,
            f"{c.name}: +-1 entries at least as fast as (-1,1)",
        ))
        notes.append(shape_check(
            r["move_ratio"] > 2.0,
            f"{c.name}: at paper scale, on-the-fly moves "
            f"{r['move_ratio']:.1f}x less effective data than pre-generated",
        ))
    emit_report(
        "table02",
        "Table II: Algorithm 3 vs library SpMM, sequential (Frontera role)",
        ["matrix", "MKL(p)", "Eigen(p)", "Julia(p)", "A3 (-1,1)(p)",
         "A3 +-1(p)", "scipy", "pregen", "A3 (-1,1)", "A3 +-1",
         "move x"],
        rows,
        notes="(p) = paper seconds at full scale. 'move x' = model ratio of "
              "effective words (pre-generated / on-the-fly) at PAPER "
              "dimensions.\n" + "\n".join(notes),
    )
    assert len(rows) == 5
    # Hard shape assertion at the model level (host-noise free).
    assert all(r["move_ratio"] > 2.0 for r in results)
