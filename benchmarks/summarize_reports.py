#!/usr/bin/env python
"""Aggregate the bench reports into a one-page reproduction scorecard.

Every bench writes its table and its ``[shape OK]`` / ``[shape WARNING]``
lines to ``benchmarks/reports/<name>.txt``; this script tallies them per
experiment and writes ``benchmarks/reports/SUMMARY.txt`` — the at-a-glance
answer to "did the reproduction hold?".

Profile JSON files (written by ``repro sketch --profile-out`` or
``repro.obs.build_profile``) dropped into the reports directory as
``PROFILE_*.json`` are ingested into the same scorecard: one line per
profile with the measured GFlop/s, sample fraction, and the
attained-over-predicted roofline ratio.

Metrics JSON files (``repro sketch --metrics-out run.json``) dropped in
as ``METRICS_*.json`` contribute a runtime-health section: the bus's
``dropped_events`` tally (a silently broken observer pipeline should not
hide in a scorecard that says everything held) and the artifact-cache
hit/miss/eviction counters.  The warm-cache gate baseline
(``BENCH_cache.json``) is summarized the same way.

Run after a bench sweep:
    pytest benchmarks/ --benchmark-only
    python benchmarks/summarize_reports.py
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

REPORTS = Path(__file__).parent / "reports"


def _profile_line(path: Path) -> str:
    """One scorecard line for a profile JSON file (never raises: a bad
    profile is reported, not fatal — the scorecard must always build)."""
    try:
        payload = json.loads(path.read_text())
        sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
        try:
            from repro.obs.schema import validate_profile

            validate_profile(payload)
        finally:
            sys.path.pop(0)
        measured = payload["measured"]
        roofline = payload["roofline"]
        problem = payload["problem"]
        ratio = roofline.get("model_ratio")
        ratio_s = "n/a" if ratio is None else f"{ratio:.3f}"
        return (
            f"   {path.stem}: {payload['kernel']}/{payload['driver'] or '?'}"
            f" on {payload['machine']}"
            f"  {problem['m']}x{problem['n']} d={problem['d']}"
            f"  {measured['attained_gflops']:.3f} GFlop/s"
            f"  sample={measured['sample_fraction']:.1%}"
            f"  attained/predicted={ratio_s}"
        )
    except Exception as exc:  # noqa: BLE001 - scorecard is best-effort
        return f"!! {path.stem}: unreadable profile ({exc})"


def _metric_total(payload: dict, name: str) -> float | None:
    """Sum one family's samples from a MetricsRegistry JSON snapshot.

    Family names are stored namespace-prefixed (``repro_cache_hits_total``)
    so matching is by suffix; ``None`` distinguishes "family absent" from
    a genuine zero.
    """
    for family in payload.get("metrics", []):
        fname = family.get("name", "")
        if fname == name or fname.endswith(f"_{name}"):
            return float(sum(s.get("value", 0.0)
                             for s in family.get("samples", [])))
    return None


def _metrics_line(path: Path) -> str:
    """One runtime-health line for a METRICS_*.json file (best-effort)."""
    try:
        payload = json.loads(path.read_text())
        dropped = _metric_total(payload, "dropped_events") or 0.0
        parts = [f"dropped_events={int(dropped)}"
                 + ("  <-- observer pipeline broke" if dropped else "")]
        cache_bits = []
        for counter, label in (("cache_hits_total", "hits"),
                               ("cache_misses_total", "misses"),
                               ("cache_evictions_total", "evictions")):
            total = _metric_total(payload, counter)
            if total is not None:
                cache_bits.append(f"{label}={int(total)}")
        if cache_bits:
            parts.append("cache " + "/".join(cache_bits))
        flag = "!!" if dropped else "  "
        return f"{flag} {path.stem}: " + "  ".join(parts)
    except Exception as exc:  # noqa: BLE001 - scorecard is best-effort
        return f"!! {path.stem}: unreadable metrics ({exc})"


def _cache_gate_lines() -> list[str]:
    """Summarize the committed warm-cache baseline, if present."""
    path = REPORTS / "BENCH_cache.json"
    if not path.exists():
        return []
    try:
        p = json.loads(path.read_text())
        clean = (p.get("warm_tune_misses") == 0
                 and p.get("warm_blocked_misses") == 0
                 and p.get("sketch_identical", False))
        flag = "  " if clean else "!!"
        return [
            "",
            "artifact cache (warm-vs-cold gate baseline):",
            f"{flag} cold {p['cold_seconds']:.3f}s -> warm "
            f"{p['warm_seconds']:.3f}s ({p['warm_speedup']:.2f}x)  "
            f"warm misses: tune={p.get('warm_tune_misses', '?')} "
            f"blocked_csr={p.get('warm_blocked_misses', '?')}  "
            f"bit-identical={'yes' if p.get('sketch_identical') else 'NO'}",
        ]
    except Exception as exc:  # noqa: BLE001
        return ["", f"!! BENCH_cache.json: unreadable ({exc})"]


def summarize() -> str:
    files = sorted(REPORTS.glob("*.txt"))
    files = [f for f in files if f.name != "SUMMARY.txt"]
    profiles = sorted(REPORTS.glob("PROFILE_*.json"))
    if not files and not profiles:
        return "no reports found — run `pytest benchmarks/ --benchmark-only` first\n"
    rows = []
    total_ok = total_warn = 0
    scale = "?"
    for f in files:
        text = f.read_text()
        ok = len(re.findall(r"\[shape OK\]", text))
        warn = len(re.findall(r"\[shape WARNING\]", text))
        m = re.search(r"\[scale=(\w+)\]", text)
        if m:
            scale = m.group(1)
        total_ok += ok
        total_warn += warn
        title = text.splitlines()[0].split("  [scale")[0] if text else f.stem
        rows.append((f.stem, ok, warn, title))
    lines = [
        "REPRODUCTION SCORECARD",
        "======================",
        f"reports: {len(rows)}   shape checks: {total_ok} OK, "
        f"{total_warn} WARNING   (scale={scale})",
        "",
    ]
    if rows:
        width = max(len(r[0]) for r in rows)
        for stem, ok, warn, title in rows:
            flag = "  " if warn == 0 else "!!"
            lines.append(
                f"{flag} {stem.ljust(width)}  OK={ok:<3d} WARN={warn:<2d} {title}")
    if profiles:
        lines.append("")
        lines.append(f"roofline profiles ({len(profiles)}):")
        for p in profiles:
            lines.append(_profile_line(p))
    metrics = sorted(REPORTS.glob("METRICS_*.json"))
    if metrics:
        lines.append("")
        lines.append(f"runtime health ({len(metrics)}):")
        for m_path in metrics:
            lines.append(_metrics_line(m_path))
    lines.extend(_cache_gate_lines())
    if total_warn:
        lines.append("")
        lines.append("warnings (expected deviations are documented in "
                     "EXPERIMENTS.md):")
        for f in files:
            for line in f.read_text().splitlines():
                if "[shape WARNING]" in line:
                    lines.append(f"  {f.stem}: {line.strip()}")
    return "\n".join(lines) + "\n"


def main() -> int:
    text = summarize()
    (REPORTS / "SUMMARY.txt").write_text(text)
    try:
        print(text)
    except BrokenPipeError:  # e.g. piped into `head`
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
