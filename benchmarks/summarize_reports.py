#!/usr/bin/env python
"""Aggregate the bench reports into a one-page reproduction scorecard.

Every bench writes its table and its ``[shape OK]`` / ``[shape WARNING]``
lines to ``benchmarks/reports/<name>.txt``; this script tallies them per
experiment and writes ``benchmarks/reports/SUMMARY.txt`` — the at-a-glance
answer to "did the reproduction hold?".

Profile JSON files (written by ``repro sketch --profile-out`` or
``repro.obs.build_profile``) dropped into the reports directory as
``PROFILE_*.json`` are ingested into the same scorecard: one line per
profile with the measured GFlop/s, sample fraction, and the
attained-over-predicted roofline ratio.

Metrics JSON files (``repro sketch --metrics-out run.json``) dropped in
as ``METRICS_*.json`` contribute a runtime-health section: the bus's
``dropped_events`` tally (a silently broken observer pipeline should not
hide in a scorecard that says everything held) and the artifact-cache
hit/miss/eviction counters.  Runs that executed the partition stage add
a sharding section (shard count, merge seconds/words, requeues per
shard, checkpoint-resumed shards).  The warm-cache and shard gate
baselines (``BENCH_cache.json``, ``BENCH_shard.json``) are summarized
the same way.

Metric families in a METRICS file that this script does not know are a
**loud failure** (exit code 1): a new metric added to the observer
without extending ``KNOWN_METRIC_FAMILIES`` here would otherwise vanish
from the scorecard silently.

Run after a bench sweep:
    pytest benchmarks/ --benchmark-only
    python benchmarks/summarize_reports.py
"""

from __future__ import annotations

import json
import os
import re
import sys
from pathlib import Path

REPORTS = Path(__file__).parent / "reports"

# -- per-metric gate tolerances -------------------------------------------
#
# Every perf gate used to read one blanket ``REPRO_BENCH_GATE_TOL``; a
# tolerance wide enough for the noisiest gate (process-pool shard ratios)
# was then also applied to the quietest one (steady-state backend
# bandwidth), so a real regression in a quiet metric could hide inside
# the blanket.  Each gated metric now carries its own tolerance, sized to
# that metric's observed run-to-run noise.  Override one metric with
# ``REPRO_BENCH_GATE_TOL_<METRIC>`` (e.g. ``REPRO_BENCH_GATE_TOL_BACKEND_GBS``);
# the legacy blanket ``REPRO_BENCH_GATE_TOL`` still works but applies to
# every metric and should be reserved for one-off noisy hosts.
GATE_TOLERANCES = {
    # Steady-state effective GB/s per backend cell: JIT warmup is forced
    # out of the timed region, so this is the quietest gate.
    "backend_gbs": 0.15,
    # Warm-vs-cold artifact-cache speedup: one cold subprocess in the
    # denominator adds spawn jitter.
    "cache_speedup": 0.25,
    # Sharded/unsharded wall ratio on the process driver: worker spawn
    # and IPC make this the noisiest gate.
    "shard_ratio": 0.40,
    # Batched-vs-sequential throughput ratio: headroom under the 1.5x
    # acceptance bar.
    "batch_ratio": 0.15,
}


def gate_tolerance(metric: str) -> float:
    """The gate tolerance for *metric* (see :data:`GATE_TOLERANCES`).

    Resolution order: ``REPRO_BENCH_GATE_TOL_<METRIC>`` >
    legacy blanket ``REPRO_BENCH_GATE_TOL`` > the per-metric default.
    Unknown metrics are a programming error and raise ``KeyError``.
    """
    default = GATE_TOLERANCES[metric]
    per_metric = os.environ.get(f"REPRO_BENCH_GATE_TOL_{metric.upper()}")
    if per_metric:
        return float(per_metric)
    blanket = os.environ.get("REPRO_BENCH_GATE_TOL")
    if blanket:
        return float(blanket)
    return default

# Every metric family the observer layer exports (bare names; stored
# names carry the registry namespace prefix, e.g. ``repro_runs_total``).
# Keep in sync with the catalogue in src/repro/obs/observer.py — an
# unknown family in a METRICS_*.json fails the scorecard loudly.
KNOWN_METRIC_FAMILIES = frozenset({
    "runs_total", "run_seconds", "blocks_total", "blocks_in_flight",
    "block_seconds", "sample_seconds_total", "compute_seconds_total",
    "conversion_seconds_total", "cpu_seconds_total", "wall_seconds_total",
    "samples_generated_total", "flops_total", "sample_fraction",
    "attained_gflops", "checkpoints_total", "checkpoint_seconds",
    "retries_total", "degraded_total", "pool_workers",
    "pool_workers_lost_total", "pool_respawns_total", "pool_requeues_total",
    "shards_total", "shard_merge_seconds", "shard_merge_words_total",
    "shard_requeues_total", "shards_resumed_total",
    "cache_hits_total", "cache_misses_total", "cache_evictions_total",
    "serve_requests_admitted_total", "serve_requests_shed_total",
    "serve_requests_total", "serve_request_seconds",
    "requests_coalesced_total", "batch_size",
    "serve_deadline_missed_total", "serve_queue_depth",
    "serve_drains_total", "dropped_events",
})


def _unknown_families(payload: dict) -> list[str]:
    """Metric family names in *payload* absent from the known schema."""
    unknown = []
    for family in payload.get("metrics", []):
        fname = family.get("name", "")
        if not any(fname == k or fname.endswith(f"_{k}")
                   for k in KNOWN_METRIC_FAMILIES):
            unknown.append(fname)
    return unknown


def _profile_line(path: Path) -> str:
    """One scorecard line for a profile JSON file (never raises: a bad
    profile is reported, not fatal — the scorecard must always build)."""
    try:
        payload = json.loads(path.read_text())
        sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
        try:
            from repro.obs.schema import validate_profile

            validate_profile(payload)
        finally:
            sys.path.pop(0)
        measured = payload["measured"]
        roofline = payload["roofline"]
        problem = payload["problem"]
        ratio = roofline.get("model_ratio")
        ratio_s = "n/a" if ratio is None else f"{ratio:.3f}"
        return (
            f"   {path.stem}: {payload['kernel']}/{payload['driver'] or '?'}"
            f" on {payload['machine']}"
            f"  {problem['m']}x{problem['n']} d={problem['d']}"
            f"  {measured['attained_gflops']:.3f} GFlop/s"
            f"  sample={measured['sample_fraction']:.1%}"
            f"  attained/predicted={ratio_s}"
        )
    except Exception as exc:  # noqa: BLE001 - scorecard is best-effort
        return f"!! {path.stem}: unreadable profile ({exc})"


def _metric_total(payload: dict, name: str) -> float | None:
    """Sum one family's samples from a MetricsRegistry JSON snapshot.

    Family names are stored namespace-prefixed (``repro_cache_hits_total``)
    so matching is by suffix; ``None`` distinguishes "family absent" from
    a genuine zero.
    """
    for family in payload.get("metrics", []):
        fname = family.get("name", "")
        if fname == name or fname.endswith(f"_{name}"):
            return float(sum(s.get("value", 0.0)
                             for s in family.get("samples", [])))
    return None


def _metric_family(payload: dict, name: str) -> dict | None:
    """The full family dict (labels + samples) matched by suffix."""
    for family in payload.get("metrics", []):
        fname = family.get("name", "")
        if fname == name or fname.endswith(f"_{name}"):
            return family
    return None


def _metrics_line(path: Path) -> str:
    """One runtime-health line for a METRICS_*.json file (best-effort)."""
    try:
        payload = json.loads(path.read_text())
        dropped = _metric_total(payload, "dropped_events") or 0.0
        parts = [f"dropped_events={int(dropped)}"
                 + ("  <-- observer pipeline broke" if dropped else "")]
        cache_bits = []
        for counter, label in (("cache_hits_total", "hits"),
                               ("cache_misses_total", "misses"),
                               ("cache_evictions_total", "evictions")):
            total = _metric_total(payload, counter)
            if total is not None:
                cache_bits.append(f"{label}={int(total)}")
        if cache_bits:
            parts.append("cache " + "/".join(cache_bits))
        unknown = _unknown_families(payload)
        if unknown:
            parts.append("UNKNOWN families: " + ", ".join(unknown))
        flag = "!!" if dropped or unknown else "  "
        return f"{flag} {path.stem}: " + "  ".join(parts)
    except Exception as exc:  # noqa: BLE001 - scorecard is best-effort
        return f"!! {path.stem}: unreadable metrics ({exc})"


def _sharding_lines(path: Path) -> list[str]:
    """Sharding lines for one METRICS_*.json that ran the partition stage."""
    try:
        payload = json.loads(path.read_text())
    except Exception:  # noqa: BLE001 - the health line already reports it
        return []
    shards = _metric_total(payload, "shards_total")
    if not shards:
        return []
    merge = _metric_family(payload, "shard_merge_seconds")
    merge_sum = (sum(float(s.get("sum", 0.0)) for s in merge["samples"])
                 if merge else 0.0)
    words = _metric_total(payload, "shard_merge_words_total") or 0.0
    resumed = _metric_total(payload, "shards_resumed_total") or 0.0
    parts = [f"shards={int(shards)}", f"merge={merge_sum:.4f}s",
             f"merge_words={int(words)}"]
    if resumed:
        parts.append(f"resumed_from_checkpoint={int(resumed)}")
    lines = [f"   {path.stem}: " + "  ".join(parts)]
    requeues = _metric_family(payload, "shard_requeues_total")
    if requeues and requeues.get("samples"):
        per = ", ".join(
            f"shard {s.get('labels', {}).get('shard', '?')}: "
            f"{int(s.get('value', 0))}"
            for s in requeues["samples"])
        lines.append(f"     requeues per shard: {per}")
    return lines


def _cache_gate_lines() -> list[str]:
    """Summarize the committed warm-cache baseline, if present."""
    path = REPORTS / "BENCH_cache.json"
    if not path.exists():
        return []
    try:
        p = json.loads(path.read_text())
        clean = (p.get("warm_tune_misses") == 0
                 and p.get("warm_blocked_misses") == 0
                 and p.get("sketch_identical", False))
        flag = "  " if clean else "!!"
        return [
            "",
            "artifact cache (warm-vs-cold gate baseline):",
            f"{flag} cold {p['cold_seconds']:.3f}s -> warm "
            f"{p['warm_seconds']:.3f}s ({p['warm_speedup']:.2f}x)  "
            f"warm misses: tune={p.get('warm_tune_misses', '?')} "
            f"blocked_csr={p.get('warm_blocked_misses', '?')}  "
            f"bit-identical={'yes' if p.get('sketch_identical') else 'NO'}",
        ]
    except Exception as exc:  # noqa: BLE001
        return ["", f"!! BENCH_cache.json: unreadable ({exc})"]


def _shard_gate_lines() -> list[str]:
    """Summarize the committed sharded-execution baseline, if present."""
    path = REPORTS / "BENCH_shard.json"
    if not path.exists():
        return []
    try:
        p = json.loads(path.read_text())
        clean = (p.get("sketch_identical", False)
                 and p.get("shards_executed") == p.get("shards_requested"))
        flag = "  " if clean else "!!"
        return [
            "",
            "sharded execution (simulator-validation gate baseline):",
            f"{flag} {p.get('strategy', '?')} x{p.get('shards_requested', '?')}"
            f"  unsharded {p['unsharded_seconds']:.3f}s -> sharded "
            f"{p['sharded_seconds']:.3f}s (ratio measured "
            f"{p['measured_ratio']:.3f} / predicted "
            f"{p['predicted_ratio']:.3f})  merge={p['merge_seconds']:.4f}s  "
            f"bit-identical={'yes' if p.get('sketch_identical') else 'NO'}",
        ]
    except Exception as exc:  # noqa: BLE001
        return ["", f"!! BENCH_shard.json: unreadable ({exc})"]


def _batch_gate_lines() -> list[str]:
    """Summarize the committed batched-sketching baseline, if present."""
    path = REPORTS / "BENCH_batch.json"
    if not path.exists():
        return []
    try:
        p = json.loads(path.read_text())
        entries = p.get("entries", {})
        identical = all(e.get("bit_identical") for e in entries.values())
        target = p.get("target_ratio", 1.5)
        clean = identical and p.get("best_ratio", 0.0) >= target
        flag = "  " if clean else "!!"
        cells = "  ".join(f"{k}={e['ratio']:.2f}x"
                          for k, e in sorted(entries.items()))
        return [
            "",
            "batched multi-sketch (throughput gate baseline):",
            f"{flag} k={p.get('batch', '?')} best {p['best_ratio']:.2f}x "
            f"(bar {target}x)  {cells}  "
            f"bit-identical={'yes' if identical else 'NO'}",
        ]
    except Exception as exc:  # noqa: BLE001
        return ["", f"!! BENCH_batch.json: unreadable ({exc})"]


def summarize() -> str:
    files = sorted(REPORTS.glob("*.txt"))
    files = [f for f in files if f.name != "SUMMARY.txt"]
    profiles = sorted(REPORTS.glob("PROFILE_*.json"))
    if not files and not profiles:
        return "no reports found — run `pytest benchmarks/ --benchmark-only` first\n"
    rows = []
    total_ok = total_warn = 0
    scale = "?"
    for f in files:
        text = f.read_text()
        ok = len(re.findall(r"\[shape OK\]", text))
        warn = len(re.findall(r"\[shape WARNING\]", text))
        m = re.search(r"\[scale=(\w+)\]", text)
        if m:
            scale = m.group(1)
        total_ok += ok
        total_warn += warn
        title = text.splitlines()[0].split("  [scale")[0] if text else f.stem
        rows.append((f.stem, ok, warn, title))
    lines = [
        "REPRODUCTION SCORECARD",
        "======================",
        f"reports: {len(rows)}   shape checks: {total_ok} OK, "
        f"{total_warn} WARNING   (scale={scale})",
        "",
    ]
    if rows:
        width = max(len(r[0]) for r in rows)
        for stem, ok, warn, title in rows:
            flag = "  " if warn == 0 else "!!"
            lines.append(
                f"{flag} {stem.ljust(width)}  OK={ok:<3d} WARN={warn:<2d} {title}")
    if profiles:
        lines.append("")
        lines.append(f"roofline profiles ({len(profiles)}):")
        for p in profiles:
            lines.append(_profile_line(p))
    metrics = sorted(REPORTS.glob("METRICS_*.json"))
    if metrics:
        lines.append("")
        lines.append(f"runtime health ({len(metrics)}):")
        for m_path in metrics:
            lines.append(_metrics_line(m_path))
        shard_lines = [line for m_path in metrics
                       for line in _sharding_lines(m_path)]
        if shard_lines:
            lines.append("")
            lines.append("sharding (partition-stage runs):")
            lines.extend(shard_lines)
    lines.extend(_cache_gate_lines())
    lines.extend(_shard_gate_lines())
    lines.extend(_batch_gate_lines())
    if total_warn:
        lines.append("")
        lines.append("warnings (expected deviations are documented in "
                     "EXPERIMENTS.md):")
        for f in files:
            for line in f.read_text().splitlines():
                if "[shape WARNING]" in line:
                    lines.append(f"  {f.stem}: {line.strip()}")
    return "\n".join(lines) + "\n"


def main() -> int:
    text = summarize()
    (REPORTS / "SUMMARY.txt").write_text(text)
    try:
        print(text)
    except BrokenPipeError:  # e.g. piped into `head`
        pass
    # Schema drift is the one scorecard problem that must not pass
    # silently: a metric family this script cannot name would otherwise
    # just be absent from a summary that claims everything held.
    unknown = []
    for m_path in sorted(REPORTS.glob("METRICS_*.json")):
        try:
            payload = json.loads(m_path.read_text())
        except Exception:  # noqa: BLE001 - already flagged as unreadable
            continue
        unknown += [f"{m_path.stem}: {name}"
                    for name in _unknown_families(payload)]
    if unknown:
        print("schema-unknown metric families (extend "
              "KNOWN_METRIC_FAMILIES in benchmarks/summarize_reports.py "
              "alongside the observer change):", file=sys.stderr)
        for entry in unknown:
            print(f"  {entry}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
