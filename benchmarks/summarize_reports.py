#!/usr/bin/env python
"""Aggregate the bench reports into a one-page reproduction scorecard.

Every bench writes its table and its ``[shape OK]`` / ``[shape WARNING]``
lines to ``benchmarks/reports/<name>.txt``; this script tallies them per
experiment and writes ``benchmarks/reports/SUMMARY.txt`` — the at-a-glance
answer to "did the reproduction hold?".

Profile JSON files (written by ``repro sketch --profile-out`` or
``repro.obs.build_profile``) dropped into the reports directory as
``PROFILE_*.json`` are ingested into the same scorecard: one line per
profile with the measured GFlop/s, sample fraction, and the
attained-over-predicted roofline ratio.

Run after a bench sweep:
    pytest benchmarks/ --benchmark-only
    python benchmarks/summarize_reports.py
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

REPORTS = Path(__file__).parent / "reports"


def _profile_line(path: Path) -> str:
    """One scorecard line for a profile JSON file (never raises: a bad
    profile is reported, not fatal — the scorecard must always build)."""
    try:
        payload = json.loads(path.read_text())
        sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
        try:
            from repro.obs.schema import validate_profile

            validate_profile(payload)
        finally:
            sys.path.pop(0)
        measured = payload["measured"]
        roofline = payload["roofline"]
        problem = payload["problem"]
        ratio = roofline.get("model_ratio")
        ratio_s = "n/a" if ratio is None else f"{ratio:.3f}"
        return (
            f"   {path.stem}: {payload['kernel']}/{payload['driver'] or '?'}"
            f" on {payload['machine']}"
            f"  {problem['m']}x{problem['n']} d={problem['d']}"
            f"  {measured['attained_gflops']:.3f} GFlop/s"
            f"  sample={measured['sample_fraction']:.1%}"
            f"  attained/predicted={ratio_s}"
        )
    except Exception as exc:  # noqa: BLE001 - scorecard is best-effort
        return f"!! {path.stem}: unreadable profile ({exc})"


def summarize() -> str:
    files = sorted(REPORTS.glob("*.txt"))
    files = [f for f in files if f.name != "SUMMARY.txt"]
    profiles = sorted(REPORTS.glob("PROFILE_*.json"))
    if not files and not profiles:
        return "no reports found — run `pytest benchmarks/ --benchmark-only` first\n"
    rows = []
    total_ok = total_warn = 0
    scale = "?"
    for f in files:
        text = f.read_text()
        ok = len(re.findall(r"\[shape OK\]", text))
        warn = len(re.findall(r"\[shape WARNING\]", text))
        m = re.search(r"\[scale=(\w+)\]", text)
        if m:
            scale = m.group(1)
        total_ok += ok
        total_warn += warn
        title = text.splitlines()[0].split("  [scale")[0] if text else f.stem
        rows.append((f.stem, ok, warn, title))
    lines = [
        "REPRODUCTION SCORECARD",
        "======================",
        f"reports: {len(rows)}   shape checks: {total_ok} OK, "
        f"{total_warn} WARNING   (scale={scale})",
        "",
    ]
    if rows:
        width = max(len(r[0]) for r in rows)
        for stem, ok, warn, title in rows:
            flag = "  " if warn == 0 else "!!"
            lines.append(
                f"{flag} {stem.ljust(width)}  OK={ok:<3d} WARN={warn:<2d} {title}")
    if profiles:
        lines.append("")
        lines.append(f"roofline profiles ({len(profiles)}):")
        for p in profiles:
            lines.append(_profile_line(p))
    if total_warn:
        lines.append("")
        lines.append("warnings (expected deviations are documented in "
                     "EXPERIMENTS.md):")
        for f in files:
            for line in f.read_text().splitlines():
                if "[shape WARNING]" in line:
                    lines.append(f"  {f.stem}: {line.strip()}")
    return "\n".join(lines) + "\n"


def main() -> int:
    text = summarize()
    (REPORTS / "SUMMARY.txt").write_text(text)
    try:
        print(text)
    except BrokenPipeError:  # e.g. piped into `head`
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
