#!/usr/bin/env python
"""Aggregate the bench reports into a one-page reproduction scorecard.

Every bench writes its table and its ``[shape OK]`` / ``[shape WARNING]``
lines to ``benchmarks/reports/<name>.txt``; this script tallies them per
experiment and writes ``benchmarks/reports/SUMMARY.txt`` — the at-a-glance
answer to "did the reproduction hold?".

Run after a bench sweep:
    pytest benchmarks/ --benchmark-only
    python benchmarks/summarize_reports.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPORTS = Path(__file__).parent / "reports"


def summarize() -> str:
    files = sorted(REPORTS.glob("*.txt"))
    files = [f for f in files if f.name != "SUMMARY.txt"]
    if not files:
        return "no reports found — run `pytest benchmarks/ --benchmark-only` first\n"
    rows = []
    total_ok = total_warn = 0
    scale = "?"
    for f in files:
        text = f.read_text()
        ok = len(re.findall(r"\[shape OK\]", text))
        warn = len(re.findall(r"\[shape WARNING\]", text))
        m = re.search(r"\[scale=(\w+)\]", text)
        if m:
            scale = m.group(1)
        total_ok += ok
        total_warn += warn
        title = text.splitlines()[0].split("  [scale")[0] if text else f.stem
        rows.append((f.stem, ok, warn, title))
    width = max(len(r[0]) for r in rows)
    lines = [
        "REPRODUCTION SCORECARD",
        "======================",
        f"reports: {len(rows)}   shape checks: {total_ok} OK, "
        f"{total_warn} WARNING   (scale={scale})",
        "",
    ]
    for stem, ok, warn, title in rows:
        flag = "  " if warn == 0 else "!!"
        lines.append(f"{flag} {stem.ljust(width)}  OK={ok:<3d} WARN={warn:<2d} {title}")
    if total_warn:
        lines.append("")
        lines.append("warnings (expected deviations are documented in "
                     "EXPERIMENTS.md):")
        for f in files:
            for line in f.read_text().splitlines():
                if "[shape WARNING]" in line:
                    lines.append(f"  {f.stem}: {line.strip()}")
    return "\n".join(lines) + "\n"


def main() -> int:
    text = summarize()
    (REPORTS / "SUMMARY.txt").write_text(text)
    try:
        print(text)
    except BrokenPipeError:  # e.g. piped into `head`
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
