"""Extension — dense on-the-fly sketch vs a sparse-sign sketch.

The related-work line the paper engages (pylspack [13]; RandBLAS) sketches
with *sparse* operators instead of regenerating a dense one.  This bench
runs the head-to-head the paper leaves implicit: both operators at
``gamma = 2`` on a rail-style least-squares problem, comparing

* sketch application cost (flops: ``2 s nnz`` vs ``2 d nnz``; wall clock);
* preconditioner quality (LSQR iterations to 1e-14);
* end-to-end SAP solve time.

Expected shape: the sparse sketch is far cheaper to apply, both
preconditioners land in the same iteration band (gamma governs quality),
and the dense sketch's advantage is architectural (strided access, no
stored operator) rather than flop-count — which is exactly the paper's
pitch.
"""

from __future__ import annotations

import numpy as np
from _harness import best_of, emit_report, shape_check

from repro.core import SketchConfig, SketchOperator
from repro.core.sparse_sketch import SparseSignSketch
from repro.lsq import CscOperator, PreconditionedOperator, lsqr
from repro.lsq.preconditioners import TriangularPreconditioner
from repro.sparse import rail_like_sparse


def _problem(m=8000, n=120, seed=41):
    A = rail_like_sparse(m, n, 12 * m, seed=seed, mix_spread=2.5)
    rng = np.random.default_rng(seed)
    b = (CscOperator(A).matvec(rng.standard_normal(n))
         + rng.standard_normal(m))
    return A, b


def _solve_with(Ahat, A, b):
    precond = TriangularPreconditioner.from_sketch(Ahat)
    B = PreconditionedOperator(CscOperator(A), precond)
    run = lsqr(B, b, atol=1e-14)
    return run, precond.apply(run.z)


def test_sparse_vs_dense_sketch_report(benchmark):
    def run():
        A, b = _problem()
        d = 2 * A.shape[1]
        dense_op = SketchOperator(d, A.shape[0], config=SketchConfig(
            gamma=2.0, seed=5, kernel="algo3"))
        t_dense, dense_res = best_of(lambda: dense_op.apply(A))
        sparse_op = SparseSignSketch(d, A.shape[0], s=8, seed=5)
        t_sparse, sparse_res = best_of(lambda: sparse_op.apply(A))
        run_dense, x_dense = _solve_with(dense_res.sketch, A, b)
        run_sparse, x_sparse = _solve_with(sparse_res.sketch, A, b)
        return {
            "A": A, "d": d,
            "dense": (t_dense, dense_res.stats.flops, run_dense, x_dense),
            "sparse": (t_sparse, sparse_res.flops, run_sparse, x_sparse),
            "sparse_nnz": sparse_op.operator_nnz,
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    t_d, f_d, run_d, x_d = r["dense"]
    t_s, f_s, run_s, x_s = r["sparse"]
    rows = [
        ["dense on-the-fly (paper)", t_d, f_d, 0, run_d.iterations],
        ["sparse-sign s=8 (pylspack role)", t_s, f_s, r["sparse_nnz"],
         run_s.iterations],
    ]
    notes = [
        shape_check(
            f_s < 0.25 * f_d,
            f"sparse sketch needs {f_s / f_d:.2%} of the dense flops",
        ),
        shape_check(
            run_s.iterations < 3 * max(run_d.iterations, 1) and
            run_d.iterations < 3 * max(run_s.iterations, 1),
            "both preconditioners land in the same LSQR iteration band "
            f"({run_d.iterations} vs {run_s.iterations}) — gamma governs "
            "quality, not operator density",
        ),
        shape_check(
            float(np.linalg.norm(x_d - x_s))
            <= 1e-6 * max(1.0, float(np.linalg.norm(x_d))),
            "both pipelines reach the same least-squares solution",
        ),
        "the dense kernel's case is architectural (strided access, zero "
        "stored operator), not flop count — Section II's design argument",
    ]
    emit_report(
        "ext_sparse_sketch",
        "Extension: dense on-the-fly sketch vs sparse-sign sketch "
        "(SAP pipeline, gamma = 2)",
        ["operator", "apply seconds", "apply flops", "stored nnz",
         "LSQR iterations"],
        rows,
        notes="\n".join(notes),
    )
    assert f_s < f_d
    assert run_s.converged and run_d.converged
