"""Batched multi-sketch throughput matrix and regression gate.

Measures the batched kernel tier (:func:`repro.kernels.sketch_spmm_batched`)
against ``k`` independent :func:`~repro.kernels.sketch_spmm` runs of the
same matrix — the "fixed A, many sketches" hot path that request
coalescing in ``repro serve`` rides on.  For every kernel x RNG-family
cell it records both wall times, the throughput ratio, and verifies the
batched stack is *bit-identical* slice-by-slice to the independent runs
(the batched tier's core contract).

Two consumers:

* ``pytest benchmarks/ --benchmark-only`` — prints the matrix and
  refreshes ``reports/BENCH_batch.json``;
* ``make batch-smoke`` (``python benchmarks/bench_batch_matrix.py``) —
  re-measures and fails when any cell that met the 1.5x bar in the
  committed baseline drops below it (minus the noise tolerance), or when
  bit-identity breaks.  On a pass the baseline is refreshed.

The headline number is the *best* cell's ratio: the batching win is an
amortization of per-call RNG pipeline setup and of A's traversal, so its
magnitude varies by kernel/family, but at k=8 the well-suited cells
sustain >= 1.5x — that floor is the gate.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
from _harness import REPEATS, emit_report, shape_check

from repro.kernels import KernelWorkspace, get_backend
from repro.kernels.blocking import sketch_spmm, sketch_spmm_batched
from repro.rng import make_rng
from repro.rng.batched import make_batched_rng
from repro.sparse import random_sparse

from summarize_reports import gate_tolerance

GATE_PATH = Path(__file__).parent / "reports" / "BENCH_batch.json"
DEFAULT_TOLERANCE = gate_tolerance("batch_ratio")

#: The acceptance floor: at k=8 a gated cell must sustain at least this
#: multiple of the sequential (k independent runs) throughput.
TARGET_RATIO = 1.5

KERNELS = ("algo3", "algo4")
RNG_KINDS = ("philox", "threefry")
SEEDS = tuple(range(101, 109))          # k = 8
GAMMA_D = 256
B_D = 64
B_N = 100

_DIMS = os.environ.get("REPRO_BENCH_BATCH_DIMS", "3000,600,0.01").split(",")
BATCH_M, BATCH_N, BATCH_DENSITY = int(_DIMS[0]), int(_DIMS[1]), float(_DIMS[2])


def measure_batch_matrix(repeats: int = REPEATS) -> dict:
    """Time sequential vs batched sketching for every cell.

    Returns a JSON-ready dict whose ``entries["kernel/rng"]`` hold both
    wall times (best-of-*repeats*), the ratio, and the bit-identity
    verdict.  The numpy backend is measured — it is the only one
    guaranteed present, and the committed baseline must gate every CI
    host.
    """
    A = random_sparse(BATCH_M, BATCH_N, BATCH_DENSITY, seed=0)
    d = GAMMA_D
    backend = get_backend("numpy")
    entries: dict[str, dict] = {}
    for kernel in KERNELS:
        for rng_kind in RNG_KINDS:
            workspace = KernelWorkspace()
            seq_best = float("inf")
            solo = None
            for _ in range(max(1, repeats)):
                outs = []
                t0 = time.perf_counter()
                for seed in SEEDS:
                    rng = make_rng(rng_kind, seed, "uniform")
                    Ahat, _ = sketch_spmm(A, d, rng, kernel=kernel,
                                          b_d=B_D, b_n=B_N, backend=backend,
                                          workspace=workspace)
                    outs.append(Ahat)
                seq_best = min(seq_best, time.perf_counter() - t0)
                solo = outs
            bat_best = float("inf")
            stacked = None
            for _ in range(max(1, repeats)):
                brng = make_batched_rng(rng_kind, SEEDS, "uniform")
                t0 = time.perf_counter()
                stacked, _ = sketch_spmm_batched(
                    A, d, brng, kernel=kernel, b_d=B_D, b_n=B_N,
                    backend=backend, workspace=workspace)
                bat_best = min(bat_best, time.perf_counter() - t0)
            identical = all(np.array_equal(stacked[t], solo[t])
                            for t in range(len(SEEDS)))
            entries[f"{kernel}/{rng_kind}"] = {
                "kernel": kernel,
                "rng": rng_kind,
                "batch": len(SEEDS),
                "sequential_seconds": seq_best,
                "batched_seconds": bat_best,
                "ratio": seq_best / bat_best,
                "bit_identical": identical,
            }
    ratios = [e["ratio"] for e in entries.values()]
    return {
        "matrix": f"synthetic({BATCH_M}x{BATCH_N}, rho={BATCH_DENSITY})",
        "nnz": A.nnz,
        "d": d,
        "b_d": B_D,
        "b_n": B_N,
        "batch": len(SEEDS),
        "backend": "numpy",
        "repeats": max(1, repeats),
        "target_ratio": TARGET_RATIO,
        "best_ratio": max(ratios),
        "entries": entries,
    }


def compare_to_baseline(baseline: dict, current: dict,
                        tolerance: float) -> list[str]:
    """Gate the current run; returns human-readable failure lines.

    Two checks per cell: bit-identity must hold unconditionally, and a
    cell that met :data:`TARGET_RATIO` in the committed baseline must
    stay above ``TARGET_RATIO * (1 - tolerance)`` — so the 1.5x
    acceptance bar is held where it was demonstrated, with headroom for
    host noise, while a cell that never reached it cannot flake the CI.
    """
    failures = []
    base_entries = baseline.get("entries", {})
    for key, cur in current["entries"].items():
        if not cur["bit_identical"]:
            failures.append(f"{key}: batched output is NOT bit-identical "
                            f"to the sequential runs")
        base = base_entries.get(key)
        if base is None or base["ratio"] < TARGET_RATIO:
            continue
        floor = TARGET_RATIO * (1.0 - tolerance)
        if cur["ratio"] < floor:
            failures.append(
                f"{key}: batched speedup {cur['ratio']:.2f}x < floor "
                f"{floor:.2f}x (baseline {base['ratio']:.2f}x, "
                f"target {TARGET_RATIO}x, tolerance {tolerance:.0%})")
    if current["best_ratio"] < TARGET_RATIO * (1.0 - tolerance):
        failures.append(
            f"headline: best cell {current['best_ratio']:.2f}x < "
            f"{TARGET_RATIO}x acceptance bar (tolerance {tolerance:.0%})")
    return failures


def _write_baseline(payload: dict) -> None:
    GATE_PATH.parent.mkdir(exist_ok=True)
    GATE_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True))


def _report_rows(payload: dict) -> list[list]:
    return [[e["kernel"], e["rng"], e["batch"],
             round(e["sequential_seconds"], 4),
             round(e["batched_seconds"], 4),
             f"{e['ratio']:.2f}x",
             "yes" if e["bit_identical"] else "NO"]
            for e in payload["entries"].values()]


def test_batch_matrix_report(benchmark):
    payload = benchmark.pedantic(measure_batch_matrix, rounds=1,
                                 iterations=1)
    entries = payload["entries"]
    notes = [shape_check(
        payload["best_ratio"] >= TARGET_RATIO,
        f"k={payload['batch']} batched sketching sustains >= "
        f"{TARGET_RATIO}x sequential throughput "
        f"(best {payload['best_ratio']:.2f}x)")]
    emit_report(
        "batch_matrix",
        "Batched multi-sketch matrix (k sketches per pass vs k runs)",
        ["kernel", "rng", "k", "seq s", "batched s", "speedup",
         "bit-identical"],
        _report_rows(payload),
        notes="\n".join(notes),
    )
    _write_baseline(payload)
    assert all(e["bit_identical"] for e in entries.values())


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="Batched-sketching perf gate (compare against the "
                    "committed BENCH_batch.json)")
    parser.add_argument("--baseline", default=str(GATE_PATH),
                        help="baseline JSON to gate against")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="noise headroom under the 1.5x bar "
                             "(default: the batch_ratio per-metric "
                             "tolerance; see summarize_reports.py)")
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument("--force-update", action="store_true",
                        help="refresh the baseline even on regression")
    args = parser.parse_args()

    current = measure_batch_matrix(args.repeats)
    for row in _report_rows(current):
        print("  ".join(str(c) for c in row))
    baseline_path = Path(args.baseline)
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        failures = compare_to_baseline(baseline, current, args.tolerance)
        if failures:
            print("\nbatch-gate: FAILED", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            if not args.force_update:
                sys.exit(1)
        else:
            print(f"\nbatch-gate: OK ({len(current['entries'])} cells, "
                  f"best {current['best_ratio']:.2f}x, "
                  f"bar {TARGET_RATIO}x)")
    else:
        print(f"\nbatch-gate: no baseline at {baseline_path}; recording one")
    _write_baseline(current)
