"""Table VIII — properties of the least-squares test matrices.

Regenerates the suite-property table: dimensions, nnz, condition number
before and after diagonal column scaling (cond(A) / cond(AD)), storage in
Mbytes, and density — paper values beside the surrogate's realized values
at the active scale.  The key shapes: the rail-class surrogates keep
``cond(AD)`` large (diagonal scaling does not fix them), and the
specular/connectus/landmark class is numerically rank-deficient.
"""

from __future__ import annotations

import pytest
from _harness import emit_report, lsq_case, shape_check, suite_matrix

from repro.sparse import column_norms, condition_number, scale_columns
from repro.workloads import LSQ_SUITE


def _props(name: str) -> dict:
    A = suite_matrix("lsq", name)
    norms = column_norms(A)
    safe = norms.copy()
    safe[safe == 0] = 1.0
    AD = scale_columns(A, 1.0 / safe)
    return {
        "A": A,
        "cond": condition_number(A),
        "cond_ad": condition_number(AD),
        "mem_mb": A.memory_bytes / (1024.0 * 1024.0),
    }


@pytest.mark.parametrize("name", sorted(LSQ_SUITE))
def test_suite_build_speed(benchmark, name):
    from repro.workloads import build_matrix

    benchmark.pedantic(lambda: build_matrix(LSQ_SUITE[name]),
                       rounds=1, iterations=1)


def test_table08_report(benchmark):
    results = benchmark.pedantic(
        lambda: {n: _props(n) for n in LSQ_SUITE}, rounds=1, iterations=1
    )
    rows, notes = [], []
    for name, r in results.items():
        case = lsq_case(name)
        A = r["A"]
        rows.append([
            name, case.m, case.n, case.nnz, case.paper["cond"],
            case.paper["mem_mb"],
            A.shape[0], A.shape[1], A.nnz, r["cond"], r["cond_ad"],
            r["mem_mb"],
        ])
    for name in ("rail582", "rail2586", "rail4284"):
        notes.append(shape_check(
            results[name]["cond_ad"] > 20,
            f"{name}: cond(AD) = {results[name]['cond_ad']:.0f} stays large "
            "after column scaling (the rail mechanism)",
        ))
    for name in ("specular", "connectus", "landmark"):
        notes.append(shape_check(
            results[name]["cond"] > 1e8,
            f"{name}: numerically rank-deficient "
            f"(cond = {results[name]['cond']:.1e})",
        ))
    emit_report(
        "table08",
        "Table VIII: least-squares matrices (paper vs surrogate)",
        ["matrix", "m(p)", "n(p)", "nnz(p)", "cond(p)", "MB(p)",
         "m", "n", "nnz", "cond", "cond(AD)", "MB"],
        rows,
        notes="\n".join(notes),
    )
    assert all(results[n]["cond"] > 1e8
               for n in ("specular", "connectus", "landmark"))
