"""Figure 4 — percent of peak vs nonzero density for five generation methods.

The paper sweeps density on uniform random matrices (Algorithm 4,
Perlmutter) and compares: Gaussians on the fly, pre-generated S (its
generation time excluded), (-1,1) on the fly, (-1,1) with the scaling
trick, and +-1 on the fly.  The shapes: Gaussian-on-the-fly is far below
everything; the three cheap on-the-fly methods beat pre-generated; all
curves rise with density (more flops per byte).

This bench reproduces the figure's series twice: the machine-model
percent-of-peak (paper-scale problems, exact reproduction of the
mechanism) and measured wall clock per method at surrogate scale.
"""

from __future__ import annotations

import numpy as np
import pytest
from _harness import REPEATS, best_of, emit_report, shape_check

from repro.kernels import sketch_spmm
from repro.model import PERLMUTTER, TrafficEstimate, expected_nonempty_rows
from repro.parallel import predict_time
from repro.rng import XoshiroSketchRNG
from repro.sparse import random_sparse

DENSITIES = [1e-3, 3e-3, 1e-2, 3e-2, 1e-1]
METHODS = ["gaussian", "pregen", "uniform", "uniform_scaled", "rademacher"]


def _model_fraction(rho: float, method: str, *, m: int = 100_000,
                    n: int = 10_000, b_d: int = 3000, b_n: int = 1200) -> float:
    """Model percent-of-peak for Algorithm 4 at paper-like dimensions."""
    machine = PERLMUTTER
    d = 3 * n
    nnz = rho * m * n
    n_blocks = -(-n // b_n)
    passes = -(-d // b_d)
    flops = 2.0 * d * nnz
    if method == "pregen":
        sketch_words = float(d) * m
        sketch_passes = 1 if sketch_words <= machine.cache_words else n_blocks
        traffic = TrafficEstimate(
            algorithm="pregen",
            words_sparse=passes * (2.0 * nnz + n + 1),
            words_output=2.0 * d * n, words_output_scattered=2.0 * d * n,
            words_sketch=sketch_passes * sketch_words,
            rng_entries=0.0,  # generation time excluded, per the figure
            flops=flops,
        )
        h = machine.h_base
    else:
        rng_entries = float(d) * n_blocks * expected_nonempty_rows(m, b_n, rho)
        traffic = TrafficEstimate(
            algorithm="algo4",
            words_sparse=passes * (2.0 * nnz + n_blocks * (m + 1.0)),
            words_output=2.0 * d * n, words_output_scattered=2.0 * d * n,
            words_sketch=0.0,
            rng_entries=min(rng_entries, flops / 2),
            flops=flops,
        )
        h = machine.h(method)
    run = predict_time(traffic, machine, 1, h)
    peak_time = flops / (machine.peak_gflops * 1e9 / machine.cores)
    return peak_time / run.seconds


def _measured_seconds(rho: float, method: str, seed: int = 0) -> float:
    m, n = 3000, 120
    d = 3 * n
    A = random_sparse(m, n, rho, seed=seed)
    if method == "pregen":
        rng = XoshiroSketchRNG(seed, "uniform")
        # Exclude generation time, as the figure does.
        S = rng.materialize(d, m)
        from repro.sparse import dense_times_csc

        secs, _ = best_of(lambda: dense_times_csc(S, A))
        return secs
    secs, _ = best_of(
        lambda: sketch_spmm(A, d, XoshiroSketchRNG(seed, method),
                            kernel="algo4", b_d=d, b_n=max(1, n // 8))
    )
    return secs


@pytest.mark.parametrize("method", ["gaussian", "uniform", "rademacher"])
def test_generation_method_speed(benchmark, method):
    A = random_sparse(2000, 100, 1e-2, seed=1)
    benchmark.pedantic(
        lambda: sketch_spmm(A, 300, XoshiroSketchRNG(0, method),
                            kernel="algo4", b_d=300, b_n=16),
        rounds=max(1, REPEATS), iterations=1,
    )


def test_fig04_report(benchmark):
    def run_all():
        model = {(m, r): _model_fraction(r, m)
                 for m in METHODS for r in DENSITIES}
        measured = {(m, r): _measured_seconds(r, m)
                    for m in METHODS for r in DENSITIES[:3]}
        return model, measured

    model, measured = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for rho in DENSITIES:
        rows.append([rho] + [model[(m, rho)] for m in METHODS])
    notes = []
    for rho in DENSITIES:
        notes.append(shape_check(
            model[("gaussian", rho)] < model[("rademacher", rho)],
            f"rho={rho}: Gaussian-on-the-fly below +-1",
        ))
        notes.append(shape_check(
            model[("rademacher", rho)] >= model[("uniform", rho)],
            f"rho={rho}: +-1 >= (-1,1) (cheaper transform)",
        ))
    # The pre-generated-S comparison is meaningful in the sparse regime,
    # where the stored sketch's traffic binds; at high density every
    # method becomes flop-bound in the model and the curves converge.
    for rho in [r for r in DENSITIES if r <= 3e-3]:
        notes.append(shape_check(
            min(model[("uniform", rho)], model[("uniform_scaled", rho)],
                model[("rademacher", rho)]) >= model[("pregen", rho)] * 0.95,
            f"rho={rho}: cheap on-the-fly methods at/above pre-generated "
            "(sparse, memory-bound regime)",
        ))
    rows_meas = []
    for rho in DENSITIES[:3]:
        rows_meas.append([rho] + [measured[(m, rho)] for m in METHODS])
    emit_report(
        "fig04",
        "Figure 4: fraction of peak vs density (model, Algorithm 4, "
        "Perlmutter role, paper-like dims)",
        ["density"] + METHODS,
        rows,
        notes="\n".join(notes),
    )
    emit_report(
        "fig04_measured",
        "Figure 4 (measured seconds at surrogate scale; pregen excludes "
        "generation time)",
        ["density"] + METHODS,
        rows_meas,
    )
    for rho in DENSITIES:
        assert model[("gaussian", rho)] < model[("rademacher", rho)]
        assert model[("rademacher", rho)] >= model[("uniform", rho)] * 0.999
    for rho in [r for r in DENSITIES if r <= 3e-3]:
        assert (min(model[("uniform", rho)], model[("rademacher", rho)])
                >= model[("pregen", rho)] * 0.9)
