"""Extension — effective-distortion statistics vs the Gaussian limit.

Section V's preamble: with ``d = gamma n``, the effective distortion of an
idealized Gaussian sketch converges to ``1/sqrt(gamma)``, which bounds the
preconditioned condition number by ``(sqrt(gamma)+1)/(sqrt(gamma)-1)``.
Section IV-B claims the checkpointed xoshiro sketches are "fine ... as
measured by effective distortion" despite the manual state changes.

This bench quantifies both claims: over a seed ensemble it measures the
distortion of all three generator families (and the sparse-sign
comparison operator) against the Gaussian prediction, plus the realized
preconditioned condition numbers against the bound.
"""

from __future__ import annotations

import numpy as np
from _harness import emit_report, shape_check

from repro.core import (
    SketchConfig,
    SketchOperator,
    predicted_condition_bound,
    predicted_distortion,
    sketch_distortion,
)
from repro.core.sparse_sketch import SparseSignSketch
from repro.core.distortion import effective_distortion
from repro.sparse import random_sparse

GAMMA = 3.0
N_SEEDS = 12


def _ensemble():
    A = random_sparse(2500, 40, 0.05, seed=77)
    d = int(GAMMA * 40)
    U = np.linalg.qr(A.to_dense())[0]
    out = {}
    for kind in ("xoshiro", "philox", "threefry"):
        deltas = []
        for seed in range(N_SEEDS):
            op = SketchOperator(d, 2500, config=SketchConfig(
                gamma=GAMMA, seed=seed, rng_kind=kind, normalize=True,
                kernel="algo3"))
            deltas.append(sketch_distortion(op, A))
        out[kind] = np.array(deltas)
    deltas = []
    for seed in range(N_SEEDS):
        S = SparseSignSketch(d, 2500, s=8, seed=seed).materialize()
        deltas.append(effective_distortion(S @ U))
    out["sparse-sign"] = np.array(deltas)
    return A, d, out


def test_distortion_ensemble_report(benchmark):
    A, d, ensembles = benchmark.pedantic(_ensemble, rounds=1, iterations=1)
    target = predicted_distortion(GAMMA)
    rows, notes = [], []
    for kind, deltas in ensembles.items():
        rows.append([kind, float(deltas.mean()), float(deltas.std()),
                     float(deltas.min()), float(deltas.max()), target])
        notes.append(shape_check(
            abs(deltas.mean() - target) < 0.15,
            f"{kind}: mean distortion {deltas.mean():.3f} near the Gaussian "
            f"limit 1/sqrt(gamma) = {target:.3f}",
        ))
    # The Section IV-B claim: checkpointed xoshiro is not worse than the
    # counter-based generators in sketch quality.
    notes.append(shape_check(
        ensembles["xoshiro"].mean()
        < max(ensembles["philox"].mean(), ensembles["threefry"].mean()) + 0.05,
        "checkpointed xoshiro matches the CBRNG families' distortion "
        "(the Section IV-B quality claim)",
    ))
    cond_bound = predicted_condition_bound(GAMMA)
    implied = [(1 + dl.mean()) / (1 - dl.mean())
               for dl in ensembles.values()]
    notes.append(shape_check(
        max(implied) < 2 * cond_bound,
        f"implied preconditioned condition numbers "
        f"{[f'{c:.2f}' for c in implied]} within the gamma bound "
        f"{cond_bound:.2f} band",
    ))
    emit_report(
        "ext_distortion",
        f"Extension: effective-distortion ensemble (gamma = {GAMMA}, "
        f"{N_SEEDS} seeds)",
        ["generator", "mean", "std", "min", "max", "Gaussian limit"],
        rows,
        notes="\n".join(notes),
    )
    for deltas in ensembles.values():
        assert abs(deltas.mean() - target) < 0.2
