"""Extension — streaming sketch maintenance.

Demonstrates the single-pass regime coordinate-addressed generation
enables: rows of ``A`` arrive in batches, each batch is folded into the
sketch by one blocked-kernel call, and the final sketch is bit-identical
to the one-shot sketch of the stacked data.  Reports per-batch cost
(constant in the stream length — no revisiting of old rows) and the
equality check.
"""

from __future__ import annotations

import time

import numpy as np
from _harness import emit_report, shape_check

from repro.core.streaming import StreamingSketch
from repro.kernels import sketch_spmm
from repro.rng import PhiloxSketchRNG
from repro.sparse import CSCMatrix, random_sparse


def test_streaming_report(benchmark):
    def run():
        n, d = 120, 240
        batches = 8
        batch_rows = 2500
        full_dense_blocks = []
        st = StreamingSketch(d, n, PhiloxSketchRNG(21), b_d=120, b_n=24)
        per_batch = []
        for t in range(batches):
            block = random_sparse(batch_rows, n, 5e-3, seed=500 + t)
            full_dense_blocks.append(block.to_dense())
            t0 = time.perf_counter()
            st.absorb(block)
            per_batch.append(time.perf_counter() - t0)
        stacked = CSCMatrix.from_dense(np.vstack(full_dense_blocks))
        oneshot, _ = sketch_spmm(stacked, d, PhiloxSketchRNG(21),
                                 kernel="algo3", b_d=120, b_n=24)
        err = float(np.abs(st.sketch - oneshot).max())
        return st, per_batch, err

    st, per_batch, err = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[t, secs] for t, secs in enumerate(per_batch)]
    drift = max(per_batch[1:]) / max(min(per_batch[1:]), 1e-12)
    notes = [
        shape_check(err < 1e-12,
                    f"streamed sketch equals the one-shot sketch "
                    f"(max abs diff {err:.1e})"),
        shape_check(drift < 3.0,
                    "per-batch cost is flat across the stream "
                    f"(max/min = {drift:.2f}) — no old rows revisited"),
        f"rows streamed: {st.rows_seen}, sketch held: "
        f"{st.sketch.nbytes / 2**20:.2f} MB "
        "(independent of stream length)",
    ]
    emit_report(
        "ext_streaming",
        "Extension: streaming sketch maintenance (8 batches x 2500 rows)",
        ["batch", "absorb seconds"],
        rows,
        notes="\n".join(notes),
    )
    assert err < 1e-12
