"""Figure 5 — sparsity patterns of shar_te2-b2 / mesh_deform / cis-n4c6-b4.

The paper shows spy plots; this bench renders coarse ASCII density maps of
the corresponding surrogates, which make the structure classes visible:
the boundary-matrix surrogates are uniform speckle, mesh_deform is a
diagonal band.
"""

from __future__ import annotations

from _harness import emit_report, suite_matrix

from repro.sparse import pattern_density_grid

NAMES = ["shar_te2-b2", "mesh_deform", "cis-n4c6-b4"]
SHADES = " .:-=+*#%@"


def _ascii_map(grid) -> str:
    peak = grid.max() if grid.size else 1
    lines = []
    for row in grid:
        chars = [SHADES[min(len(SHADES) - 1, int(v * (len(SHADES) - 1) / max(peak, 1)))]
                 for v in row]
        lines.append("|" + "".join(chars) + "|")
    return "\n".join(lines)


def test_fig05_report(benchmark):
    def render():
        out = {}
        for name in NAMES:
            A = suite_matrix("spmm", name)
            out[name] = (A, pattern_density_grid(A, 16, 48))
        return out

    maps = benchmark.pedantic(render, rounds=1, iterations=1)
    blocks = []
    for name, (A, grid) in maps.items():
        blocks.append(f"{name}  {A.shape}, nnz={A.nnz}")
        blocks.append(_ascii_map(grid))
        blocks.append("")
    text = "\n".join(blocks)
    print("\nFigure 5: sparsity patterns (ASCII density maps)\n" + text)
    from _harness import REPORT_DIR

    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / "fig05.txt").write_text(text)

    # Structural assertions: mesh_deform is banded (mass near the
    # stretched diagonal), the boundary surrogates are not.
    import numpy as np

    _, band_grid = maps["mesh_deform"]
    gr, gc = band_grid.shape
    on_band = sum(
        band_grid[r, c]
        for r in range(gr) for c in range(gc)
        if abs(r / gr - c / gc) < 0.15
    )
    assert on_band / band_grid.sum() > 0.8, "mesh_deform must be banded"

    _, unif_grid = maps["shar_te2-b2"]
    occupancy = np.count_nonzero(unif_grid) / unif_grid.size
    assert occupancy > 0.8, "boundary surrogate must fill the extent"
