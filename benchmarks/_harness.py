"""Shared infrastructure for the paper-reproduction benchmarks.

Every ``bench_*.py`` module regenerates one table or figure from the
paper: it runs the measurement at the active ``REPRO_SCALE`` (default
``ci``), then prints a table whose rows mirror the paper's, with the
paper's published values alongside the measured ones so shape comparisons
are immediate.  All benches run under
``pytest benchmarks/ --benchmark-only``; the printed reports land in the
captured output (run with ``-s`` to see them live) and are also appended
to ``benchmarks/reports/<name>.txt`` for EXPERIMENTS.md.

Conventions
-----------
* Matrices come from :mod:`repro.workloads` and are cached per session.
* Wall-clock comparisons use best-of-``REPEATS`` timing.
* Shape assertions (who wins) are made with soft tolerance: a bench
  prints a WARNING line rather than failing when the host's noise breaks
  an expected ordering, so benchmark runs always complete.
"""

from __future__ import annotations

import functools
import os
import time
from pathlib import Path
from typing import Callable

from repro.sparse import CSCMatrix
from repro.utils import format_table, render_kv_block
from repro.workloads import (
    ABNORMAL_SUITE,
    LSQ_SUITE,
    SPMM_SUITE,
    MatrixCase,
    build_matrix,
    current_scale,
)

REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
REPORT_DIR = Path(__file__).parent / "reports"


@functools.lru_cache(maxsize=None)
def suite_matrix(kind: str, name: str) -> CSCMatrix:
    """Cached surrogate matrix for a suite entry at the active scale."""
    suite = {"spmm": SPMM_SUITE, "lsq": LSQ_SUITE, "abnormal": ABNORMAL_SUITE}[kind]
    return build_matrix(suite[name])


def spmm_case(name: str) -> MatrixCase:
    return SPMM_SUITE[name]


def lsq_case(name: str) -> MatrixCase:
    return LSQ_SUITE[name]


def scaled_d(case: MatrixCase, A: CSCMatrix, gamma: int = 3) -> int:
    """Sketch size ``gamma * n`` at the realized (scaled) dimensions."""
    return gamma * A.shape[1]


def best_of(fn: Callable[[], object], repeats: int = REPEATS) -> tuple[float, object]:
    """Best wall time of *repeats* runs; returns (seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def emit_report(name: str, title: str, headers, rows, notes: str = "") -> str:
    """Format, print, and persist one bench report (text + JSON)."""
    import json

    scale = current_scale()
    table = format_table(headers, rows, title=f"{title}  [scale={scale}]")
    parts = [table]
    if notes:
        parts.append(notes.rstrip())
    text = "\n".join(parts) + "\n"
    print("\n" + text)
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(text)
    payload = {
        "name": name,
        "title": title,
        "scale": scale,
        "headers": list(headers),
        "rows": [[None if v is None else v for v in r] for r in rows],
        "notes": notes.splitlines() if notes else [],
    }
    (REPORT_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=1, default=str))
    return text


def emit_config(title: str, pairs) -> None:
    """Print a configuration block above a report."""
    print("\n" + render_kv_block(title, pairs))


def paper_scale_traffic_ratio(case: MatrixCase, machine, *, gamma: int = 3,
                              b_d: int = 3000, b_n: int = 500,
                              dist: str = "uniform") -> float:
    """Model ratio (pre-generated / on-the-fly effective words) at the
    *paper's* dimensions.

    The analytic model needs only (m, n, nnz, d), so the paper-scale
    comparison — where the sketch vastly exceeds the cache and the paper's
    2x speedups live — can be evaluated exactly even though the measured
    kernels run on scaled surrogates.
    """
    m, n, nnz = case.m, case.n, case.nnz
    d = gamma * n
    h = machine.h(dist)
    passes = -(-d // b_d)
    n_blocks = -(-n // b_n)
    csc_words = 2.0 * nnz + n + 1
    otf = passes * csc_words + 2.0 * d * n + h * d * nnz
    sketch_words = float(d) * m
    sketch_passes = 1 if sketch_words <= machine.cache_words else n_blocks
    pre = csc_words + 2.0 * d * n + sketch_passes * sketch_words
    return pre / otf


def paper_scale_traffic(case: MatrixCase, algorithm: str, *, gamma: int = 3,
                        b_d: int = 3000, b_n: int = 500):
    """Analytic :class:`~repro.model.TrafficEstimate` at paper dimensions.

    Algorithm 4's RNG volume uses the Section III-A expectation
    ``E[Y] = m (1 - (1 - rho)^{b_n})`` per vertical block, since the real
    SuiteSparse matrices are unavailable; everything else follows the
    closed forms of :mod:`repro.model.traffic`.
    """
    from repro.model import TrafficEstimate, expected_nonempty_rows

    m, n, nnz = case.m, case.n, case.nnz
    rho = nnz / (m * n)
    d = gamma * n
    passes = -(-d // b_d)
    n_blocks = -(-n // b_n)
    flops = 2.0 * d * nnz
    if algorithm == "algo3":
        return TrafficEstimate(
            algorithm="algo3",
            words_sparse=passes * (2.0 * nnz + n + 1),
            words_output=2.0 * d * n,
            words_output_scattered=0.0,
            words_sketch=0.0,
            rng_entries=float(d) * nnz,
            flops=flops,
        )
    if algorithm != "algo4":
        raise ValueError(f"unknown algorithm {algorithm!r}")
    rng = float(d) * n_blocks * expected_nonempty_rows(m, b_n, rho)
    return TrafficEstimate(
        algorithm="algo4",
        words_sparse=passes * (2.0 * nnz + n_blocks * (m + 1.0)),
        words_output=2.0 * d * n,
        words_output_scattered=2.0 * d * n,
        words_sketch=0.0,
        rng_entries=min(rng, float(d) * nnz),
        flops=flops,
    )


def paper_scale_crossover(case: MatrixCase, *, b_d: int = 3000,
                          b_n_frontera: int = 500,
                          b_n_perlmutter: int = 1200) -> dict:
    """Model seconds for both algorithms on both machine presets at paper
    dimensions (each machine evaluated with the blocking the paper used on
    it).  Keys: ``frontera_a3/a4``, ``perlmutter_a3/a4``."""
    from repro.model import FRONTERA, PERLMUTTER
    from repro.parallel import predict_time

    out = {}
    for machine, tag, b_n in (
        (FRONTERA, "frontera", b_n_frontera),
        (PERLMUTTER, "perlmutter", b_n_perlmutter),
    ):
        h = machine.h("uniform")
        for alg in ("algo3", "algo4"):
            t = paper_scale_traffic(case, alg, b_d=b_d, b_n=b_n)
            out[f"{tag}_{alg.replace('algo', 'a')}"] = \
                predict_time(t, machine, 1, h).seconds
    return out


def shape_check(condition: bool, message: str) -> str:
    """Return an OK/WARNING line for a shape expectation (never raises)."""
    return f"[shape OK] {message}" if condition else f"[shape WARNING] {message}"
