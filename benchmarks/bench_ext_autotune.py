"""Extension — empirical autotuning of the blocking parameters.

Automates Section V-B's hand-tuning: a measured grid around the model's
recommended ``(b_d, b_n)`` on a tuning slice, then the Algorithm 3-vs-4
race.  Reported shapes: the tuned configuration is close to the best of
an exhaustive grid (on the slice), and far from the worst — i.e. tuning
on a slice transfers.
"""

from __future__ import annotations

from _harness import best_of, emit_report, shape_check, suite_matrix

from repro.kernels import autotune_blocking, autotune_kernel, sketch_spmm
from repro.rng import XoshiroSketchRNG


def _factory():
    return XoshiroSketchRNG(3)


def test_autotune_report(benchmark):
    A = suite_matrix("spmm", "shar_te2-b2")
    d = 3 * A.shape[1]

    def run():
        tuned = autotune_blocking(A, d, _factory, kernel="algo3", repeats=2)
        race = autotune_kernel(A, d, _factory, repeats=2)
        # Evaluate the tuned blocking on the FULL matrix against two
        # reference configurations.
        def full_time(b_d, b_n):
            secs, _ = best_of(lambda: sketch_spmm(
                A, d, _factory(), kernel="algo3",
                b_d=min(b_d, d), b_n=min(b_n, A.shape[1])))
            return secs
        t_tuned = full_time(tuned.b_d, tuned.b_n)
        # The pathological configuration is evaluated on a 32-column slice
        # (at (1, 1) blocking every sketch entry is a separate RNG call;
        # the full matrix would take minutes and prove nothing more).
        slice_A = A.col_block(0, min(32, A.shape[1]))
        t_deg_slice, _ = best_of(lambda: sketch_spmm(
            slice_A, d, _factory(), kernel="algo3", b_d=1, b_n=1))
        t_degenerate = t_deg_slice * (A.shape[1] / slice_A.shape[1])
        t_default = full_time(3000, max(1, A.shape[1] // 35))
        return tuned, race, t_tuned, t_degenerate, t_default

    tuned, race, t_tuned, t_degenerate, t_default = benchmark.pedantic(
        run, rounds=1, iterations=1)
    rows = [
        ["tuned " + tuned.describe(), t_tuned],
        ["paper-style default (3000, n/35)", t_default],
        ["degenerate (1, 1) (extrapolated from a slice)", t_degenerate],
    ]
    notes = [
        shape_check(
            t_tuned <= t_degenerate * 0.8,
            f"tuned blocking beats degenerate blocking "
            f"({t_tuned:.3f}s vs {t_degenerate:.3f}s on the full matrix)",
        ),
        shape_check(
            t_tuned <= t_default * 1.5,
            "slice-tuned blocking transfers to the full matrix "
            f"(within 1.5x of the paper-style default: {t_tuned:.3f}s vs "
            f"{t_default:.3f}s)",
        ),
        f"kernel race winner on this host: {race.kernel} "
        f"({len(race.trials)} trials)",
    ]
    emit_report(
        "ext_autotune",
        "Extension: empirical blocking autotuner (shar_te2-b2 surrogate)",
        ["configuration", "full-matrix seconds"],
        rows,
        notes="\n".join(notes),
    )
    assert t_tuned <= t_degenerate
