"""Sharded-execution benchmark and simulator-validation gate.

The partition stage splits a sketch into column shards that execute as
independent sub-plans and merge in propagation-blocking order.  On one
host the shards run serially, so sharding is pure overhead — the merge
sweep plus per-shard setup — and the honest question is whether the
scaling simulator (:func:`repro.parallel.simulate_strong_scaling` with
``shards=``) predicts that overhead instead of pretending the reduction
is free.  Two consumers:

* ``pytest benchmarks/ --benchmark-only`` — prints the sharded-vs-
  unsharded comparison and refreshes ``reports/BENCH_shard.json``;
* ``make shard-smoke`` (``python benchmarks/bench_shard_scaling.py``) —
  re-measures on the supervised **process pool** and fails unless
  (a) every sharded sketch is **bit-identical** to the unsharded one,
  (b) the run executed the requested shard count, and (c) the
  simulator's predicted sharded/unsharded time ratio is within
  ``REPRO_SHARD_GATE_TOL`` (absolute, default 0.5) of the measured
  ratio.  When a committed baseline exists the measured ratio is also
  gated against it with ``REPRO_BENCH_GATE_TOL``.

The ratio — not absolute seconds — is what transfers across hosts: both
simulator and measurement agree the sharded run costs the unsharded run
plus a merge term, and the gate pins that agreement.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

import numpy as np
from _harness import REPEATS, emit_report, shape_check

from repro.core import SketchConfig
from repro.model import LAPTOP
from repro.parallel import WorkerPoolConfig, simulate_strong_scaling
from repro.plan import PartitionSpec, Planner, Runtime
from repro.sparse import random_sparse

from summarize_reports import gate_tolerance

GATE_PATH = Path(__file__).parent / "reports" / "BENCH_shard.json"
DEFAULT_TOLERANCE = gate_tolerance("shard_ratio")
RATIO_TOLERANCE = float(os.environ.get("REPRO_SHARD_GATE_TOL", "0.5"))

# Tall-and-sparse, Algorithm-4 shaped; override for quick local smoke
# runs, e.g. REPRO_BENCH_SHARD_DIMS="8192,96,2e-3".
_DIMS = os.environ.get("REPRO_BENCH_SHARD_DIMS", "20000,128,2e-3").split(",")
SHARD_M, SHARD_N, SHARD_DENSITY = int(_DIMS[0]), int(_DIMS[1]), float(_DIMS[2])
GAMMA = 2.0
B_N = 16
B_D = 64
SHARDS = int(os.environ.get("REPRO_BENCH_SHARD_COUNT", "4"))
STRATEGY = os.environ.get("REPRO_BENCH_SHARD_STRATEGY", "nnz_balanced")
WORKERS = 2


def _one_run(A, partition: PartitionSpec | None) -> dict:
    """One compile+execute on the supervised process pool."""
    cfg = SketchConfig(gamma=GAMMA, kernel="algo4", rng_kind="philox",
                       seed=0, b_d=B_D, b_n=B_N)
    plan = Planner().compile(A, cfg, driver="process",
                             pool=WorkerPoolConfig(workers=WORKERS),
                             partition=partition)
    runtime = Runtime()
    t0 = time.perf_counter()
    result = runtime.run(plan, A)
    seconds = time.perf_counter() - t0
    return {
        "seconds": seconds,
        "sketch": result.sketch,
        "shards": result.stats.extra.get("shards", 1),
        "strategy": result.stats.extra.get("partition_strategy"),
        "merge_seconds": result.stats.extra.get("merge_seconds", 0.0),
        "merge_words": result.stats.extra.get("merge_words", 0),
    }


def measure_shard_scaling(repeats: int = REPEATS) -> dict:
    """Unsharded vs sharded process-pool runs plus the simulator's take.

    Returns a JSON-ready payload; ``sketch_identical`` certifies the
    acceptance bit: every sharded sketch equals the unsharded one
    exactly, for every repeat.
    """
    A = random_sparse(SHARD_M, SHARD_N, SHARD_DENSITY, seed=0)
    d = int(np.ceil(GAMMA * SHARD_N))
    partition = PartitionSpec(shards=SHARDS, strategy=STRATEGY)
    repeats = max(1, repeats)
    unsharded = [_one_run(A, None) for _ in range(repeats)]
    sharded = [_one_run(A, partition) for _ in range(repeats)]
    identical = all(np.array_equal(s["sketch"], unsharded[0]["sketch"])
                    for s in sharded + unsharded)
    un_seconds = statistics.median(u["seconds"] for u in unsharded)
    sh_seconds = statistics.median(s["seconds"] for s in sharded)
    # The simulator's prediction of the same pair of runs.  Shard
    # weights mirror the executed strategy only for `even`; the ratio is
    # insensitive to the split because single-node shards run serially.
    sim_un = simulate_strong_scaling(
        A, d, LAPTOP, kernel="algo4", b_d=B_D, b_n=B_N,
        threads_list=[WORKERS], include_conversion=True)[0]
    sim_sh = simulate_strong_scaling(
        A, d, LAPTOP, kernel="algo4", b_d=B_D, b_n=B_N,
        threads_list=[WORKERS], include_conversion=True, shards=SHARDS)[0]
    return {
        "matrix": f"synthetic({SHARD_M}x{SHARD_N}, rho={SHARD_DENSITY})",
        "d": d,
        "b_d": B_D,
        "b_n": B_N,
        "workers": WORKERS,
        "repeats": repeats,
        "shards_requested": SHARDS,
        "shards_executed": max(s["shards"] for s in sharded),
        "strategy": STRATEGY,
        "unsharded_seconds": un_seconds,
        "sharded_seconds": sh_seconds,
        "measured_ratio": sh_seconds / un_seconds,
        "merge_seconds": max(s["merge_seconds"] for s in sharded),
        "merge_words": max(s["merge_words"] for s in sharded),
        "predicted_unsharded_seconds": sim_un.seconds,
        "predicted_sharded_seconds": sim_sh.seconds,
        "predicted_ratio": sim_sh.seconds / sim_un.seconds,
        "sketch_identical": identical,
    }


def structural_failures(payload: dict,
                        ratio_tol: float = RATIO_TOLERANCE) -> list[str]:
    """The acceptance invariants; empty list means the gate passes."""
    failures = []
    if not payload["sketch_identical"]:
        failures.append("sharded sketch differs from unsharded sketch "
                        "(MUST be bit-identical)")
    if payload["shards_executed"] != payload["shards_requested"]:
        failures.append(
            f"run executed {payload['shards_executed']} shard(s); "
            f"requested {payload['shards_requested']}")
    if payload["merge_words"] <= 0:
        failures.append("sharded run reported zero merge words; the "
                        "merge stage did not account its traffic")
    gap = abs(payload["predicted_ratio"] - payload["measured_ratio"])
    if gap > ratio_tol:
        failures.append(
            f"simulator ratio {payload['predicted_ratio']:.3f} vs "
            f"measured {payload['measured_ratio']:.3f}: gap {gap:.3f} "
            f"exceeds tolerance {ratio_tol:.2f}")
    return failures


def compare_to_baseline(baseline: dict, current: dict,
                        tolerance: float) -> list[str]:
    """Drift check against the committed baseline's measured ratio."""
    base = baseline.get("measured_ratio")
    if base is None:
        return []
    ceiling = base * (1.0 + tolerance) + tolerance
    if current["measured_ratio"] > ceiling:
        return [f"measured_ratio: {current['measured_ratio']:.3f} > ceiling "
                f"{ceiling:.3f} (baseline {base:.3f}, tolerance "
                f"{tolerance:.0%})"]
    return []


def _write_baseline(payload: dict) -> None:
    GATE_PATH.parent.mkdir(exist_ok=True)
    GATE_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True))


def _report_rows(payload: dict) -> list[list]:
    return [
        ["unsharded", round(payload["unsharded_seconds"], 4), "1.000",
         round(payload["predicted_unsharded_seconds"], 6), 1, "-"],
        [f"{payload['strategy']} x{payload['shards_requested']}",
         round(payload["sharded_seconds"], 4),
         f"{payload['measured_ratio']:.3f}",
         round(payload["predicted_sharded_seconds"], 6),
         payload["shards_executed"],
         round(payload["merge_seconds"], 5)],
    ]


def test_shard_scaling_report(benchmark):
    payload = benchmark.pedantic(measure_shard_scaling, rounds=1,
                                 iterations=1)
    gap = abs(payload["predicted_ratio"] - payload["measured_ratio"])
    notes = [
        shape_check(payload["sketch_identical"],
                    "sharded sketch bit-identical to unsharded"),
        shape_check(payload["shards_executed"]
                    == payload["shards_requested"],
                    f"executed all {payload['shards_requested']} shards"),
        shape_check(gap <= RATIO_TOLERANCE,
                    f"simulator ratio {payload['predicted_ratio']:.3f} "
                    f"within {RATIO_TOLERANCE:.2f} of measured "
                    f"{payload['measured_ratio']:.3f}"),
    ]
    emit_report(
        "shard_scaling",
        "Sharded execution: process pool, measured vs simulated",
        ["run", "seconds", "ratio", "predicted_s", "shards", "merge_s"],
        _report_rows(payload),
        notes="\n".join(notes),
    )
    _write_baseline({k: v for k, v in payload.items() if k != "sketch"})
    # Correctness is a hard assertion even in the soft-shape bench leg.
    assert payload["sketch_identical"]


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="Sharded-execution regression gate (bit-identical "
                    "output, full shard count, simulator ratio within "
                    "tolerance of the measured process-pool ratio)")
    parser.add_argument("--baseline", default=str(GATE_PATH),
                        help="baseline JSON to gate drift against")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed measured-ratio growth vs the baseline "
                             "(default: the shard_ratio per-metric "
                             "tolerance; see summarize_reports.py)")
    parser.add_argument("--ratio-tolerance", type=float,
                        default=RATIO_TOLERANCE,
                        help="absolute simulated-vs-measured ratio gap "
                             "allowed (default from REPRO_SHARD_GATE_TOL "
                             "or 0.5)")
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument("--force-update", action="store_true",
                        help="refresh the baseline even on failure")
    args = parser.parse_args()

    current = measure_shard_scaling(args.repeats)
    for row in _report_rows(current):
        print("  ".join(str(c) for c in row))
    failures = structural_failures(current, args.ratio_tolerance)
    baseline_path = Path(args.baseline)
    if baseline_path.exists():
        failures += compare_to_baseline(
            json.loads(baseline_path.read_text()), current, args.tolerance)
    else:
        print(f"\nshard-smoke: no baseline at {baseline_path}; recording one")
    if failures:
        print("\nshard-smoke: FAILED", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        if not args.force_update:
            sys.exit(1)
    else:
        print(f"\nshard-smoke: OK (ratio measured "
              f"{current['measured_ratio']:.3f} vs predicted "
              f"{current['predicted_ratio']:.3f}, bit-identical, "
              f"{current['shards_executed']} shards)")
    _write_baseline(current)
