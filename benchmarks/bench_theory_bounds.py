"""Section III-A theory — the sqrt(M) bound, Eqs. 5-7, and the cache
simulator cross-check.

Regenerates the analysis artifacts:

1. the advantage over the GEMM communication lower bound as a function of
   cache size M (the headline sqrt(M) factor, h -> 0) and of the RNG cost
   h (the advantage erodes as generation gets expensive);
2. the Equation (4) block-size optimization: numeric optimum vs the two
   closed-form regimes (n1 = 1 for rho -> 0; n1 = sqrt(hM)/(2 sqrt(rho))
   for rho -> 1);
3. an exact LRU-cache-simulator measurement showing on-the-fly generation
   moving less data than a stored sketch, validating the model the theory
   is stated in.
"""

from __future__ import annotations

import numpy as np
import pytest
from _harness import REPEATS, emit_report, shape_check

from repro.model import (
    FRONTERA,
    advantage_over_gemm,
    asymptotic_advantage,
    ci_small_rho,
    optimal_n1_big_rho,
    optimize_blocks,
    simulate_algo3,
    simulate_pregen,
)
from repro.sparse import random_sparse


def test_advantage_sweep(benchmark):
    Ms = [10**4, 10**5, 10**6, 10**7]
    hs = [1e-6, 1e-2, 0.1, 0.5, 2.0]

    def sweep():
        return {(M, h): advantage_over_gemm(M, h) for M in Ms for h in hs}

    adv = benchmark.pedantic(sweep, rounds=max(1, REPEATS), iterations=1)
    rows = [[M] + [adv[(M, h)] for h in hs] + [asymptotic_advantage(M)]
            for M in Ms]
    notes = [
        shape_check(
            adv[(10**6, 1e-6)] / adv[(10**4, 1e-6)] > 8.0,
            "advantage grows ~sqrt(M): 100x cache -> ~10x advantage (h ~ 0)",
        ),
        shape_check(
            adv[(10**6, 2.0)] < 1.0,
            "expensive RNG (h = 2) erases the advantage entirely",
        ),
    ]
    emit_report(
        "theory_advantage",
        "Advantage over the GEMM lower bound: CI ratio vs cache size M and "
        "RNG cost h",
        ["M (words)"] + [f"h={h}" for h in hs] + ["h->0 limit"],
        rows,
        notes="\n".join(notes),
    )
    assert adv[(10**6, 1e-6)] > np.sqrt(10**6)


def test_blocksize_regimes(benchmark):
    M = FRONTERA.cache_words
    h = 0.5

    def optimize():
        return {
            "tiny_rho": optimize_blocks(1e-9, M, h),
            "mid_rho": optimize_blocks(1e-3, M, h),
            "big_rho": optimize_blocks(0.9, M, h),
        }

    plans = benchmark.pedantic(optimize, rounds=1, iterations=1)
    closed_big = optimal_n1_big_rho(M, h, 0.9)
    rows = [
        ["rho -> 0", plans["tiny_rho"].n1, 1, plans["tiny_rho"].ci,
         ci_small_rho(M, h)],
        ["rho = 1e-3", plans["mid_rho"].n1, None, plans["mid_rho"].ci, None],
        ["rho = 0.9", plans["big_rho"].n1, closed_big,
         plans["big_rho"].ci, None],
    ]
    notes = [
        shape_check(plans["tiny_rho"].n1 == 1,
                    "sparse regime optimum is n1 = 1 (Eq. 5 premise)"),
        shape_check(
            abs(plans["big_rho"].n1 - closed_big) / closed_big < 0.3,
            f"dense regime optimum {plans['big_rho'].n1} matches the "
            f"closed form {closed_big:.0f} (Eq. 7 premise)",
        ),
        shape_check(
            abs(plans["tiny_rho"].ci - ci_small_rho(M, h))
            / ci_small_rho(M, h) < 0.1,
            "numeric CI at the sparse optimum matches Eq. 5",
        ),
    ]
    emit_report(
        "theory_blocksize",
        "Equation (4) optimization: numeric optimum vs closed forms",
        ["regime", "n1 (numeric)", "n1 (closed form)", "CI (numeric)",
         "CI (Eq. 5)"],
        rows,
        notes="\n".join(notes),
    )
    assert plans["tiny_rho"].n1 == 1


def test_cache_simulator_crosscheck(benchmark):
    A = random_sparse(80, 24, 0.12, seed=42)
    d = 48

    def simulate():
        return {
            cache: (simulate_algo3(A, d, b_d=8, b_n=4, cache_words=cache),
                    simulate_pregen(A, d, b_d=8, b_n=4, cache_words=cache))
            for cache in (64, 256, 1024, 1 << 20)
        }

    runs = benchmark.pedantic(simulate, rounds=1, iterations=1)
    rows, notes = [], []
    for cache, (otf, pre) in runs.items():
        rows.append([cache, otf.words_moved, pre.words_moved,
                     pre.words_moved / otf.words_moved, otf.rng_entries])
        notes.append(shape_check(
            otf.words_moved <= pre.words_moved,
            f"cache={cache}: regenerating S never moves more data",
        ))
    caches = sorted(runs)
    notes.append(shape_check(
        runs[caches[0]][0].words_moved >= runs[caches[-1]][0].words_moved,
        "traffic is monotone non-increasing in cache size",
    ))
    emit_report(
        "theory_cache_sim",
        "Exact LRU simulation: on-the-fly vs stored sketch (words moved)",
        ["cache (words)", "on-the-fly", "stored S", "ratio", "RNG entries"],
        rows,
        notes="\n".join(notes),
    )
    for cache, (otf, pre) in runs.items():
        assert otf.words_moved <= pre.words_moved
