"""Serving-path latency: warm pools versus per-request setup.

The serving daemon exists so the "fixed ``A``, many sketches" workload
pays worker spawning, shared-memory publication, and blocked-CSR
conversion **once**, not per request.  This bench quantifies that, all
in-process (no HTTP, so the numbers isolate the execution path):

* ``serial``        — per-request ``Runtime.run`` on the serial driver
                      (the bit-identity reference);
* ``cold pool``     — per-request ``ProcessPoolSupervisor.run()``:
                      spawn, execute, tear down every time (what the
                      ``process`` driver costs without the daemon);
* ``warm pool``     — one ``start()``, then per-request ``execute()``
                      on the reused fleet (what a daemon request costs
                      in steady state);
* ``service``       — the full :class:`~repro.serve.SketchService`
                      path: admission queue, deadline propagation,
                      breaker, encode — measuring the robustness
                      machinery's overhead on top of the warm pool.

Run under ``pytest benchmarks/ --benchmark-only`` or directly:
``python benchmarks/bench_serve_latency.py``.
"""

from __future__ import annotations

import time

import numpy as np
from _harness import REPEATS, emit_config, emit_report

from repro.core import SketchConfig
from repro.parallel import WorkerPoolConfig
from repro.parallel.procpool import ProcessPoolSupervisor
from repro.plan import Planner, Runtime
from repro.serve import ServeConfig, SketchService
from repro.sparse import random_sparse

M, N, DENSITY, D = 20_000, 256, 2e-3, 512
WORKERS = 2
REQUESTS = 5   # timed requests per mode


def _build():
    A = random_sparse(M, N, DENSITY, seed=33)
    cfg = SketchConfig(kernel="algo4", rng_kind="philox", seed=9)
    pool = WorkerPoolConfig(workers=WORKERS)
    plan = Planner().compile(A, cfg, d=D, driver="process", pool=pool)
    return A, plan


def _time_requests(fn, n=REQUESTS):
    """Per-request wall times; returns (mean_ms, best_ms)."""
    times = []
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return (1e3 * sum(times) / len(times), 1e3 * min(times))


def run_bench() -> dict:
    import dataclasses

    A, plan = _build()
    serial_plan = dataclasses.replace(plan, driver="serial")
    reference = Runtime().run(serial_plan, A).sketch

    serial_mean, serial_best = _time_requests(
        lambda: Runtime().run(serial_plan, A))

    cold_mean, cold_best = _time_requests(
        lambda: Runtime().run(plan, A), n=max(2, REQUESTS - 2))

    sup = ProcessPoolSupervisor(plan, A, plan.rng_factory())
    sup.start()
    try:
        sup.execute(plan, plan.rng_factory())  # pay conversion once
        warm_mean, warm_best = _time_requests(
            lambda: sup.execute(plan, plan.rng_factory()))
        warm_out, _ = sup.execute(plan, plan.rng_factory())
    finally:
        sup.close()
    assert np.array_equal(warm_out * plan.scale(), reference), \
        "warm pool must stay bit-identical to serial"

    svc = SketchService(ServeConfig(queue_capacity=8, executors=1,
                                    default_deadline=120.0)).start()
    try:
        body = {
            "matrix": {"random": [M, N, DENSITY], "seed": 33},
            "plan": plan.to_dict(),
            "output": "none",
        }
        svc.handle(body)  # warm the service's own pool + matrix LRU
        svc_mean, svc_best = _time_requests(lambda: svc.handle(body))
    finally:
        svc.close()

    rows = [
        ["serial Runtime.run", f"{serial_mean:.1f}", f"{serial_best:.1f}",
         "1.0x"],
        ["cold pool (spawn per request)", f"{cold_mean:.1f}",
         f"{cold_best:.1f}", f"{cold_mean / serial_mean:.2f}x"],
        ["warm pool execute()", f"{warm_mean:.1f}", f"{warm_best:.1f}",
         f"{warm_mean / serial_mean:.2f}x"],
        ["SketchService.handle()", f"{svc_mean:.1f}", f"{svc_best:.1f}",
         f"{svc_mean / serial_mean:.2f}x"],
    ]
    notes = (
        f"warm-vs-cold pool speedup: {cold_mean / warm_mean:.1f}x "
        f"(request pays kernels, not fork+publish)\n"
        f"service overhead on the warm pool: "
        f"{svc_mean - warm_mean:+.1f} ms/request "
        f"(admission + deadline + breaker + encode)"
    )
    emit_config("serve latency config", [
        ("matrix", f"{M}x{N} density={DENSITY}"),
        ("d", D), ("workers", WORKERS), ("requests", REQUESTS),
    ])
    emit_report("BENCH_serve_latency", "Serving-path request latency (ms)",
                ["mode", "mean", "best", "vs serial"], rows, notes=notes)
    return {"serial": serial_mean, "cold": cold_mean, "warm": warm_mean,
            "service": svc_mean}


def test_serve_latency(benchmark=None):
    """Pytest entry point (the `benchmark` fixture is optional)."""
    out = run_bench()
    # structural expectation, not a timing gate: the warm path must not
    # pay the cold pool's spawn+publish cost on every request
    assert out["warm"] < out["cold"]


if __name__ == "__main__":
    run_bench()
