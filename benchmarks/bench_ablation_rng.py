"""Ablation — RNG engineering choices (Section IV-B).

Sweeps the generator-level design knobs this reproduction exposes:

* xoshiro lane width (the SIMD-interleaving factor; the paper used 8
  64-bit lanes, our NumPy realization defaults to a wider 64 to amortize
  interpreter overhead);
* Philox round count (10 = crush-resistant standard, 7 = the common fast
  variant);
* Algorithm 3's RNG panel budget (``panel_nnz``) and Algorithm 4's row
  chunking, which trade Python-loop overhead against scratch size.

Reported: generation throughput and end-to-end kernel time per setting.
"""

from __future__ import annotations

import numpy as np
import pytest
from _harness import REPEATS, best_of, emit_report, shape_check, suite_matrix

from repro.kernels.algo3 import algo3_block
from repro.kernels.algo4 import algo4_block
from repro.rng import PhiloxSketchRNG, XoshiroSketchRNG, rng_sample_rate
from repro.sparse import csc_to_blocked_csr


def test_ablation_lanes_report(benchmark):
    def run():
        out = {}
        for lanes in (1, 8, 32, 64, 128):
            rng = XoshiroSketchRNG(0, "uniform", n_lanes=lanes)
            out[lanes] = rng_sample_rate(rng, vector_length=4000,
                                         batch_columns=16, repeats=2)
        return out

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[lanes, rate, rate / rates[8]] for lanes, rate in rates.items()]
    notes = [shape_check(
        rates[64] > 2 * rates[8],
        "wide virtual lanes amortize interpreter overhead "
        f"({rates[64] / rates[8]:.1f}x over the paper's 8-lane layout)",
    )]
    emit_report(
        "ablation_lanes",
        "Ablation: xoshiro lane width (samples/s, short-vector regime)",
        ["lanes", "samples/s", "vs 8 lanes"],
        rows,
        notes="\n".join(notes),
    )
    assert rates[64] > rates[1]


def test_ablation_philox_rounds_report(benchmark):
    def run():
        out = {}
        for rounds in (7, 10):
            rng = PhiloxSketchRNG(0, "uniform", rounds=rounds)
            out[rounds] = rng_sample_rate(rng, vector_length=4000,
                                          batch_columns=16, repeats=2)
        return out

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[r, rate] for r, rate in rates.items()]
    notes = [shape_check(
        rates[7] >= rates[10],
        f"Philox4x32-7 is {rates[7] / rates[10]:.2f}x the speed of the "
        "10-round variant (the counter-based cost is in the rounds)",
    )]
    emit_report(
        "ablation_philox_rounds",
        "Ablation: Philox round count",
        ["rounds", "samples/s"],
        rows,
        notes="\n".join(notes),
    )
    assert rates[7] >= rates[10] * 0.95


@pytest.mark.parametrize("panel_nnz", [256, 8192])
def test_panel_budget_speed(benchmark, panel_nnz):
    A = suite_matrix("spmm", "shar_te2-b2")
    d1 = 256

    def run():
        out = np.zeros((d1, A.shape[1]))
        algo3_block(out, A, 0, XoshiroSketchRNG(0), panel_nnz=panel_nnz)

    benchmark.pedantic(run, rounds=max(1, REPEATS), iterations=1)


def test_ablation_kernel_params_report(benchmark):
    A = suite_matrix("spmm", "shar_te2-b2")
    d1 = 256
    blocked, _ = csc_to_blocked_csr(A, max(1, A.shape[1] // 8))
    blk = blocked.blocks[0]

    def run():
        out = {}
        for panel in (64, 1024, 8192, 65536):
            def body(p=panel):
                buf = np.zeros((d1, A.shape[1]))
                algo3_block(buf, A, 0, XoshiroSketchRNG(0), panel_nnz=p)
            secs, _ = best_of(body)
            out[("panel", panel)] = secs
        for chunk in (1, 16, 256):
            def body4(c=chunk):
                buf = np.zeros((d1, blk.shape[1]))
                algo4_block(buf, blk, 0, XoshiroSketchRNG(0), row_chunk=c)
            secs, _ = best_of(body4)
            out[("chunk", chunk)] = secs
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[k[0], k[1], v] for k, v in results.items()]
    panel_times = [v for k, v in results.items() if k[0] == "panel"]
    notes = [shape_check(
        min(panel_times) < panel_times[0],
        "larger RNG panels amortize per-call overhead (vectorization "
        "headroom beyond the pseudocode's single reusable vector v)",
    )]
    emit_report(
        "ablation_kernel_params",
        "Ablation: Algorithm 3 panel budget / Algorithm 4 row chunking "
        "(seconds, single block)",
        ["knob", "value", "seconds"],
        rows,
        notes="\n".join(notes),
    )
    assert min(panel_times) <= panel_times[0]
