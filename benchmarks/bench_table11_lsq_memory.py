"""Table XI — memory requirements: SAP vs the direct solver vs mem(A).

The paper's emphasis: the randomized solver factors a *dense* 2n-by-n
sketch and still needs 7x-130x less workspace than SuiteSparseQR's
factors (which retain the orthogonal factor and fill in).  The report
lists, per matrix, the paper's Mbytes and the measured workspace of SAP
(sketch + factor), the direct QR (R + Givens log, peak), and the CSC
storage of A itself.
"""

from __future__ import annotations

from _harness import emit_report, shape_check

from bench_table09_lsq_runtime import cached_results
from repro.workloads import LSQ_SUITE


def test_table11_report(benchmark):
    results = benchmark.pedantic(cached_results, rounds=1, iterations=1)
    rows, notes = [], []
    ratios = {}
    for name, r in results.items():
        c = r["case"]
        mem_a = r["A"].memory_bytes / 2**20
        sap_mb = r["sap"].memory_mbytes
        direct_mb = r["direct"].memory_mbytes
        ratios[name] = direct_mb / max(sap_mb, 1e-12)
        rows.append([
            name, c.paper["sap_mem"], c.paper["suitesparse_mem"],
            c.paper["mem_mb"],
            sap_mb, direct_mb, mem_a, ratios[name],
        ])
        notes.append(shape_check(
            ratios[name] > 1.0,
            f"{name}: direct factors take {ratios[name]:.0f}x SAP's "
            "workspace",
        ))
    notes.append(shape_check(
        max(ratios.values()) > 5.0,
        f"largest direct/SAP memory ratio = {max(ratios.values()):.0f}x "
        "(paper band: 7x-130x)",
    ))
    sap_pred = all(
        abs(r["sap"].memory_bytes
            - (2 * r["A"].shape[1] ** 2 * 8
               + r["sap"].details["rank"] * r["A"].shape[1] * 8
               + (0 if r["sap"].method == "sap-qr"
                  else r["sap"].details["rank"] * 8)))
        <= r["sap"].memory_bytes * 0.5
        for r in results.values()
    )
    notes.append(shape_check(
        sap_pred,
        "SAP memory is predictable: ~ a 2n x n sketch plus an n x n factor",
    ))
    emit_report(
        "table11",
        "Table XI: workspace memory (Mbytes)",
        ["matrix", "SAP(p)", "SuiteSparse(p)", "mem(A)(p)",
         "SAP", "direct", "mem(A)", "direct/SAP"],
        rows,
        notes="\n".join(notes),
    )
    assert all(v > 1.0 for v in ratios.values())
    assert max(ratios.values()) > 5.0
