"""Table I — properties of the SpMM test-matrix suite.

Regenerates the paper's Table I for the surrogate suite: per matrix the
sketch size ``d = 3n``, dimensions, nnz and density, at both the published
(paper) dimensions and the realized (scaled) surrogate dimensions.
"""

from __future__ import annotations

from _harness import emit_report, scaled_d, spmm_case, suite_matrix

from repro.workloads import SPMM_SUITE


def build_table01() -> list[list]:
    rows = []
    for name in SPMM_SUITE:
        case = spmm_case(name)
        A = suite_matrix("spmm", name)
        rows.append([
            name,
            case.paper["d"], case.m, case.n, case.nnz,
            case.density,
            scaled_d(case, A), A.shape[0], A.shape[1], A.nnz, A.density,
        ])
    return rows


def test_table01_report(benchmark):
    rows = benchmark(build_table01)
    emit_report(
        "table01",
        "Table I: SpMM test data (paper vs surrogate at current scale)",
        ["matrix", "d(paper)", "m(paper)", "n(paper)", "nnz(paper)",
         "rho(paper)", "d", "m", "n", "nnz", "rho"],
        rows,
        notes=("Surrogates preserve the structure class and per-column "
               "nonzero counts; see DESIGN.md substitution table."),
    )
    assert len(rows) == 5
