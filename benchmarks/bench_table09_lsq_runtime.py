"""Table IX — runtime and iteration counts for the three LS solvers.

For every suite matrix: LSQR-D (time, iterations), SAP (sketch time, total
time, iterations; QR for the rails, SVD for the rank-deficient trio, as
the paper prescribes), and the direct sparse QR (SuiteSparse role).

Shapes asserted: SAP's iteration count is nearly constant across matrices
(the predictability the paper highlights), LSQR-D's iteration count blows
up on the ill-conditioned rails, and SAP beats the direct solver on the
highly overdetermined cases.
"""

from __future__ import annotations

import numpy as np
import pytest
from _harness import emit_report, lsq_case, shape_check, suite_matrix

from repro.core import SketchConfig
from repro.lsq import CscOperator, solve_direct_qr, solve_lsqr_diag, solve_sap
from repro.workloads import LSQ_SUITE


def _rhs(A, seed: int) -> np.ndarray:
    """The paper's b: a vector in range(A) plus a standard Gaussian."""
    rng = np.random.default_rng(seed)
    return (CscOperator(A).matvec(rng.standard_normal(A.shape[1]))
            + rng.standard_normal(A.shape[0]))


def run_solvers(name: str) -> dict:
    case = lsq_case(name)
    A = suite_matrix("lsq", name)
    b = _rhs(A, 900 + case.seed)
    method = case.paper["sap_method"]
    lsqrd = solve_lsqr_diag(A, b, max_iter=40 * A.shape[1])
    sap = solve_sap(A, b, gamma=2.0, method=method,
                    config=SketchConfig(gamma=2.0, seed=case.seed))
    direct = solve_direct_qr(A, b)
    return {"case": case, "A": A, "b": b,
            "lsqrd": lsqrd, "sap": sap, "direct": direct}


_RESULTS_CACHE: dict = {}


def cached_results() -> dict:
    if not _RESULTS_CACHE:
        for name in LSQ_SUITE:
            _RESULTS_CACHE[name] = run_solvers(name)
    return _RESULTS_CACHE


@pytest.mark.parametrize("name", ["rail582", "specular"])
def test_sap_solver_speed(benchmark, name):
    case = lsq_case(name)
    A = suite_matrix("lsq", name)
    b = _rhs(A, 1)
    benchmark.pedantic(
        lambda: solve_sap(A, b, gamma=2.0, method=case.paper["sap_method"],
                          config=SketchConfig(gamma=2.0, seed=1)),
        rounds=1, iterations=1,
    )


def test_table09_report(benchmark):
    results = benchmark.pedantic(cached_results, rounds=1, iterations=1)
    rows, notes = [], []
    sap_iters = []
    for name, r in results.items():
        c = r["case"]
        rows.append([
            name, c.paper["sap_method"],
            c.paper["lsqr_d_time"], c.paper["lsqr_d_iter"],
            c.paper["sap_sketch"], c.paper["sap_time"], c.paper["sap_iter"],
            c.paper["suitesparse_time"],
            r["lsqrd"].seconds, r["lsqrd"].iterations,
            r["sap"].sketch_seconds, r["sap"].seconds, r["sap"].iterations,
            r["direct"].seconds,
        ])
        sap_iters.append(r["sap"].iterations)
    spread = max(sap_iters) / max(1, min(sap_iters))
    notes.append(shape_check(
        spread <= 4.0,
        f"SAP iterations nearly constant across matrices "
        f"({min(sap_iters)}..{max(sap_iters)}) — the paper's "
        "predictability claim",
    ))
    for name in ("rail582", "rail2586", "rail4284"):
        r = results[name]
        notes.append(shape_check(
            r["lsqrd"].iterations > 2 * r["sap"].iterations,
            f"{name}: LSQR-D needs {r['lsqrd'].iterations} iterations vs "
            f"SAP's {r['sap'].iterations}",
        ))
        notes.append(shape_check(
            r["sap"].seconds < r["direct"].seconds,
            f"{name}: SAP faster than the direct solver "
            f"({r['sap'].seconds:.3f}s vs {r['direct'].seconds:.3f}s)",
        ))
    emit_report(
        "table09",
        "Table IX: least-squares runtimes and iterations",
        ["matrix", "method",
         "LSQRD t(p)", "it(p)", "SAP sk(p)", "SAP t(p)", "it(p)",
         "SS t(p)",
         "LSQRD t", "it", "SAP sketch", "SAP t", "it", "direct t"],
        rows,
        notes="\n".join(notes),
    )
    assert spread <= 6.0
    for name in ("rail582", "rail2586", "rail4284"):
        r = results[name]
        assert r["lsqrd"].iterations > r["sap"].iterations
