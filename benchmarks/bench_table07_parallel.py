"""Table VII — strong scaling of Algorithms 3 & 4 under two blockings.

The paper scales shar_te2-b2 from 1 to 32 threads on Frontera with two
blocking setups; setup2 (taller blocks: larger b_d, smaller b_n) scales
further, Algorithm 3 overtakes Algorithm 4 at high thread counts, and the
headline parallel efficiency reaches ~45% at 32 threads (note: 32 threads
oversubscribe Frontera's 28 cores).

This host has one core, so (per DESIGN.md's substitution table) the sweep
runs twice: REAL threads through the race-free executor at surrogate
scale (correctness + measured wall time) and the bandwidth-saturation
machine model at the PAPER's dimensions (the scaling shape, with absolute
predicted seconds printed next to the paper's measurements).
"""

from __future__ import annotations

import pytest
from _harness import (
    REPEATS,
    emit_report,
    paper_scale_traffic,
    shape_check,
    suite_matrix,
)

from repro.model import FRONTERA
from repro.parallel import measure_strong_scaling, predict_time
from repro.rng import PhiloxSketchRNG
from repro.workloads import SPMM_SUITE

THREADS = [1, 2, 4, 8, 16, 32]
CASE = SPMM_SUITE["shar_te2-b2"]

#: Paper rows (seconds, GFlops) for (setup, algorithm, threads).
PAPER = {
    ("setup1", "algo4"): {1: (8.66, 7.14), 2: (5.06, 12.23), 4: (2.72, 22.70),
                          8: (2.07, 29.89), 16: (2.34, 26.42), 32: (2.01, 30.74)},
    ("setup1", "algo3"): {1: (9.00, 6.87), 2: (5.16, 11.98), 4: (2.63, 23.47),
                          8: (1.98, 31.22), 16: (1.14, 54.08), 32: (0.92, 67.33)},
    ("setup2", "algo4"): {1: (8.42, 7.35), 2: (4.88, 12.68), 4: (2.51, 24.59),
                          8: (1.55, 39.88), 16: (1.37, 45.05), 32: (0.80, 77.22)},
    ("setup2", "algo3"): {1: (8.88, 6.96), 2: (4.52, 13.68), 4: (2.50, 24.75),
                          8: (1.35, 45.80), 16: (0.83, 74.76), 32: (0.62, 100.29)},
}

#: Paper-scale blockings: setup1 squat-ish, setup2 tall (large b_d, small b_n).
SETUPS = {"setup1": (3000, 1200), "setup2": (51480, 200)}


def _model_sweep(setup: str, kernel: str):
    b_d, b_n = SETUPS[setup]
    traffic = paper_scale_traffic(CASE, kernel, b_d=b_d, b_n=b_n)
    h = FRONTERA.h("uniform")
    serial = 0.0
    if kernel == "algo4":
        # Charge the blocked-CSR conversion as a bandwidth-bound serial pass.
        n_blocks = -(-CASE.n // b_n)
        conv_words = 2.0 * CASE.nnz + n_blocks * (CASE.m + 1.0)
        serial = conv_words * 8.0 / (FRONTERA.bandwidth_gbs * 1e9)
    return [predict_time(traffic, FRONTERA, p, h, serial_seconds=serial)
            for p in THREADS]


def test_real_threads_correct_and_timed(benchmark):
    """Measured sweep with real threads (single-core host: validates
    correctness and the executor; no speedup expected here)."""
    A = suite_matrix("spmm", "shar_te2-b2")
    d = 3 * A.shape[1]

    def sweep():
        return measure_strong_scaling(
            A, d, lambda w: PhiloxSketchRNG(0), kernel="algo3",
            b_d=d, b_n=max(1, A.shape[1] // 8), threads_list=[1, 2, 4],
        )

    pts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert all(p.seconds > 0 for p in pts)


@pytest.mark.parametrize("kernel", ["algo3", "algo4"])
@pytest.mark.parametrize("setup", ["setup1", "setup2"])
def test_simulated_scaling(benchmark, kernel, setup):
    runs = benchmark.pedantic(lambda: _model_sweep(setup, kernel),
                              rounds=max(1, REPEATS), iterations=1)
    assert runs[0].seconds >= runs[-1].seconds


def test_table07_report(benchmark):
    def run_all():
        return {(s, k): _model_sweep(s, k)
                for s in SETUPS for k in ("algo3", "algo4")}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows, notes = [], []
    for p_idx, threads in enumerate(THREADS):
        row = [threads]
        for setup in ("setup1", "setup2"):
            for kernel in ("algo4", "algo3"):
                run = results[(setup, kernel)][p_idx]
                paper_t, _ = PAPER[(setup, kernel)][threads]
                row.extend([paper_t, run.seconds, run.gflops])
        rows.append(row)

    def eff(key):
        pts = results[key]
        return pts[0].seconds / (THREADS[-1] * pts[-1].seconds)

    e32 = eff(("setup2", "algo3"))
    notes.append(shape_check(
        results[("setup2", "algo3")][-1].seconds
        <= results[("setup2", "algo4")][-1].seconds,
        "Algorithm 3 at least as fast as Algorithm 4 at 32 threads (setup2)",
    ))
    notes.append(shape_check(
        results[("setup2", "algo3")][-1].seconds
        <= results[("setup1", "algo3")][-1].seconds,
        "setup2 (tall blocks) at least as fast as setup1 at 32 threads",
    ))
    notes.append(shape_check(
        0.10 <= e32 < 1.0,
        f"parallel efficiency at 32 threads = {e32:.0%} < 100% "
        "(paper: up to 45%; our streaming-traffic model is more optimistic "
        "than the real memory system)",
    ))
    pred1 = results[("setup2", "algo3")][0].seconds
    notes.append(shape_check(
        0.2 < pred1 / PAPER[("setup2", "algo3")][1][0] < 5.0,
        f"1-thread model prediction {pred1:.2f}s within 5x of the paper's "
        f"{PAPER[('setup2', 'algo3')][1][0]}s (absolute-scale sanity)",
    ))
    emit_report(
        "table07",
        "Table VII: strong scaling at paper dimensions (machine model vs "
        "paper measurements)",
        ["threads",
         "s1/A4(p)", "s1/A4", "s1/A4 GF", "s1/A3(p)", "s1/A3", "s1/A3 GF",
         "s2/A4(p)", "s2/A4", "s2/A4 GF", "s2/A3(p)", "s2/A3", "s2/A3 GF"],
        rows,
        notes="\n".join(notes),
    )
    assert results[("setup2", "algo3")][-1].seconds <= \
        results[("setup2", "algo4")][-1].seconds * 1.05
    assert e32 < 1.0
