"""Machine probe — the Section V-A STREAM / RNG-rate measurements.

The paper characterizes each testbed with two micro-measurements: STREAM
copy bandwidth and the rate of generating *short* random vectors
("length of 10000"), whose ratio is the model's ``h``.  This bench runs
the same probes on the reproduction host for every generator family and
distribution the kernels use, and reports where this host sits relative
to the paper's two machines (Frontera: h small, RNG-friendly; Perlmutter:
bandwidth-rich).
"""

from __future__ import annotations

from _harness import emit_report, shape_check

from repro.model import FRONTERA, PERLMUTTER
from repro.rng import estimate_h, make_rng, rng_sample_rate, stream_copy_bandwidth

COMBOS = [
    ("xoshiro", "uniform"),
    ("xoshiro", "rademacher"),
    ("xoshiro", "gaussian"),
    ("philox", "uniform"),
    ("threefry", "uniform"),
    ("junk", "uniform"),
]


def test_machine_probe_report(benchmark):
    def run():
        bw = stream_copy_bandwidth()
        rows = []
        for kind, dist in COMBOS:
            rate = rng_sample_rate(make_rng(kind, 0, dist),
                                   vector_length=10_000, batch_columns=16,
                                   repeats=3)
            h = bw / (8 * rate)
            rows.append([f"{kind}/{dist}", rate, h])
        return bw, rows

    bw, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    h_by_combo = {r[0]: r[2] for r in rows}
    notes = [
        f"copy bandwidth: {bw / 1e9:.2f} GB/s "
        f"(paper machines: Frontera ~{FRONTERA.bandwidth_gbs:.0f}, "
        f"Perlmutter ~{PERLMUTTER.bandwidth_gbs:.0f} GB/s per node)",
        shape_check(
            h_by_combo["xoshiro/rademacher"] <= h_by_combo["xoshiro/gaussian"],
            "+-1 is the cheapest transform, Gaussian the dearest "
            "(the Figure 4 ordering, on this host)",
        ),
        shape_check(
            h_by_combo["xoshiro/uniform"] <= h_by_combo["philox/uniform"],
            "checkpointed xoshiro beats the counter-based generators "
            "(the Section IV-B measurement, on this host)",
        ),
        shape_check(
            h_by_combo["junk/uniform"] < h_by_combo["xoshiro/uniform"],
            "the junk probe bounds the hardware-RNG headroom from below",
        ),
        f"h < 1 regime (regeneration beats memory): "
        f"{'yes' if h_by_combo['xoshiro/uniform'] < 1 else 'no'} for the "
        "production generator on this host",
    ]
    emit_report(
        "machine_probe",
        "Machine probe: STREAM copy vs short-vector RNG rate (the h "
        "measurement of Section V-A)",
        ["generator/distribution", "samples/s", "h (cost per entry / "
         "cost per word)"],
        rows,
        notes="\n".join(notes),
    )
    assert all(r[1] > 0 for r in rows)
