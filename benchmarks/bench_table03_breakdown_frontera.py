"""Table III — sample time vs total SpMM time, Algorithms 3 & 4 (Frontera).

Reproduces the runtime breakdown: for each suite matrix, the total kernel
time and the portion spent generating random numbers, for both algorithms
under the Frontera-style blocking.  The paper's shape: Algorithm 3's
sample time is roughly half its total and is much *larger* than Algorithm
4's sample time (the generated-number counts differ by the reuse factor);
on Frontera (fast RNG) Algorithm 3 nevertheless wins on total time.
"""

from __future__ import annotations

import pytest
from _harness import REPEATS, best_of, emit_report, shape_check, spmm_case, suite_matrix

from repro.kernels import sketch_spmm
from repro.rng import XoshiroSketchRNG
from repro.workloads import SPMM_SUITE


def _blocking(d: int, n: int) -> tuple[int, int]:
    return max(1, min(d, 3000)), max(1, min(n, max(8, n // 35)))


def _run(name: str, kernel: str) -> dict:
    A = suite_matrix("spmm", name)
    d = 3 * A.shape[1]
    b_d, b_n = _blocking(d, A.shape[1])
    _, (_, stats) = best_of(
        lambda: sketch_spmm(A, d, XoshiroSketchRNG(0, "uniform"),
                            kernel=kernel, b_d=b_d, b_n=b_n)
    )
    return {"stats": stats, "A": A}


@pytest.mark.parametrize("kernel", ["algo3", "algo4"])
def test_kernel_with_breakdown(benchmark, kernel):
    A = suite_matrix("spmm", "shar_te2-b2")
    d = 3 * A.shape[1]
    b_d, b_n = _blocking(d, A.shape[1])
    benchmark.pedantic(
        lambda: sketch_spmm(A, d, XoshiroSketchRNG(0), kernel=kernel,
                            b_d=b_d, b_n=b_n),
        rounds=max(1, REPEATS), iterations=1,
    )


def test_table03_report(benchmark):
    def run_all():
        return {(name, k): _run(name, k)
                for name in SPMM_SUITE for k in ("algo3", "algo4")}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    notes = []
    paper_rows = {
        ("mk-12", "algo3"): (0.076, 0.036), ("ch7-9-b3", "algo3"): (8.34, 4.07),
        ("shar_te2-b2", "algo3"): (11.03, 5.63),
        ("mesh_deform", "algo3"): (9.26, 4.40),
        ("cis-n4c6-b4", "algo3"): (0.786, 0.325),
        ("mk-12", "algo4"): (0.085, 0.02), ("ch7-9-b3", "algo4"): (11.06, 2.42),
        ("shar_te2-b2", "algo4"): (14.43, 3.84),
        ("mesh_deform", "algo4"): (8.14, 2.47),
        ("cis-n4c6-b4", "algo4"): (0.924, 0.157),
    }
    for kernel in ("algo3", "algo4"):
        for name in SPMM_SUITE:
            st = results[(name, kernel)]["stats"]
            pt, ps = paper_rows[(name, kernel)]
            rows.append([
                name, kernel, pt, ps,
                st.total_seconds, st.sample_seconds,
                st.samples_generated,
            ])
    for name in SPMM_SUITE:
        s3 = results[(name, "algo3")]["stats"]
        s4 = results[(name, "algo4")]["stats"]
        notes.append(shape_check(
            s4.samples_generated < s3.samples_generated,
            f"{name}: Algorithm 4 generates fewer numbers "
            f"({s4.samples_generated} vs {s3.samples_generated})",
        ))
        notes.append(shape_check(
            s4.sample_seconds <= s3.sample_seconds * 1.2,
            f"{name}: Algorithm 4 sample time <= Algorithm 3's",
        ))
    emit_report(
        "table03",
        "Table III: sample vs total time (Frontera blocking)",
        ["matrix", "algorithm", "total(p)", "sample(p)",
         "total", "sample", "#generated"],
        rows,
        notes="\n".join(notes),
    )
    for name in SPMM_SUITE:
        assert (results[(name, "algo4")]["stats"].samples_generated
                < results[(name, "algo3")]["stats"].samples_generated)
