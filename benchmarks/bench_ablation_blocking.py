"""Ablation — blocking parameters (b_d, b_n).

Sections III-B and V-B treat the block shape as the central tuning knob:
growing ``b_d`` cuts the number of passes over the sparse operand, and
``b_n`` trades Algorithm 4's RNG reuse against cache pressure.  This
ablation sweeps both knobs on the shar_te2-b2 surrogate and reports
measured kernel time, RNG volume, and the model's effective-word count,
then checks the model optimizer's recommendation lands near the measured
optimum's cost regime.
"""

from __future__ import annotations

import pytest
from _harness import REPEATS, best_of, emit_report, shape_check, suite_matrix

from repro.kernels import sketch_spmm
from repro.model import LAPTOP, algo3_traffic, algo4_traffic, recommend_block_sizes
from repro.rng import XoshiroSketchRNG


def _sweep_bn(A, d, kernel, bn_values):
    out = {}
    for b_n in bn_values:
        secs, (_, stats) = best_of(
            lambda b=b_n: sketch_spmm(A, d, XoshiroSketchRNG(0),
                                      kernel=kernel, b_d=d, b_n=b)
        )
        out[b_n] = (secs, stats.samples_generated)
    return out


@pytest.mark.parametrize("b_n", [4, 16, 64])
def test_bn_sweep_algo4(benchmark, b_n):
    A = suite_matrix("spmm", "shar_te2-b2")
    d = 3 * A.shape[1]
    benchmark.pedantic(
        lambda: sketch_spmm(A, d, XoshiroSketchRNG(0), kernel="algo4",
                            b_d=d, b_n=b_n),
        rounds=max(1, REPEATS), iterations=1,
    )


def test_ablation_bn_report(benchmark):
    A = suite_matrix("spmm", "shar_te2-b2")
    d = 3 * A.shape[1]
    n = A.shape[1]
    bn_values = [1, 4, 16, 64, n]

    def run():
        return {
            "algo3": _sweep_bn(A, d, "algo3", bn_values),
            "algo4": _sweep_bn(A, d, "algo4", bn_values),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for b_n in bn_values:
        t3, s3 = results["algo3"][b_n]
        t4, s4 = results["algo4"][b_n]
        m3 = algo3_traffic(A, d, d, b_n).effective_words(LAPTOP.h("uniform"))
        m4 = algo4_traffic(A, d, d, b_n).effective_words(
            LAPTOP.h("uniform"), LAPTOP.random_access_penalty)
        rows.append([b_n, t3, s3, m3, t4, s4, m4])
    notes = []
    from repro.model import tune_bn

    choice = tune_bn(A, d, LAPTOP, b_d=d)
    notes.append(f"pattern-aware tuner pick (Section III-B): "
                 f"{choice.describe()}")
    samples4 = [results["algo4"][b][1] for b in bn_values]
    notes.append(shape_check(
        all(a >= b for a, b in zip(samples4, samples4[1:])),
        "Algorithm 4 RNG volume monotone non-increasing in b_n "
        "(Section III-B's reuse knob)",
    ))
    samples3 = [results["algo3"][b][1] for b in bn_values]
    notes.append(shape_check(
        len(set(samples3)) == 1,
        "Algorithm 3 RNG volume independent of b_n (always d*nnz)",
    ))
    emit_report(
        "ablation_bn",
        "Ablation: vertical block width b_n (b_d = d)",
        ["b_n", "A3 time", "A3 samples", "A3 model words",
         "A4 time", "A4 samples", "A4 model words"],
        rows,
        notes="\n".join(notes),
    )
    assert all(a >= b for a, b in zip(samples4, samples4[1:]))
    assert len(set(samples3)) == 1


def test_ablation_bd_report(benchmark):
    A = suite_matrix("spmm", "shar_te2-b2")
    d = 3 * A.shape[1]
    bd_values = [max(1, d // 16), max(1, d // 4), d]

    def run():
        out = {}
        for b_d in bd_values:
            secs, (_, stats) = best_of(
                lambda b=b_d: sketch_spmm(A, d, XoshiroSketchRNG(0),
                                          kernel="algo3", b_d=b, b_n=16)
            )
            traffic = algo3_traffic(A, d, b_d, 16)
            out[b_d] = (secs, traffic.words_sparse)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[b_d, results[b_d][0], results[b_d][1]] for b_d in bd_values]
    sparse_words = [results[b][1] for b in bd_values]
    notes = [shape_check(
        all(a >= b for a, b in zip(sparse_words, sparse_words[1:])),
        "sparse-operand re-reads shrink as b_d grows (the Section V-B "
        "heuristic: larger b_d offloads data access onto regenerated S)",
    )]
    b_d_rec, b_n_rec = recommend_block_sizes(LAPTOP, A.density, d, A.shape[1])
    notes.append(f"model recommendation for this machine/problem: "
                 f"(b_d={b_d_rec}, b_n={b_n_rec})")
    emit_report(
        "ablation_bd",
        "Ablation: row block height b_d (algorithm 3, b_n = 16)",
        ["b_d", "A3 time", "model sparse words"],
        rows,
        notes="\n".join(notes),
    )
    assert all(a >= b for a, b in zip(sparse_words, sparse_words[1:]))
