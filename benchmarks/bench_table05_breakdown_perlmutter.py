"""Table V — sample vs total time under Perlmutter blocking, and the
Frontera/Perlmutter crossover.

Table V repeats Table III's breakdown with the wider Perlmutter blocking
(b_n = 1200 at paper scale) where Algorithm 4 overtakes Algorithm 3 — the
opposite of Frontera.  The crossover depends on the machine's RNG-speed /
random-access trade-off, so this bench reports (a) the measured breakdown
at surrogate scale and (b) the machine-model verdict for both presets,
asserting the paper's opposite orderings.
"""

from __future__ import annotations

import pytest
from _harness import (
    REPEATS,
    best_of,
    emit_report,
    paper_scale_crossover,
    shape_check,
    suite_matrix,
)

from repro.kernels import sketch_spmm
from repro.rng import XoshiroSketchRNG
from repro.workloads import SPMM_SUITE


def _blocking(d: int, n: int) -> tuple[int, int]:
    return max(1, min(d, 3000)), max(1, min(n, max(8, n // 14)))


_PAPER = {
    ("mk-12", "algo3"): (0.0627, 0.034), ("ch7-9-b3", "algo3"): (7.37, 3.90),
    ("shar_te2-b2", "algo3"): (9.89, 5.40),
    ("mesh_deform", "algo3"): (7.68, 4.21),
    ("cis-n4c6-b4", "algo3"): (0.628, 0.312),
    ("mk-12", "algo4"): (0.0520, 0.0142), ("ch7-9-b3", "algo4"): (6.60, 2.09),
    ("shar_te2-b2", "algo4"): (9.04, 3.64),
    ("mesh_deform", "algo4"): (5.73, 2.35),
    ("cis-n4c6-b4", "algo4"): (0.532, 0.120),
}


def _run(name: str, kernel: str):
    A = suite_matrix("spmm", name)
    d = 3 * A.shape[1]
    b_d, b_n = _blocking(d, A.shape[1])
    _, (_, stats) = best_of(
        lambda: sketch_spmm(A, d, XoshiroSketchRNG(0, "uniform"),
                            kernel=kernel, b_d=b_d, b_n=b_n)
    )
    return stats


@pytest.mark.parametrize("kernel", ["algo3", "algo4"])
def test_kernel_perlmutter_blocking(benchmark, kernel):
    A = suite_matrix("spmm", "mesh_deform")
    d = 3 * A.shape[1]
    b_d, b_n = _blocking(d, A.shape[1])
    benchmark.pedantic(
        lambda: sketch_spmm(A, d, XoshiroSketchRNG(0), kernel=kernel,
                            b_d=b_d, b_n=b_n),
        rounds=max(1, REPEATS), iterations=1,
    )


def test_table05_report(benchmark):
    def run_all():
        return {(n, k): _run(n, k) for n in SPMM_SUITE
                for k in ("algo3", "algo4")}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows, notes = [], []
    for kernel in ("algo3", "algo4"):
        for name in SPMM_SUITE:
            st = results[(name, kernel)]
            pt, ps = _PAPER[(name, kernel)]
            rows.append([name, kernel, pt, ps, st.total_seconds,
                         st.sample_seconds, st.samples_generated])

    # The crossover at PAPER dimensions via the machine model.
    crossover_rows = []
    for name in SPMM_SUITE:
        cross = paper_scale_crossover(SPMM_SUITE[name])
        f3, f4 = cross["frontera_a3"], cross["frontera_a4"]
        p3, p4 = cross["perlmutter_a3"], cross["perlmutter_a4"]
        crossover_rows.append([name, f3, f4, p3, p4])
        notes.append(shape_check(
            f3 <= f4 * 1.1 and p4 <= p3 * 1.05,
            f"{name}: model crossover — Frontera prefers A3 "
            f"({f3:.3f} vs {f4:.3f}), Perlmutter prefers A4 "
            f"({p4:.3f} vs {p3:.3f})",
        ))
    emit_report(
        "table05",
        "Table V: sample vs total time (Perlmutter blocking)",
        ["matrix", "algorithm", "total(p)", "sample(p)", "total", "sample",
         "#generated"],
        rows,
    )
    emit_report(
        "table05_crossover",
        "Tables III vs V crossover (machine-model seconds, sequential)",
        ["matrix", "Frontera A3", "Frontera A4", "Perlmutter A3",
         "Perlmutter A4"],
        crossover_rows,
        notes="\n".join(notes),
    )
    for name in SPMM_SUITE:
        cross = paper_scale_crossover(SPMM_SUITE[name])
        assert cross["perlmutter_a4"] <= cross["perlmutter_a3"] * 1.05, (
            f"{name}: Perlmutter must prefer Algorithm 4 at paper scale")
