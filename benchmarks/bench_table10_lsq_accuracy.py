"""Table X — numerical error of the computed least-squares solutions.

Evaluates the paper's backward-error-motivated metric

    Error(x) = ||A^T (A x - b)|| / (||A||_F ||A x - b||)

for each solver's solution on each suite matrix.  Shapes: every converged
solver lands near the 1e-14 tolerance; SAP's errors vary *less* across
matrices than the baselines' (the paper calls this "remarkable").
"""

from __future__ import annotations

import numpy as np
from _harness import emit_report, shape_check

from bench_table09_lsq_runtime import cached_results
from repro.workloads import LSQ_SUITE


def test_table10_report(benchmark):
    results = benchmark.pedantic(cached_results, rounds=1, iterations=1)
    rows, notes = [], []
    errs = {"lsqrd": [], "sap": [], "direct": []}
    for name, r in results.items():
        c = r["case"]
        rows.append([
            name,
            c.paper["err_lsqrd"], c.paper["err_sap"], c.paper["err_ss"],
            r["lsqrd"].error, r["sap"].error, r["direct"].error,
        ])
        for k in errs:
            errs[k].append(r[k].error)
    for name, r in results.items():
        notes.append(shape_check(
            r["sap"].error < 1e-10,
            f"{name}: SAP error {r['sap'].error:.2e} near the 1e-14 "
            "tolerance regime",
        ))
    spread_sap = max(errs["sap"]) / max(min(errs["sap"]), 1e-300)
    spread_lsqrd = max(errs["lsqrd"]) / max(min(errs["lsqrd"]), 1e-300)
    notes.append(shape_check(
        spread_sap < 1e4,
        f"SAP error spread {spread_sap:.1e} is tight across matrices",
    ))
    emit_report(
        "table10",
        "Table X: Error(x) per solver (paper vs measured)",
        ["matrix", "LSQRD(p)", "SAP(p)", "SuiteSparse(p)",
         "LSQRD", "SAP", "direct"],
        rows,
        notes="\n".join(notes),
    )
    assert all(e < 1e-8 for e in errs["sap"])
    assert all(e < 1e-8 for e in errs["direct"])
