"""Figure 6 — least-squares speedup ratios t1/t2 and t3/t2.

The paper plots, per matrix, LSQR-D-time / SAP-time (blue) and
SuiteSparse-time / SAP-time (orange).  Reported shapes: SAP achieves up to
13x over SuiteSparse and 5x over LSQR-D; "landmark" is the only matrix
where SAP trails both baselines.

This bench derives the ratios from the Table IX runs (same solver
outputs) and prints them next to the ratios implied by the paper's
Table IX numbers.
"""

from __future__ import annotations

from _harness import emit_report, shape_check

from bench_table09_lsq_runtime import cached_results
from repro.workloads import LSQ_SUITE


def test_fig06_report(benchmark):
    results = benchmark.pedantic(cached_results, rounds=1, iterations=1)
    rows, notes = [], []
    measured_t3_ratio = {}
    for name, r in results.items():
        c = r["case"]
        paper_t1 = c.paper["lsqr_d_time"] / c.paper["sap_time"]
        paper_t3 = c.paper["suitesparse_time"] / c.paper["sap_time"]
        t1 = r["lsqrd"].seconds / r["sap"].seconds
        t3 = r["direct"].seconds / r["sap"].seconds
        measured_t3_ratio[name] = t3
        rows.append([name, paper_t1, paper_t3, t1, t3])
    best = max(measured_t3_ratio.values())
    notes.append(shape_check(
        best > 3.0,
        f"SAP achieves up to {best:.1f}x over the direct solver "
        "(paper: up to ~13x)",
    ))
    rail_wins = sum(measured_t3_ratio[n] > 1.0
                    for n in ("rail582", "rail2586", "rail4284", "spal_004"))
    notes.append(shape_check(
        rail_wins >= 3,
        f"SAP beats the direct solver on {rail_wins}/4 highly "
        "overdetermined cases",
    ))
    emit_report(
        "fig06",
        "Figure 6: speedup of SAP (t1/t2 = LSQR-D/SAP, t3/t2 = direct/SAP)",
        ["matrix", "t1/t2 (paper)", "t3/t2 (paper)",
         "t1/t2 (measured)", "t3/t2 (measured)"],
        rows,
        notes="\n".join(notes),
    )
    assert best > 2.0
    assert rail_wins >= 3
