"""Roofline diagrams — Section III-A's picture for both machine presets.

Renders the ASCII roofline of Frontera and Perlmutter with the paper's
cast placed at paper-scale intensities (Algorithm 3, Algorithm 4, the
stored-sketch baseline, and the GEMM reference), making the analysis's
geometry visible: the on-the-fly kernels sit to the right of the stored
sketch (higher intensity — the regeneration payoff), and GEMM sits at the
ridge far right (compute-bound).
"""

from __future__ import annotations

from _harness import REPORT_DIR, paper_scale_traffic, shape_check

from repro.model import FRONTERA, PERLMUTTER, gemm_ci, render_roofline
from repro.workloads import SPMM_SUITE

CASE = SPMM_SUITE["shar_te2-b2"]


def _points(machine, b_n):
    h = machine.h("uniform")
    t3 = paper_scale_traffic(CASE, "algo3", b_d=3000, b_n=b_n)
    t4 = paper_scale_traffic(CASE, "algo4", b_d=3000, b_n=b_n)
    # The stored-sketch baseline at paper scale: S exceeds every cache.
    d = 3 * CASE.n
    n_blocks = -(-CASE.n // b_n)
    pre_words = (2.0 * CASE.nnz + CASE.n + 1 + 2.0 * d * CASE.n
                 + n_blocks * float(d) * CASE.m)
    return {
        "algo3 (on-the-fly, strided)":
            t3.intensity(h, 1.0),
        "reuse: algo4 (on-the-fly)":
            t4.intensity(h, machine.random_access_penalty),
        "pregen (stored S)": t3.flops / pre_words,
        "gemm reference": gemm_ci(machine.cache_words),
    }


def test_roofline_diagrams(benchmark):
    def render():
        out = {}
        for machine, b_n in ((FRONTERA, 500), (PERLMUTTER, 1200)):
            pts = _points(machine, b_n)
            out[machine.name] = (pts, render_roofline(machine, pts))
        return out

    diagrams = benchmark.pedantic(render, rounds=1, iterations=1)
    notes = []
    blocks = []
    for name, (pts, art) in diagrams.items():
        blocks.append(art)
        blocks.append("")
        otf = pts["algo3 (on-the-fly, strided)"]
        pre = pts["pregen (stored S)"]
        notes.append(shape_check(
            otf > 3 * pre,
            f"{name}: on-the-fly intensity {otf:.1f} sits well right of the "
            f"stored sketch {pre:.2f} (the regeneration payoff)",
        ))
    text = "\n".join(blocks + notes) + "\n"
    print("\n" + text)
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / "roofline.txt").write_text(text)
    for name, (pts, _) in diagrams.items():
        assert pts["algo3 (on-the-fly, strided)"] > pts["pregen (stored S)"]
