"""Table VI — exotic sparsity patterns (Abnormal_A / _B / _C).

Reproduces the paper's pattern-sensitivity experiment: Algorithm 4 wins
big on Abnormal_A (every 1000th row dense: maximal sample reuse), loses
its edge by Abnormal_C (every 1000th column dense: no reuse, scattered
updates), while Algorithm 3's cost is pattern-oblivious (always
``d * nnz`` generated samples and strided access).

Shape checks are made on the RNG-volume ratio — the mechanism the paper
identifies — plus wall-clock trends where the host cooperates.
"""

from __future__ import annotations

import pytest
from _harness import REPEATS, best_of, emit_report, shape_check, suite_matrix

from repro.kernels import sketch_spmm
from repro.rng import XoshiroSketchRNG
from repro.sparse import csc_to_blocked_csr
from repro.workloads import ABNORMAL_SUITE


def _dims(A):
    n = A.shape[1]
    d = max(2, n // 2)          # paper uses d approx n/2-ish scale for these
    b_d = d
    b_n = max(1, n // 10)
    return d, b_d, b_n


def _run(name: str) -> dict:
    case = ABNORMAL_SUITE[name]
    A = suite_matrix("abnormal", name)
    d, b_d, b_n = _dims(A)

    t_conv, (blocked, _) = best_of(lambda: csc_to_blocked_csr(A, b_n))
    t3, (_, s3) = best_of(
        lambda: sketch_spmm(A, d, XoshiroSketchRNG(0), kernel="algo3",
                            b_d=b_d, b_n=b_n)
    )
    t4, (_, s4) = best_of(
        lambda: sketch_spmm(A, d, XoshiroSketchRNG(0), kernel="algo4",
                            b_d=b_d, b_n=b_n, blocked=blocked)
    )
    return {"case": case, "A": A, "t_conv": t_conv,
            "t3": t3, "t4": t4, "s3": s3, "s4": s4}


@pytest.mark.parametrize("name", sorted(ABNORMAL_SUITE))
@pytest.mark.parametrize("kernel", ["algo3", "algo4"])
def test_abnormal_kernels(benchmark, name, kernel):
    A = suite_matrix("abnormal", name)
    d, b_d, b_n = _dims(A)
    benchmark.pedantic(
        lambda: sketch_spmm(A, d, XoshiroSketchRNG(0), kernel=kernel,
                            b_d=b_d, b_n=b_n),
        rounds=max(1, REPEATS), iterations=1,
    )


def test_table06_report(benchmark):
    results = benchmark.pedantic(
        lambda: {n: _run(n) for n in ABNORMAL_SUITE}, rounds=1, iterations=1
    )
    rows, notes = [], []
    reuse = {}
    for name, r in results.items():
        c = r["case"]
        # RNG-volume ratio: Algorithm 4's generated samples relative to
        # Algorithm 3's d*nnz — the reuse factor driving Table VI.
        reuse[name] = r["s4"].samples_generated / r["s3"].samples_generated
        rows.append([
            name, c.paper["algo3_time"], c.paper["algo4_time"],
            c.paper["algo4_conv"],
            r["t3"], r["t4"], r["t_conv"], reuse[name],
        ])
    notes.append(shape_check(
        reuse["Abnormal_A"] < 0.2,
        f"Abnormal_A: Algorithm 4 regenerates only "
        f"{reuse['Abnormal_A']:.2f} of Algorithm 3's samples (dense rows "
        "maximize reuse)",
    ))
    notes.append(shape_check(
        reuse["Abnormal_C"] > 2 * reuse["Abnormal_A"],
        "Abnormal_C gives Algorithm 4 far less reuse than Abnormal_A "
        f"({reuse['Abnormal_C']:.2f} vs {reuse['Abnormal_A']:.2f})",
    ))
    s3_ratio = (results["Abnormal_A"]["s3"].samples_generated
                / (results["Abnormal_A"]["s3"].d * results["Abnormal_A"]["A"].nnz))
    notes.append(shape_check(
        abs(s3_ratio - 1.0) < 1e-9,
        "Algorithm 3 volume is exactly d*nnz on every pattern "
        "(pattern-oblivious)",
    ))
    emit_report(
        "table06",
        "Table VI: exotic sparsity patterns",
        ["pattern", "A3(p)", "A4(p)", "conv(p)",
         "A3", "A4", "conv", "A4/A3 samples"],
        rows,
        notes="\n".join(notes),
    )
    assert reuse["Abnormal_A"] < 0.2
    assert reuse["Abnormal_C"] > reuse["Abnormal_A"]
