"""Table IV — Algorithm 4 vs library baselines + conversion time (Perlmutter).

Reproduces the Perlmutter table: Algorithm 4 with (-1,1) and +-1 entries
against the pre-generated-S library role, with the CSC -> blocked-CSR
format-conversion time listed separately.  Shapes checked: the conversion
is cheap relative to compute, +-1 beats (-1,1), and at paper scale the
machine model puts Algorithm 4 ahead of Algorithm 3 on this machine.
"""

from __future__ import annotations

import pytest
from _harness import (
    REPEATS,
    best_of,
    emit_report,
    paper_scale_crossover,
    shape_check,
    spmm_case,
    suite_matrix,
)

from repro.kernels import sketch_spmm
from repro.rng import XoshiroSketchRNG
from repro.sparse import csc_to_blocked_csr
from repro.workloads import SPMM_SUITE


def _blocking(d: int, n: int) -> tuple[int, int]:
    # The paper's Perlmutter blocking: b_n = 1200 at n ~ 17k (n/14).
    return max(1, min(d, 3000)), max(1, min(n, max(8, n // 14)))


def _run_case(name: str) -> dict:
    case = spmm_case(name)
    A = suite_matrix("spmm", name)
    d = 3 * A.shape[1]
    b_d, b_n = _blocking(d, A.shape[1])

    t_conv, (blocked, conv_stats) = best_of(lambda: csc_to_blocked_csr(A, b_n))
    t_a4_uni, _ = best_of(
        lambda: sketch_spmm(A, d, XoshiroSketchRNG(0, "uniform"),
                            kernel="algo4", b_d=b_d, b_n=b_n, blocked=blocked)
    )
    t_a4_pm1, _ = best_of(
        lambda: sketch_spmm(A, d, XoshiroSketchRNG(0, "rademacher"),
                            kernel="algo4", b_d=b_d, b_n=b_n, blocked=blocked)
    )
    from repro.kernels import pregen_full
    t_lib, _ = best_of(
        lambda: pregen_full(A, d, XoshiroSketchRNG(0, "uniform"))
    )

    # Model verdict at PAPER dimensions on both machine presets.
    cross = paper_scale_crossover(case)
    return {
        "case": case, "t_conv": t_conv, "t_lib": t_lib,
        "t_a4_uni": t_a4_uni, "t_a4_pm1": t_a4_pm1,
        "model_perl": (cross["perlmutter_a3"], cross["perlmutter_a4"]),
        "model_front": (cross["frontera_a3"], cross["frontera_a4"]),
    }


@pytest.mark.parametrize("name", sorted(SPMM_SUITE))
def test_algo4_kernel_speed(benchmark, name):
    A = suite_matrix("spmm", name)
    d = 3 * A.shape[1]
    b_d, b_n = _blocking(d, A.shape[1])
    blocked, _ = csc_to_blocked_csr(A, b_n)
    benchmark.pedantic(
        lambda: sketch_spmm(A, d, XoshiroSketchRNG(0, "rademacher"),
                            kernel="algo4", b_d=b_d, b_n=b_n, blocked=blocked),
        rounds=max(1, REPEATS), iterations=1,
    )


def test_table04_report(benchmark):
    results = benchmark.pedantic(
        lambda: [_run_case(name) for name in SPMM_SUITE],
        rounds=1, iterations=1,
    )
    rows, notes = [], []
    for r in results:
        c = r["case"]
        rows.append([
            c.name, c.paper["julia"], c.paper["eigen"],
            r["t_lib"], r["t_a4_uni"], r["t_a4_pm1"], r["t_conv"],
        ])
        notes.append(shape_check(
            r["t_conv"] < 0.5 * r["t_a4_uni"],
            f"{c.name}: conversion cheap vs compute "
            f"({r['t_conv']:.2e}s vs {r['t_a4_uni']:.2e}s)",
        ))
        m3, m4 = r["model_perl"]
        notes.append(shape_check(
            m4 <= m3,
            f"{c.name}: Perlmutter model (paper scale) prefers Algorithm 4 "
            f"({m4:.3f}s vs {m3:.3f}s for Algorithm 3)",
        ))
    emit_report(
        "table04",
        "Table IV: Algorithm 4 vs library + conversion (Perlmutter role)",
        ["matrix", "Julia(p)", "Eigen(p)", "pregen-lib",
         "A4 (-1,1)", "A4 +-1", "conversion"],
        rows,
        notes="\n".join(notes),
    )
    # Hard shape assertions.
    for r in results:
        assert r["t_conv"] < r["t_a4_uni"], "conversion must be cheap"
        m3, m4 = r["model_perl"]
        assert m4 <= m3 * 1.01, "Perlmutter model must prefer Algorithm 4"
