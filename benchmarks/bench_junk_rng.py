"""Section V-A's closing note — the "junk" RNG upper bound.

"One can get upper bounds on performance by replacing each randomly
generated entry of S with 'junk' (e.g., a number computed from simple
addition). In informal experiments this provided for a factor 2x speed up
on matrices such as shar_te2-b2. This suggests that a fast RNG implemented
in hardware would be impactful."

This bench runs Algorithm 3 on the shar_te2-b2 surrogate with the real
generators (xoshiro, philox) and with :class:`repro.rng.JunkRNG`, and
reports the speedup headroom, plus raw generation-rate measurements.
"""

from __future__ import annotations

import pytest
from _harness import REPEATS, best_of, emit_report, shape_check, suite_matrix

from repro.kernels import sketch_spmm
from repro.rng import JunkRNG, PhiloxSketchRNG, XoshiroSketchRNG, rng_sample_rate

GENERATORS = [
    ("xoshiro", lambda: XoshiroSketchRNG(0, "uniform")),
    ("philox", lambda: PhiloxSketchRNG(0, "uniform")),
    ("junk", lambda: JunkRNG()),
]


@pytest.mark.parametrize("kind", [g[0] for g in GENERATORS])
def test_generator_kernel_speed(benchmark, kind):
    A = suite_matrix("spmm", "shar_te2-b2")
    d = 3 * A.shape[1]
    factory = dict(GENERATORS)[kind]
    benchmark.pedantic(
        lambda: sketch_spmm(A, d, factory(), kernel="algo3",
                            b_d=d, b_n=max(1, A.shape[1] // 8)),
        rounds=max(1, REPEATS), iterations=1,
    )


def test_junk_report(benchmark):
    A = suite_matrix("spmm", "shar_te2-b2")
    d = 3 * A.shape[1]
    b_n = max(1, A.shape[1] // 8)

    def run_all():
        out = {}
        for kind, factory in GENERATORS:
            secs, (_, stats) = best_of(
                lambda f=factory: sketch_spmm(A, d, f(), kernel="algo3",
                                              b_d=d, b_n=b_n)
            )
            rate = rng_sample_rate(factory(), vector_length=4000,
                                   batch_columns=16, repeats=2)
            out[kind] = (secs, stats.sample_seconds, rate)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[k, t, s, r] for k, (t, s, r) in results.items()]
    headroom = results["xoshiro"][0] / results["junk"][0]
    notes = [
        shape_check(
            headroom > 1.0,
            f"junk entries give a {headroom:.2f}x speedup over xoshiro "
            "(paper: ~2x) — the hardware-RNG headroom",
        ),
        shape_check(
            results["xoshiro"][2] >= results["philox"][2],
            "xoshiro generates faster than the counter-based Philox "
            "(the Section IV-B observation; Random123 was ~5x slower)",
        ),
    ]
    emit_report(
        "junk_rng",
        "Junk-RNG upper bound (Algorithm 3 on shar_te2-b2 surrogate)",
        ["generator", "total (s)", "sample (s)", "samples/s"],
        rows,
        notes="\n".join(notes),
    )
    assert headroom > 1.0
