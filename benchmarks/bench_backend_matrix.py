"""Backend performance matrix and regression gate.

Measures every *available* kernel backend (numpy always; numba when
importable) across the kernel x distribution grid and records median
effective bandwidth (GB/s) and generation throughput (samples/s) per
cell.  Two consumers:

* ``pytest benchmarks/ --benchmark-only`` — prints the matrix next to the
  other paper tables and refreshes ``reports/BENCH_backend.json``;
* ``make bench-gate`` (``python benchmarks/bench_backend_matrix.py``) —
  re-measures, compares each cell against the committed
  ``BENCH_backend.json``, and exits non-zero if any cell regressed by
  more than the tolerance (the ``backend_gbs`` per-metric tolerance from
  ``summarize_reports.py``, or ``--tolerance``).  On a pass the baseline
  is refreshed so drift is tracked incrementally.

"Effective bytes" follows the paper's traffic accounting for the
on-the-fly kernels: the sparse operand (values + indices) plus the
output, plus one word per generated sample that never touches memory —
``8 * (d*nnz + nnz + d*n)`` — so backends are compared on identical
work, not on how much scratch they happen to stream.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

import numpy as np
from _harness import REPEATS, emit_report, shape_check

from repro.kernels import KernelWorkspace, available_backends, get_backend
from repro.kernels.blocking import sketch_spmm
from repro.rng import make_rng
from repro.sparse import random_sparse

from summarize_reports import gate_tolerance

GATE_PATH = Path(__file__).parent / "reports" / "BENCH_backend.json"
DEFAULT_TOLERANCE = gate_tolerance("backend_gbs")

KERNELS = ("algo3", "algo4")
DISTS = ("uniform", "rademacher", "gaussian")
RNG_KIND = "xoshiro"          # fastest family; both backends support it
GAMMA = 3

# Table-II-style synthetic problem (m, n, density); override for quick
# local smoke runs, e.g. REPRO_BENCH_GATE_DIMS="4096,64,0.01".
_DIMS = os.environ.get("REPRO_BENCH_GATE_DIMS", "262144,256,1e-3").split(",")
GATE_M, GATE_N, GATE_DENSITY = int(_DIMS[0]), int(_DIMS[1]), float(_DIMS[2])


def _effective_bytes(d: int, n: int, nnz: int) -> float:
    """Comparable work volume per sketch (see module docstring)."""
    return 8.0 * (float(d) * nnz + nnz + float(d) * n)


def measure_backend_matrix(repeats: int = REPEATS) -> dict:
    """Run the full backend x kernel x distribution grid once.

    Returns a JSON-ready dict: ``entries["kernel/backend/dist"]`` holds
    median seconds, GB/s, and samples/s.  JIT compilation is forced
    before any timed run (``warmup``), so numba cells measure
    steady-state throughput — the quantity the gate must keep stable.
    """
    A = random_sparse(GATE_M, GATE_N, GATE_DENSITY, seed=0)
    m, n = A.shape
    d = GAMMA * n
    work_bytes = _effective_bytes(d, n, A.nnz)
    entries: dict[str, dict] = {}
    for backend in available_backends():
        be = get_backend(backend)
        workspace = KernelWorkspace()
        for dist in DISTS:
            be.warmup(make_rng(RNG_KIND, 0, dist), np.float64)
            for kernel in KERNELS:
                times = []
                samples = 0
                for _ in range(max(1, repeats)):
                    rng = make_rng(RNG_KIND, 0, dist)
                    t0 = time.perf_counter()
                    _, stats = sketch_spmm(A, d, rng, kernel=kernel,
                                           backend=be, workspace=workspace)
                    times.append(time.perf_counter() - t0)
                    samples = stats.samples_generated
                secs = statistics.median(times)
                entries[f"{kernel}/{backend}/{dist}"] = {
                    "kernel": kernel,
                    "backend": backend,
                    "distribution": dist,
                    "seconds": secs,
                    "gbs": work_bytes / secs / 1e9,
                    "samples_per_second": samples / secs,
                }
    return {
        "matrix": f"synthetic({GATE_M}x{GATE_N}, rho={GATE_DENSITY})",
        "shape": [m, n],
        "nnz": A.nnz,
        "d": d,
        "rng": RNG_KIND,
        "repeats": max(1, repeats),
        "backends": list(available_backends()),
        "entries": entries,
    }


def compare_to_baseline(baseline: dict, current: dict,
                        tolerance: float) -> list[str]:
    """Per-cell regression check; returns human-readable failure lines.

    Only cells present in both runs are compared (a baseline recorded
    with numba can't gate a numba-less host, and vice versa).
    """
    failures = []
    base_entries = baseline.get("entries", {})
    for key, cur in current["entries"].items():
        base = base_entries.get(key)
        if base is None:
            continue
        floor = base["gbs"] * (1.0 - tolerance)
        if cur["gbs"] < floor:
            failures.append(
                f"{key}: {cur['gbs']:.3f} GB/s < floor {floor:.3f} "
                f"(baseline {base['gbs']:.3f}, tolerance {tolerance:.0%})"
            )
    return failures


def _write_baseline(payload: dict) -> None:
    GATE_PATH.parent.mkdir(exist_ok=True)
    GATE_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True))


def _report_rows(payload: dict) -> list[list]:
    return [[e["kernel"], e["backend"], e["distribution"],
             round(e["seconds"], 5), round(e["gbs"], 3),
             f"{e['samples_per_second']:.3g}"]
            for e in payload["entries"].values()]


def test_backend_matrix_report(benchmark):
    payload = benchmark.pedantic(measure_backend_matrix, rounds=1,
                                 iterations=1)
    entries = payload["entries"]
    notes = []
    if "numba" in payload["backends"]:
        for kernel in KERNELS:
            nb = entries[f"{kernel}/numba/uniform"]["gbs"]
            npy = entries[f"{kernel}/numpy/uniform"]["gbs"]
            notes.append(shape_check(
                nb > npy,
                f"{kernel}: fused numba loop beats numpy "
                f"({nb / npy:.1f}x, uniform)",
            ))
    else:
        notes.append("numba not importable on this host: numpy cells only")
    emit_report(
        "backend_matrix",
        "Kernel backend matrix (median effective GB/s, samples/s)",
        ["kernel", "backend", "dist", "seconds", "GB/s", "samples/s"],
        _report_rows(payload),
        notes="\n".join(notes),
    )
    _write_baseline(payload)
    assert all(e["gbs"] > 0 for e in entries.values())


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="Backend perf-regression gate (compare against the "
                    "committed BENCH_backend.json)")
    parser.add_argument("--baseline", default=str(GATE_PATH),
                        help="baseline JSON to gate against")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional GB/s drop per cell "
                             "(default: the backend_gbs per-metric "
                             "tolerance; see summarize_reports.py)")
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument("--force-update", action="store_true",
                        help="refresh the baseline even on regression")
    args = parser.parse_args()

    current = measure_backend_matrix(args.repeats)
    for row in _report_rows(current):
        print("  ".join(str(c) for c in row))
    baseline_path = Path(args.baseline)
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        failures = compare_to_baseline(baseline, current, args.tolerance)
        if failures:
            print("\nbench-gate: PERFORMANCE REGRESSION", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            if not args.force_update:
                sys.exit(1)
        else:
            print(f"\nbench-gate: OK ({len(current['entries'])} cells, "
                  f"tolerance {args.tolerance:.0%})")
    else:
        print(f"\nbench-gate: no baseline at {baseline_path}; recording one")
    _write_baseline(current)
