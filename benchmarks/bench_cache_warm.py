"""Warm-vs-cold artifact-cache benchmark and regression gate.

The cache exists for exactly one workload: "fixed ``A``, many sketches".
This bench measures what a second process pays on that path — compile
(``tune="measure"``) plus execute — first against an empty cache
directory, then against the directory the cold run populated.  Two
consumers:

* ``pytest benchmarks/ --benchmark-only`` — prints the comparison next to
  the paper tables and refreshes ``reports/BENCH_cache.json``;
* ``make cache-smoke`` (``python benchmarks/bench_cache_warm.py``) —
  re-measures and fails unless the warm run (a) issued **zero** autotune
  probes and **zero** blocked-CSR conversions (asserted through the
  cache's per-artifact miss counters and the run's
  ``blocked_csr_source``), (b) beat the cold run by at least
  ``REPRO_CACHE_GATE_MIN_SPEEDUP`` (default 2x), and (c) produced a
  bit-identical sketch.  When a committed baseline exists the warm
  speedup is also gated against it with ``REPRO_BENCH_GATE_TOL``.

Every timed run constructs a fresh :class:`ArtifactCache` so the warm
legs exercise the disk path (checksum verification included), not the
in-process memo.
"""

from __future__ import annotations

import json
import os
import shutil
import statistics
import tempfile
import time
from pathlib import Path

import numpy as np
from _harness import REPEATS, emit_report, shape_check

from repro.cache import ArtifactCache, CachePolicy
from repro.core import SketchConfig
from repro.plan import Planner, Runtime
from repro.sparse import random_sparse

from summarize_reports import gate_tolerance

GATE_PATH = Path(__file__).parent / "reports" / "BENCH_cache.json"
DEFAULT_TOLERANCE = gate_tolerance("cache_speedup")
MIN_SPEEDUP = float(os.environ.get("REPRO_CACHE_GATE_MIN_SPEEDUP", "2.0"))

# Tall-and-sparse, Algorithm-4 shaped; override for quick local smoke
# runs, e.g. REPRO_BENCH_CACHE_DIMS="8192,96,2e-3".
_DIMS = os.environ.get("REPRO_BENCH_CACHE_DIMS", "32768,128,2e-3").split(",")
CACHE_M, CACHE_N, CACHE_DENSITY = int(_DIMS[0]), int(_DIMS[1]), float(_DIMS[2])
GAMMA = 3.0


def _one_run(A, cache_dir: Path) -> dict:
    """One full compile+execute against *cache_dir*; fresh cache object."""
    cfg = SketchConfig(gamma=GAMMA, kernel="algo4", rng_kind="philox", seed=0)
    cache = ArtifactCache(CachePolicy(cache_dir=str(cache_dir)))
    t0 = time.perf_counter()
    plan = Planner(tune="measure").compile(A, cfg, cache=cache)
    result = Runtime().run(plan, A, cache=cache)
    seconds = time.perf_counter() - t0
    return {
        "seconds": seconds,
        "sketch": result.sketch,
        "plan_digest": plan.digest(),
        "tune_misses": cache.misses.get("tune", 0),
        "blocked_misses": cache.misses.get("blocked_csr", 0),
        "hits": cache.hit_total(),
        "misses": cache.miss_total(),
        "blocked_csr_source": result.stats.extra.get("blocked_csr_source"),
        "conversion_seconds": result.stats.conversion_seconds,
    }


def measure_cache_warm(repeats: int = REPEATS) -> dict:
    """Cold run against an empty directory, then *repeats* warm runs.

    Returns a JSON-ready payload; ``sketch_identical`` certifies the
    acceptance bit: every warm sketch equals the cold one exactly.
    """
    A = random_sparse(CACHE_M, CACHE_N, CACHE_DENSITY, seed=0)
    workdir = Path(tempfile.mkdtemp(prefix="repro-cache-bench-"))
    try:
        cold = _one_run(A, workdir)
        warms = [_one_run(A, workdir) for _ in range(max(1, repeats))]
        identical = all(np.array_equal(w["sketch"], cold["sketch"])
                        for w in warms)
        same_plan = all(w["plan_digest"] == cold["plan_digest"]
                        for w in warms)
        warm_seconds = statistics.median(w["seconds"] for w in warms)
        return {
            "matrix": f"synthetic({CACHE_M}x{CACHE_N}, rho={CACHE_DENSITY})",
            "d": int(np.ceil(GAMMA * CACHE_N)),
            "repeats": max(1, repeats),
            "cold_seconds": cold["seconds"],
            "warm_seconds": warm_seconds,
            "warm_speedup": cold["seconds"] / warm_seconds,
            "cold_misses": cold["misses"],
            "warm_tune_misses": max(w["tune_misses"] for w in warms),
            "warm_blocked_misses": max(w["blocked_misses"] for w in warms),
            "warm_hits": min(w["hits"] for w in warms),
            "warm_conversion_seconds": max(w["conversion_seconds"]
                                           for w in warms),
            "cold_blocked_csr_source": cold["blocked_csr_source"],
            "warm_blocked_csr_source": warms[0]["blocked_csr_source"],
            "sketch_identical": identical,
            "plan_digest_stable": same_plan,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def structural_failures(payload: dict,
                        min_speedup: float = MIN_SPEEDUP) -> list[str]:
    """The acceptance invariants; empty list means the gate passes."""
    failures = []
    if not payload["sketch_identical"]:
        failures.append("warm sketch differs from cold sketch (MUST be "
                        "bit-identical)")
    if not payload["plan_digest_stable"]:
        failures.append("warm compile produced a different plan digest")
    if payload["warm_tune_misses"] != 0:
        failures.append(
            f"warm run issued {payload['warm_tune_misses']} autotune "
            f"probe set(s); expected zero")
    if payload["warm_blocked_misses"] != 0 or \
            payload["warm_blocked_csr_source"] != "cache":
        failures.append(
            f"warm run reconverted A (source="
            f"{payload['warm_blocked_csr_source']!r}, "
            f"{payload['warm_blocked_misses']} miss(es)); expected zero "
            f"conversions")
    if payload["warm_conversion_seconds"] != 0.0:
        failures.append(
            f"warm run billed {payload['warm_conversion_seconds']:.4f}s of "
            f"conversion time; expected none")
    if payload["warm_speedup"] < min_speedup:
        failures.append(
            f"warm speedup {payload['warm_speedup']:.2f}x below the "
            f"{min_speedup:.1f}x floor")
    return failures


def compare_to_baseline(baseline: dict, current: dict,
                        tolerance: float) -> list[str]:
    """Drift check against the committed baseline's warm speedup."""
    base = baseline.get("warm_speedup")
    if base is None:
        return []
    floor = base * (1.0 - tolerance)
    if current["warm_speedup"] < floor:
        return [f"warm_speedup: {current['warm_speedup']:.2f}x < floor "
                f"{floor:.2f}x (baseline {base:.2f}x, tolerance "
                f"{tolerance:.0%})"]
    return []


def _write_baseline(payload: dict) -> None:
    GATE_PATH.parent.mkdir(exist_ok=True)
    GATE_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True))


def _report_rows(payload: dict) -> list[list]:
    return [
        ["cold", round(payload["cold_seconds"], 4), "1.0x",
         payload["cold_misses"], payload["cold_blocked_csr_source"]],
        ["warm", round(payload["warm_seconds"], 4),
         f"{payload['warm_speedup']:.2f}x",
         payload["warm_tune_misses"] + payload["warm_blocked_misses"],
         payload["warm_blocked_csr_source"]],
    ]


def test_cache_warm_report(benchmark):
    payload = benchmark.pedantic(measure_cache_warm, rounds=1, iterations=1)
    notes = [
        shape_check(payload["warm_speedup"] >= MIN_SPEEDUP,
                    f"warm run {payload['warm_speedup']:.2f}x faster than "
                    f"cold (floor {MIN_SPEEDUP:.1f}x)"),
        shape_check(payload["warm_tune_misses"] == 0,
                    "warm compile: zero autotune probes"),
        shape_check(payload["warm_blocked_csr_source"] == "cache",
                    "warm run: blocked CSR served from cache, zero "
                    "conversions"),
    ]
    emit_report(
        "cache_warm",
        "Artifact cache: cold vs warm (compile + execute)",
        ["run", "seconds", "speedup", "misses", "blocked_csr"],
        _report_rows(payload),
        notes="\n".join(notes),
    )
    _write_baseline({k: v for k, v in payload.items() if k != "sketch"})
    # Correctness is a hard assertion even in the soft-shape bench leg.
    assert payload["sketch_identical"]
    assert payload["plan_digest_stable"]


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="Warm-cache regression gate (zero probes, zero "
                    "conversions, bit-identical output, speedup floor)")
    parser.add_argument("--baseline", default=str(GATE_PATH),
                        help="baseline JSON to gate drift against")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional warm-speedup drop vs the "
                             "baseline (default: the cache_speedup "
                             "per-metric tolerance; see "
                             "summarize_reports.py)")
    parser.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP,
                        help="hard floor on cold/warm speedup (default "
                             "from REPRO_CACHE_GATE_MIN_SPEEDUP or 2.0)")
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument("--force-update", action="store_true",
                        help="refresh the baseline even on failure")
    args = parser.parse_args()

    current = measure_cache_warm(args.repeats)
    for row in _report_rows(current):
        print("  ".join(str(c) for c in row))
    failures = structural_failures(current, args.min_speedup)
    baseline_path = Path(args.baseline)
    if baseline_path.exists():
        failures += compare_to_baseline(
            json.loads(baseline_path.read_text()), current, args.tolerance)
    else:
        print(f"\ncache-smoke: no baseline at {baseline_path}; recording one")
    if failures:
        print("\ncache-smoke: FAILED", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        if not args.force_update:
            sys.exit(1)
    else:
        print(f"\ncache-smoke: OK (warm {current['warm_speedup']:.2f}x, "
              f"zero probes, zero conversions, bit-identical)")
    _write_baseline(current)
